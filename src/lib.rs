//! # rqfa — QoS-based function allocation for reconfigurable systems
//!
//! A comprehensive Rust reproduction of *Ullmann, Jin, Becker: "Hardware
//! Support for QoS-based Function Allocation in Reconfigurable Systems"*
//! (DATE 2004): case-based-reasoning retrieval of implementation variants
//! under QoS constraints, the hardware retrieval unit that accelerates it,
//! the MicroBlaze-class software baseline, and the surrounding run-time
//! reconfigurable system.
//!
//! This facade crate re-exports the workspace members:
//!
//! | Module | Crate | Contents |
//! |--------|-------|----------|
//! | [`cache`] | `rqfa-cache` | generation-invalidated result cache: FIFO/LRU/2Q eviction, one-hit-wonder admission, n-best subsumption |
//! | [`core`] | `rqfa-core` | case base, similarity (eqs. 1–2), retrieval engines, n-best, bypass tokens, CBR cycle |
//! | [`fixed`] | `rqfa-fixed` | UQ1.15 fixed-point arithmetic |
//! | [`memlist`] | `rqfa-memlist` | 16-bit word memory images (figs. 4–5), validation, compaction |
//! | [`persist`] | `rqfa-persist` | durable case bases: CRC-guarded write-ahead log, memlist-image snapshots, crash recovery |
//! | [`hwsim`] | `rqfa-hwsim` | cycle-level retrieval-unit simulator (figs. 6–7) |
//! | [`softcore`] | `rqfa-softcore` | sc32 soft-core simulator, assembler, retrieval routines |
//! | [`synth`] | `rqfa-synth` | netlist area/timing estimator (Table 2) |
//! | [`rsoc`] | `rqfa-rsoc` | run-time system simulator (fig. 1): allocation manager, devices, negotiation |
//! | [`service`] | `rqfa-service` | sharded, batched, deadline-aware QoS allocation service (EDF queues, weighted scheduler, cache, metrics) |
//! | [`telemetry`] | `rqfa-telemetry` | observability plane: injectable clocks, flight-recorder tracing, unified metrics registry |
//! | [`workloads`] | `rqfa-workloads` | deterministic generators, the fig. 1 scenario, open-loop QoS traffic |
//!
//! ## Quick start
//!
//! ```
//! use rqfa::core::{paper, FixedEngine};
//!
//! let case_base = paper::table1_case_base();
//! let request = paper::table1_request()?;
//! let best = FixedEngine::new().retrieve(&case_base, &request)?.best.unwrap();
//! assert_eq!(best.impl_id, paper::IMPL_DSP); // Table 1: the DSP wins
//! # Ok::<(), rqfa::core::CoreError>(())
//! ```
//!
//! See `examples/` for end-to-end walkthroughs and `crates/bench` for the
//! table/figure reproduction harness (EXPERIMENTS.md).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use rqfa_cache as cache;
pub use rqfa_core as core;
pub use rqfa_fixed as fixed;
pub use rqfa_hwsim as hwsim;
pub use rqfa_memlist as memlist;
pub use rqfa_net as net;
pub use rqfa_persist as persist;
pub use rqfa_rsoc as rsoc;
pub use rqfa_service as service;
pub use rqfa_softcore as softcore;
pub use rqfa_synth as synth;
pub use rqfa_telemetry as telemetry;
pub use rqfa_workloads as workloads;
