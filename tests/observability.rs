//! Workspace-level observability properties (see `docs/observability.md`):
//!
//! 1. **Clock injection is total** — a live service under a frozen
//!    [`ManualClock`] stamps *every* latency as zero: no code on the
//!    request path still reads the wall clock directly.
//! 2. **Timelines reconcile with replies** — in a deterministic replay,
//!    every reply's flight-recorder timeline has a stage breakdown that
//!    sums exactly to the latency the reply reported. The trace and the
//!    metrics are two views of one execution, not two estimates.
//! 3. **Snapshots are consistent at every sample point** — under live
//!    concurrent load, `cache_hits + cache_misses == completed + failed`
//!    holds per class in *every* snapshot, not just the final one
//!    (the batch-atomic commit contract).
//! 4. **The registry unifies heterogeneous sources** — service metrics
//!    and a finished rsoc simulation's counters land in one prefixed
//!    snapshot.

use std::sync::Arc;

use rqfa::core::QosClass;
use rqfa::service::replay::{CostModel, TraceArrival, TraceDriver};
use rqfa::service::{AllocationService, SchedMode, ServiceConfig, SharedClock, Ticket};
use rqfa::telemetry::{ManualClock, Registry};
use rqfa::workloads::{CaseGen, RequestGen, TrafficGen};

/// 1. With time frozen, every reply latency and every latency quantile is
///    zero, and every trace event lands at µs 0 — any stray `Instant::now()`
///    left on the request path would leak real elapsed time into one of them.
#[test]
fn frozen_manual_clock_zeroes_every_latency() {
    let case_base = CaseGen::new(8, 8, 6, 8).seed(0x0B5E).build();
    let requests = RequestGen::new(&case_base)
        .seed(0x0B5E + 1)
        .count(400)
        .repeat_fraction(0.3)
        .generate();
    let clock: SharedClock = Arc::new(ManualClock::new());
    let service = AllocationService::new(
        &case_base,
        &ServiceConfig::default()
            .with_shards(2)
            .with_queue_capacity(requests.len() + 1)
            .with_clock(clock)
            .with_trace_capacity(1 << 14),
    ).expect("valid service config");
    let tickets: Vec<Ticket> = requests
        .iter()
        .map(|r| service.submit(r.clone(), QosClass::High))
        .collect();
    for ticket in tickets {
        let reply = ticket.wait().expect("closed loop answers everything");
        assert_eq!(reply.latency_us, 0, "frozen clock must stamp zero latency");
    }
    let trace = service.drain_trace();
    assert!(trace.total > 0, "tracing was enabled");
    assert!(
        trace.events.iter().all(|e| e.at_us == 0),
        "every event is stamped from the injected clock"
    );
    let snap = service.shutdown();
    let high = snap.class(QosClass::High);
    assert_eq!(high.completed, 400);
    assert_eq!((high.p50_us, high.p99_us), (0, 0));
}

/// 2. Replay a saturating deadline-skewed trace and reconcile the two
///    observability planes: for every reply, the timeline's stage breakdown
///    sums to exactly the reported latency.
#[test]
fn replay_timeline_breakdowns_sum_to_reply_latencies() {
    let case_base = CaseGen::new(12, 12, 6, 8).seed(0x0B5F).build();
    let arrivals: Vec<TraceArrival> = TrafficGen::deadline_skewed(&case_base)
        .seed(0x0B5F)
        .duration_us(60_000)
        .generate()
        .into_iter()
        .map(|a| TraceArrival {
            at_us: a.at_us,
            class: a.class,
            deadline_us: a.deadline_us,
            request: a.request,
        })
        .collect();
    assert!(arrivals.len() > 200, "trace is non-trivial");
    let config = ServiceConfig::default()
        .with_shards(2)
        .with_batch_size(4)
        .with_queue_capacity(64)
        .with_scheduling(SchedMode::Edf)
        .with_trace_capacity(1 << 17);
    let driver = TraceDriver::new(&case_base, &config, CostModel::default());
    let report = driver.run(&arrivals);
    assert_eq!(report.trace.dropped, 0, "ring sized to keep every event");

    let timelines = report.trace.timelines();
    let mut reconciled = 0usize;
    for reply in &report.replies {
        let timeline = timelines
            .iter()
            .find(|t| t.request_id == reply.id)
            .expect("every reply has a timeline");
        let breakdown = timeline
            .breakdown()
            .expect("every timeline is terminal (replied or shed)");
        assert_eq!(
            breakdown.total_us(),
            reply.latency_us,
            "request {}: stages {:?} must sum to the recorded latency",
            reply.id,
            breakdown
        );
        reconciled += 1;
    }
    assert_eq!(reconciled, arrivals.len());
    // The breakdown is not degenerate: under saturation some request
    // spent real time queued.
    assert!(
        timelines
            .iter()
            .filter_map(rqfa::telemetry::RequestTimeline::breakdown)
            .any(|b| b.queue_us > 0),
        "a saturating trace must show queue wait somewhere"
    );
}

/// 3. The batch-atomic commit gate: sample snapshots continuously while
///    four submitter threads drive the service, and require the cache/outcome
///    identity to hold in every single sample.
#[test]
fn snapshots_are_consistent_at_every_sample_point() {
    let case_base = CaseGen::new(10, 10, 6, 8).seed(0x0B60).build();
    let requests = RequestGen::new(&case_base)
        .seed(0x0B60 + 1)
        .count(1_500)
        .repeat_fraction(0.3)
        .generate();
    let service = Arc::new(AllocationService::new(
        &case_base,
        &ServiceConfig::default()
            .with_shards(2)
            .with_batch_size(4)
            .with_queue_capacity(requests.len() * 4 + 1),
    ).expect("valid service config"));

    let submitters: Vec<_> = (0..4)
        .map(|_| {
            let service = Arc::clone(&service);
            let requests = requests.clone();
            std::thread::spawn(move || {
                let tickets: Vec<Ticket> = requests
                    .iter()
                    .map(|r| service.submit(r.clone(), QosClass::Medium))
                    .collect();
                for ticket in tickets {
                    ticket.wait().expect("closed loop answers everything");
                }
            })
        })
        .collect();

    let mut samples = 0u32;
    let expected = (requests.len() * 4) as u64;
    loop {
        let snap = service.metrics();
        for class in QosClass::ALL {
            let c = snap.class(class);
            assert_eq!(
                c.cache_hits + c.cache_misses,
                c.completed + c.failed,
                "{class} snapshot #{samples}: every dispatched request probes \
                 the cache exactly once, atomically with its outcome"
            );
            assert!(
                c.completed + c.failed + c.shed() <= c.submitted,
                "{class} snapshot #{samples}: outcomes never outrun submissions"
            );
        }
        samples += 1;
        if snap.completed() == expected {
            break;
        }
        std::thread::yield_now();
    }
    for t in submitters {
        t.join().unwrap();
    }
    assert!(samples > 1, "the loop sampled the service mid-flight");
    Arc::into_inner(service)
        .expect("submitters joined, last reference")
        .shutdown();
}

/// 4. One registry snapshot spans the service and a finished rsoc run.
#[test]
fn registry_unifies_service_and_rsoc_sources() {
    let case_base = CaseGen::new(6, 6, 5, 6).seed(0x0B61).build();
    let requests = RequestGen::new(&case_base).seed(7).count(50).generate();
    let service = AllocationService::new(
        &case_base,
        &ServiceConfig::default().with_queue_capacity(64),
    ).expect("valid service config");
    let tickets: Vec<Ticket> = requests
        .iter()
        .map(|r| service.submit(r.clone(), QosClass::Low))
        .collect();
    for ticket in tickets {
        ticket.wait().expect("answered");
    }

    let registry = Registry::new();
    service.register_metrics(&registry, "service");
    let sim = rqfa::rsoc::Metrics {
        requests: 12,
        accepted: 9,
        ..rqfa::rsoc::Metrics::default()
    };
    registry.register("rsoc", Arc::new(sim) as Arc<dyn rqfa::telemetry::MetricSource>);

    let snapshot = registry.snapshot();
    let value = |name: &str| {
        snapshot
            .samples
            .iter()
            .find(|s| s.name == name)
            .unwrap_or_else(|| panic!("missing sample {name}"))
            .value
    };
    assert_eq!(value("service/LOW/completed"), 50.0);
    assert_eq!(value("rsoc/requests"), 12.0);
    assert_eq!(value("rsoc/accepted"), 9.0);
    service.shutdown();
}

/// 5. Net-plane events ride along without breaking reconciliation — a
///    remote-backed flow merges the node's pipeline trace with the
///    client's frame trace under one request id, and every timeline's
///    stage breakdown *still* sums exactly to the reply's latency (the
///    non-ladder frame kinds are accounted, never double-counted).
#[test]
fn net_plane_events_keep_timelines_telescoping() {
    use rqfa::core::placement::{NodeId, NodeMap};
    use rqfa::net::RetryPolicy;
    use rqfa::service::remote::{ClusterClient, NodeServer, RemoteShard};
    use rqfa::telemetry::{EventKind, FlightRecorder, TraceDump};
    use std::time::Duration;

    let clock: SharedClock = Arc::new(ManualClock::new());
    let case_base = CaseGen::new(6, 5, 4, 6).seed(0x0B62).build();
    let service = Arc::new(
        AllocationService::new(
            &case_base,
            &ServiceConfig::default()
                .with_shards(1)
                .with_cache_capacity(0)
                .with_trace_capacity(1 << 14)
                .with_clock(Arc::clone(&clock)),
        )
        .expect("valid service config"),
    );
    let server = NodeServer::spawn(Arc::clone(&service)).expect("loopback bind");
    let recorder = Arc::new(FlightRecorder::new(1 << 12));
    let remote = RemoteShard::tcp(
        server.addr(),
        Duration::from_millis(500),
        RetryPolicy::loopback(),
    )
    .with_recorder(Arc::clone(&recorder), Arc::clone(&clock));
    let client = ClusterClient::new(Box::new(NodeMap::new(vec![Some(NodeId::new(0))])), None);
    client.set_node(NodeId::new(0), remote);

    // Sequential submits against a single node: the cluster's ids and
    // the node service's internal job ids advance in lockstep from 0, so
    // the two traces key the same flows by the same id.
    let requests = RequestGen::new(&case_base).seed(0x0B63).count(40).generate();
    let replies: Vec<_> = requests
        .into_iter()
        .map(|r| client.submit(r, QosClass::Medium))
        .collect();

    let merged = TraceDump::merge([service.drain_trace(), recorder.drain()]);
    assert_eq!(merged.dropped, 0, "rings sized to keep every event");
    let timelines = merged.timelines();
    for reply in &replies {
        assert!(
            matches!(reply.outcome, rqfa::service::Outcome::Allocated { .. }),
            "request {}: {:?}",
            reply.id,
            reply.outcome
        );
        let timeline = timelines
            .iter()
            .find(|t| t.request_id == reply.id)
            .expect("every reply has a merged timeline");
        // The wire is *in* the timeline…
        let sent = timeline
            .events
            .iter()
            .filter(|e| e.kind == EventKind::FrameSent)
            .count();
        let received = timeline
            .events
            .iter()
            .filter(|e| e.kind == EventKind::FrameReceived)
            .count();
        assert_eq!((sent, received), (1, 1), "request {}: one clean exchange", reply.id);
        // …and the breakdown still telescopes to the reported latency.
        let breakdown = timeline
            .breakdown()
            .expect("every timeline is terminal");
        assert_eq!(
            breakdown.total_us(),
            reply.latency_us,
            "request {}: net-plane events must not perturb the stage sum",
            reply.id
        );
    }
    // A clean loopback never retried or timed out.
    assert!(
        !merged
            .events
            .iter()
            .any(|e| matches!(e.kind, EventKind::FrameRetried | EventKind::FrameTimedOut)),
        "clean transport shows no retry/timeout events"
    );
    server.shutdown();
}
