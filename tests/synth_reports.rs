//! Experiments E2/E3: the synthesis estimate (Table 2) and the memory
//! budget (Table 3) as integration checks over the real artifacts.

use rqfa::memlist::{
    encode_case_base, encode_compact_case_base, encode_request, predicted_compact_words,
    predicted_request_words, predicted_words, MemoryReport,
};
use rqfa::synth::{build_retrieval_unit_with, synthesize_retrieval_unit, synthesize_with, TechLibrary};
use rqfa::workloads::{CaseGen, RequestGen};

#[test]
fn table2_resource_mix_and_bands() {
    let report = synthesize_retrieval_unit().unwrap();
    // Structural facts.
    assert_eq!(report.area.mult18, 2, "fig. 7 has exactly two multipliers");
    assert_eq!(report.area.bram18, 2, "CB-MEM and Req-MEM");
    // Calibrated bands around the paper's 441 slices / ~75 MHz.
    assert!(
        (375..=510).contains(&report.area.slices),
        "slices {}",
        report.area.slices
    );
    assert!(
        (65.0..=85.0).contains(&report.timing.fmax_mhz),
        "fmax {:.1}",
        report.timing.fmax_mhz
    );
    // Utilization matches the table's ~3 % / 2 % / 2 %.
    let (s, m, b) = report.area.utilization(&rqfa::synth::XC2V3000);
    assert!(s < 5.0 && m < 5.0 && b < 5.0);
}

#[test]
fn table3_request_is_64_bytes() {
    let case_base = CaseGen::paper_shape().seed(1).build();
    let requests = RequestGen::new(&case_base)
        .seed(1)
        .count(1)
        .drop_fraction(0.0) // all 10 attributes constrained (worst case)
        .generate();
    assert_eq!(requests[0].constraints().len(), 10);
    let image = encode_request(&requests[0]).unwrap();
    assert_eq!(image.image().bytes(), 64, "Table 3: request = 64 bytes");
    assert_eq!(predicted_request_words(10) * 2, 64);
}

#[test]
fn table3_case_base_budget() {
    let case_base = CaseGen::paper_shape().seed(1).build();
    let classic = encode_case_base(&case_base).unwrap();
    assert_eq!(classic.image().len(), predicted_words(15, 10, 10, 10));
    let report = MemoryReport::of(&classic);
    // Canonical two-word entries: ~6.9 kB (the paper's stated layout).
    assert!(
        (6.0..8.0).contains(&report.total_kib()),
        "classic {:.2} kB",
        report.total_kib()
    );
    // The compact encoding approaches the paper's "about 4.5 kB".
    let compact_case_base = CaseGen::paper_shape().seed(1).value_span(1000).build();
    let compact = encode_compact_case_base(&compact_case_base).unwrap();
    assert_eq!(compact.image().len(), predicted_compact_words(15, 10, 10, 10));
    let compact_report = MemoryReport::of_compact(&compact);
    assert!(
        (3.5..5.0).contains(&compact_report.total_kib()),
        "compact {:.2} kB",
        compact_report.total_kib()
    );
}

#[test]
fn nbest_hardware_extension_costs_area_not_multipliers() {
    let lib = TechLibrary::default();
    let base = synthesize_with(&build_retrieval_unit_with(1), &lib).unwrap();
    let n4 = synthesize_with(&build_retrieval_unit_with(4), &lib).unwrap();
    let n8 = synthesize_with(&build_retrieval_unit_with(8), &lib).unwrap();
    assert!(base.area.slices < n4.area.slices && n4.area.slices < n8.area.slices);
    assert_eq!(base.area.mult18, n8.area.mult18);
    assert_eq!(base.area.bram18, n8.area.bram18);
}
