//! Experiment E13: the allocation service must scale *without changing any
//! answer*. Three workspace-level properties:
//!
//! 1. **Ranking equivalence** — sharded + batched + cached retrieval
//!    returns exactly what a single `FixedEngine` over the merged case
//!    base returns, for every request of a generated workload.
//! 2. **Cache coherence** — repeating a request hits the cache; a retain
//!    mutation invalidates it and the next answer reflects the new
//!    variant.
//! 3. **QoS protection** — under deliberate overload with a tiny queue,
//!    CRITICAL requests are never shed while LOW traffic is.

use rqfa::core::{paper, AttrBinding, ExecutionTarget, FixedEngine, ImplId, ImplVariant, QosClass};
use rqfa::service::{AllocationService, Outcome, Reply, ServiceConfig, Ticket};
use rqfa::workloads::{CaseGen, RequestGen};

/// 1a. Every shard count answers exactly like the single engine, request
/// by request, including similarity bit patterns.
#[test]
fn sharded_retrieval_matches_single_engine() {
    let case_base = CaseGen::new(13, 8, 6, 9).seed(0xA11C).value_span(300).build();
    let requests = RequestGen::new(&case_base)
        .seed(0x51AB)
        .count(200)
        .repeat_fraction(0.4) // exercise the cache path too
        .generate();
    let engine = FixedEngine::new();

    for shards in [1usize, 2, 4] {
        let service = AllocationService::new(
            &case_base,
            &ServiceConfig::default().with_shards(shards),
        );
        let tickets: Vec<Ticket> = requests
            .iter()
            .map(|r| service.submit(r.clone(), QosClass::Medium))
            .collect();
        for (request, ticket) in requests.iter().zip(tickets) {
            let reply = ticket.wait().expect("service answers before shutdown");
            let expected = engine
                .retrieve(&case_base, request)
                .expect("generated request is valid")
                .best
                .expect("validated case base always has a best");
            match reply.outcome {
                Outcome::Allocated { best, .. } => {
                    assert_eq!(
                        best.impl_id, expected.impl_id,
                        "{shards} shard(s): winner differs for {request}"
                    );
                    assert_eq!(
                        best.similarity, expected.similarity,
                        "{shards} shard(s): similarity bits differ for {request}"
                    );
                }
                other => panic!("{shards} shard(s): unexpected outcome {other:?}"),
            }
        }
        let snap = service.shutdown();
        assert_eq!(snap.class(QosClass::Medium).completed, requests.len() as u64);
        assert_eq!(snap.shed(), 0, "no shedding in an underloaded run");
    }
}

/// 1b. A batch spanning every shard completes fully even when some types
/// route to one shard and the rest to others.
#[test]
fn cross_shard_round_robin_workload_completes() {
    let case_base = CaseGen::new(8, 4, 4, 6).seed(3).build();
    let service =
        AllocationService::new(&case_base, &ServiceConfig::default().with_shards(4));
    let requests = RequestGen::new(&case_base).seed(9).count(100).generate();
    let tickets: Vec<Ticket> = requests
        .into_iter()
        .map(|r| service.submit(r, QosClass::High))
        .collect();
    let mut answered = 0;
    for ticket in tickets {
        assert!(matches!(
            ticket.wait().expect("answered").outcome,
            Outcome::Allocated { .. }
        ));
        answered += 1;
    }
    assert_eq!(answered, 100);
    service.shutdown();
}

/// 2. Cache hits on repetition; retain-invalidation changes the answer.
#[test]
fn cache_invalidation_on_case_insertion() {
    let case_base = paper::table1_case_base();
    let service = AllocationService::new(&case_base, &ServiceConfig::default());
    let request = paper::table1_request().unwrap();

    let allocated = |reply: Reply| match reply.outcome {
        Outcome::Allocated { best, cached, .. } => (best, cached),
        other => panic!("unexpected outcome {other:?}"),
    };

    // Miss, then hit, answering identically (Table 1: the DSP wins).
    let (first, cached) = allocated(service.submit(request.clone(), QosClass::High).wait().unwrap());
    assert!(!cached);
    assert_eq!(first.impl_id, paper::IMPL_DSP);
    let (second, cached) = allocated(service.submit(request.clone(), QosClass::High).wait().unwrap());
    assert!(cached, "identical repeat must come from the cache");
    assert_eq!(second, first);

    // Retain a variant matching the request exactly: similarity 1.0.
    let perfect = ImplVariant::new(
        ImplId::new(9).unwrap(),
        ExecutionTarget::Fpga,
        vec![
            AttrBinding::new(paper::ATTR_BITWIDTH, 16),
            AttrBinding::new(paper::ATTR_OUTPUT, 1),
            AttrBinding::new(paper::ATTR_RATE, 40),
        ],
    )
    .unwrap();
    service
        .retain_variant(paper::FIR_EQUALIZER, perfect)
        .unwrap();

    // The stale cached answer must NOT be served: recomputed, new winner.
    let (third, cached) = allocated(service.submit(request, QosClass::High).wait().unwrap());
    assert!(!cached, "mutation must invalidate the cached result");
    assert_eq!(third.impl_id.raw(), 9, "the retained perfect match wins");
    assert!(third.similarity > first.similarity);

    let snap = service.shutdown();
    assert_eq!(snap.class(QosClass::High).cache_hits, 1);
    assert_eq!(snap.class(QosClass::High).completed, 3);
}

/// 3. CRITICAL is never shed, even with a 4-slot queue under a flood of
///    LOW traffic with a 1 µs deadline budget.
#[test]
fn critical_survives_overload_that_sheds_low() {
    let case_base = CaseGen::new(6, 32, 8, 10).seed(77).build();
    let config = ServiceConfig::default()
        .with_shards(2)
        .with_queue_capacity(4)
        .with_batch_size(4)
        .with_cache_capacity(0) // keep the workers honest (no shortcut)
        .with_deadline_budget_us(QosClass::Low, 1);
    let service = AllocationService::new(&case_base, &config);
    let requests = RequestGen::new(&case_base)
        .seed(5)
        .count(2_000)
        .repeat_fraction(0.0)
        .generate();

    let mut critical_tickets = Vec::new();
    for (i, request) in requests.iter().enumerate() {
        if i % 10 == 0 {
            critical_tickets.push(service.submit(request.clone(), QosClass::Critical));
        } else {
            // Fire-and-forget flood; replies collected via metrics.
            let _ = service.submit(request.clone(), QosClass::Low);
        }
    }

    for ticket in critical_tickets {
        let reply = ticket.wait().expect("critical must always be answered");
        assert!(
            matches!(reply.outcome, Outcome::Allocated { .. }),
            "CRITICAL must never be shed, got {:?}",
            reply.outcome
        );
    }

    let snap = service.shutdown();
    let critical = snap.class(QosClass::Critical);
    assert_eq!(critical.shed(), 0, "no shed path may touch CRITICAL");
    assert_eq!(critical.completed, critical.submitted);
    let low = snap.class(QosClass::Low);
    assert!(
        low.shed() > 0,
        "a 4-slot queue under a 1800-request flood must shed LOW \
         (shed {} of {})",
        low.shed(),
        low.submitted
    );
    // Accounting closes: every LOW request either completed, was shed, or
    // failed — nothing vanishes.
    assert_eq!(low.completed + low.shed() + low.failed, low.submitted);
}
