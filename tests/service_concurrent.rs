//! Experiment E13: the allocation service must scale *without changing any
//! answer*. Workspace-level properties:
//!
//! 1. **Ranking equivalence** — sharded + batched + cached retrieval
//!    returns exactly what a single `FixedEngine` over the merged case
//!    base returns, for every request of a generated workload.
//! 2. **Cache coherence** — repeating a request hits the cache; a retain
//!    mutation invalidates it and the next answer reflects the new
//!    variant.
//! 3. **QoS protection** — under deliberate overload with a tiny queue,
//!    CRITICAL requests are never shed while LOW traffic is.
//! 4. **Deadline-aware scheduling** (see `docs/scheduling.md`) — on a
//!    deadline-skewed trace EDF dispatch meets every HIGH budget where
//!    the FIFO baseline provably misses; slack promotion is bounded so
//!    CRITICAL keeps its weighted share; overload shedding displaces by
//!    largest slack first and is bit-deterministic across runs.
//! 5. **Adaptive arbitration** — on seeded saturating traces FAIR_SHARE
//!    converges to the 8:4:2:1 weight-target served shares and
//!    DYNAMIC_PRIORITY preserves the CRITICAL anti-starvation floor,
//!    under EDF and FIFO ordering alike.
//!
//! The scheduling properties drive the queue/arbiter directly through
//! `rqfa::service::testkit` with *virtual* time (one dispatch slot = one
//! simulated millisecond), so they are timing-free and CI-stable.

use std::time::{Duration, Instant};

use rqfa::core::{
    paper, AttrBinding, AttrId, CaseMutation, ExecutionTarget, FixedEngine, ImplId, ImplVariant,
    QosClass, Request,
};
use rqfa::service::queue::{Admission, ClassQueue};
use rqfa::service::{
    testkit, AllocationService, ArbiterMode, Outcome, Reply, SchedMode, ServiceConfig,
    ServiceMetrics, Ticket, WeightedArbiter,
};
use rqfa::workloads::{CaseGen, RequestGen};
use std::sync::Arc;

/// 1a. Every shard count answers exactly like the single engine, request
/// by request, including similarity bit patterns.
#[test]
fn sharded_retrieval_matches_single_engine() {
    let case_base = CaseGen::new(13, 8, 6, 9).seed(0xA11C).value_span(300).build();
    let requests = RequestGen::new(&case_base)
        .seed(0x51AB)
        .count(200)
        .repeat_fraction(0.4) // exercise the cache path too
        .generate();
    let engine = FixedEngine::new();

    for shards in [1usize, 2, 4] {
        let service = AllocationService::new(
            &case_base,
            &ServiceConfig::default().with_shards(shards),
        ).expect("valid service config");
        let tickets: Vec<Ticket> = requests
            .iter()
            .map(|r| service.submit(r.clone(), QosClass::Medium))
            .collect();
        for (request, ticket) in requests.iter().zip(tickets) {
            let reply = ticket.wait().expect("service answers before shutdown");
            let expected = engine
                .retrieve(&case_base, request)
                .expect("generated request is valid")
                .best
                .expect("validated case base always has a best");
            match reply.outcome {
                Outcome::Allocated { best, .. } => {
                    assert_eq!(
                        best.impl_id, expected.impl_id,
                        "{shards} shard(s): winner differs for {request}"
                    );
                    assert_eq!(
                        best.similarity, expected.similarity,
                        "{shards} shard(s): similarity bits differ for {request}"
                    );
                }
                other => panic!("{shards} shard(s): unexpected outcome {other:?}"),
            }
        }
        let snap = service.shutdown();
        assert_eq!(snap.class(QosClass::Medium).completed, requests.len() as u64);
        assert_eq!(snap.shed(), 0, "no shedding in an underloaded run");
    }
}

/// 1b. A batch spanning every shard completes fully even when some types
/// route to one shard and the rest to others.
#[test]
fn cross_shard_round_robin_workload_completes() {
    let case_base = CaseGen::new(8, 4, 4, 6).seed(3).build();
    let service =
        AllocationService::new(&case_base, &ServiceConfig::default().with_shards(4)).expect("valid service config");
    let requests = RequestGen::new(&case_base).seed(9).count(100).generate();
    let tickets: Vec<Ticket> = requests
        .into_iter()
        .map(|r| service.submit(r, QosClass::High))
        .collect();
    let mut answered = 0;
    for ticket in tickets {
        assert!(matches!(
            ticket.wait().expect("answered").outcome,
            Outcome::Allocated { .. }
        ));
        answered += 1;
    }
    assert_eq!(answered, 100);
    service.shutdown();
}

/// 2. Cache hits on repetition; retain-invalidation changes the answer.
#[test]
fn cache_invalidation_on_case_insertion() {
    let case_base = paper::table1_case_base();
    let service = AllocationService::new(&case_base, &ServiceConfig::default()).expect("valid service config");
    let request = paper::table1_request().unwrap();

    let allocated = |reply: Reply| match reply.outcome {
        Outcome::Allocated { best, cached, .. } => (best, cached),
        other => panic!("unexpected outcome {other:?}"),
    };

    // Miss, then hit, answering identically (Table 1: the DSP wins).
    let (first, cached) = allocated(service.submit(request.clone(), QosClass::High).wait().unwrap());
    assert!(!cached);
    assert_eq!(first.impl_id, paper::IMPL_DSP);
    let (second, cached) = allocated(service.submit(request.clone(), QosClass::High).wait().unwrap());
    assert!(cached, "identical repeat must come from the cache");
    assert_eq!(second, first);

    // Retain a variant matching the request exactly: similarity 1.0.
    let perfect = ImplVariant::new(
        ImplId::new(9).unwrap(),
        ExecutionTarget::Fpga,
        vec![
            AttrBinding::new(paper::ATTR_BITWIDTH, 16),
            AttrBinding::new(paper::ATTR_OUTPUT, 1),
            AttrBinding::new(paper::ATTR_RATE, 40),
        ],
    )
    .unwrap();
    service
        .retain_variant(paper::FIR_EQUALIZER, perfect)
        .unwrap();

    // The stale cached answer must NOT be served: recomputed, new winner.
    let (third, cached) = allocated(service.submit(request, QosClass::High).wait().unwrap());
    assert!(!cached, "mutation must invalidate the cached result");
    assert_eq!(third.impl_id.raw(), 9, "the retained perfect match wins");
    assert!(third.similarity > first.similarity);

    let snap = service.shutdown();
    assert_eq!(snap.class(QosClass::High).cache_hits, 1);
    assert_eq!(snap.class(QosClass::High).completed, 3);
}

/// 3. CRITICAL is never shed, even with a 4-slot queue under a flood of
///    LOW traffic with a 1 µs deadline budget.
#[test]
fn critical_survives_overload_that_sheds_low() {
    let case_base = CaseGen::new(6, 32, 8, 10).seed(77).build();
    let config = ServiceConfig::default()
        .with_shards(2)
        .with_queue_capacity(4)
        .with_batch_size(4)
        .with_cache_capacity(0) // keep the workers honest (no shortcut)
        .with_deadline_budget_us(QosClass::Low, 1);
    let service = AllocationService::new(&case_base, &config).expect("valid service config");
    let requests = RequestGen::new(&case_base)
        .seed(5)
        .count(2_000)
        .repeat_fraction(0.0)
        .generate();

    let mut critical_tickets = Vec::new();
    for (i, request) in requests.iter().enumerate() {
        if i % 10 == 0 {
            critical_tickets.push(service.submit(request.clone(), QosClass::Critical));
        } else {
            // Fire-and-forget flood; replies collected via metrics.
            let _ = service.submit(request.clone(), QosClass::Low);
        }
    }

    for ticket in critical_tickets {
        let reply = ticket.wait().expect("critical must always be answered");
        assert!(
            matches!(reply.outcome, Outcome::Allocated { .. }),
            "CRITICAL must never be shed, got {:?}",
            reply.outcome
        );
    }

    let snap = service.shutdown();
    let critical = snap.class(QosClass::Critical);
    assert_eq!(critical.shed(), 0, "no shed path may touch CRITICAL");
    assert_eq!(critical.completed, critical.submitted);
    let low = snap.class(QosClass::Low);
    assert!(
        low.shed() > 0,
        "a 4-slot queue under a 1800-request flood must shed LOW \
         (shed {} of {})",
        low.shed(),
        low.submitted
    );
    // Accounting closes: every LOW request either completed, was shed, or
    // failed — nothing vanishes.
    assert_eq!(low.completed + low.shed() + low.failed, low.submitted);
}

/// A probe request for scheduler-level tests (payload is irrelevant to
/// queue ordering).
fn probe_request() -> Request {
    paper::table1_request().unwrap()
}

/// Builds a queue in the given mode with the default 8:4:2:1 arbiter.
fn sched_queue(capacity: usize, mode: SchedMode) -> ClassQueue {
    ClassQueue::new(
        capacity,
        WeightedArbiter::new(),
        mode,
        0,
        Arc::new(ServiceMetrics::default()),
    )
}

/// 5a. The EDF-vs-FIFO property: on one deadline-skewed mixed-load trace,
///     dispatched with a virtual service time of one slot = 1 ms, EDF
///     meets *every* HIGH deadline while the FIFO baseline provably
///     misses at least one. Same jobs, same arbiter, same admission —
///     only the within-lane order differs.
#[test]
fn edf_meets_high_budgets_where_fifo_misses() {
    const SLOT: Duration = Duration::from_millis(1);
    const HIGHS: u64 = 30;
    let run = |mode: SchedMode| -> Vec<(u64, bool)> {
        let q = sched_queue(1024, mode);
        let base = Instant::now();
        // HIGH deadlines are *reverse-skewed*: the latest arrival has the
        // tightest deadline (50 − id ms), so arrival order and deadline
        // order are exactly opposed. MEDIUM load interleaves via the
        // 4:2 weighted share with effectively unconstrained deadlines.
        for id in 0..HIGHS {
            let deadline = base + SLOT * u32::try_from(50 - id).unwrap();
            let (job, _rx) = testkit::job(id, QosClass::High, probe_request(), base, Some(deadline));
            assert!(matches!(q.push(job), Admission::Admitted));
        }
        for id in HIGHS..HIGHS + 20 {
            let deadline = base + SLOT * 500;
            let (job, _rx) =
                testkit::job(id, QosClass::Medium, probe_request(), base, Some(deadline));
            assert!(matches!(q.push(job), Admission::Admitted));
        }
        // Dispatch everything; job at global position p completes at
        // virtual time (p + 1) slots.
        let order = q.pop_batch(usize::MAX).unwrap();
        assert_eq!(order.len() as u64, HIGHS + 20);
        order
            .iter()
            .enumerate()
            .filter(|(_, job)| job.class() == QosClass::High)
            .map(|(position, job)| {
                let completion = base + SLOT * u32::try_from(position as u64 + 1).unwrap();
                (job.id(), completion <= job.deadline().unwrap())
            })
            .collect()
    };

    let edf = run(SchedMode::Edf);
    let fifo = run(SchedMode::Fifo);
    assert_eq!(edf.len() as u64, HIGHS);
    assert!(
        edf.iter().all(|&(_, met)| met),
        "EDF must meet every HIGH deadline on this trace: {edf:?}"
    );
    let fifo_misses = fifo.iter().filter(|&&(_, met)| !met).count();
    assert!(
        fifo_misses > 0,
        "the FIFO baseline must miss on the same trace (it serves the \
         tightest-deadline HIGH job last)"
    );
    // And FIFO dispatches HIGH in arrival order while EDF reverses it.
    assert!(fifo.windows(2).all(|w| w[0].0 < w[1].0));
    assert!(edf.windows(2).all(|w| w[0].0 > w[1].0));
}

/// 5b. Anti-starvation bound: even with a MEDIUM lane that is *always*
///     urgent, CRITICAL keeps exactly its weighted share of the grown
///     round — promotions are bounded, not a bypass.
#[test]
fn promotion_is_bounded_so_critical_keeps_its_share() {
    let mut arb = WeightedArbiter::new().with_promotions(2);
    let backlogged = [true, false, true, false]; // CRITICAL + MEDIUM
    let urgent = [false, false, true, false]; // MEDIUM about to miss
    let mut counts = [0u64; 4];
    for _ in 0..2400 {
        let pick = arb.pick_urgent(backlogged, urgent).unwrap();
        counts[pick.class.index()] += 1;
    }
    // Each round: 8 CRITICAL credits + 2 MEDIUM credits + at most 2
    // promotion tokens → 2400 picks = 200 rounds, shares exactly 8:4.
    assert_eq!(counts[QosClass::Critical.index()], 1600);
    assert_eq!(counts[QosClass::Medium.index()], 800);
    // The documented lower bound: weight / (Σ weights + tokens) = 8/17
    // of any pick stream, which 1600/2400 comfortably clears.
    assert!(counts[QosClass::Critical.index()] * 17 >= 2400 * 8);
}

/// 5c. Overload displacement: at the class limit the largest-slack LOW
///     resident is shed first (not the queue tail), the newcomer only
///     bounces when it *is* the largest-slack job, and the whole shed
///     sequence is deterministic across identical runs.
#[test]
fn shed_order_is_largest_slack_first_and_deterministic() {
    let run = || {
        let q = sched_queue(4, SchedMode::Edf);
        let base = Instant::now();
        let mut log: Vec<String> = Vec::new();
        let push = |id: u64, deadline_ms: u64, log: &mut Vec<String>| {
            let (job, _rx) = testkit::job(
                id,
                QosClass::Low,
                probe_request(),
                base,
                Some(base + Duration::from_millis(deadline_ms)),
            );
            log.push(match q.push(job) {
                Admission::Admitted => format!("admit {id}"),
                Admission::Displaced(victim) => format!("displace {} for {id}", victim.id()),
                Admission::Refused(job) => format!("refuse {}", job.id()),
                Admission::Doomed { job, late_us } => {
                    format!("doom {} late {late_us}us", job.id())
                }
            });
        };
        // Fill the LOW lane to its limit (capacity 4)…
        for (id, ms) in [(0, 100u64), (1, 20), (2, 60), (3, 80)] {
            push(id, ms, &mut log);
        }
        // …then: a 10 ms newcomer displaces id 0 (slack 100 ms), a 30 ms
        // newcomer displaces id 3 (slack 80 ms), a 90 ms newcomer is now
        // itself the largest slack and bounces.
        push(4, 10, &mut log);
        push(5, 30, &mut log);
        push(6, 90, &mut log);
        let order: Vec<u64> = q
            .pop_batch(usize::MAX)
            .unwrap()
            .iter()
            .map(rqfa::service::Job::id)
            .collect();
        (log, order)
    };
    let (log, order) = run();
    assert_eq!(
        log,
        [
            "admit 0",
            "admit 1",
            "admit 2",
            "admit 3",
            "displace 0 for 4",
            "displace 3 for 5",
            "refuse 6"
        ]
    );
    assert_eq!(order, [4, 1, 5, 2], "survivors dispatch in deadline order");
    let (log2, order2) = run();
    assert_eq!((log, order), (log2, order2), "shed order is deterministic");
}

/// Builds a queue combining a scheduling mode with an arbiter mode; the
/// 1 s urgency margin makes every deadlined lane head count as urgent.
fn sched_queue_arbiter(capacity: usize, mode: SchedMode, arbiter: ArbiterMode) -> ClassQueue {
    ClassQueue::new(
        capacity,
        WeightedArbiter::new().with_mode(arbiter),
        mode,
        1_000_000,
        Arc::new(ServiceMetrics::default()),
    )
}

/// Tiny deterministic generator (splitmix64) for the seeded property
/// tests below.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// 5e. FAIR_SHARE property: over seeded saturating traces — every class
///     backlogged for the whole run, randomized batch sizes, deadlines on
///     a seeded half of the jobs — the served pick counts converge to the
///     8:4:2:1 weight targets within one regulation window, under EDF and
///     FIFO ordering alike (the regulator measures *served* share and
///     ignores urgency, so lane order cannot skew it).
#[test]
fn fair_share_served_shares_converge_on_saturating_traces() {
    const PICKS: u64 = 1_500;
    let targets = [800i64, 400, 200, 100]; // PICKS × weight / Σ weights
    for mode in [SchedMode::Edf, SchedMode::Fifo] {
        for seed in 0..4u64 {
            let mut state = seed ^ 0xFA1E;
            let q = sched_queue_arbiter(8_192, mode, ArbiterMode::FairShare);
            let base = Instant::now();
            let mut id = 0u64;
            // Enough of every class that no lane drains before the last
            // pick (targets + one full window of slack each).
            for (class, count) in [
                (QosClass::Critical, 900u64),
                (QosClass::High, 500),
                (QosClass::Medium, 300),
                (QosClass::Low, 200),
            ] {
                for _ in 0..count {
                    let deadline = splitmix(&mut state).is_multiple_of(2).then(|| {
                        base + Duration::from_micros(1 + splitmix(&mut state) % 50_000)
                    });
                    let (job, _rx) = testkit::job(id, class, probe_request(), base, deadline);
                    assert!(matches!(q.push(job), Admission::Admitted));
                    id += 1;
                }
            }
            let mut counts = [0i64; 4];
            let mut served = 0u64;
            while served < PICKS {
                let want = (1 + splitmix(&mut state) % 64).min(PICKS - served) as usize;
                let batch = q.pop_batch(want).unwrap();
                assert_eq!(batch.len(), want, "a saturated queue fills every batch");
                for job in &batch {
                    counts[job.class().index()] += 1;
                }
                served += want as u64;
            }
            for (class, (&count, &target)) in
                QosClass::ALL.iter().zip(counts.iter().zip(&targets))
            {
                assert!(
                    (count - target).abs() <= 64,
                    "mode {mode:?} seed {seed}: {class} served {count}, target {target}"
                );
            }
        }
    }
}

/// 5f. DYNAMIC_PRIORITY property: with MEDIUM and LOW lane heads
///     *permanently* urgent (tight deadlines against a 1 s margin),
///     boosts let them outrank the fixed class order — but the promotion
///     token budget still bounds the bypass. Over seeded saturating
///     traces CRITICAL keeps at least its documented
///     weight / (Σ weights + tokens) floor of every pick stream, and the
///     urgent classes keep at least their own credit share of the
///     token-extended round. Under FIFO ordering urgency vanishes and
///     the same bounds hold as plain WRR shares.
#[test]
fn dynamic_priority_preserves_the_critical_floor_on_saturating_traces() {
    const PICKS: u64 = 1_700; // 100 rounds of 15 credits + 2 tokens
    for mode in [SchedMode::Edf, SchedMode::Fifo] {
        for seed in 0..4u64 {
            let mut state = seed ^ 0xD1A0;
            let q = sched_queue_arbiter(8_192, mode, ArbiterMode::DynamicPriority);
            let base = Instant::now();
            let mut id = 0u64;
            for (class, count, urgent) in [
                (QosClass::Critical, 1_000u64, false),
                (QosClass::High, 700, false),
                (QosClass::Medium, 500, true),
                (QosClass::Low, 400, true),
            ] {
                for _ in 0..count {
                    let deadline = urgent.then(|| base + Duration::from_micros(1));
                    let (job, _rx) = testkit::job(id, class, probe_request(), base, deadline);
                    assert!(matches!(q.push(job), Admission::Admitted));
                    id += 1;
                }
            }
            let mut counts = [0u64; 4];
            let mut served = 0u64;
            while served < PICKS {
                let want = (1 + splitmix(&mut state) % 32).min(PICKS - served) as usize;
                let batch = q.pop_batch(want).unwrap();
                assert_eq!(batch.len(), want, "a saturated queue fills every batch");
                for job in &batch {
                    counts[job.class().index()] += 1;
                }
                served += want as u64;
            }
            // Anti-starvation floor: 8 of every (15 credits + 2 tokens).
            assert!(
                counts[QosClass::Critical.index()] * 17 >= PICKS * 8,
                "mode {mode:?} seed {seed}: CRITICAL starved, counts {counts:?}"
            );
            // The urgent classes keep at least their 3-credit share of the
            // token-extended round (boosts and tokens only ever add).
            assert!(
                (counts[QosClass::Medium.index()] + counts[QosClass::Low.index()]) * 17
                    >= PICKS * 3,
                "mode {mode:?} seed {seed}: urgent classes lost share, counts {counts:?}"
            );
        }
    }
}

/// 5d. Per-request deadlines flow end to end: an already-expired
///     sheddable deadline is shed at dispatch; CRITICAL with the same
///     expired deadline is *served* (never shed) and accounted as a
///     missed deadline.
#[test]
fn explicit_deadlines_shed_sheddable_but_never_critical() {
    let case_base = paper::table1_case_base();
    let service = AllocationService::new(&case_base, &ServiceConfig::default()).expect("valid service config");
    let expired = Duration::ZERO;

    let low = service
        .submit_with_deadline(paper::table1_request().unwrap(), QosClass::Low, expired)
        .wait()
        .unwrap();
    assert_eq!(low.outcome, Outcome::ShedDeadline);

    let critical = service
        .submit_with_deadline(paper::table1_request().unwrap(), QosClass::Critical, expired)
        .wait()
        .unwrap();
    assert!(
        matches!(critical.outcome, Outcome::Allocated { .. }),
        "CRITICAL is served even when late, got {:?}",
        critical.outcome
    );

    let snap = service.shutdown();
    assert_eq!(snap.class(QosClass::Low).shed_deadline, 1);
    assert_eq!(snap.class(QosClass::Critical).shed(), 0);
    assert_eq!(snap.class(QosClass::Critical).missed_deadline, 1);
}

/// 4. Durable shard recovery equivalence: run a durable service, apply K
///    mutations through it (some shards auto-checkpoint, some keep WAL
///    records), kill it without a final checkpoint, recover from the
///    on-disk WALs — and every retrieval of the recovered service must
///    match an unkilled single-engine oracle that applied the same K
///    mutations in memory, bit for bit.
#[test]
fn killed_durable_shards_recover_equivalent_to_unkilled_oracle() {
    let case_base = CaseGen::new(9, 5, 4, 6).seed(0xD00D).value_span(250).build();
    let dir = std::env::temp_dir().join(format!(
        "rqfa-shard-recovery-{}-{:x}",
        std::process::id(),
        0xD00Du32
    ));
    let _ = std::fs::remove_dir_all(&dir);
    // snapshot_every=4 makes some shards checkpoint mid-run while others
    // still carry WAL records at kill time — both recovery paths in one run.
    let config = ServiceConfig::default().with_shards(3).with_snapshot_every(4);

    let service =
        AllocationService::durable_create(&case_base, &dir, &config).expect("durable create");
    let mut oracle = case_base.clone();

    // K deterministic mutations: fresh retains across all types, plus a
    // revise and an evict, routed through the service (and mirrored into
    // the in-memory oracle).
    let mut mutations: Vec<CaseMutation> = Vec::new();
    for (i, ty) in case_base.function_types().iter().enumerate() {
        let attr = AttrId::new(1 + (i as u16 % 6)).unwrap();
        let entry = case_base.bounds().entry(attr).unwrap();
        mutations.push(CaseMutation::Retain {
            type_id: ty.id(),
            variant: ImplVariant::new(
                ImplId::new(900 + i as u16).unwrap(),
                ExecutionTarget::Fpga,
                vec![AttrBinding::new(attr, entry.lower)],
            )
            .unwrap(),
        });
    }
    let first = &case_base.function_types()[0];
    mutations.push(CaseMutation::Revise {
        type_id: first.id(),
        variant: {
            let old = &first.variants()[0];
            let mut attrs = old.attrs().to_vec();
            let entry = case_base.bounds().entry(attrs[0].attr).unwrap();
            attrs[0] = AttrBinding::new(attrs[0].attr, entry.upper);
            ImplVariant::new(old.id(), old.target(), attrs).unwrap()
        },
    });
    mutations.push(CaseMutation::Evict {
        type_id: first.id(),
        impl_id: first.variants()[1].id(),
    });

    for mutation in &mutations {
        service.apply_mutation(mutation).expect("service applies");
        oracle.apply_mutation(mutation).expect("oracle applies");
    }

    // Serve (and cache) some traffic, then KILL: drop without checkpoint.
    let warmup = RequestGen::new(&case_base).seed(0x11).count(50).generate();
    for request in &warmup {
        let _ = service.submit(request.clone(), QosClass::Medium).wait();
    }
    drop(service);

    // Recover from disk. Shard count comes from the manifest.
    let (recovered, reports) =
        AllocationService::durable_recover(&dir, &config).expect("durable recover");
    assert_eq!(recovered.shard_count(), 3);
    let replayed: usize = reports.iter().flatten().map(|r| r.replayed).sum();
    let skipped: usize = reports.iter().flatten().map(|r| r.skipped_older).sum();
    assert_eq!(skipped, 0, "clean checkpoints leave no pre-snapshot records");
    assert!(
        replayed < mutations.len(),
        "snapshot_every=4 must have checkpointed at least one shard \
         (replayed {replayed} of {})",
        mutations.len()
    );

    // Every retrieval of the recovered service matches the single-engine
    // oracle bit for bit — including requests that hit mutated variants.
    let engine = FixedEngine::new();
    let requests = RequestGen::new(&case_base).seed(0x22).count(300).generate();
    let tickets: Vec<Ticket> = requests
        .iter()
        .map(|r| recovered.submit(r.clone(), QosClass::High))
        .collect();
    for (request, ticket) in requests.iter().zip(tickets) {
        let reply = ticket.wait().expect("recovered service answers");
        let expected = engine
            .retrieve(&oracle, request)
            .expect("oracle accepts generated requests")
            .best
            .expect("non-empty case base");
        match reply.outcome {
            Outcome::Allocated { best, .. } => {
                assert_eq!(best.impl_id, expected.impl_id, "winner differs for {request}");
                assert_eq!(
                    best.similarity, expected.similarity,
                    "similarity bits differ for {request}"
                );
                assert_eq!(best.target, expected.target, "target differs for {request}");
            }
            other => panic!("unexpected outcome {other:?}"),
        }
    }
    recovered.shutdown();
    std::fs::remove_dir_all(&dir).expect("cleanup");
}

/// 4b. Recovery is idempotent: recovering twice (second time after more
///     mutations + kill) keeps answering like the oracle.
#[test]
fn repeated_kill_recover_cycles_stay_equivalent() {
    let case_base = CaseGen::new(5, 4, 3, 5).seed(0xAB).build();
    let dir = std::env::temp_dir().join(format!(
        "rqfa-shard-recovery-cycles-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let config = ServiceConfig::default().with_shards(2).with_snapshot_every(0);

    let mut oracle = case_base.clone();
    let service =
        AllocationService::durable_create(&case_base, &dir, &config).expect("create");
    let engine = FixedEngine::new();
    let requests = RequestGen::new(&case_base).seed(0x33).count(100).generate();

    let mut service = service;
    for round in 0..3u16 {
        // One fresh retain per round, through the live service.
        let ty = &case_base.function_types()[usize::from(round) % case_base.type_count()];
        let attr = AttrId::new(1).unwrap();
        let entry = case_base.bounds().entry(attr).unwrap();
        let mutation = CaseMutation::Retain {
            type_id: ty.id(),
            variant: ImplVariant::new(
                ImplId::new(700 + round).unwrap(),
                ExecutionTarget::Dsp,
                vec![AttrBinding::new(attr, entry.upper)],
            )
            .unwrap(),
        };
        service.apply_mutation(&mutation).expect("apply");
        oracle.apply_mutation(&mutation).expect("oracle");

        // Kill + recover.
        drop(service);
        let (next, _) = AllocationService::durable_recover(&dir, &config).expect("recover");
        service = next;

        for request in &requests {
            let reply = service
                .submit(request.clone(), QosClass::Medium)
                .wait()
                .expect("answered");
            let expected = engine.retrieve(&oracle, request).unwrap().best.unwrap();
            match reply.outcome {
                Outcome::Allocated { best, .. } => {
                    assert_eq!(
                        (best.impl_id, best.similarity),
                        (expected.impl_id, expected.similarity),
                        "round {round}: {request}"
                    );
                }
                other => panic!("round {round}: unexpected outcome {other:?}"),
            }
        }
    }
    service.shutdown();
    std::fs::remove_dir_all(&dir).expect("cleanup");
}

/// 5. Cache metrics invariants, end to end and per eviction policy (see
///    `docs/caching.md`): every dispatched request probes the shard cache
///    exactly once, so after a drained shutdown
///    `cache_hits + cache_misses == completed + failed` holds per class;
///    stale detections are a subset of misses (a stale result is *never*
///    served); and the per-class hit counters agree with the `cached`
///    flags observed on the replies themselves.
#[test]
fn cache_metrics_invariants_hold_end_to_end_for_every_policy() {
    use rqfa::service::CachePolicy;

    let case_base = CaseGen::new(9, 6, 5, 8).seed(0x77).build();
    let requests = RequestGen::new(&case_base)
        .seed(0x99)
        .count(300)
        .repeat_fraction(0.5)
        .generate();
    for policy in CachePolicy::ALL {
        for admission in [false, true] {
            let label = format!("policy={policy} admission={admission}");
            let service = AllocationService::new(
                &case_base,
                &ServiceConfig::default()
                    .with_shards(3)
                    .with_cache_capacity(64)
                    .with_cache_policy(policy)
                    .with_cache_admission(admission),
            ).expect("valid service config");
            let mut cached_replies = [0u64; 4];
            let classes = [
                QosClass::Critical,
                QosClass::High,
                QosClass::Medium,
                QosClass::Low,
            ];
            let mut replay = |service: &AllocationService| {
                let tickets: Vec<Ticket> = requests
                    .iter()
                    .enumerate()
                    .map(|(i, r)| service.submit(r.clone(), classes[i % classes.len()]))
                    .collect();
                for ticket in tickets {
                    let reply = ticket.wait().expect("answered");
                    if let Outcome::Allocated { cached: true, .. } = reply.outcome {
                        cached_replies[reply.class.index()] += 1;
                    }
                }
            };
            // Phase 1 populates the caches; the mutations bump every
            // shard's generation; phase 2 turns the resident entries into
            // stale detections.
            replay(&service);
            for ty in case_base.function_types() {
                service
                    .evict_variant(ty.id(), ty.variants()[0].id())
                    .expect("evict");
            }
            replay(&service);
            let snap = service.shutdown();
            let mut total_stale = 0;
            for class in QosClass::ALL {
                let c = snap.class(class);
                assert_eq!(
                    c.cache_hits + c.cache_misses,
                    c.completed + c.failed,
                    "{label} {class}: every dispatched request probes once"
                );
                assert_eq!(c.cache_lookups(), c.cache_hits + c.cache_misses, "{label}");
                assert!(
                    c.cache_stale <= c.cache_misses,
                    "{label} {class}: stale must be counted as misses"
                );
                assert_eq!(
                    c.cache_hits,
                    cached_replies[class.index()],
                    "{label} {class}: metrics disagree with observed replies"
                );
                assert_eq!(c.failed, 0, "{label} {class}");
                assert_eq!(c.completed + c.shed(), c.submitted, "{label} {class}");
            }
            for class in QosClass::ALL {
                total_stale += snap.class(class).cache_stale;
            }
            assert!(
                total_stale > 0,
                "{label}: the mutation must surface as stale detections"
            );
        }
    }
}

/// 6. Within-batch duplicate coalescing (`docs/retrieval.md`): identical
///    fingerprints inside one dispatch batch are scored **once** — the
///    first miss is the leader (one engine evaluation, one cache miss),
///    every later duplicate is served a copy of the leader's result and
///    counted as a cache hit with the `cached` reply flag set. Driven
///    through the synchronous `BatchHarness`, so batch composition — and
///    therefore every counter — is exact, not timing-dependent.
#[test]
fn within_batch_duplicates_coalesce_to_one_evaluation() {
    let case_base = paper::table1_case_base();
    let mut harness = testkit::BatchHarness::new(&case_base, &ServiceConfig::default());
    let fir = paper::table1_request().unwrap();
    let fft = Request::builder(paper::FFT_1D)
        .constraint(AttrId::new(1).unwrap(), 16)
        .build()
        .unwrap();
    let pattern = [&fir, &fft, &fir, &fir, &fft, &fir];
    let now = Instant::now();
    let mut jobs = Vec::new();
    let mut receivers = Vec::new();
    for (i, request) in pattern.iter().enumerate() {
        let (job, rx) = testkit::job(i as u64, QosClass::Medium, (*request).clone(), now, None);
        jobs.push(job);
        receivers.push(rx);
    }
    harness.run_batch(jobs);

    let class = harness.metrics();
    let class = class.class(QosClass::Medium);
    assert_eq!(class.cache_misses, 2, "one miss per distinct fingerprint");
    assert_eq!(class.cache_hits, 4, "every coalesced duplicate is a hit");
    assert_eq!(class.completed, 6);
    assert_eq!(
        harness.cache_stats().insertions,
        2,
        "only leaders insert into the cache"
    );

    // Replies: bit-identical to a direct engine run; `cached` flags mark
    // exactly the coalesced duplicates (leaders first per fingerprint).
    let engine = FixedEngine::new();
    let mut cached_flags = Vec::new();
    for (rx, request) in receivers.iter().zip(pattern) {
        let reply = rx.try_recv().expect("batch replies synchronously");
        match reply.outcome {
            Outcome::Allocated {
                best,
                evaluated,
                cached,
            } => {
                let expected = engine.retrieve(&case_base, request).unwrap();
                assert_eq!(Some(best), expected.best, "reply bits must match");
                assert_eq!(evaluated, expected.evaluated);
                cached_flags.push(cached);
            }
            other => panic!("unexpected outcome: {other:?}"),
        }
    }
    assert_eq!(cached_flags, [false, false, true, true, true, true]);

    // A later batch of the same requests is served from the cache: no
    // new evaluation, no new insertions.
    let (job, rx) = testkit::job(9, QosClass::Medium, fir.clone(), Instant::now(), None);
    harness.run_batch(vec![job]);
    match rx.try_recv().expect("replied").outcome {
        Outcome::Allocated { cached, .. } => assert!(cached, "resident entry hits"),
        other => panic!("unexpected outcome: {other:?}"),
    }
    assert_eq!(harness.cache_stats().insertions, 2);
}

/// 6b. Coalescing × admission: the coalesced repeats count as sightings,
///     so a duplicate-heavy fingerprint earns cache residence from its
///     very first batch, while a one-hit wonder is still bounced.
#[test]
fn coalesced_repeats_earn_cache_admission() {
    let case_base = paper::table1_case_base();
    let config = ServiceConfig::default().with_cache_admission(true);
    let mut harness = testkit::BatchHarness::new(&case_base, &config);
    let fir = paper::table1_request().unwrap();
    let fft = Request::builder(paper::FFT_1D)
        .constraint(AttrId::new(1).unwrap(), 16)
        .build()
        .unwrap();
    // One batch: fir three times (duplicate-heavy), fft once (singleton).
    let now = Instant::now();
    let mut jobs = Vec::new();
    let mut receivers = Vec::new();
    for (i, request) in [&fir, &fft, &fir, &fir].iter().enumerate() {
        let (job, rx) = testkit::job(i as u64, QosClass::High, (*request).clone(), now, None);
        jobs.push(job);
        receivers.push(rx);
    }
    harness.run_batch(jobs);
    assert_eq!(
        harness.cache_len(),
        1,
        "repeated fingerprint is admitted, the singleton is bounced"
    );
    assert_eq!(harness.cache_stats().rejected, 1, "fft bounced once");
    // The resident entry serves the next batch.
    let (job, rx) = testkit::job(9, QosClass::High, fir.clone(), Instant::now(), None);
    harness.run_batch(vec![job]);
    match rx.try_recv().expect("replied").outcome {
        Outcome::Allocated { cached, .. } => assert!(cached),
        other => panic!("unexpected outcome: {other:?}"),
    }
    drop(receivers);
}

/// 6c. Coalescing after a mutation: the leader takes the stale detection,
///     the plane engine recompiles once, and followers receive the
///     *post-mutation* result — a coalesced reply can never resurrect a
///     stale cached answer.
#[test]
fn coalescing_respects_generation_invalidation() {
    let case_base = paper::table1_case_base();
    let mut harness = testkit::BatchHarness::new(&case_base, &ServiceConfig::default());
    let fir = paper::table1_request().unwrap();
    let now = Instant::now();
    let (job, rx) = testkit::job(0, QosClass::Medium, fir.clone(), now, None);
    harness.run_batch(vec![job]);
    assert!(rx.try_recv().is_ok());
    assert_eq!(harness.engine_recompiles(), 1);

    // Mutate: the generation moves, cache entry + plane both go stale.
    harness
        .apply(&CaseMutation::Evict {
            type_id: paper::FIR_EQUALIZER,
            impl_id: paper::IMPL_GP,
        })
        .expect("evict applies");

    let mut jobs = Vec::new();
    let mut receivers = Vec::new();
    for i in 0..3 {
        let (job, rx) = testkit::job(1 + i, QosClass::Medium, fir.clone(), Instant::now(), None);
        jobs.push(job);
        receivers.push(rx);
    }
    harness.run_batch(jobs);
    assert_eq!(harness.engine_recompiles(), 2, "one recompile per generation");
    let snap = harness.metrics();
    let class = snap.class(QosClass::Medium);
    assert_eq!(class.cache_stale, 1, "only the leader detects the stale entry");
    assert_eq!(class.cache_misses, 2, "first batch + post-mutation leader");
    assert_eq!(class.cache_hits, 2, "followers of the post-mutation leader");
    for rx in &receivers {
        match rx.try_recv().expect("replied").outcome {
            Outcome::Allocated { best, evaluated, .. } => {
                assert_eq!(evaluated, 2, "post-mutation case base has 2 variants");
                assert_ne!(best.impl_id, paper::IMPL_GP, "evicted variant cannot win");
            }
            other => panic!("unexpected outcome: {other:?}"),
        }
    }
}

/// 6d. A failed leader fails its followers identically, and the per-class
///     cache counters keep summing to the served total (the invariant of
///     §5 above) even on the error path.
#[test]
fn failed_leader_fans_failure_to_followers() {
    let case_base = paper::table1_case_base();
    let mut harness = testkit::BatchHarness::new(&case_base, &ServiceConfig::default());
    let unknown = Request::builder(rqfa::core::TypeId::new(57).unwrap())
        .constraint(AttrId::new(1).unwrap(), 1)
        .build()
        .unwrap();
    let now = Instant::now();
    let mut jobs = Vec::new();
    let mut receivers = Vec::new();
    for i in 0..3 {
        let (job, rx) = testkit::job(i, QosClass::Low, unknown.clone(), now, None);
        jobs.push(job);
        receivers.push(rx);
    }
    harness.run_batch(jobs);
    for rx in &receivers {
        match rx.try_recv().expect("replied").outcome {
            Outcome::Failed(rqfa::core::CoreError::UnknownType { type_id }) => {
                assert_eq!(type_id.raw(), 57);
            }
            other => panic!("unexpected outcome: {other:?}"),
        }
    }
    let snap = harness.metrics();
    let class = snap.class(QosClass::Low);
    assert_eq!(class.failed, 3);
    assert_eq!(class.cache_hits, 0, "a failure is never a hit");
    assert_eq!(
        class.cache_hits + class.cache_misses,
        class.completed + class.failed,
        "probe accounting holds on the error path"
    );
}

/// 6e. Live end-to-end: a duplicate-heavy closed loop through real worker
///     threads with the result cache **disabled** — every `cached` reply
///     flag and every counted hit can only come from within-batch
///     coalescing. Batch composition is timing-dependent, so the test
///     asserts consistency (flags == counters, bits == engine), not exact
///     counts.
#[test]
fn live_coalescing_keeps_replies_and_metrics_consistent() {
    let case_base = CaseGen::new(5, 6, 5, 8).seed(0xC0A1).build();
    let pool = RequestGen::new(&case_base)
        .seed(0xC0A2)
        .count(8) // tiny pool → duplicate-heavy stream
        .repeat_fraction(0.0)
        .generate();
    let service = AllocationService::new(
        &case_base,
        &ServiceConfig::default()
            .with_shards(2)
            .with_cache_capacity(0) // hits can only come from coalescing
            .with_queue_capacity(5_000),
    ).expect("valid service config");
    let engine = FixedEngine::new();
    let tickets: Vec<(usize, Ticket)> = (0..2_000)
        .map(|i| (i % pool.len(), service.submit(pool[i % pool.len()].clone(), QosClass::Medium)))
        .collect();
    let mut flagged = 0u64;
    for (slot, ticket) in tickets {
        let reply = ticket.wait().expect("answered");
        match reply.outcome {
            Outcome::Allocated { best, cached, .. } => {
                let expected = engine.retrieve(&case_base, &pool[slot]).unwrap();
                assert_eq!(Some(best), expected.best, "coalesced bits must match");
                flagged += u64::from(cached);
            }
            other => panic!("unexpected outcome: {other:?}"),
        }
    }
    let snap = service.shutdown();
    let class = snap.class(QosClass::Medium);
    assert_eq!(class.completed, 2_000);
    assert_eq!(class.cache_hits, flagged, "counters agree with reply flags");
    assert_eq!(
        class.cache_hits + class.cache_misses,
        class.completed + class.failed
    );
}
