//! Experiment E13: the allocation service must scale *without changing any
//! answer*. Three workspace-level properties:
//!
//! 1. **Ranking equivalence** — sharded + batched + cached retrieval
//!    returns exactly what a single `FixedEngine` over the merged case
//!    base returns, for every request of a generated workload.
//! 2. **Cache coherence** — repeating a request hits the cache; a retain
//!    mutation invalidates it and the next answer reflects the new
//!    variant.
//! 3. **QoS protection** — under deliberate overload with a tiny queue,
//!    CRITICAL requests are never shed while LOW traffic is.

use rqfa::core::{
    paper, AttrBinding, AttrId, CaseMutation, ExecutionTarget, FixedEngine, ImplId, ImplVariant,
    QosClass,
};
use rqfa::service::{AllocationService, Outcome, Reply, ServiceConfig, Ticket};
use rqfa::workloads::{CaseGen, RequestGen};

/// 1a. Every shard count answers exactly like the single engine, request
/// by request, including similarity bit patterns.
#[test]
fn sharded_retrieval_matches_single_engine() {
    let case_base = CaseGen::new(13, 8, 6, 9).seed(0xA11C).value_span(300).build();
    let requests = RequestGen::new(&case_base)
        .seed(0x51AB)
        .count(200)
        .repeat_fraction(0.4) // exercise the cache path too
        .generate();
    let engine = FixedEngine::new();

    for shards in [1usize, 2, 4] {
        let service = AllocationService::new(
            &case_base,
            &ServiceConfig::default().with_shards(shards),
        );
        let tickets: Vec<Ticket> = requests
            .iter()
            .map(|r| service.submit(r.clone(), QosClass::Medium))
            .collect();
        for (request, ticket) in requests.iter().zip(tickets) {
            let reply = ticket.wait().expect("service answers before shutdown");
            let expected = engine
                .retrieve(&case_base, request)
                .expect("generated request is valid")
                .best
                .expect("validated case base always has a best");
            match reply.outcome {
                Outcome::Allocated { best, .. } => {
                    assert_eq!(
                        best.impl_id, expected.impl_id,
                        "{shards} shard(s): winner differs for {request}"
                    );
                    assert_eq!(
                        best.similarity, expected.similarity,
                        "{shards} shard(s): similarity bits differ for {request}"
                    );
                }
                other => panic!("{shards} shard(s): unexpected outcome {other:?}"),
            }
        }
        let snap = service.shutdown();
        assert_eq!(snap.class(QosClass::Medium).completed, requests.len() as u64);
        assert_eq!(snap.shed(), 0, "no shedding in an underloaded run");
    }
}

/// 1b. A batch spanning every shard completes fully even when some types
/// route to one shard and the rest to others.
#[test]
fn cross_shard_round_robin_workload_completes() {
    let case_base = CaseGen::new(8, 4, 4, 6).seed(3).build();
    let service =
        AllocationService::new(&case_base, &ServiceConfig::default().with_shards(4));
    let requests = RequestGen::new(&case_base).seed(9).count(100).generate();
    let tickets: Vec<Ticket> = requests
        .into_iter()
        .map(|r| service.submit(r, QosClass::High))
        .collect();
    let mut answered = 0;
    for ticket in tickets {
        assert!(matches!(
            ticket.wait().expect("answered").outcome,
            Outcome::Allocated { .. }
        ));
        answered += 1;
    }
    assert_eq!(answered, 100);
    service.shutdown();
}

/// 2. Cache hits on repetition; retain-invalidation changes the answer.
#[test]
fn cache_invalidation_on_case_insertion() {
    let case_base = paper::table1_case_base();
    let service = AllocationService::new(&case_base, &ServiceConfig::default());
    let request = paper::table1_request().unwrap();

    let allocated = |reply: Reply| match reply.outcome {
        Outcome::Allocated { best, cached, .. } => (best, cached),
        other => panic!("unexpected outcome {other:?}"),
    };

    // Miss, then hit, answering identically (Table 1: the DSP wins).
    let (first, cached) = allocated(service.submit(request.clone(), QosClass::High).wait().unwrap());
    assert!(!cached);
    assert_eq!(first.impl_id, paper::IMPL_DSP);
    let (second, cached) = allocated(service.submit(request.clone(), QosClass::High).wait().unwrap());
    assert!(cached, "identical repeat must come from the cache");
    assert_eq!(second, first);

    // Retain a variant matching the request exactly: similarity 1.0.
    let perfect = ImplVariant::new(
        ImplId::new(9).unwrap(),
        ExecutionTarget::Fpga,
        vec![
            AttrBinding::new(paper::ATTR_BITWIDTH, 16),
            AttrBinding::new(paper::ATTR_OUTPUT, 1),
            AttrBinding::new(paper::ATTR_RATE, 40),
        ],
    )
    .unwrap();
    service
        .retain_variant(paper::FIR_EQUALIZER, perfect)
        .unwrap();

    // The stale cached answer must NOT be served: recomputed, new winner.
    let (third, cached) = allocated(service.submit(request, QosClass::High).wait().unwrap());
    assert!(!cached, "mutation must invalidate the cached result");
    assert_eq!(third.impl_id.raw(), 9, "the retained perfect match wins");
    assert!(third.similarity > first.similarity);

    let snap = service.shutdown();
    assert_eq!(snap.class(QosClass::High).cache_hits, 1);
    assert_eq!(snap.class(QosClass::High).completed, 3);
}

/// 3. CRITICAL is never shed, even with a 4-slot queue under a flood of
///    LOW traffic with a 1 µs deadline budget.
#[test]
fn critical_survives_overload_that_sheds_low() {
    let case_base = CaseGen::new(6, 32, 8, 10).seed(77).build();
    let config = ServiceConfig::default()
        .with_shards(2)
        .with_queue_capacity(4)
        .with_batch_size(4)
        .with_cache_capacity(0) // keep the workers honest (no shortcut)
        .with_deadline_budget_us(QosClass::Low, 1);
    let service = AllocationService::new(&case_base, &config);
    let requests = RequestGen::new(&case_base)
        .seed(5)
        .count(2_000)
        .repeat_fraction(0.0)
        .generate();

    let mut critical_tickets = Vec::new();
    for (i, request) in requests.iter().enumerate() {
        if i % 10 == 0 {
            critical_tickets.push(service.submit(request.clone(), QosClass::Critical));
        } else {
            // Fire-and-forget flood; replies collected via metrics.
            let _ = service.submit(request.clone(), QosClass::Low);
        }
    }

    for ticket in critical_tickets {
        let reply = ticket.wait().expect("critical must always be answered");
        assert!(
            matches!(reply.outcome, Outcome::Allocated { .. }),
            "CRITICAL must never be shed, got {:?}",
            reply.outcome
        );
    }

    let snap = service.shutdown();
    let critical = snap.class(QosClass::Critical);
    assert_eq!(critical.shed(), 0, "no shed path may touch CRITICAL");
    assert_eq!(critical.completed, critical.submitted);
    let low = snap.class(QosClass::Low);
    assert!(
        low.shed() > 0,
        "a 4-slot queue under a 1800-request flood must shed LOW \
         (shed {} of {})",
        low.shed(),
        low.submitted
    );
    // Accounting closes: every LOW request either completed, was shed, or
    // failed — nothing vanishes.
    assert_eq!(low.completed + low.shed() + low.failed, low.submitted);
}

/// 4. Durable shard recovery equivalence: run a durable service, apply K
///    mutations through it (some shards auto-checkpoint, some keep WAL
///    records), kill it without a final checkpoint, recover from the
///    on-disk WALs — and every retrieval of the recovered service must
///    match an unkilled single-engine oracle that applied the same K
///    mutations in memory, bit for bit.
#[test]
fn killed_durable_shards_recover_equivalent_to_unkilled_oracle() {
    let case_base = CaseGen::new(9, 5, 4, 6).seed(0xD00D).value_span(250).build();
    let dir = std::env::temp_dir().join(format!(
        "rqfa-shard-recovery-{}-{:x}",
        std::process::id(),
        0xD00Du32
    ));
    let _ = std::fs::remove_dir_all(&dir);
    // snapshot_every=4 makes some shards checkpoint mid-run while others
    // still carry WAL records at kill time — both recovery paths in one run.
    let config = ServiceConfig::default().with_shards(3).with_snapshot_every(4);

    let service =
        AllocationService::durable_create(&case_base, &dir, &config).expect("durable create");
    let mut oracle = case_base.clone();

    // K deterministic mutations: fresh retains across all types, plus a
    // revise and an evict, routed through the service (and mirrored into
    // the in-memory oracle).
    let mut mutations: Vec<CaseMutation> = Vec::new();
    for (i, ty) in case_base.function_types().iter().enumerate() {
        let attr = AttrId::new(1 + (i as u16 % 6)).unwrap();
        let entry = case_base.bounds().entry(attr).unwrap();
        mutations.push(CaseMutation::Retain {
            type_id: ty.id(),
            variant: ImplVariant::new(
                ImplId::new(900 + i as u16).unwrap(),
                ExecutionTarget::Fpga,
                vec![AttrBinding::new(attr, entry.lower)],
            )
            .unwrap(),
        });
    }
    let first = &case_base.function_types()[0];
    mutations.push(CaseMutation::Revise {
        type_id: first.id(),
        variant: {
            let old = &first.variants()[0];
            let mut attrs = old.attrs().to_vec();
            let entry = case_base.bounds().entry(attrs[0].attr).unwrap();
            attrs[0] = AttrBinding::new(attrs[0].attr, entry.upper);
            ImplVariant::new(old.id(), old.target(), attrs).unwrap()
        },
    });
    mutations.push(CaseMutation::Evict {
        type_id: first.id(),
        impl_id: first.variants()[1].id(),
    });

    for mutation in &mutations {
        service.apply_mutation(mutation).expect("service applies");
        oracle.apply_mutation(mutation).expect("oracle applies");
    }

    // Serve (and cache) some traffic, then KILL: drop without checkpoint.
    let warmup = RequestGen::new(&case_base).seed(0x11).count(50).generate();
    for request in &warmup {
        let _ = service.submit(request.clone(), QosClass::Medium).wait();
    }
    drop(service);

    // Recover from disk. Shard count comes from the manifest.
    let (recovered, reports) =
        AllocationService::durable_recover(&dir, &config).expect("durable recover");
    assert_eq!(recovered.shard_count(), 3);
    let replayed: usize = reports.iter().flatten().map(|r| r.replayed).sum();
    let skipped: usize = reports.iter().flatten().map(|r| r.skipped_older).sum();
    assert_eq!(skipped, 0, "clean checkpoints leave no pre-snapshot records");
    assert!(
        replayed < mutations.len(),
        "snapshot_every=4 must have checkpointed at least one shard \
         (replayed {replayed} of {})",
        mutations.len()
    );

    // Every retrieval of the recovered service matches the single-engine
    // oracle bit for bit — including requests that hit mutated variants.
    let engine = FixedEngine::new();
    let requests = RequestGen::new(&case_base).seed(0x22).count(300).generate();
    let tickets: Vec<Ticket> = requests
        .iter()
        .map(|r| recovered.submit(r.clone(), QosClass::High))
        .collect();
    for (request, ticket) in requests.iter().zip(tickets) {
        let reply = ticket.wait().expect("recovered service answers");
        let expected = engine
            .retrieve(&oracle, request)
            .expect("oracle accepts generated requests")
            .best
            .expect("non-empty case base");
        match reply.outcome {
            Outcome::Allocated { best, .. } => {
                assert_eq!(best.impl_id, expected.impl_id, "winner differs for {request}");
                assert_eq!(
                    best.similarity, expected.similarity,
                    "similarity bits differ for {request}"
                );
                assert_eq!(best.target, expected.target, "target differs for {request}");
            }
            other => panic!("unexpected outcome {other:?}"),
        }
    }
    recovered.shutdown();
    std::fs::remove_dir_all(&dir).expect("cleanup");
}

/// 4b. Recovery is idempotent: recovering twice (second time after more
///     mutations + kill) keeps answering like the oracle.
#[test]
fn repeated_kill_recover_cycles_stay_equivalent() {
    let case_base = CaseGen::new(5, 4, 3, 5).seed(0xAB).build();
    let dir = std::env::temp_dir().join(format!(
        "rqfa-shard-recovery-cycles-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let config = ServiceConfig::default().with_shards(2).with_snapshot_every(0);

    let mut oracle = case_base.clone();
    let service =
        AllocationService::durable_create(&case_base, &dir, &config).expect("create");
    let engine = FixedEngine::new();
    let requests = RequestGen::new(&case_base).seed(0x33).count(100).generate();

    let mut service = service;
    for round in 0..3u16 {
        // One fresh retain per round, through the live service.
        let ty = &case_base.function_types()[usize::from(round) % case_base.type_count()];
        let attr = AttrId::new(1).unwrap();
        let entry = case_base.bounds().entry(attr).unwrap();
        let mutation = CaseMutation::Retain {
            type_id: ty.id(),
            variant: ImplVariant::new(
                ImplId::new(700 + round).unwrap(),
                ExecutionTarget::Dsp,
                vec![AttrBinding::new(attr, entry.upper)],
            )
            .unwrap(),
        };
        service.apply_mutation(&mutation).expect("apply");
        oracle.apply_mutation(&mutation).expect("oracle");

        // Kill + recover.
        drop(service);
        let (next, _) = AllocationService::durable_recover(&dir, &config).expect("recover");
        service = next;

        for request in &requests {
            let reply = service
                .submit(request.clone(), QosClass::Medium)
                .wait()
                .expect("answered");
            let expected = engine.retrieve(&oracle, request).unwrap().best.unwrap();
            match reply.outcome {
                Outcome::Allocated { best, .. } => {
                    assert_eq!(
                        (best.impl_id, best.similarity),
                        (expected.impl_id, expected.similarity),
                        "round {round}: {request}"
                    );
                }
                other => panic!("round {round}: unexpected outcome {other:?}"),
            }
        }
    }
    service.shutdown();
    std::fs::remove_dir_all(&dir).expect("cleanup");
}
