//! Experiment E11: the fig. 1 narrative end-to-end — application mix on a
//! multi-device platform through the allocation manager, with negotiation,
//! preemption, bypass tokens and relaxed retries.

use rqfa::rsoc::{
    AllocPolicy, AppId, ArrivalSpec, Device, DeviceId, SimTime, SystemBuilder, TaskState,
};
use rqfa::workloads::{fig1_mix, CaseGen, RequestGen};

fn submit_all(system: &mut rqfa::rsoc::System, scenario: &rqfa::workloads::Fig1Scenario) {
    for a in &scenario.arrivals {
        system.submit(
            SimTime::from_us(a.at_us),
            ArrivalSpec {
                app: AppId(a.app),
                request: a.request.clone(),
                priority: a.priority,
                duration_us: a.duration_us,
                relaxed: a.relaxed.clone(),
            },
        );
    }
}

#[test]
fn fig1_mix_runs_with_high_acceptance() {
    let scenario = fig1_mix(8, 11);
    let mut system = SystemBuilder::new(scenario.case_base.clone())
        .device(Device::fpga(DeviceId(0), "fpga0", 3200, 150))
        .device(Device::dsp(DeviceId(1), "dsp0", 1000, 90))
        .device(Device::cpu(DeviceId(2), "cpu0", 1000, 200))
        .build()
        .unwrap();
    submit_all(&mut system, &scenario);
    let metrics = system.run().unwrap();

    assert!(metrics.requests >= scenario.arrivals.len() as u64);
    assert_eq!(metrics.accepted + metrics.rejected, metrics.requests);
    // The mix deliberately over-subscribes the platform: most requests are
    // served (some via downgrade/preemption), a visible minority is
    // rejected and renegotiated.
    assert!(
        metrics.acceptance_rate() > 0.6,
        "acceptance {:.2} too low:\n{metrics}",
        metrics.acceptance_rate()
    );
    assert!(metrics.bypass_hits > 0, "MP3 repeats should hit tokens");
    assert!(metrics.energy_nj > 0);
    // Devices drained.
    for d in [DeviceId(0), DeviceId(1), DeviceId(2)] {
        assert!(system.device(d).unwrap().utilization().abs() < 1e-12);
    }
}

#[test]
fn starved_platform_rejects_or_downgrades() {
    let scenario = fig1_mix(4, 3);
    // Tiny FPGA, no DSP: multimedia must degrade to the CPU or fail.
    let mut system = SystemBuilder::new(scenario.case_base.clone())
        .device(Device::fpga(DeviceId(0), "small-fpga", 400, 100))
        .device(Device::cpu(DeviceId(2), "cpu0", 1000, 200))
        .build()
        .unwrap();
    submit_all(&mut system, &scenario);
    let metrics = system.run().unwrap();
    assert!(
        metrics.rejected + metrics.downgraded > 0,
        "starvation must be visible:\n{metrics}"
    );
    assert_eq!(metrics.accepted + metrics.rejected, metrics.requests);
}

#[test]
fn preemption_disabled_changes_outcomes() {
    let scenario = fig1_mix(6, 5);
    let run = |preempt: bool| {
        let mut system = SystemBuilder::new(scenario.case_base.clone())
            .device(Device::fpga(DeviceId(0), "fpga0", 1600, 150))
            .device(Device::cpu(DeviceId(2), "cpu0", 1000, 200))
            .policy(AllocPolicy {
                allow_preemption: preempt,
                ..AllocPolicy::default()
            })
            .build()
            .unwrap();
        submit_all(&mut system, &scenario);
        system.run().unwrap()
    };
    let with = run(true);
    let without = run(false);
    assert_eq!(without.preemptions, 0);
    assert!(with.preemptions >= without.preemptions);
}

#[test]
fn generated_streams_conserve_invariants() {
    let case_base = CaseGen::new(6, 5, 4, 6).seed(17).build();
    let arrivals = RequestGen::new(&case_base)
        .seed(23)
        .count(80)
        .repeat_fraction(0.4)
        .generate_arrivals();
    let mut system = SystemBuilder::new(case_base)
        .device(Device::fpga(DeviceId(0), "fpga0", 2500, 150))
        .device(Device::dsp(DeviceId(1), "dsp0", 1000, 90))
        .device(Device::cpu(DeviceId(2), "cpu0", 1000, 200))
        .build()
        .unwrap();
    for a in &arrivals {
        system.submit(
            SimTime::from_us(a.at_us),
            ArrivalSpec {
                app: AppId(a.app),
                request: a.request.clone(),
                priority: a.priority,
                duration_us: a.duration_us,
                relaxed: a.relaxed.clone(),
            },
        );
    }
    let metrics = system.run().unwrap();
    assert_eq!(metrics.accepted + metrics.rejected, metrics.requests);
    assert!(metrics.bypass_rate() > 0.0, "repeats must produce hits");
    for task in system.tasks() {
        assert!(matches!(
            task.state,
            TaskState::Completed | TaskState::Preempted
        ));
    }
}
