//! Experiment E5: the paper's equivalence claim — "we get the same
//! retrieval results in high precision floating point Matlab simulation as
//! we get from VHDL simulation" — as a workspace-wide property. Random
//! case bases from the workload generator flow through all four
//! implementations; every fixed-point path must agree bit-exactly, and
//! the float reference must agree up to quantization ties.

// Property-based suite: needs the external `proptest` crate (not vendored
// offline). Enable with `--features proptests` where crates.io is reachable.
#![cfg(feature = "proptests")]

use proptest::prelude::*;

use rqfa::core::{FixedEngine, FloatEngine};
use rqfa::hwsim::{RetrievalUnit, UnitConfig};
use rqfa::memlist::{encode_case_base, encode_request};
use rqfa::softcore::{run_retrieval_with, CpuCostModel, ProgramKind};
use rqfa::workloads::{CaseGen, RequestGen};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn four_engines_agree_on_generated_workloads(seed in 0u64..5000) {
        let case_base = CaseGen::new(4, 6, 5, 8)
            .seed(seed)
            .value_span(200)
            .build();
        let requests = RequestGen::new(&case_base)
            .seed(seed ^ 0xABCD)
            .count(5)
            .generate();
        let cb_img = encode_case_base(&case_base).unwrap();

        for request in &requests {
            let fixed = FixedEngine::new().retrieve(&case_base, request).unwrap().best.unwrap();
            let req_img = encode_request(request).unwrap();

            let mut unit = RetrievalUnit::new(&cb_img, UnitConfig::default()).unwrap();
            let hw = unit.retrieve(&req_img).unwrap();
            prop_assert_eq!(hw.best, Some((fixed.impl_id.raw(), fixed.similarity)));

            let sw = run_retrieval_with(
                &cb_img,
                &req_img,
                CpuCostModel::default(),
                ProgramKind::HandOptimized,
            )
            .unwrap();
            prop_assert_eq!(sw.best, Some((fixed.impl_id.raw(), fixed.similarity)));

            // Float agrees up to quantization: if winners differ, the float
            // scores of both must be within the quantization bound.
            let float = FloatEngine::new().retrieve(&case_base, request).unwrap().best.unwrap();
            if float.impl_id != fixed.impl_id {
                let (scores, _) = FloatEngine::new().score_all(&case_base, request).unwrap();
                let fixed_winner_float = scores
                    .iter()
                    .find(|s| s.impl_id == fixed.impl_id)
                    .unwrap()
                    .similarity;
                prop_assert!(
                    (float.similarity - fixed_winner_float).abs() < 8e-3,
                    "winner divergence beyond quantization: {} vs {}",
                    float.similarity,
                    fixed_winner_float
                );
            }
        }
    }

    /// Ranking agreement rate between float and fixed stays high — the
    /// quantitative form of the paper's "same retrieval results" claim.
    #[test]
    fn fixed_float_winner_agreement_is_high(seed in 0u64..500) {
        let case_base = CaseGen::new(3, 8, 5, 6).seed(seed).value_span(100).build();
        let requests = RequestGen::new(&case_base).seed(seed).count(20).generate();
        let mut agree = 0usize;
        for request in &requests {
            let f = FloatEngine::new().retrieve(&case_base, request).unwrap().best.unwrap();
            let q = FixedEngine::new().retrieve(&case_base, request).unwrap().best.unwrap();
            if f.impl_id == q.impl_id {
                agree += 1;
            }
        }
        // Ties at quantization boundaries are rare; demand ≥ 90 %.
        prop_assert!(agree * 10 >= requests.len() * 9, "{agree}/{}", requests.len());
    }
}
