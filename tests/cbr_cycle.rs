//! Experiment E7: the complete CBR cycle of fig. 2 (retrieve → reuse →
//! revise → retain) across crates: core cycle + rsoc learner, with bypass
//! tokens and generation-based invalidation in the loop.

use rqfa::core::{
    paper, AttrBinding, CbrCycle, ExecutionTarget, FixedEngine, Footprint, LearnAction,
    LearnPolicy, Request, Q15,
};
use rqfa::rsoc::Learner;
use rqfa::workloads::{CaseGen, RequestGen};

#[test]
fn cycle_converges_to_exact_matches() {
    // Keep retraining on the same stream of problems: after one pass,
    // every repeated problem must retrieve with similarity 1.0.
    let mut case_base = CaseGen::new(2, 3, 4, 5).seed(3).value_span(60).build();
    let requests = RequestGen::new(&case_base)
        .seed(9)
        .count(8)
        .repeat_fraction(0.0)
        .generate();
    let mut cycle = CbrCycle::new(32).with_policy(LearnPolicy {
        retain_below: Q15::from_f64(0.999).unwrap(),
        max_variants_per_type: 64,
        ..LearnPolicy::default()
    });

    for request in &requests {
        let outcome = cycle.retrieve(&case_base, request).unwrap();
        // Feedback: the deployed solution achieves exactly the request.
        let measured: Vec<AttrBinding> = request.bindings().collect();
        cycle
            .learn(
                &mut case_base,
                request,
                &outcome,
                &measured,
                ExecutionTarget::Fpga,
                Footprint::none(),
            )
            .unwrap();
    }
    for request in &requests {
        let again = cycle.retrieve(&case_base, request).unwrap();
        assert!(
            again.suggestion.similarity.is_one(),
            "request not learned: {request}"
        );
    }
}

#[test]
fn learner_statistics_track_actions() {
    let mut case_base = paper::table1_case_base();
    let mut learner = Learner::default();
    let engine = FixedEngine::new();

    // Novel problem → retained.
    let novel = Request::builder(paper::FIR_EQUALIZER)
        .constraint(paper::ATTR_BITWIDTH, 11)
        .constraint(paper::ATTR_RATE, 33)
        .build()
        .unwrap();
    let best = engine.retrieve(&case_base, &novel).unwrap().best.unwrap();
    let action = learner
        .feedback(
            &mut case_base,
            &novel,
            best,
            &[
                AttrBinding::new(paper::ATTR_BITWIDTH, 11),
                AttrBinding::new(paper::ATTR_RATE, 33),
            ],
            ExecutionTarget::Fpga,
            Footprint::none(),
        )
        .unwrap();
    assert!(matches!(action, LearnAction::Retained { .. }));

    // Inconsistent feedback → discarded.
    let best = engine.retrieve(&case_base, &novel).unwrap().best.unwrap();
    let action = learner
        .feedback(
            &mut case_base,
            &novel,
            best,
            &[AttrBinding::new(paper::ATTR_RATE, 9999)],
            ExecutionTarget::Fpga,
            Footprint::none(),
        )
        .unwrap();
    assert_eq!(action, LearnAction::Discarded);

    let stats = learner.stats();
    assert_eq!(stats.reports, 2);
    assert_eq!(stats.retained, 1);
    assert_eq!(stats.discarded, 1);
}

#[test]
fn mutation_invalidates_bypass_tokens_across_layers() {
    let mut case_base = paper::table1_case_base();
    let mut cycle = CbrCycle::new(8);
    let request = paper::table1_request().unwrap();

    let first = cycle.retrieve(&case_base, &request).unwrap();
    assert!(!first.bypassed);
    let second = cycle.retrieve(&case_base, &request).unwrap();
    assert!(second.bypassed);

    // External learner mutates the case base (generation bump).
    let mut learner = Learner::default();
    let novel = Request::builder(paper::FIR_EQUALIZER)
        .constraint(paper::ATTR_BITWIDTH, 9)
        .build()
        .unwrap();
    let best = FixedEngine::new().retrieve(&case_base, &novel).unwrap().best.unwrap();
    learner
        .feedback(
            &mut case_base,
            &novel,
            best,
            &[AttrBinding::new(paper::ATTR_BITWIDTH, 9)],
            ExecutionTarget::Dsp,
            Footprint::none(),
        )
        .unwrap();

    let third = cycle.retrieve(&case_base, &request).unwrap();
    assert!(!third.bypassed, "stale token must not survive a mutation");
}

#[test]
fn eviction_budget_preserves_design_variants() {
    let mut case_base = paper::table1_case_base();
    let mut cycle = CbrCycle::new(8).with_policy(LearnPolicy {
        max_variants_per_type: 5,
        ..LearnPolicy::default()
    });
    for rate in 10..30u16 {
        let request = Request::builder(paper::FIR_EQUALIZER)
            .constraint(paper::ATTR_RATE, rate)
            .constraint(paper::ATTR_BITWIDTH, 9)
            .build()
            .unwrap();
        let outcome = cycle.retrieve(&case_base, &request).unwrap();
        let _ = cycle
            .learn(
                &mut case_base,
                &request,
                &outcome,
                &[
                    AttrBinding::new(paper::ATTR_BITWIDTH, 9),
                    AttrBinding::new(paper::ATTR_RATE, rate),
                ],
                ExecutionTarget::Fpga,
                Footprint::none(),
            )
            .unwrap();
    }
    let fir = case_base.function_type(paper::FIR_EQUALIZER).unwrap();
    assert!(fir.variant_count() <= 6, "budget enforced: {}", fir.variant_count());
    for original in [paper::IMPL_FPGA, paper::IMPL_DSP, paper::IMPL_GP] {
        assert!(
            fir.variant(original).is_some(),
            "design-time variant {original} evicted"
        );
    }
}
