//! Experiment E14: crash-recovery correctness of the persistence layer.
//!
//! The contract under test: **a recovered case base answers retrievals
//! bit-identically to an uninterrupted oracle that applied the same
//! acknowledged mutation prefix** — for every injected failure point:
//!
//! * torn WAL tail (crash mid-append), at *every* byte offset;
//! * crash during a snapshot write (atomic media and torn media);
//! * crash between snapshot and WAL compaction;
//! * snapshot + log + torn tail combined;
//! * crash inside a **group-commit flush window** (batched appends), at
//!   *every* byte offset — the acknowledged prefix is exactly the whole
//!   batches, and recovery must never fall behind it.
//!
//! All crashes are injected deterministically (byte budgets / byte
//! truncation), so the suite is timing-free and CI-stable.

use rqfa::core::{
    AttrBinding, AttrId, CaseBase, CaseMutation, ExecutionTarget, FixedEngine, ImplId, ImplVariant,
    Request,
};
use rqfa::persist::{
    encode_frame, write_snapshot, DurableCaseBase, FailingStore, MemStore, PersistPolicy,
    StampedMutation, StoreSet,
};
use rqfa::workloads::rng::SmallRng;
use rqfa::workloads::{CaseGen, RequestGen};

/// The workload shape all scenarios share.
fn seed_case_base() -> CaseBase {
    CaseGen::new(5, 4, 4, 6).seed(0xE14).value_span(200).build()
}

/// A deterministic script of `n` mutations, each valid at its position
/// (validated against a scratch copy while generating).
fn mutation_script(cb: &CaseBase, n: usize, seed: u64) -> Vec<CaseMutation> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut scratch = cb.clone();
    let mut script = Vec::with_capacity(n);
    let mut next_fresh_id = 1000u16;
    while script.len() < n {
        let types = scratch.function_types();
        let ty = &types[rng.gen_range(0..types.len())];
        let type_id = ty.id();
        let mutation = match rng.gen_range(0..3u32) {
            0 => {
                let attr = AttrId::new(rng.gen_range(1..=6u16)).unwrap();
                let entry = scratch.bounds().entry(attr).unwrap();
                let value = rng.gen_range(entry.lower..=entry.upper);
                let target = match rng.gen_range(0..3u32) {
                    0 => ExecutionTarget::Fpga,
                    1 => ExecutionTarget::Dsp,
                    _ => ExecutionTarget::Dedicated(rng.gen_range(0..=9u16) as u8),
                };
                next_fresh_id += 1;
                CaseMutation::Retain {
                    type_id,
                    variant: ImplVariant::new(
                        ImplId::new(next_fresh_id).unwrap(),
                        target,
                        vec![AttrBinding::new(attr, value)],
                    )
                    .unwrap(),
                }
            }
            1 => {
                let variants = ty.variants();
                let old = &variants[rng.gen_range(0..variants.len())];
                let mut attrs = old.attrs().to_vec();
                let slot = rng.gen_range(0..attrs.len());
                let entry = scratch.bounds().entry(attrs[slot].attr).unwrap();
                attrs[slot] =
                    AttrBinding::new(attrs[slot].attr, rng.gen_range(entry.lower..=entry.upper));
                CaseMutation::Revise {
                    type_id,
                    variant: ImplVariant::new(old.id(), old.target(), attrs).unwrap(),
                }
            }
            _ => {
                let variants = ty.variants();
                if variants.len() < 2 {
                    continue; // eviction must keep the type non-empty
                }
                CaseMutation::Evict {
                    type_id,
                    impl_id: variants[rng.gen_range(0..variants.len())].id(),
                }
            }
        };
        if scratch.apply_mutation(&mutation).is_ok() {
            script.push(mutation);
        }
    }
    script
}

/// Oracle states after applying each prefix of the script: `oracles[j]`
/// is the case base after the first `j` mutations.
fn oracle_states(cb: &CaseBase, script: &[CaseMutation]) -> Vec<CaseBase> {
    let mut states = Vec::with_capacity(script.len() + 1);
    let mut current = cb.clone();
    states.push(current.clone());
    for mutation in script {
        current.apply_mutation(mutation).expect("script is valid");
        states.push(current.clone());
    }
    states
}

fn probe_requests(cb: &CaseBase) -> Vec<Request> {
    RequestGen::new(cb).seed(0xB17).count(60).generate()
}

/// The headline assertion: identical winners, bit-identical similarity
/// words, identical targets and evaluation counts — over a whole stream.
fn assert_bit_identical(recovered: &CaseBase, oracle: &CaseBase, requests: &[Request], ctx: &str) {
    let engine = FixedEngine::new();
    for request in requests {
        let a = engine.retrieve(recovered, request);
        let b = engine.retrieve(oracle, request);
        match (a, b) {
            (Ok(ra), Ok(rb)) => {
                assert_eq!(ra.best, rb.best, "{ctx}: winner/bits differ for {request}");
                assert_eq!(ra.evaluated, rb.evaluated, "{ctx}: evaluated differs");
            }
            (a, b) => assert_eq!(a.is_err(), b.is_err(), "{ctx}: error parity for {request}"),
        }
    }
    assert_eq!(
        recovered.generation(),
        oracle.generation(),
        "{ctx}: recovered generation must equal the oracle's"
    );
}

/// Crash 1: torn WAL tail. Truncate the log at **every byte offset** and
/// require recovery to restore exactly the longest fully-durable prefix.
#[test]
fn torn_wal_tail_recovers_every_prefix() {
    let cb0 = seed_case_base();
    let script = mutation_script(&cb0, 18, 1);
    let oracles = oracle_states(&cb0, &script);
    let requests = probe_requests(&cb0);

    // Run the durable instance to completion, tracking frame boundaries.
    let mut durable =
        DurableCaseBase::create(&cb0, StoreSet::in_memory(), PersistPolicy::manual()).unwrap();
    let mut boundaries = vec![0u64];
    for mutation in &script {
        durable.apply(mutation).unwrap();
        boundaries.push(durable.wal_bytes().unwrap());
    }
    let stores = durable.into_stores();
    let wal_bytes = stores.wal.bytes().to_vec();
    assert_eq!(*boundaries.last().unwrap() as usize, wal_bytes.len());

    for cut in 0..=wal_bytes.len() {
        let crashed = StoreSet {
            wal: MemStore::from_bytes(wal_bytes[..cut].to_vec()),
            snap_a: stores.snap_a.clone(),
            snap_b: stores.snap_b.clone(),
        };
        let (recovered, report) =
            DurableCaseBase::recover(crashed, PersistPolicy::manual()).unwrap();
        // The durable prefix: every whole frame at or before the cut.
        let expect = boundaries.iter().filter(|&&b| b > 0 && b as usize <= cut).count();
        assert_eq!(report.replayed, expect, "cut at byte {cut}");
        assert_eq!(
            report.torn_tail_bytes > 0,
            !boundaries.iter().any(|&b| b as usize == cut),
            "cut at byte {cut}: torn-tail flag"
        );
        assert_bit_identical(
            recovered.case_base(),
            &oracles[expect],
            &requests,
            &format!("torn tail, cut {cut}"),
        );
    }
}

/// Crash 2a: snapshot write crashes on atomic media (file-store
/// semantics: rename never happened). The previous snapshot plus the
/// full WAL must reconstruct everything acknowledged.
#[test]
fn snapshot_crash_on_atomic_media_loses_nothing() {
    let cb0 = seed_case_base();
    let script = mutation_script(&cb0, 12, 2);
    let oracles = oracle_states(&cb0, &script);
    let requests = probe_requests(&cb0);

    // Budget sweep: the checkpoint's snapshot write fails at different
    // points of its byte budget (0 = immediately, up to one byte short
    // of the full snapshot).
    let snapshot_len = rqfa::persist::encode_snapshot(oracles.last().unwrap())
        .unwrap()
        .len() as u64;
    for budget in [0u64, 1, 37, snapshot_len / 2, snapshot_len - 1] {
        let stores = StoreSet {
            wal: FailingStore::new(MemStore::new(), u64::MAX),
            snap_a: FailingStore::new(MemStore::new(), u64::MAX),
            snap_b: FailingStore::new(MemStore::new(), budget),
        };
        let mut durable = DurableCaseBase::create(&cb0, stores, PersistPolicy::manual()).unwrap();
        for mutation in &script {
            durable.apply(mutation).unwrap();
        }
        // Checkpoint targets the stale slot B, whose budget tears it.
        let err = durable.checkpoint().unwrap_err();
        assert!(matches!(err, rqfa::persist::PersistError::Crashed { .. }));

        let surviving = durable.into_stores().map(FailingStore::into_inner);
        assert!(surviving.snap_b.bytes().is_empty(), "atomic replace: all or nothing");
        let (recovered, report) =
            DurableCaseBase::recover(surviving, PersistPolicy::manual()).unwrap();
        assert_eq!(report.replayed, script.len());
        assert_eq!(report.corrupt_slots, 0);
        assert_bit_identical(
            recovered.case_base(),
            oracles.last().unwrap(),
            &requests,
            &format!("snapshot crash, budget {budget}"),
        );
    }
}

/// Crash 2b: the snapshot slot holds *torn bytes* (media without atomic
/// replacement). Every truncation of the new snapshot must be detected
/// and recovery must fall back to the previous slot + full WAL.
#[test]
fn torn_snapshot_slot_falls_back_to_previous() {
    let cb0 = seed_case_base();
    let script = mutation_script(&cb0, 10, 3);
    let oracles = oracle_states(&cb0, &script);
    let requests = probe_requests(&cb0);

    let mut durable =
        DurableCaseBase::create(&cb0, StoreSet::in_memory(), PersistPolicy::manual()).unwrap();
    for mutation in &script {
        durable.apply(mutation).unwrap();
    }
    let full_snapshot = rqfa::persist::encode_snapshot(durable.case_base()).unwrap();
    let stores = durable.into_stores();

    // Sample every 5th byte plus the edges — each must read as corrupt.
    let mut cuts: Vec<usize> = (0..full_snapshot.len()).step_by(5).collect();
    cuts.push(full_snapshot.len() - 1);
    for cut in cuts {
        let crashed = StoreSet {
            wal: stores.wal.clone(),
            snap_a: stores.snap_a.clone(),
            snap_b: MemStore::from_bytes(full_snapshot[..cut].to_vec()),
        };
        let (recovered, report) =
            DurableCaseBase::recover(crashed, PersistPolicy::manual()).unwrap();
        assert_eq!(report.corrupt_slots, usize::from(cut != 0), "cut {cut}");
        assert_eq!(report.replayed, script.len(), "cut {cut}");
        assert_bit_identical(
            recovered.case_base(),
            oracles.last().unwrap(),
            &requests,
            &format!("torn snapshot, cut {cut}"),
        );
    }
}

/// Crash 3: between snapshot and compaction — the snapshot is durable
/// but the WAL still holds every record. Recovery must skip the
/// already-snapshotted records by generation stamp, not reapply them.
#[test]
fn crash_between_snapshot_and_compaction_skips_old_records() {
    let cb0 = seed_case_base();
    let script = mutation_script(&cb0, 14, 4);
    let oracles = oracle_states(&cb0, &script);
    let requests = probe_requests(&cb0);

    for snap_at in [1usize, 7, 14] {
        let mut durable =
            DurableCaseBase::create(&cb0, StoreSet::in_memory(), PersistPolicy::manual()).unwrap();
        for mutation in &script {
            durable.apply(mutation).unwrap();
        }
        // Manually write the snapshot of an intermediate state into the
        // stale slot and *skip compaction* — exactly the on-media state a
        // crash right after the snapshot leaves behind.
        let mut stores = durable.into_stores();
        write_snapshot(&mut stores.snap_b, &oracles[snap_at]).unwrap();

        let (recovered, report) =
            DurableCaseBase::recover(stores, PersistPolicy::manual()).unwrap();
        assert_eq!(report.skipped_older, snap_at, "snap at {snap_at}");
        assert_eq!(report.replayed, script.len() - snap_at, "snap at {snap_at}");
        assert_eq!(report.snapshot_generation.raw(), snap_at as u64);
        assert_bit_identical(
            recovered.case_base(),
            oracles.last().unwrap(),
            &requests,
            &format!("snapshot at {snap_at} without compaction"),
        );
    }
}

/// Crash 4: the full combination — durable snapshot mid-history, no
/// compaction, *and* a torn WAL tail. Swept over every byte of the tail.
#[test]
fn snapshot_plus_torn_log_combination() {
    let cb0 = seed_case_base();
    let script = mutation_script(&cb0, 12, 5);
    let oracles = oracle_states(&cb0, &script);
    let requests = probe_requests(&cb0);
    let snap_at = 5usize;

    let mut durable =
        DurableCaseBase::create(&cb0, StoreSet::in_memory(), PersistPolicy::manual()).unwrap();
    let mut boundaries = vec![0u64];
    for mutation in &script {
        durable.apply(mutation).unwrap();
        boundaries.push(durable.wal_bytes().unwrap());
    }
    let mut stores = durable.into_stores();
    write_snapshot(&mut stores.snap_b, &oracles[snap_at]).unwrap();
    let wal_bytes = stores.wal.bytes().to_vec();

    for cut in 0..=wal_bytes.len() {
        let crashed = StoreSet {
            wal: MemStore::from_bytes(wal_bytes[..cut].to_vec()),
            snap_a: stores.snap_a.clone(),
            snap_b: stores.snap_b.clone(),
        };
        let (recovered, report) =
            DurableCaseBase::recover(crashed, PersistPolicy::manual()).unwrap();
        let durable_records = boundaries.iter().filter(|&&b| b > 0 && b as usize <= cut).count();
        // The snapshot guarantees at least `snap_at` even if the log lost
        // those bytes; beyond it the log extends the state.
        let expect_state = durable_records.max(snap_at);
        assert_eq!(
            report.replayed,
            durable_records.saturating_sub(snap_at),
            "cut {cut}"
        );
        assert_eq!(report.skipped_older, durable_records.min(snap_at), "cut {cut}");
        assert_bit_identical(
            recovered.case_base(),
            &oracles[expect_state],
            &requests,
            &format!("combo, cut {cut}"),
        );
    }
}

/// Crash 5: a torn **group-commit** window. The script lands in batches
/// of `WINDOW` mutations, each batch one `apply_batch` = one WAL write;
/// the cut sweeps every byte of the log. The contract under overload of
/// crash points:
///
/// * recovery restores some whole-frame prefix `m` of the script,
///   bit-identical to the oracle after `m` mutations;
/// * `m` never falls below the **acknowledged** prefix — the mutations of
///   every batch whose write completed before the cut (frames of the
///   torn batch were never acknowledged, so recovering any whole-frame
///   subset of them is correct, not lossy).
#[test]
fn torn_group_commit_window_recovers_the_acknowledged_prefix() {
    let cb0 = seed_case_base();
    const WINDOW: usize = 3;
    let script = mutation_script(&cb0, 4 * WINDOW, 6);
    let oracles = oracle_states(&cb0, &script);
    let requests = probe_requests(&cb0);

    let mut durable =
        DurableCaseBase::create(&cb0, StoreSet::in_memory(), PersistPolicy::manual()).unwrap();
    // Per-frame boundaries (for the expected whole-frame prefix) come
    // from the deterministic frame encoding; per-batch boundaries (the
    // acknowledgement points) from the live log length after each
    // apply_batch.
    let mut frame_boundaries = vec![0u64];
    for (j, mutation) in script.iter().enumerate() {
        let frame = encode_frame(&StampedMutation {
            generation: oracles[j + 1].generation(),
            mutation: mutation.clone(),
        })
        .unwrap();
        frame_boundaries.push(frame_boundaries[j] + frame.len() as u64);
    }
    let mut ack_boundaries = vec![(0u64, 0usize)]; // (log bytes, mutations acked)
    for (batch_index, window) in script.chunks(WINDOW).enumerate() {
        durable.apply_batch(window).unwrap();
        ack_boundaries.push((
            durable.wal_bytes().unwrap(),
            (batch_index + 1) * WINDOW,
        ));
    }
    let stores = durable.into_stores();
    let wal_bytes = stores.wal.bytes().to_vec();
    assert_eq!(
        *frame_boundaries.last().unwrap() as usize,
        wal_bytes.len(),
        "batched appends are byte-identical to single appends"
    );

    for cut in 0..=wal_bytes.len() {
        let crashed = StoreSet {
            wal: MemStore::from_bytes(wal_bytes[..cut].to_vec()),
            snap_a: stores.snap_a.clone(),
            snap_b: stores.snap_b.clone(),
        };
        let (recovered, report) =
            DurableCaseBase::recover(crashed, PersistPolicy::manual()).unwrap();
        let whole_frames = frame_boundaries
            .iter()
            .filter(|&&b| b > 0 && b as usize <= cut)
            .count();
        let acked = ack_boundaries
            .iter()
            .filter(|&&(b, _)| b as usize <= cut)
            .map(|&(_, n)| n)
            .max()
            .unwrap_or(0);
        assert_eq!(report.replayed, whole_frames, "cut at byte {cut}");
        assert!(
            whole_frames >= acked,
            "cut at byte {cut}: recovery ({whole_frames}) fell behind the \
             acknowledged prefix ({acked})"
        );
        assert_bit_identical(
            recovered.case_base(),
            &oracles[whole_frames],
            &requests,
            &format!("torn flush window, cut {cut}"),
        );
    }
}

/// Sanity for the harness itself: the script and frame encoding are
/// deterministic, so every run of this suite exercises the same bytes.
#[test]
fn harness_is_deterministic() {
    let cb = seed_case_base();
    let a = mutation_script(&cb, 10, 7);
    let b = mutation_script(&cb, 10, 7);
    assert_eq!(a, b);
    let mut oracle = cb.clone();
    let mut frames_a = Vec::new();
    for m in &a {
        oracle.apply_mutation(m).unwrap();
        frames_a.push(
            encode_frame(&StampedMutation {
                generation: oracle.generation(),
                mutation: m.clone(),
            })
            .unwrap(),
        );
    }
    let mut oracle2 = cb;
    for (m, frame) in b.iter().zip(&frames_a) {
        oracle2.apply_mutation(m).unwrap();
        assert_eq!(
            &encode_frame(&StampedMutation {
                generation: oracle2.generation(),
                mutation: m.clone(),
            })
            .unwrap(),
            frame
        );
    }
}
