//! End-to-end reproduction of the paper's running example (fig. 3 /
//! Table 1) through every engine in the workspace: float reference,
//! 16-bit fixed-point engine, cycle-level hardware simulator and both
//! soft-core routines. All fixed-point paths must agree bit-exactly; the
//! float path must reproduce the published two-decimal similarities.

use rqfa::core::{paper, FixedEngine, FloatEngine};
use rqfa::hwsim::{ImageLayout, PortWidth, RetrievalUnit, UnitConfig};
use rqfa::memlist::{encode_case_base, encode_compact_case_base, encode_request};
use rqfa::softcore::{run_retrieval_with, CpuCostModel, ProgramKind};

#[test]
fn table1_float_similarities_match_paper() {
    let cb = paper::table1_case_base();
    let request = paper::table1_request().unwrap();
    let (scores, _) = FloatEngine::new().score_all(&cb, &request).unwrap();
    for (impl_raw, expected) in paper::TABLE1_EXPECTED {
        let got = scores
            .iter()
            .find(|s| s.impl_id.raw() == impl_raw)
            .unwrap()
            .similarity;
        assert!(
            (got - expected).abs() < 5e-3,
            "impl {impl_raw}: {got:.4} vs paper {expected}"
        );
    }
}

#[test]
fn table1_all_engines_agree_on_winner_and_bits() {
    let cb = paper::table1_case_base();
    let request = paper::table1_request().unwrap();
    let reference = FixedEngine::new().retrieve(&cb, &request).unwrap().best.unwrap();
    assert_eq!(reference.impl_id, paper::IMPL_DSP);

    let cb_img = encode_case_base(&cb).unwrap();
    let req_img = encode_request(&request).unwrap();

    // Hardware simulator, all three memory organizations.
    for layout in [
        ImageLayout::Classic(PortWidth::Narrow),
        ImageLayout::Classic(PortWidth::Wide),
    ] {
        let mut unit = RetrievalUnit::new(
            &cb_img,
            UnitConfig {
                layout,
                ..UnitConfig::default()
            },
        )
        .unwrap();
        let hw = unit.retrieve(&req_img).unwrap();
        assert_eq!(hw.best, Some((reference.impl_id.raw(), reference.similarity)));
    }
    let compact = encode_compact_case_base(&cb).unwrap();
    let mut unit = RetrievalUnit::new_compact(&compact, UnitConfig::default()).unwrap();
    let hw = unit.retrieve(&req_img).unwrap();
    assert_eq!(hw.best, Some((reference.impl_id.raw(), reference.similarity)));

    // Both soft-core routines.
    for kind in [ProgramKind::HandOptimized, ProgramKind::CompilerStyle] {
        let sw = run_retrieval_with(&cb_img, &req_img, CpuCostModel::default(), kind).unwrap();
        assert_eq!(
            sw.best,
            Some((reference.impl_id.raw(), reference.similarity)),
            "{kind:?}"
        );
    }
}

#[test]
fn table1_relaxed_request_promotes_gp_processor() {
    // §3: "the application has to repeat its request with rather relaxed
    // constraints giving a chance to the third low performance
    // implementation".
    let cb = paper::table1_case_base();
    let relaxed = paper::relaxed_request().unwrap();
    let best = FixedEngine::new().retrieve(&cb, &relaxed).unwrap().best.unwrap();
    assert_eq!(best.impl_id, paper::IMPL_GP);
    assert!(best.similarity.is_one(), "exact match after relaxation");
}

#[test]
fn table1_incomplete_request_is_served() {
    // Fig. 3: "the request's attribute-set does not have to be completely
    // specified" — the paper's request omits the processing mode.
    let request = paper::table1_request().unwrap();
    assert_eq!(request.constraints().len(), 3);
    assert!(request.constraint(paper::ATTR_MODE).is_none());
    let cb = paper::table1_case_base();
    assert!(FixedEngine::new().retrieve(&cb, &request).unwrap().best.is_some());
}
