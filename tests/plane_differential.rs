//! The plane proof: differential testing of the compiled columnar
//! retrieval plane (`rqfa_core::plane` + `rqfa_core::kernel`) against the
//! naive scan engine.
//!
//! Seeded random case bases × request streams × **mid-stream mutations**
//! drive one long-lived [`PlaneEngine`] and the reference [`FixedEngine`]
//! in lockstep. After *every* operation the two must agree **bit-
//! identically** on
//!
//! * full score vectors (`score_all`): every `Q15` word, every id, every
//!   execution target, in tree order;
//! * winners (`retrieve`): the first-achieving-max variant including tie
//!   handling, plus the evaluated count;
//! * n-best rankings for every n (including 0 and over-long): order,
//!   truncation and tie-breaks;
//! * batch answers in input order with per-slot errors isolated;
//! * error values (`UnknownType` / `UndeclaredAttr`);
//! * the arithmetic operation counters (`distances`, `multiplies`,
//!   `additions`, `comparisons`) — the plane changes *where* the work
//!   happens, not how much arithmetic the datapath model performs. Only
//!   `search_steps` follows the plane cost model (one per constraint;
//!   see `docs/retrieval.md`), which is asserted exactly too.
//!
//! Mutations (retain / revise / evict through `CaseBase::apply_mutation`)
//! land mid-stream, so the harness also proves the generation-stamped
//! invalidation: the plane engine recompiles exactly once per observed
//! generation change and never serves a stale plane.

use rqfa::core::{
    AttrBinding, CaseBase, CaseMutation, FixedEngine, ImplId, ImplVariant, KernelPath,
    PlaneEngine, Request, TypeId,
};
use rqfa::workloads::rng::SmallRng;
use rqfa::workloads::{CaseGen, RequestGen};

const SEEDS: u64 = 10;
const OPS_PER_SEED: usize = 10_000;

/// Compares one request through every entry point of both engines — and
/// holds the pinned-scalar plane engine to the exact same answers as the
/// auto-path one (the wide kernel, where the host has it).
fn check_request(
    cb: &CaseBase,
    plane: &mut PlaneEngine,
    scalar: &mut PlaneEngine,
    request: &Request,
    n: usize,
) {
    let naive = FixedEngine::new();
    // Full score vectors + op model.
    let naive_scores = naive.score_all(cb, request);
    let plane_scores = plane.score_all(cb, request);
    match (&naive_scores, &plane_scores) {
        (Ok((ns, nops)), Ok((ps, pops))) => {
            assert_eq!(ns, ps, "score vectors must be bit-identical");
            assert_eq!(nops.distances, pops.distances, "distances");
            assert_eq!(nops.multiplies, pops.multiplies, "multiplies");
            assert_eq!(nops.additions, pops.additions, "additions");
            assert_eq!(nops.comparisons, pops.comparisons, "comparisons");
            assert_eq!(
                pops.search_steps,
                request.constraints().len() as u64,
                "plane cost model: one search step per constraint"
            );
        }
        (Err(ne), Err(pe)) => assert_eq!(ne, pe, "error values must match"),
        other => panic!("one engine failed, the other did not: {other:?}"),
    }
    // Winner (strict-> update rule incl. ties).
    match (naive.retrieve(cb, request), plane.retrieve(cb, request)) {
        (Ok(n), Ok(p)) => {
            assert_eq!(n.best, p.best, "winner must be bit-identical");
            assert_eq!(n.evaluated, p.evaluated);
        }
        (Err(ne), Err(pe)) => assert_eq!(ne, pe),
        other => panic!("retrieve diverged: {other:?}"),
    }
    // n-best ranking.
    match (
        naive.retrieve_n_best(cb, request, n),
        plane.retrieve_n_best(cb, request, n),
    ) {
        (Ok(nb), Ok(pb)) => {
            assert_eq!(nb.ranked, pb.ranked, "n-best (n = {n}) must match");
            assert_eq!(nb.evaluated, pb.evaluated);
        }
        (Err(ne), Err(pe)) => assert_eq!(ne, pe),
        other => panic!("n-best diverged: {other:?}"),
    }
    // Wide vs scalar: the pinned-scalar engine must agree with the auto
    // path on every entry point, ops included (path-independent model).
    match (plane_scores, scalar.score_all(cb, request)) {
        (Ok((ps, pops)), Ok((ss, sops))) => {
            assert_eq!(ps, ss, "scalar path must be bit-identical to wide");
            assert_eq!(pops, sops, "ops must be path-independent");
        }
        (Err(pe), Err(se)) => assert_eq!(pe, se),
        other => panic!("kernel paths diverged: {other:?}"),
    }
    match (plane.retrieve(cb, request), scalar.retrieve(cb, request)) {
        (Ok(p), Ok(s)) => {
            assert_eq!(p.best, s.best, "winner must be path-independent");
            assert_eq!(p.ops, s.ops);
        }
        (Err(pe), Err(se)) => assert_eq!(pe, se),
        other => panic!("retrieve paths diverged: {other:?}"),
    }
    match (
        plane.retrieve_n_best(cb, request, n),
        scalar.retrieve_n_best(cb, request, n),
    ) {
        (Ok(pb), Ok(sb)) => assert_eq!(pb.ranked, sb.ranked, "n-best paths (n = {n})"),
        (Err(pe), Err(se)) => assert_eq!(pe, se),
        other => panic!("n-best paths diverged: {other:?}"),
    }
}

/// Builds a fresh variant for a retain/revise mutation, binding a random
/// subset of the declared attributes with in-bounds values.
fn random_variant(cb: &CaseBase, rng: &mut SmallRng, impl_id: ImplId) -> ImplVariant {
    let decls: Vec<_> = cb.bounds().iter().collect();
    let count = rng.gen_range(1..=decls.len());
    let mut picked: Vec<usize> = (0..decls.len()).collect();
    for i in (1..picked.len()).rev() {
        let j = rng.gen_range(0..=i);
        picked.swap(i, j);
    }
    picked.truncate(count);
    let attrs = picked
        .into_iter()
        .map(|i| {
            let decl = decls[i];
            AttrBinding::new(decl.id(), rng.gen_range(decl.lower()..=decl.upper()))
        })
        .collect();
    ImplVariant::new(impl_id, rqfa::core::ExecutionTarget::Dsp, attrs)
        .expect("random variant is valid")
}

/// One random mutation against a random type; returns whether it applied.
fn random_mutation(cb: &mut CaseBase, rng: &mut SmallRng, fresh_impl: &mut u16) -> bool {
    let types: Vec<TypeId> = cb.function_types().iter().map(|t| t.id()).collect();
    let type_id = types[rng.gen_range(0..types.len())];
    let mutation = match rng.gen_range(0..3u32) {
        0 => {
            *fresh_impl += 1;
            CaseMutation::Retain {
                type_id,
                variant: random_variant(cb, rng, ImplId::new(*fresh_impl).unwrap()),
            }
        }
        1 => {
            let ty = cb.function_type(type_id).unwrap();
            let victim = ty.variants()[rng.gen_range(0..ty.variant_count())].id();
            CaseMutation::Revise {
                type_id,
                variant: random_variant(cb, rng, victim),
            }
        }
        _ => {
            let ty = cb.function_type(type_id).unwrap();
            if ty.variant_count() < 2 {
                return false; // eviction would empty the type
            }
            let victim = ty.variants()[rng.gen_range(0..ty.variant_count())].id();
            CaseMutation::Evict {
                type_id,
                impl_id: victim,
            }
        }
    };
    cb.apply_mutation(&mutation).expect("generated mutation is valid");
    true
}

#[test]
fn plane_kernel_is_bit_identical_to_the_naive_engine() {
    for seed in 0..SEEDS {
        let mut cb = CaseGen::new(6, 6, 4, 8)
            .seed(seed)
            .value_span(200)
            .without_footprints()
            .build();
        let pool = RequestGen::new(&cb)
            .seed(seed.wrapping_mul(0x9E37) + 1)
            .count(512)
            .repeat_fraction(0.3)
            .generate();
        // Requests that exercise the error paths.
        let unknown_type = Request::builder(TypeId::new(999).unwrap())
            .constraint(rqfa::core::AttrId::new(1).unwrap(), 1)
            .build()
            .unwrap();
        let undeclared_attr = Request::builder(cb.function_types()[0].id())
            .constraint(rqfa::core::AttrId::new(99).unwrap(), 1)
            .build()
            .unwrap();

        let mut rng = SmallRng::seed_from_u64(seed ^ 0xD1FF);
        let mut plane = PlaneEngine::new();
        let mut scalar = PlaneEngine::with_kernel(KernelPath::ForceScalar);
        let mut fresh_impl = 1000u16;
        let mut mutations = 0u64;
        let mut ops = 0usize;
        while ops < OPS_PER_SEED {
            match rng.gen_range(0..100u32) {
                // Mid-stream mutation: invalidates the compiled plane.
                0..=4 => {
                    if random_mutation(&mut cb, &mut rng, &mut fresh_impl) {
                        mutations += 1;
                    }
                    ops += 1;
                }
                // Batch call over a random slice of the pool.
                5..=14 => {
                    let len = rng.gen_range(1..=16usize);
                    let start = rng.gen_range(0..pool.len() - len);
                    let batch: Vec<&Request> = pool[start..start + len].iter().collect();
                    let naive = FixedEngine::new().retrieve_batch(&cb, &batch);
                    let fast = plane.retrieve_batch(&cb, &batch);
                    let slow = scalar.retrieve_batch(&cb, &batch);
                    assert_eq!(naive.len(), fast.len());
                    assert_eq!(fast.len(), slow.len());
                    for ((n, p), s) in naive.iter().zip(&fast).zip(&slow) {
                        match (n, p) {
                            (Ok(n), Ok(p)) => {
                                assert_eq!(n.best, p.best);
                                assert_eq!(n.evaluated, p.evaluated);
                            }
                            (Err(ne), Err(pe)) => assert_eq!(ne, pe),
                            other => panic!("batch slot diverged: {other:?}"),
                        }
                        // Register-blocked wide vs scalar: identical
                        // slot-for-slot, ops included.
                        match (p, s) {
                            (Ok(p), Ok(s)) => {
                                assert_eq!(p.best, s.best);
                                assert_eq!(p.ops, s.ops);
                            }
                            (Err(pe), Err(se)) => assert_eq!(pe, se),
                            other => panic!("batch kernel paths diverged: {other:?}"),
                        }
                    }
                    ops += len;
                }
                // Error paths.
                15..=16 => {
                    let request = if rng.gen_bool(0.5) {
                        &unknown_type
                    } else {
                        &undeclared_attr
                    };
                    let n = rng.gen_range(0..=8usize);
                    check_request(&cb, &mut plane, &mut scalar, request, n);
                    ops += 1;
                }
                // Single-request comparison across all entry points.
                _ => {
                    let request = &pool[rng.gen_range(0..pool.len())];
                    let n = rng.gen_range(0..=8usize);
                    check_request(&cb, &mut plane, &mut scalar, request, n);
                    ops += 1;
                }
            }
        }
        assert!(mutations > 0, "seed {seed}: stream must include mutations");
        // Invalidation economy: exactly one compile per observed
        // generation change (first use + one per mutation at most — a
        // mutation directly followed by another mutation coalesces).
        assert!(
            plane.recompiles() <= mutations + 1,
            "seed {seed}: {} recompiles for {mutations} mutations",
            plane.recompiles()
        );
        assert!(plane.recompiles() >= 2, "mutations must force recompiles");
    }
}

#[test]
fn scratch_arena_stops_growing_after_warmup() {
    // The scratch-reuse counter: after one pass over the workload shapes,
    // a second identical pass must not grow any buffer.
    let cb = CaseGen::new(8, 12, 6, 10).seed(7).build();
    let pool = RequestGen::new(&cb).seed(8).count(256).generate();
    let mut plane = PlaneEngine::new();
    let mut out = Vec::new();
    let mut ranked = Vec::new();
    let pass = |plane: &mut PlaneEngine, out: &mut Vec<_>, ranked: &mut Vec<_>| {
        for chunk in pool.chunks(32) {
            let batch: Vec<&Request> = chunk.iter().collect();
            plane.retrieve_batch_into(&cb, &batch, out);
        }
        for request in &pool {
            plane.retrieve(&cb, request).unwrap();
            plane.retrieve_n_best_into(&cb, request, 4, ranked).unwrap();
        }
    };
    pass(&mut plane, &mut out, &mut ranked);
    let warm = plane.scratch_grows();
    pass(&mut plane, &mut out, &mut ranked);
    assert_eq!(
        plane.scratch_grows(),
        warm,
        "steady state must not grow the scratch arena"
    );
}
