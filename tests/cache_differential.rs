//! The cache proof: model-based differential testing of `rqfa-cache`.
//!
//! A brute-force **reference model** re-implements the normative cache
//! semantics (`docs/caching.md`) with none of the production data
//! structures: entries live in a flat `Vec`, victims are found by linear
//! scans, recency is an explicit age field. Seeded random operation
//! traces — lookup / coverage-gated lookup / insert / mutate-generation /
//! remove — drive the real
//! [`GenCache`] and the model in lockstep and demand bit-identical
//! observable behaviour (returned values, resident count, and the full
//! statistics block) after *every* operation, for every eviction policy,
//! with and without the admission filter.
//!
//! On top of the generic differential core:
//!
//! * **FIFO facade compatibility** — the service's `RetrievalCache` in
//!   its default configuration replays mutation-free traces bit-
//!   identically to a verbatim copy of the pre-refactor FIFO cache
//!   (`LegacyFifoCache` below). With generation mutations the two differ
//!   *by design* in exactly one way: the legacy cache let a refreshed
//!   stale entry keep its original insertion age (so a just-recomputed
//!   result could be the next eviction victim); the unified store drops
//!   stale entries at detection and re-ages the refresh. A dedicated
//!   regression pins that divergence.
//! * **n-best subsumption** — a cached top-k ranking answers best-of and
//!   top-j (j ≤ k) lookups bit-identically to an engine recompute, and
//!   one generation bump invalidates every view of the entry atomically.
//! * **Answer invariance** — no policy ever changes *what* the service
//!   answers, only how often it answers from cache.

use std::collections::{HashMap, VecDeque};

use rqfa::cache::{CachePolicy, GenCache};
use rqfa::core::{
    CaseMutation, FixedEngine, Generation, ImplId, OpCounts, QosClass, Retrieval, Scored,
};
use rqfa::fixed::Q15;
use rqfa::service::cache::RetrievalCache;
use rqfa::service::{AllocationService, Outcome, ServiceConfig};
use rqfa::workloads::rng::SmallRng;
use rqfa::workloads::{CaseGen, RequestGen};

const SEEDS: u64 = 10;
const OPS_PER_TRACE: usize = 10_000;
const CAPACITY: usize = 16;
const KEY_UNIVERSE: u64 = 64;

// ---------------------------------------------------------------------------
// The reference model
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Tier {
    Probation,
    Protected,
}

#[derive(Debug, Clone)]
struct ModelEntry {
    key: u64,
    stamp: u64,
    value: u64,
    /// Policy age: insertion order (FIFO), last use (LRU), or segment
    /// position (2Q). Assigned from one monotone counter.
    age: u64,
    tier: Tier,
}

/// Observable counters, mirroring `rqfa_cache::CacheStats` field by field.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct ModelStats {
    lookups: u64,
    hits: u64,
    misses: u64,
    stale: u64,
    uncovered: u64,
    insertions: u64,
    rejected: u64,
    evictions: u64,
}

/// Brute-force executable specification of the cache semantics.
struct ModelCache {
    capacity: usize,
    policy: CachePolicy,
    protected_cap: usize,
    seq: u64,
    entries: Vec<ModelEntry>,
    /// Direct-mapped doorkeeper, same sizing rule as `AdmissionFilter`:
    /// `(4 × capacity).clamp(16, 2^20)` rounded up to a power of two.
    admission: Option<Vec<u64>>,
    stats: ModelStats,
}

/// SplitMix64 finalizer — the slot-spreading function the admission
/// filter specifies.
fn mix(key: u64) -> u64 {
    let mut z = key.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl ModelCache {
    fn new(capacity: usize, policy: CachePolicy, admission: bool) -> ModelCache {
        ModelCache {
            capacity,
            policy,
            protected_cap: capacity.saturating_mul(3) / 4,
            seq: 0,
            entries: Vec::new(),
            admission: admission
                .then(|| vec![0; capacity.saturating_mul(4).clamp(16, 1 << 20).next_power_of_two()]),
            stats: ModelStats::default(),
        }
    }

    fn position(&self, key: u64) -> Option<usize> {
        self.entries.iter().position(|e| e.key == key)
    }

    fn next_age(&mut self) -> u64 {
        self.seq += 1;
        self.seq
    }

    /// The policy's reaction to a use of a resident key.
    fn touch(&mut self, index: usize) {
        match self.policy {
            CachePolicy::Fifo => {}
            CachePolicy::Lru => {
                let age = self.next_age();
                self.entries[index].age = age;
            }
            CachePolicy::TwoQ => match self.entries[index].tier {
                Tier::Probation => {
                    let age = self.next_age();
                    self.entries[index].tier = Tier::Protected;
                    self.entries[index].age = age;
                    // Protected overflow demotes its LRU to probation MRU.
                    while self
                        .entries
                        .iter()
                        .filter(|e| e.tier == Tier::Protected)
                        .count()
                        > self.protected_cap
                    {
                        let demote = self
                            .entries
                            .iter()
                            .enumerate()
                            .filter(|(_, e)| e.tier == Tier::Protected)
                            .min_by_key(|(_, e)| e.age)
                            .map(|(i, _)| i)
                            .expect("non-empty protected segment");
                        let age = self.next_age();
                        self.entries[demote].tier = Tier::Probation;
                        self.entries[demote].age = age;
                    }
                }
                Tier::Protected => {
                    let age = self.next_age();
                    self.entries[index].age = age;
                }
            },
        }
    }

    fn lookup(&mut self, key: u64, stamp: u64) -> Option<u64> {
        self.lookup_if(key, stamp, |_| true)
    }

    fn lookup_if(&mut self, key: u64, stamp: u64, covers: impl FnOnce(u64) -> bool) -> Option<u64> {
        self.stats.lookups += 1;
        match self.position(key) {
            Some(index) if self.entries[index].stamp == stamp => {
                if covers(self.entries[index].value) {
                    self.stats.hits += 1;
                    self.touch(index);
                    Some(self.entries[index].value)
                } else {
                    // Uncovered: a miss that leaves the entry resident
                    // (and does not touch the policy).
                    self.stats.misses += 1;
                    self.stats.uncovered += 1;
                    None
                }
            }
            Some(index) => {
                // Stale: dropped at detection, so the refresh re-ages.
                self.stats.misses += 1;
                self.stats.stale += 1;
                self.entries.remove(index);
                None
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    fn insert(&mut self, key: u64, stamp: u64, value: u64) {
        if self.capacity == 0 {
            return;
        }
        if let Some(index) = self.position(key) {
            self.entries[index].stamp = stamp;
            self.entries[index].value = value;
            self.stats.insertions += 1;
            // Overwrite = use, except FIFO keeps the insertion age.
            self.touch(index);
            return;
        }
        if let Some(slots) = &mut self.admission {
            let index = usize::try_from(mix(key) & (slots.len() as u64 - 1)).unwrap();
            if slots[index] != key {
                slots[index] = key;
                self.stats.rejected += 1;
                return;
            }
        }
        while self.entries.len() >= self.capacity {
            let victim = match self.policy {
                CachePolicy::Fifo | CachePolicy::Lru => self
                    .entries
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, e)| e.age)
                    .map(|(i, _)| i),
                CachePolicy::TwoQ => self
                    .entries
                    .iter()
                    .enumerate()
                    .filter(|(_, e)| e.tier == Tier::Probation)
                    .min_by_key(|(_, e)| e.age)
                    .map(|(i, _)| i)
                    .or_else(|| {
                        self.entries
                            .iter()
                            .enumerate()
                            .min_by_key(|(_, e)| e.age)
                            .map(|(i, _)| i)
                    }),
            };
            let Some(victim) = victim else { break };
            self.entries.remove(victim);
            self.stats.evictions += 1;
        }
        let age = self.next_age();
        self.entries.push(ModelEntry {
            key,
            stamp,
            value,
            age,
            tier: Tier::Probation,
        });
        self.stats.insertions += 1;
    }

    fn remove(&mut self, key: u64) -> Option<u64> {
        let index = self.position(key)?;
        Some(self.entries.remove(index).value)
    }

    fn len(&self) -> usize {
        self.entries.len()
    }
}

// ---------------------------------------------------------------------------
// The differential core
// ---------------------------------------------------------------------------

/// One seeded trace through the real cache and the model, asserting
/// identical observable behaviour after every operation.
fn drive_trace(policy: CachePolicy, admission: bool, seed: u64) -> ModelStats {
    let label = format!("policy={policy} admission={admission} seed={seed}");
    let mut real: GenCache<u64, u64> = GenCache::new(CAPACITY, policy).with_admission(admission);
    let mut model = ModelCache::new(CAPACITY, policy, admission);
    let mut rng = SmallRng::seed_from_u64(seed ^ 0xD1FF_CACE);
    let mut generation: u64 = 0;
    let mut next_value: u64 = 0;
    for step in 0..OPS_PER_TRACE {
        let key = rng.gen_range(0..KEY_UNIVERSE);
        match rng.gen_range(0..100u32) {
            // Lookups at the current generation — the only stamp a real
            // caller ever has in hand.
            0..=39 => {
                let want = model.lookup(key, generation);
                let got = real.lookup(key, generation).copied();
                assert_eq!(got, want, "{label} step {step}: lookup({key})");
            }
            // Coverage-gated lookups (the n-best subsumption shape): a
            // fresh entry failing the predicate is an *uncovered* miss
            // that stays resident.
            40..=44 => {
                let covers = |v: u64| !v.is_multiple_of(2);
                let want = model.lookup_if(key, generation, covers);
                let got = real.lookup_if(key, generation, |&v| covers(v)).copied();
                assert_eq!(got, want, "{label} step {step}: lookup_if({key})");
            }
            // Inserts with distinguishable payloads, so a divergence in
            // *which* entry survives shows up as a value mismatch.
            45..=84 => {
                next_value += 1;
                real.insert(key, generation, next_value);
                model.insert(key, generation, next_value);
            }
            // Case-base mutation: every resident entry goes stale at once.
            85..=89 => generation += 1,
            // Targeted invalidation.
            _ => {
                let want = model.remove(key);
                let got = real.remove(key);
                assert_eq!(got, want, "{label} step {step}: remove({key})");
            }
        }
        assert_eq!(real.len(), model.len(), "{label} step {step}: len");
        let s = real.stats();
        let m = model.stats;
        assert_eq!(
            (s.lookups, s.hits, s.misses, s.stale, s.uncovered),
            (m.lookups, m.hits, m.misses, m.stale, m.uncovered),
            "{label} step {step}: lookup counters"
        );
        assert_eq!(
            (s.insertions, s.rejected, s.evictions),
            (m.insertions, m.rejected, m.evictions),
            "{label} step {step}: store counters"
        );
        // The metrics invariants, re-checked continuously.
        assert_eq!(s.hits + s.misses, s.lookups, "{label}: hits+misses==lookups");
        assert!(s.stale + s.uncovered <= s.misses, "{label}: stale⊆misses");
    }
    model.stats
}

#[test]
fn every_policy_matches_the_reference_model_on_seeded_traces() {
    for policy in CachePolicy::ALL {
        for admission in [false, true] {
            let mut exercised = ModelStats::default();
            for seed in 0..SEEDS {
                let s = drive_trace(policy, admission, seed);
                exercised.hits += s.hits;
                exercised.stale += s.stale;
                exercised.uncovered += s.uncovered;
                exercised.evictions += s.evictions;
                exercised.rejected += s.rejected;
            }
            // The traces must actually stress every mechanism they claim
            // to verify.
            assert!(exercised.hits > 1_000, "{policy}: traces barely hit");
            assert!(exercised.stale > 100, "{policy}: staleness not exercised");
            assert!(exercised.uncovered > 100, "{policy}: coverage not exercised");
            assert!(exercised.evictions > 500, "{policy}: eviction not exercised");
            if admission {
                assert!(exercised.rejected > 500, "{policy}: admission not exercised");
            }
        }
    }
}

// ---------------------------------------------------------------------------
// FIFO facade bit-compatibility with the pre-refactor RetrievalCache
// ---------------------------------------------------------------------------

/// Verbatim re-implementation of the pre-refactor
/// `rqfa_service::cache::RetrievalCache` (FIFO order deque, stale entries
/// overwritten in place), kept here as the compatibility oracle.
struct LegacyFifoCache {
    capacity: usize,
    map: HashMap<u64, (Generation, Option<Scored<Q15>>, usize)>,
    order: VecDeque<u64>,
    hits: u64,
    misses: u64,
    stale: u64,
}

impl LegacyFifoCache {
    fn new(capacity: usize) -> LegacyFifoCache {
        LegacyFifoCache {
            capacity,
            map: HashMap::new(),
            order: VecDeque::new(),
            hits: 0,
            misses: 0,
            stale: 0,
        }
    }

    fn lookup(&mut self, fingerprint: u64, generation: Generation) -> Option<Retrieval<Q15>> {
        match self.map.get(&fingerprint) {
            Some(&(stamp, best, evaluated)) if stamp == generation => {
                self.hits += 1;
                Some(Retrieval {
                    best,
                    evaluated,
                    ops: OpCounts::default(),
                })
            }
            Some(_) => {
                self.stale += 1;
                self.misses += 1;
                None
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    fn insert(&mut self, fingerprint: u64, generation: Generation, result: &Retrieval<Q15>) {
        if self.capacity == 0 {
            return;
        }
        if !self.map.contains_key(&fingerprint) {
            while self.map.len() >= self.capacity {
                match self.order.pop_front() {
                    Some(old) => {
                        self.map.remove(&old);
                    }
                    None => break,
                }
            }
            self.order.push_back(fingerprint);
        }
        self.map
            .insert(fingerprint, (generation, result.best, result.evaluated));
    }
}

fn retrieval(raw_impl: u16, evaluated: usize) -> Retrieval<Q15> {
    Retrieval {
        best: Some(Scored {
            impl_id: ImplId::new(raw_impl).unwrap(),
            target: rqfa::core::ExecutionTarget::Dsp,
            similarity: Q15::ONE,
        }),
        evaluated,
        ops: OpCounts::default(),
    }
}

#[test]
fn fifo_facade_is_bit_compatible_with_the_legacy_cache_without_mutations() {
    // Without generation bumps the legacy in-place overwrite and the
    // unified drop-and-reinsert are indistinguishable, so every
    // observable — hit pattern, served values, counters, size — must
    // match exactly, trace for trace.
    let generation = Generation::GENESIS;
    for seed in 0..SEEDS {
        let mut facade = RetrievalCache::new(CAPACITY);
        let mut legacy = LegacyFifoCache::new(CAPACITY);
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x001E_6AC7);
        for step in 0..OPS_PER_TRACE {
            let fingerprint = rng.gen_range(0..KEY_UNIVERSE);
            if rng.gen_bool(0.5) {
                let got = facade.lookup(fingerprint, generation);
                let want = legacy.lookup(fingerprint, generation);
                match (&got, &want) {
                    (Some(a), Some(b)) => {
                        assert_eq!(a.best, b.best, "seed {seed} step {step}");
                        assert_eq!(a.evaluated, b.evaluated, "seed {seed} step {step}");
                    }
                    (None, None) => {}
                    other => panic!("seed {seed} step {step}: diverged: {other:?}"),
                }
            } else {
                // Like the real worker, the recompute for a fingerprint at
                // a fixed generation is a pure function of both — re-inserts
                // carry the identical payload (which is also why the
                // facade's keep-the-wider-entry merge may skip them).
                let result = retrieval(
                    u16::try_from(fingerprint).unwrap() % 4096 + 1,
                    usize::try_from(fingerprint).unwrap() % 7 + 1,
                );
                facade.insert(fingerprint, generation, &result);
                legacy.insert(fingerprint, generation, &result);
            }
            assert_eq!(facade.len(), legacy.map.len(), "seed {seed} step {step}");
            assert_eq!(
                facade.stats(),
                (legacy.hits, legacy.misses, legacy.stale),
                "seed {seed} step {step}"
            );
        }
    }
}

#[test]
fn refresh_re_aging_is_the_one_deliberate_divergence_from_legacy() {
    // The satellite fix: the legacy cache kept a refreshed entry's
    // original FIFO age, so the entry recomputed *last* was evicted
    // *first*. Same operations, opposite survivors.
    let g0 = Generation::GENESIS;
    let g1 = g0.next();

    // The shared script: fill a 2-entry cache, let a mutation land, have
    // fingerprint 1 re-requested (stale miss + refresh), then force one
    // eviction with a third fingerprint.
    let mut facade = RetrievalCache::new(2);
    facade.insert(1, g0, &retrieval(10, 1));
    facade.insert(2, g0, &retrieval(20, 1));
    assert!(facade.lookup(1, g1).is_none());
    facade.insert(1, g1, &retrieval(11, 1));
    facade.insert(3, g1, &retrieval(30, 1));

    let mut legacy = LegacyFifoCache::new(2);
    legacy.insert(1, g0, &retrieval(10, 1));
    legacy.insert(2, g0, &retrieval(20, 1));
    assert!(legacy.lookup(1, g1).is_none());
    legacy.insert(1, g1, &retrieval(11, 1));
    legacy.insert(3, g1, &retrieval(30, 1));
    // Unified semantics: the refreshed 1 is the *newest* entry, so the
    // eviction takes 2 (the oldest untouched resident).
    assert!(facade.lookup(1, g1).is_some(), "refreshed entry must survive");
    assert!(facade.lookup(3, g1).is_some());
    assert!(facade.lookup(2, g1).is_none());
    // Legacy semantics: the refresh kept 1's original insertion age, so
    // 1 was evicted moments after being recomputed while the stale 2
    // stayed resident — the bug this PR fixes (residency checked via the
    // oracle's internals; a lookup of 2 would be masked by staleness).
    assert!(!legacy.map.contains_key(&1), "legacy evicts the refresh");
    assert!(legacy.map.contains_key(&2), "legacy keeps the stale resident");
    assert!(legacy.map.contains_key(&3));
}

// ---------------------------------------------------------------------------
// n-best subsumption vs engine recompute
// ---------------------------------------------------------------------------

#[test]
fn cached_n_best_answers_best_of_and_smaller_n_bit_identically_to_recompute() {
    let mut case_base = CaseGen::new(6, 8, 4, 6).seed(0x5B5).build();
    let engine = FixedEngine::new();
    // Distinct fingerprints only: the coverage bookkeeping below assumes
    // one cached entry per request (a repeat would widen an older entry).
    let mut seen = std::collections::HashSet::new();
    let requests: Vec<_> = RequestGen::new(&case_base)
        .seed(0x17)
        .count(60)
        .repeat_fraction(0.0)
        .generate()
        .into_iter()
        .filter(|r| seen.insert(r.fingerprint()))
        .collect();
    assert!(requests.len() > 40, "workload collapsed to {}", requests.len());
    let mut cache = RetrievalCache::new(1024);
    let mut rng = SmallRng::seed_from_u64(0xBE57);
    let mut cached_fingerprints = Vec::new();
    for (index, request) in requests.iter().enumerate() {
        let fingerprint = request.fingerprint();
        let generation = case_base.generation();
        let k = rng.gen_range(1..=6usize);
        let nbest = engine.retrieve_n_best(&case_base, request, k).unwrap();
        cache.insert_n_best(fingerprint, generation, k, &nbest);
        cached_fingerprints.push(fingerprint);

        // Best-of: bit-identical to the single-result engine (the rank
        // tie-break guarantees rank(…, 1)[0] == retrieve().best).
        let direct = engine.retrieve(&case_base, request).unwrap();
        let served = cache
            .lookup(fingerprint, generation)
            .expect("covered best-of must hit");
        assert_eq!(served.best, direct.best, "request {index}");
        assert_eq!(served.evaluated, direct.evaluated, "request {index}");

        // Every j ≤ k: the exact prefix the engine would recompute.
        for j in 0..=k {
            let direct_j = engine.retrieve_n_best(&case_base, request, j).unwrap();
            let served_j = cache
                .lookup_n_best(fingerprint, generation, j)
                .expect("j ≤ k is covered");
            assert_eq!(served_j.ranked, direct_j.ranked, "request {index} j={j}");
            assert_eq!(served_j.evaluated, direct_j.evaluated, "request {index} j={j}");
        }

        // j > k: answered only when the cached ranking is complete
        // (k ≥ evaluated) — and then still bit-identically.
        let beyond = k + 1;
        match cache.lookup_n_best(fingerprint, generation, beyond) {
            Some(served_beyond) => {
                assert!(k >= direct.evaluated, "request {index}: incomplete entry over-served");
                let direct_beyond = engine
                    .retrieve_n_best(&case_base, request, beyond)
                    .unwrap();
                assert_eq!(served_beyond.ranked, direct_beyond.ranked);
            }
            None => assert!(k < direct.evaluated, "request {index}: complete entry under-served"),
        }
    }

    // One mutation invalidates *every view* of every entry atomically.
    let victim_type = case_base.function_types()[0].id();
    let victim_impl = case_base.function_types()[0].variants()[0].id();
    let stale_before = cache.cache_stats().stale;
    case_base
        .apply_mutation(&CaseMutation::Evict {
            type_id: victim_type,
            impl_id: victim_impl,
        })
        .unwrap();
    let generation = case_base.generation();
    for fingerprint in &cached_fingerprints {
        assert!(cache.lookup_n_best(*fingerprint, generation, 1).is_none());
        assert!(cache.lookup(*fingerprint, generation).is_none());
    }
    assert!(
        cache.cache_stats().stale > stale_before,
        "the bump must surface as stale drops, not silent cold misses"
    );

    // And recomputes against the mutated case base re-populate correctly.
    for (index, request) in requests.iter().enumerate().take(10) {
        let fingerprint = request.fingerprint();
        let nbest = engine.retrieve_n_best(&case_base, request, 4).unwrap();
        cache.insert_n_best(fingerprint, generation, 4, &nbest);
        let direct = engine.retrieve(&case_base, request).unwrap();
        let served = cache.lookup(fingerprint, generation).unwrap();
        assert_eq!(served.best, direct.best, "post-mutation request {index}");
    }
}

// ---------------------------------------------------------------------------
// Policies change hit rates, never answers
// ---------------------------------------------------------------------------

#[test]
fn no_policy_changes_what_the_service_answers() {
    let case_base = CaseGen::new(8, 6, 5, 8).seed(0xCAFE).build();
    let requests = RequestGen::new(&case_base)
        .seed(0xAB)
        .count(400)
        .repeat_fraction(0.5)
        .generate();
    let engine = FixedEngine::new();
    for policy in CachePolicy::ALL {
        for admission in [false, true] {
            let service = AllocationService::new(
                &case_base,
                &ServiceConfig::default()
                    .with_shards(2)
                    // Tiny cache: plenty of evictions and re-computes.
                    .with_cache_capacity(8)
                    .with_cache_policy(policy)
                    .with_cache_admission(admission),
            ).expect("valid service config");
            let tickets: Vec<_> = requests
                .iter()
                .map(|r| service.submit(r.clone(), QosClass::Medium))
                .collect();
            for (request, ticket) in requests.iter().zip(tickets) {
                let reply = ticket.wait().unwrap();
                let direct = engine.retrieve(&case_base, request).unwrap();
                match reply.outcome {
                    Outcome::Allocated { best, .. } => {
                        assert_eq!(
                            best,
                            direct.best.unwrap(),
                            "{policy} admission={admission}: answer changed"
                        );
                    }
                    other => panic!("{policy}: unexpected outcome {other:?}"),
                }
            }
            service.shutdown();
        }
    }
}
