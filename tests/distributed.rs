//! Deterministic multi-node fault-injection harness (normative contract:
//! `docs/distribution.md`).
//!
//! A two-node loopback cluster — each node a real [`AllocationService`]
//! behind a real TCP [`NodeServer`] — must answer **bit-identically** to a
//! single-node sharded oracle fed the same request and mutation stream, no
//! matter what the transport does:
//!
//! 1. **Clean transport** — the full reply stream (ids, classes, outcomes,
//!    latencies under a frozen clock) equals the oracle's, with learning
//!    traffic interleaved and per-shard generations agreeing move by move.
//! 2. **Byte-level faults** — dropped, duplicated, truncated and
//!    split/delayed frames are absorbed by the bounded retry discipline;
//!    the reply stream is *still* bit-identical and nothing hangs.
//! 3. **Retry exhaustion** — a dead transport surfaces as
//!    [`Outcome::Unavailable`] after exactly the policy's attempt budget,
//!    and the client recovers on the next call once frames flow again.
//! 4. **Replication under kills** — snapshot shipping and WAL-tail
//!    streaming over TCP converge to a byte-identical replica even when
//!    the stream is killed mid-snapshot (reset + re-ship) or mid-tail
//!    (the consistent prefix survives, the tail resumes from the
//!    follower's generation).
//! 5. **Failover** — killing the leader mid-cluster and promoting its
//!    follower behind the same node id keeps the cluster's answers and
//!    generations bit-identical to the oracle, which never noticed.
//! 6. **Self-healing** — a [`Supervisor`] driving heartbeat probes
//!    through a [`FailureDetector`] under a `ManualClock` promotes a
//!    dead leader's standby automatically (never inside the lease
//!    bound, always once the lease decays), fences the deposed
//!    leader's mutations by epoch, keeps CRITICAL traffic on live
//!    shards completing through the outage, and sheds predictably-late
//!    LOW work fast — all bit-identical to the oracle and reproducible
//!    from seeded [`ChaosPlan`] schedules.

use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use rqfa::core::placement::{NodeId, NodeMap};
use rqfa::core::{CaseBase, Request};
use rqfa::core::QosClass;
use rqfa::memlist::encode_case_base;
use rqfa::net::{
    connect_loopback, shared_plan, FailureDetector, FaultAction, FaultPlan, FaultyStream, Follower,
    FrameConn, Message, NetStats, RetryPolicy, SharedFaultPlan, TailAck,
};
use rqfa::persist::StampedMutation;
use rqfa::service::remote::{
    replicate_shard, serve_follower, ClusterClient, NodeServer, PromoteFn, RemoteShard,
    RemoteStream, StreamFactory, Supervisor, SupervisorEvent,
};
use rqfa::service::{shard, AllocationService, Outcome, ServiceConfig, ServiceError};
use rqfa::telemetry::{ManualClock, SharedClock};
use rqfa::workloads::{CaseGen, ChaosAction, ChaosPlan, MutationGen, RequestGen};

const NODES: usize = 2;

fn frozen_clock() -> SharedClock {
    Arc::new(ManualClock::new())
}

/// One node's config: a single shard over its slice, caching off (so
/// `cached` flags cannot diverge from the oracle's), the shared frozen
/// clock (so every latency is 0 on both sides), manual checkpoints only
/// (so the WAL keeps the full tail for replication).
fn node_config(clock: &SharedClock) -> ServiceConfig {
    ServiceConfig::default()
        .with_shards(1)
        .with_cache_capacity(0)
        .with_queue_capacity(4096)
        .with_snapshot_every(0)
        .with_clock(Arc::clone(clock))
}

fn oracle_config(clock: &SharedClock) -> ServiceConfig {
    ServiceConfig::default()
        .with_shards(NODES)
        .with_cache_capacity(0)
        .with_queue_capacity(4096)
        .with_clock(Arc::clone(clock))
}

/// A remote-shard client whose every connection writes through a
/// [`FaultyStream`] driven by `plan` (the plan is shared across
/// reconnects, so a retry consumes the *next* scripted action).
fn faulty_remote(
    addr: SocketAddr,
    plan: SharedFaultPlan,
    timeout: Duration,
    policy: RetryPolicy,
) -> RemoteShard {
    let factory: StreamFactory = Box::new(move || {
        let stream = connect_loopback(addr, timeout)?;
        Ok(Box::new(FaultyStream::new(stream, Arc::clone(&plan))) as Box<dyn RemoteStream>)
    });
    RemoteShard::new(factory, policy)
}

/// A fully remote two-node cluster over real TCP loopback: node `n`
/// serves slice `n` of `base` as a one-shard service.
struct Cluster {
    servers: Vec<NodeServer>,
    stats: Vec<Arc<NetStats>>,
    client: ClusterClient,
}

fn spawn_cluster(
    base: &CaseBase,
    clock: &SharedClock,
    plans: Option<&[SharedFaultPlan]>,
    timeout: Duration,
    policy: RetryPolicy,
) -> Cluster {
    let slices = shard::partition(base, NODES);
    let placement = NodeMap::new(
        (0..NODES)
            .map(|n| Some(NodeId::new(u16::try_from(n).unwrap())))
            .collect(),
    );
    let client = ClusterClient::new(Box::new(placement), None);
    let mut servers = Vec::new();
    let mut stats = Vec::new();
    for (n, slice) in slices.into_iter().enumerate() {
        let slice = slice.expect("these workloads populate every shard");
        let service = Arc::new(
            AllocationService::new(&slice, &node_config(clock)).expect("valid node config"),
        );
        // The server's accept/connection threads own the service from
        // here on.
        let server = NodeServer::spawn(service).expect("loopback bind");
        let remote = match plans {
            Some(plans) => faulty_remote(server.addr(), Arc::clone(&plans[n]), timeout, policy),
            None => RemoteShard::tcp(server.addr(), timeout, policy),
        };
        stats.push(remote.stats());
        client.set_node(NodeId::new(u16::try_from(n).unwrap()), remote);
        servers.push(server);
    }
    Cluster {
        servers,
        stats,
        client,
    }
}

/// Feeds the same request/mutation stream to the cluster and the oracle
/// in lockstep and asserts full bit-identity: every [`rqfa::service::Reply`]
/// equal, every mutation acknowledged with exactly the generation the
/// oracle's owning shard reached.
fn drive(
    client: &ClusterClient,
    oracle: &AllocationService,
    requests: Vec<Request>,
    mutations: &mut MutationGen,
    mutate_every: usize,
) {
    for (i, request) in requests.into_iter().enumerate() {
        let class = QosClass::ALL[i % QosClass::ALL.len()];
        let deadline = (i % 7 == 3).then(|| Duration::from_millis(50));
        let cluster_reply = match deadline {
            Some(d) => client.submit_with_deadline(request.clone(), class, d),
            None => client.submit(request.clone(), class),
        };
        let oracle_reply = match deadline {
            Some(d) => oracle.submit_with_deadline(request, class, d),
            None => oracle.submit(request, class),
        }
        .wait()
        .expect("oracle answers");
        assert!(
            !matches!(cluster_reply.outcome, Outcome::Unavailable { .. }),
            "request {i} unexpectedly unavailable"
        );
        assert_eq!(cluster_reply, oracle_reply, "request {i} diverged from the oracle");
        if mutate_every != 0 && i % mutate_every == mutate_every - 1 {
            let mutation = mutations.next_mutation();
            let owner = shard::route(mutation.type_id(), NODES);
            let cluster_gen = client
                .apply_mutation(&mutation)
                .expect("cluster applies the mutation");
            oracle
                .apply_mutation(&mutation)
                .expect("oracle applies the mutation");
            assert_eq!(
                cluster_gen,
                oracle.shard_generation(owner),
                "mutation after request {i}: shard {owner} generations diverged"
            );
        }
    }
}

#[test]
fn cluster_replies_bit_identically_to_the_single_node_oracle() {
    let clock = frozen_clock();
    let base = CaseGen::new(10, 5, 4, 6).seed(0xD15).build();
    let cluster = spawn_cluster(
        &base,
        &clock,
        None,
        Duration::from_millis(500),
        RetryPolicy::loopback(),
    );
    let oracle = AllocationService::new(&base, &oracle_config(&clock)).expect("oracle");

    let requests = RequestGen::new(&base).seed(9).count(120).generate();
    let mut mutations = MutationGen::new(&base, 0xA5A5);
    drive(&cluster.client, &oracle, requests, &mut mutations, 5);

    // A clean transport never retried.
    for stats in &cluster.stats {
        assert_eq!(stats.retries.load(Ordering::Relaxed), 0);
        assert!(stats.frames_sent.load(Ordering::Relaxed) > 0);
    }
    for server in cluster.servers {
        server.shutdown();
    }
}

#[test]
fn fault_injection_is_absorbed_by_bounded_retries() {
    // Every fault type in turn, then a seeded mix: the reply stream must
    // stay bit-identical to the oracle's — faults cost retries, never
    // answers.
    let scripted = [
        ("drop", FaultAction::Drop),
        ("duplicate", FaultAction::Duplicate),
        ("truncate", FaultAction::Truncate),
        ("split-delay", FaultAction::SplitDelay),
    ];
    let policy = RetryPolicy {
        attempts: 8,
        base_backoff: Duration::from_millis(1),
        jitter_seed: 0,
    };
    for (name, action) in scripted {
        let plans: Vec<SharedFaultPlan> = (0..NODES)
            .map(|n| {
                // Hit every 3rd frame on node 0, every 4th on node 1 so
                // the two links fail out of phase.
                let period = 3 + n;
                shared_plan(FaultPlan::scripted(
                    (0..64)
                        .map(|i| if i % period == period - 1 { action } else { FaultAction::Pass })
                        .collect(),
                ))
            })
            .collect();
        let clock = frozen_clock();
        let base = CaseGen::new(8, 4, 4, 6).seed(0xFA0).build();
        let cluster = spawn_cluster(
            &base,
            &clock,
            Some(&plans),
            Duration::from_millis(60),
            policy,
        );
        let oracle = AllocationService::new(&base, &oracle_config(&clock)).expect("oracle");
        let requests = RequestGen::new(&base).seed(31).count(36).generate();
        let mut mutations = MutationGen::new(&base, 0xBE11);
        drive(&cluster.client, &oracle, requests, &mut mutations, 6);
        if matches!(action, FaultAction::Drop | FaultAction::Truncate) {
            // Lossy faults must have been *visible* — absorbed by
            // retries, not silently missed by the plan.
            let retries: u64 = cluster
                .stats
                .iter()
                .map(|s| s.retries.load(Ordering::Relaxed))
                .sum();
            assert!(retries > 0, "{name}: expected the faults to cost retries");
        }
        for server in cluster.servers {
            server.shutdown();
        }
    }

    // Seeded mixed plans: same invariant, adversary chosen by PRNG.
    let plans: Vec<SharedFaultPlan> = (0..NODES)
        .map(|n| shared_plan(FaultPlan::seeded(0xD0 + n as u64, 64)))
        .collect();
    let clock = frozen_clock();
    let base = CaseGen::new(8, 4, 4, 6).seed(0xFA1).build();
    let cluster = spawn_cluster(
        &base,
        &clock,
        Some(&plans),
        Duration::from_millis(60),
        policy,
    );
    let oracle = AllocationService::new(&base, &oracle_config(&clock)).expect("oracle");
    let requests = RequestGen::new(&base).seed(32).count(36).generate();
    let mut mutations = MutationGen::new(&base, 0xBE12);
    drive(&cluster.client, &oracle, requests, &mut mutations, 6);
    for server in cluster.servers {
        server.shutdown();
    }
}

#[test]
fn retry_exhaustion_surfaces_bounded_unavailability() {
    let clock = frozen_clock();
    let base = CaseGen::new(8, 4, 4, 6).seed(0xEE).build();
    let policy = RetryPolicy {
        attempts: 3,
        base_backoff: Duration::from_millis(1),
        jitter_seed: 0,
    };
    // Exactly enough drops to exhaust one call's budget; everything
    // after passes — the client must recover on the next call.
    let plans: Vec<SharedFaultPlan> = (0..NODES)
        .map(|_| {
            shared_plan(FaultPlan::scripted(vec![
                FaultAction::Drop,
                FaultAction::Drop,
                FaultAction::Drop,
            ]))
        })
        .collect();
    let cluster = spawn_cluster(&base, &clock, Some(&plans), Duration::from_millis(40), policy);

    let requests = RequestGen::new(&base).seed(5).count(8).generate();
    let first = cluster.client.submit(requests[0].clone(), QosClass::High);
    assert_eq!(
        first.outcome,
        Outcome::Unavailable { attempts: 3 },
        "a dead link must fail after exactly the retry budget"
    );
    // The plan is spent; the very next call goes through.
    let second = cluster.client.submit(requests[1].clone(), QosClass::High);
    assert!(
        matches!(second.outcome, Outcome::Allocated { .. }),
        "recovery after the faults cleared: {:?}",
        second.outcome
    );
    let shard0 = shard::route(requests[0].type_id(), NODES);
    let timeouts = cluster.stats[shard::route(requests[0].type_id(), NODES)]
        .timeouts
        .load(Ordering::Relaxed);
    assert_eq!(timeouts, 3, "shard {shard0}: every dropped frame timed out once");
    for server in cluster.servers {
        server.shutdown();
    }
}

/// Accepts one replication stream on `listener` and serves it into
/// `follower`, returning the follower (with whatever consistent prefix
/// it reached) when the leader closes or kills the stream.
fn follower_session(
    listener: Arc<TcpListener>,
    follower: Follower,
) -> thread::JoinHandle<(Follower, Result<(), ServiceError>)> {
    thread::spawn(move || {
        let (stream, _) = listener.accept().expect("accept replication stream");
        let mut conn = FrameConn::new(stream);
        let mut follower = follower;
        let result = serve_follower(&mut conn, &mut follower);
        (follower, result)
    })
}

fn leader_conn(addr: SocketAddr) -> FrameConn<TcpStream> {
    FrameConn::new(connect_loopback(addr, Duration::from_secs(2)).expect("leader connects"))
}

/// Streams `tail` record by record, asserting the per-record ack
/// handshake advances through exactly the stamped generations.
fn stream_tail(conn: &mut FrameConn<TcpStream>, tail: &[StampedMutation]) {
    for stamped in tail {
        let stamp = stamped.generation;
        conn.send(&Message::TailFrame(stamped.clone()))
            .expect("tail frame sent");
        match conn.recv() {
            Ok((Message::TailAck(TailAck { generation }), _)) => {
                assert_eq!(generation, stamp.raw(), "follower acked the wrong generation");
            }
            other => panic!("expected a tail ack, got {other:?}"),
        }
    }
}

fn scratch_dir(label: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("rqfa-dist-{label}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn replication_converges_through_kills_mid_snapshot_and_mid_tail() {
    let clock = frozen_clock();
    let base = CaseGen::new(6, 4, 4, 6).seed(0xBEEF).build();
    let dir = scratch_dir("repl");
    let leader =
        AllocationService::durable_create(&base, &dir, &node_config(&clock)).expect("leader");
    let mut mutations = MutationGen::new(&base, 0xC0FFEE);
    for mutation in mutations.take(24) {
        leader.apply_mutation(&mutation).expect("leader learns");
    }

    let listener = Arc::new(TcpListener::bind("127.0.0.1:0").expect("bind follower"));
    let addr = listener.local_addr().expect("follower addr");

    // Round 1: the stream dies mid-snapshot — only half the chunks make
    // it. The follower comes back empty-handed but intact.
    let session = follower_session(Arc::clone(&listener), Follower::new());
    {
        let (container, snap_gen) = leader.export_shard_snapshot(0).expect("export");
        let messages =
            rqfa::net::snapshot_stream(&container, snap_gen, 8).expect("snapshot stream");
        assert!(messages.len() > 4, "chunking must actually chunk");
        let mut conn = leader_conn(addr);
        for message in &messages[..messages.len() / 2] {
            conn.send(message).expect("partial ship");
        }
        // Kill: the connection drops here.
    }
    let (mut follower, result) = session.join().expect("follower session");
    result.expect("a killed stream is a clean return, not an error");
    assert!(follower.case_base().is_none(), "half a snapshot installs nothing");

    // Round 2: reset and re-ship — the full protocol this time.
    follower.reset();
    let session = follower_session(Arc::clone(&listener), follower);
    let synced = {
        let mut conn = leader_conn(addr);
        replicate_shard(&leader, 0, &mut conn, 8).expect("full replication round")
    };
    let (follower, result) = session.join().expect("follower session");
    result.expect("clean stream end");
    assert_eq!(synced, leader.shard_generation(0));
    assert_eq!(follower.generation(), Some(synced));

    // The leader keeps learning; the follower is now stale by 12 moves.
    for mutation in mutations.take(12) {
        leader.apply_mutation(&mutation).expect("leader learns");
    }

    // Round 3: the WAL tail stream dies half way. The follower keeps the
    // consistent prefix it acked.
    let tail = leader.shard_wal_tail(0, synced).expect("tail");
    assert_eq!(tail.len(), 12);
    let session = follower_session(Arc::clone(&listener), follower);
    {
        let mut conn = leader_conn(addr);
        stream_tail(&mut conn, &tail[..6]);
        // Kill mid-tail.
    }
    let (follower, result) = session.join().expect("follower session");
    result.expect("a killed tail is a clean return");
    let prefix = follower.generation().expect("prefix survives");
    assert_eq!(prefix.raw(), synced.raw() + 6);

    // Round 4: resume from the follower's generation — no re-ship.
    let resume = leader.shard_wal_tail(0, prefix).expect("resume tail");
    assert_eq!(resume.len(), 6);
    let session = follower_session(Arc::clone(&listener), follower);
    {
        let mut conn = leader_conn(addr);
        stream_tail(&mut conn, &resume);
    }
    let (follower, result) = session.join().expect("follower session");
    result.expect("clean stream end");

    // Promotion: the replica is byte-identical to the leader's state
    // (the generator's scratch copy replayed the same stream).
    let replica = follower.promote().expect("promotable");
    assert_eq!(replica.generation(), leader.shard_generation(0));
    let replica_image = encode_case_base(&replica).expect("replica image");
    let leader_image = encode_case_base(mutations.case_base()).expect("leader image");
    assert_eq!(
        replica_image.image(),
        leader_image.image(),
        "replica must converge to the leader's exact memlist image"
    );
    drop(leader);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn leader_kill_failover_promotes_the_follower() {
    let clock = frozen_clock();
    let base = CaseGen::new(10, 5, 4, 6).seed(0xFA11).build();
    let dir = scratch_dir("failover");

    // Node 0 is durable (it will be replicated and killed); node 1 is a
    // plain ephemeral node; the oracle shadows both.
    let slices = shard::partition(&base, NODES);
    let slice0 = slices[0].clone().expect("shard 0 populated");
    let service0 = Arc::new(
        AllocationService::durable_create(&slice0, &dir, &node_config(&clock)).expect("node 0"),
    );
    let service1 = Arc::new(
        AllocationService::new(
            &slices[1].clone().expect("shard 1 populated"),
            &node_config(&clock),
        )
        .expect("node 1"),
    );
    let server0 = NodeServer::spawn(Arc::clone(&service0)).expect("node 0 server");
    let server1 = NodeServer::spawn(Arc::clone(&service1)).expect("node 1 server");
    let policy = RetryPolicy::loopback();
    let timeout = Duration::from_millis(500);
    let placement = NodeMap::new(vec![Some(NodeId::new(0)), Some(NodeId::new(1))]);
    let client = ClusterClient::new(Box::new(placement), None);
    client.set_node(NodeId::new(0), RemoteShard::tcp(server0.addr(), timeout, policy));
    client.set_node(NodeId::new(1), RemoteShard::tcp(server1.addr(), timeout, policy));
    let oracle = AllocationService::new(&base, &oracle_config(&clock)).expect("oracle");
    let mut mutations = MutationGen::new(&base, 0x5EED);

    // Phase 1: normal operation with learning traffic.
    let requests = RequestGen::new(&base).seed(21).count(40).generate();
    drive(&client, &oracle, requests, &mut mutations, 4);

    // Snapshot-ship node 0 to a follower over TCP…
    let listener = Arc::new(TcpListener::bind("127.0.0.1:0").expect("bind follower"));
    let addr = listener.local_addr().expect("follower addr");
    let session = follower_session(Arc::clone(&listener), Follower::new());
    let synced = {
        let mut conn = leader_conn(addr);
        replicate_shard(&service0, 0, &mut conn, 16).expect("replication round")
    };
    let (follower, result) = session.join().expect("follower session");
    result.expect("clean stream end");
    assert_eq!(follower.generation(), Some(synced));

    // …keep operating (the follower goes stale)…
    let requests = RequestGen::new(&base).seed(22).count(24).generate();
    drive(&client, &oracle, requests, &mut mutations, 4);

    // …then catch the follower up from the WAL tail alone.
    let tail = service0.shard_wal_tail(0, synced).expect("tail");
    let session = follower_session(Arc::clone(&listener), follower);
    {
        let mut conn = leader_conn(addr);
        stream_tail(&mut conn, &tail);
    }
    let (follower, result) = session.join().expect("follower session");
    result.expect("clean stream end");
    assert_eq!(follower.generation(), Some(service0.shard_generation(0)));

    // Kill the leader. A request routed to its shard now fails boundedly
    // (the oracle consumes the same submit so the id streams stay
    // aligned for the comparison after failover).
    server0.shutdown();
    drop(service0);
    let probe = RequestGen::new(&base)
        .seed(23)
        .count(16)
        .generate()
        .into_iter()
        .find(|r| shard::route(r.type_id(), NODES) == 0)
        .expect("some request routes to shard 0");
    let gap_reply = client.submit(probe.clone(), QosClass::High);
    assert_eq!(
        gap_reply.outcome,
        Outcome::Unavailable {
            attempts: policy.attempts
        },
        "a killed node must surface bounded unavailability"
    );
    oracle
        .submit(probe, QosClass::High)
        .wait()
        .expect("oracle answers");

    // Failover: promote the follower into a fresh service behind the
    // same node id. Its generation counter resumes where the leader's
    // stopped — the oracle never notices the handoff.
    let replica = follower.promote().expect("promotable");
    let promoted = Arc::new(
        AllocationService::new(&replica, &node_config(&clock)).expect("promoted node"),
    );
    assert_eq!(promoted.shard_generation(0), replica.generation());
    let promoted_server = NodeServer::spawn(Arc::clone(&promoted)).expect("promoted server");
    client.set_node(
        NodeId::new(0),
        RemoteShard::tcp(promoted_server.addr(), timeout, policy),
    );

    // Phase 2: full bit-identity again, learning traffic included.
    let requests = RequestGen::new(&base).seed(24).count(40).generate();
    drive(&client, &oracle, requests, &mut mutations, 4);

    server1.shutdown();
    promoted_server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------------
// Self-healing: supervisor, fencing, degradation (ISSUE: PR 10 tentpole)
// ---------------------------------------------------------------------------

/// The lease every self-healing test runs on, in virtual microseconds.
const LEASE_US: u64 = 50_000;
/// Misses before a node's verdict decays to `Down`.
const DOWN_MISSES: u64 = 2;

/// A tight client policy for chaos phases: probes of a dead node must
/// fail in well under a second so a tick stays cheap in wall time.
fn chaos_policy() -> RetryPolicy {
    RetryPolicy {
        attempts: 2,
        base_backoff: Duration::from_millis(1),
        jitter_seed: 0,
    }
}

const CHAOS_TIMEOUT: Duration = Duration::from_millis(40);

#[test]
fn supervisor_promotes_a_dead_leader_fenced_and_bit_identical() {
    let manual = Arc::new(ManualClock::new());
    let clock: SharedClock = Arc::clone(&manual) as SharedClock;
    let base = CaseGen::new(10, 5, 4, 6).seed(0x5E1F).build();
    let dir = scratch_dir("selfheal");
    let policy = chaos_policy();

    // Node 0 is durable (it will be replicated and killed); node 1 is
    // ephemeral; the oracle shadows both.
    let slices = shard::partition(&base, NODES);
    let slice0 = slices[0].clone().expect("shard 0 populated");
    let service0 = Arc::new(
        AllocationService::durable_create(&slice0, &dir, &node_config(&clock)).expect("node 0"),
    );
    let service1 = Arc::new(
        AllocationService::new(
            &slices[1].clone().expect("shard 1 populated"),
            &node_config(&clock),
        )
        .expect("node 1"),
    );
    let server0 = NodeServer::spawn(Arc::clone(&service0)).expect("node 0 server");
    let server1 = NodeServer::spawn(Arc::clone(&service1)).expect("node 1 server");
    let placement = NodeMap::new(vec![Some(NodeId::new(0)), Some(NodeId::new(1))]);
    let client = Arc::new(ClusterClient::new(Box::new(placement), None));
    client.set_node(NodeId::new(0), RemoteShard::tcp(server0.addr(), CHAOS_TIMEOUT, policy));
    client.set_node(NodeId::new(1), RemoteShard::tcp(server1.addr(), CHAOS_TIMEOUT, policy));
    assert_eq!(client.epoch(), 1, "the cluster epoch starts at 1");
    let oracle = AllocationService::new(&base, &oracle_config(&clock)).expect("oracle");
    let mut mutations = MutationGen::new(&base, 0x5EED);

    let detector = Arc::new(FailureDetector::new(Arc::clone(&clock), LEASE_US, DOWN_MISSES));
    let mut supervisor = Supervisor::new(Arc::clone(&client), Arc::clone(&detector));

    // Phase 1: healthy traffic; a supervision round is all beats.
    let requests = RequestGen::new(&base).seed(21).count(40).generate();
    drive(&client, &oracle, requests, &mut mutations, 4);
    let events = supervisor.tick();
    assert!(
        events.iter().all(|e| matches!(e, SupervisorEvent::Beat { .. })),
        "a healthy round is all beats: {events:?}"
    );

    // Replicate node 0 into an up-to-date follower and register it as
    // the standby: on promotion, it becomes a fresh service behind a
    // server *born fenced* at the promotion epoch.
    let listener = Arc::new(TcpListener::bind("127.0.0.1:0").expect("bind follower"));
    let addr = listener.local_addr().expect("follower addr");
    let session = follower_session(Arc::clone(&listener), Follower::new());
    {
        let mut conn = leader_conn(addr);
        replicate_shard(&service0, 0, &mut conn, 16).expect("replication round");
    }
    let (follower, result) = session.join().expect("follower session");
    result.expect("clean stream end");
    assert_eq!(follower.generation(), Some(service0.shard_generation(0)));

    let promoted_servers: Arc<std::sync::Mutex<Vec<NodeServer>>> =
        Arc::new(std::sync::Mutex::new(Vec::new()));
    let mut standby = Some(follower);
    let promote_clock = Arc::clone(&clock);
    let promote_servers = Arc::clone(&promoted_servers);
    supervisor.register_standby(
        NodeId::new(0),
        Box::new(move |epoch| {
            let follower = standby
                .take()
                .ok_or_else(|| ServiceError::Remote("standby already consumed".into()))?;
            let replica = follower
                .promote()
                .map_err(|error| ServiceError::Remote(error.to_string()))?;
            let promoted =
                Arc::new(AllocationService::new(&replica, &node_config(&promote_clock))?);
            let server = NodeServer::spawn_fenced(promoted, epoch)?;
            let remote = RemoteShard::tcp(server.addr(), CHAOS_TIMEOUT, chaos_policy());
            promote_servers
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .push(server);
            Ok(remote)
        }),
    );

    // Kill the leader. One missed lease is *suspicion*, not death:
    // the supervisor must not promote inside the lease bound.
    server0.shutdown();
    drop(service0);
    manual.advance_us(LEASE_US);
    let events = supervisor.tick();
    assert!(
        !events.iter().any(|e| matches!(e, SupervisorEvent::Promoted { .. })),
        "no promotion while the loss is within the lease bound: {events:?}"
    );
    assert_eq!(detector.misses(0), 1, "exactly one missed lease so far");

    // During the outage: CRITICAL routed to the live node completes,
    // and the dead shard degrades into *bounded* unavailability (the
    // oracle consumes the same submits to keep the id streams aligned).
    let probes = RequestGen::new(&base).seed(23).count(24).generate();
    let live = probes
        .iter()
        .find(|r| shard::route(r.type_id(), NODES) == 1)
        .expect("some request routes to the live node")
        .clone();
    let dead = probes
        .iter()
        .find(|r| shard::route(r.type_id(), NODES) == 0)
        .expect("some request routes to the dead node")
        .clone();
    let crit = client.submit(live.clone(), QosClass::Critical);
    assert!(
        matches!(crit.outcome, Outcome::Allocated { .. }),
        "CRITICAL on a live shard completes during a single-node failure: {:?}",
        crit.outcome
    );
    oracle
        .submit(live, QosClass::Critical)
        .wait()
        .expect("oracle answers");
    let gap = client.submit(dead.clone(), QosClass::High);
    assert_eq!(
        gap.outcome,
        Outcome::Unavailable {
            attempts: policy.attempts
        },
        "the dead shard fails boundedly, never hangs"
    );
    oracle
        .submit(dead, QosClass::High)
        .wait()
        .expect("oracle answers");

    // Second missed lease: the verdict decays to Down and the very
    // next supervision round promotes under a bumped epoch.
    manual.advance_us(LEASE_US);
    let events = supervisor.tick();
    assert!(
        events.contains(&SupervisorEvent::Promoted {
            node: NodeId::new(0),
            epoch: 2
        }),
        "the lease decayed: expected a promotion, got {events:?}"
    );
    assert_eq!(client.epoch(), 2);

    // Fencing: the deposed leader's control plane still holds epoch 1.
    // Its mutation is refused by the promoted node *without touching
    // state*; the same mutation at the current epoch applies cleanly.
    let fenced_mutation = loop {
        let mutation = mutations.next_mutation();
        let owner = shard::route(mutation.type_id(), NODES);
        if owner == 0 {
            break mutation;
        }
        let generation = client.apply_mutation(&mutation).expect("cluster applies");
        oracle.apply_mutation(&mutation).expect("oracle applies");
        assert_eq!(generation, oracle.shard_generation(owner));
    };
    let promoted_addr = promoted_servers
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)[0]
        .addr();
    let stale_leader = RemoteShard::tcp(promoted_addr, CHAOS_TIMEOUT, policy);
    let before = oracle.shard_generation(0);
    let ack = stale_leader
        .call_mutate(1, &fenced_mutation)
        .expect("the promoted node answers");
    let error = ack.error.expect("a stale epoch must be refused");
    assert!(error.contains("fenced"), "want a fencing rejection, got: {error}");
    let generation = client
        .apply_mutation(&fenced_mutation)
        .expect("the current epoch applies");
    oracle.apply_mutation(&fenced_mutation).expect("oracle applies");
    assert_eq!(generation, oracle.shard_generation(0));
    assert_eq!(
        generation.raw(),
        before.raw() + 1,
        "the fenced attempt must not have consumed a generation"
    );

    // Phase 2: the healed cluster answers bit-identically again and a
    // supervision round is back to all beats.
    let requests = RequestGen::new(&base).seed(24).count(40).generate();
    drive(&client, &oracle, requests, &mut mutations, 4);
    let events = supervisor.tick();
    assert!(
        events.iter().all(|e| matches!(e, SupervisorEvent::Beat { .. })),
        "the healed cluster is all beats: {events:?}"
    );

    server1.shutdown();
    for server in promoted_servers
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .drain(..)
    {
        server.shutdown();
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn seeded_chaos_promotes_every_kill_and_never_a_live_node() {
    // Property, over seeded schedules: a kill (down ≥ the lease bound)
    // promotes exactly once; a flap (one missed probe) never does.
    // `RQFA_CHAOS_SEEDS=<n>` (the CI chaos lane) widens the sweep with
    // n extra deterministic seeds.
    let extra: u64 = std::env::var("RQFA_CHAOS_SEEDS")
        .ok()
        .and_then(|n| n.parse().ok())
        .unwrap_or(0);
    let seeds = [0xC4A0_5EED_u64, 0xC4A0_5EEE, 0xC4A0_5EFF]
        .into_iter()
        .chain((0..extra).map(|i| 0xC4A0_0000 + i));
    for seed in seeds {
        let plan = ChaosPlan::seeded(seed, u16::try_from(NODES).unwrap(), 24);
        let manual = Arc::new(ManualClock::new());
        let clock: SharedClock = Arc::clone(&manual) as SharedClock;
        let base = CaseGen::new(8, 4, 4, 6).seed(seed).build();
        let slices: Vec<CaseBase> = shard::partition(&base, NODES)
            .into_iter()
            .map(|slice| slice.expect("these workloads populate every shard"))
            .collect();
        let placement = NodeMap::new(
            (0..NODES)
                .map(|n| Some(NodeId::new(u16::try_from(n).unwrap())))
                .collect(),
        );
        let client = Arc::new(ClusterClient::new(Box::new(placement), None));
        let servers: Arc<std::sync::Mutex<Vec<Option<NodeServer>>>> =
            Arc::new(std::sync::Mutex::new(Vec::new()));
        for (n, slice) in slices.iter().enumerate() {
            let service =
                Arc::new(AllocationService::new(slice, &node_config(&clock)).expect("node"));
            let server = NodeServer::spawn(service).expect("server");
            client.set_node(
                NodeId::new(u16::try_from(n).unwrap()),
                RemoteShard::tcp(server.addr(), CHAOS_TIMEOUT, chaos_policy()),
            );
            servers
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .push(Some(server));
        }
        let detector = Arc::new(FailureDetector::new(Arc::clone(&clock), LEASE_US, DOWN_MISSES));
        let mut supervisor = Supervisor::new(Arc::clone(&client), Arc::clone(&detector));
        // Pre-register every node so a tick-0 kill still ages a lease.
        for n in 0..NODES {
            detector.register(u16::try_from(n).unwrap());
        }
        // A standby for node `n`: a fresh service over its slice behind
        // a server born fenced at the promotion epoch (no learning
        // traffic in this test, so state continuity is trivial).
        let make_standby = |n: usize| -> PromoteFn {
            let slice = slices[n].clone();
            let clock = Arc::clone(&clock);
            let servers = Arc::clone(&servers);
            Box::new(move |epoch| {
                let service = Arc::new(AllocationService::new(&slice, &node_config(&clock))?);
                let server = NodeServer::spawn_fenced(service, epoch)?;
                let remote = RemoteShard::tcp(server.addr(), CHAOS_TIMEOUT, chaos_policy());
                servers
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)[n] = Some(server);
                Ok(remote)
            })
        };
        for n in 0..NODES {
            supervisor.register_standby(NodeId::new(u16::try_from(n).unwrap()), make_standby(n));
        }

        let mut dead = [false; NODES];
        let mut promotions = 0usize;
        for tick in 0..plan.ticks() {
            // Disturbances land before the supervision round…
            let mut flapped: Vec<usize> = Vec::new();
            for event in plan.at(tick) {
                let n = usize::from(event.node);
                match event.action {
                    ChaosAction::Kill => {
                        if let Some(server) = servers
                            .lock()
                            .unwrap_or_else(std::sync::PoisonError::into_inner)[n]
                            .take()
                        {
                            server.shutdown();
                        }
                        dead[n] = true;
                    }
                    ChaosAction::Flap => {
                        if let Some(server) = servers
                            .lock()
                            .unwrap_or_else(std::sync::PoisonError::into_inner)[n]
                            .take()
                        {
                            server.shutdown();
                        }
                        flapped.push(n);
                    }
                    ChaosAction::Recover => {}
                }
            }
            for event in supervisor.tick() {
                match event {
                    SupervisorEvent::Beat { .. } => {}
                    SupervisorEvent::Promoted { node, .. } => {
                        assert!(
                            dead[usize::from(node.raw())],
                            "seed {seed:#x} tick {tick}: promoted a provably-live node"
                        );
                        promotions += 1;
                    }
                    SupervisorEvent::PromotionFailed { node, error } => {
                        panic!("seed {seed:#x} tick {tick}: promotion of {node} failed: {error}")
                    }
                }
            }
            // …recoveries and flap healings after it: a recover re-arms
            // the node's standby (the promoted replacement is already
            // serving), a flap comes back after exactly one missed probe.
            for event in plan.at(tick) {
                let n = usize::from(event.node);
                if event.action == ChaosAction::Recover {
                    dead[n] = false;
                    supervisor.register_standby(NodeId::new(event.node), make_standby(n));
                }
            }
            for n in flapped {
                let service = Arc::new(
                    AllocationService::new(&slices[n], &node_config(&clock)).expect("node"),
                );
                let server = NodeServer::spawn(service).expect("server");
                client.set_node(
                    NodeId::new(u16::try_from(n).unwrap()),
                    RemoteShard::tcp(server.addr(), CHAOS_TIMEOUT, chaos_policy()),
                );
                servers
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)[n] = Some(server);
            }
            manual.advance_us(LEASE_US);
        }
        assert_eq!(
            promotions,
            plan.kills(),
            "seed {seed:#x}: every kill promotes exactly once, nothing else ever does"
        );
        for slot in servers
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .drain(..)
            .flatten()
        {
            slot.shutdown();
        }
    }
}

#[test]
fn predictive_shedding_refuses_doomed_low_requests_fast() {
    let clock = frozen_clock();
    let base = CaseGen::new(6, 4, 4, 6).seed(0xD00).build();
    let config = node_config(&clock).with_predictive_shed(true);
    let service = AllocationService::new(&base, &config).expect("service");
    // Warm the estimator by hand — under a frozen clock the worker
    // observes 0 µs batches and would never learn: 10 ms per job, far
    // past any deadline below.
    service.prime_service_estimate(0, 10_000, 1);
    let request = RequestGen::new(&base).seed(1).count(1).generate().remove(0);
    // LOW with 1 ms of headroom against a 10 ms predicted completion:
    // refused at admission with the predicted lateness — no queueing,
    // no waiting for the deadline to pass.
    let reply = service
        .submit_with_deadline(request.clone(), QosClass::Low, Duration::from_millis(1))
        .wait()
        .expect("service answers");
    assert_eq!(reply.outcome, Outcome::ShedPredicted { late_us: 9_000 });
    // CRITICAL is never predictively shed, hopeless deadline or not.
    let reply = service
        .submit_with_deadline(request, QosClass::Critical, Duration::from_millis(1))
        .wait()
        .expect("service answers");
    assert!(
        matches!(reply.outcome, Outcome::Allocated { .. }),
        "CRITICAL must complete: {:?}",
        reply.outcome
    );
    service.shutdown();
}
