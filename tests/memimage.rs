//! Experiment E12: memory-image integrity across the toolchain — encode,
//! validate, decode, and survive corruption without undefined behaviour in
//! any consumer (validator, decoder, hardware simulator, soft core).
//!
//! Two suites:
//!
//! * [`golden`] — always on: a seeded case base snapshotted to a
//!   checked-in `memlist` fixture, asserted byte-for-byte stable across
//!   encode/decode (and across the `rqfa-persist` snapshot container).
//!   Any change to the word layout or the generators breaks this suite
//!   *loudly* — which is the point: the on-disk format is a compatibility
//!   promise now that WALs and snapshots persist it.
//! * [`proptest_suite`] — property-based corruption drills; needs the
//!   external `proptest` crate (not vendored offline), gated behind
//!   `--features proptests`.

/// Golden-image byte-stability suite (fixture:
/// `tests/fixtures/seeded_case_base.memh`).
mod golden {
    use rqfa::core::CaseBase;
    use rqfa::memlist::{
        decode_case_base, encode_case_base, from_memh, to_memh, CaseBaseImage,
    };
    use rqfa::workloads::CaseGen;

    const FIXTURE: &str = include_str!("fixtures/seeded_case_base.memh");
    const FIXTURE_TITLE: &str = "golden seeded case base (CaseGen 4x3, seed 0x901D)";

    /// The seeded case base the fixture snapshots. The generator promises
    /// bit-identical output per seed across platforms, so this is stable.
    fn seeded_case_base() -> CaseBase {
        CaseGen::new(4, 3, 4, 5).seed(0x901D).build()
    }

    #[test]
    fn encoding_the_seeded_case_base_matches_the_checked_in_fixture() {
        let image = encode_case_base(&seeded_case_base()).unwrap();
        let text = to_memh(image.image(), FIXTURE_TITLE);
        assert_eq!(
            text, FIXTURE,
            "memlist encoding drifted from the golden fixture — if the \
             format change is intentional, regenerate with \
             `cargo test --test memimage -- --ignored regenerate`"
        );
    }

    #[test]
    fn fixture_decodes_and_reencodes_to_identical_bytes() {
        let image = from_memh(FIXTURE).unwrap();
        let decoded = decode_case_base(&CaseBaseImage::from_image(image.clone())).unwrap();
        let reencoded = encode_case_base(&decoded).unwrap();
        assert_eq!(
            reencoded.image().words(),
            image.words(),
            "decode → encode must be the identity on canonical images"
        );
    }

    #[test]
    fn fixture_matches_live_retrieval_bit_for_bit() {
        use rqfa::core::FixedEngine;
        use rqfa::workloads::RequestGen;
        let original = seeded_case_base();
        let image = from_memh(FIXTURE).unwrap();
        let decoded = decode_case_base(&CaseBaseImage::from_image(image)).unwrap();
        let engine = FixedEngine::new();
        for request in RequestGen::new(&original).seed(9).count(25).generate() {
            let a = engine.retrieve(&original, &request).unwrap().best.unwrap();
            let b = engine.retrieve(&decoded, &request).unwrap().best.unwrap();
            // The raw CB-MEM image carries no execution targets (the
            // persist snapshot container adds them as a sidecar section),
            // so compare the hardware-visible decision: winner + bits.
            assert_eq!((a.impl_id, a.similarity), (b.impl_id, b.similarity));
        }
    }

    #[test]
    fn persist_snapshot_container_roundtrips_byte_identically() {
        let cb = seeded_case_base();
        let bytes = rqfa::persist::encode_snapshot(&cb).unwrap();
        let snapshot = rqfa::persist::decode_snapshot(&bytes).unwrap();
        let reencoded = rqfa::persist::encode_snapshot(&snapshot.case_base).unwrap();
        assert_eq!(
            reencoded, bytes,
            "snapshot containers must be byte-stable across decode/encode"
        );
    }

    /// Deterministic multi-seed round trip (no proptest APIs needed, so
    /// it runs in the offline container too): encode → validate →
    /// decode → bit-identical retrieval, across generated shapes.
    #[test]
    fn generated_images_validate_and_roundtrip() {
        use rqfa::core::FixedEngine;
        use rqfa::memlist::{validate_case_base, validate_request};
        use rqfa::memlist::{decode_request, encode_request};
        use rqfa::workloads::RequestGen;
        for seed in 0..10 {
            let case_base = CaseGen::new(5, 4, 6, 8).seed(seed).build();
            let image = encode_case_base(&case_base).unwrap();
            let summary = validate_case_base(&image).unwrap();
            assert_eq!(summary.types, 5);
            assert_eq!(summary.variants, 20);
            let decoded = decode_case_base(&image).unwrap();
            assert_eq!(decoded.variant_count(), case_base.variant_count());

            let requests = RequestGen::new(&case_base).seed(seed).count(3).generate();
            for request in &requests {
                let req_image = encode_request(request).unwrap();
                validate_request(&req_image, &image).unwrap();
                let back = decode_request(&req_image).unwrap();
                assert_eq!(back.fingerprint(), request.fingerprint());

                // Retrieval over the decoded case base is bit-identical.
                let engine = FixedEngine::new();
                let a = engine.retrieve(&case_base, request).unwrap().best.unwrap();
                let b = engine.retrieve(&decoded, request).unwrap().best.unwrap();
                assert_eq!((a.impl_id, a.similarity), (b.impl_id, b.similarity));
            }
        }
    }

    /// Maintenance hook, not a test of record: regenerates the fixture
    /// after an *intentional* format change.
    /// `cargo test --test memimage -- --ignored regenerate`
    #[test]
    #[ignore = "maintenance hook: rewrites the golden fixture"]
    fn regenerate_golden_fixture() {
        let image = encode_case_base(&seeded_case_base()).unwrap();
        let text = to_memh(image.image(), FIXTURE_TITLE);
        let path = concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/tests/fixtures/seeded_case_base.memh"
        );
        std::fs::write(path, text).unwrap();
    }
}

// Property-based suite: needs the external `proptest` crate (not vendored
// offline). Enable with `--features proptests` where crates.io is
// reachable.
#[cfg(feature = "proptests")]
mod proptest_suite {
    use proptest::prelude::*;

    use rqfa::hwsim::{RetrievalUnit, UnitConfig};
    use rqfa::memlist::{
        decode_case_base, encode_case_base, encode_request, validate_case_base, CaseBaseImage,
        MemImage,
    };
    use rqfa::softcore::{run_retrieval, CpuCostModel};
    use rqfa::workloads::{CaseGen, RequestGen};

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// Corrupted images never panic any consumer: they either still parse
        /// (benign flip) or fail with a structured error.
        #[test]
        fn corruption_is_contained(seed in 0u64..1000, word in 0usize..4096, flip in 1u16..=u16::MAX) {
            let case_base = CaseGen::new(3, 3, 4, 5).seed(seed).build();
            let image = encode_case_base(&case_base).unwrap();
            let request = &RequestGen::new(&case_base).seed(seed).count(1).generate()[0];
            let req_image = encode_request(request).unwrap();

            let mut words = image.image().words().to_vec();
            let idx = word % words.len();
            words[idx] ^= flip;
            let corrupted = CaseBaseImage::from_image(MemImage::from_words(words).unwrap());

            // Validator: Ok or Err, never panic.
            let _ = validate_case_base(&corrupted);
            // Decoder: same.
            let _ = decode_case_base(&corrupted);
            // Hardware simulator: runs to a result or faults cleanly
            // (including the watchdog for scan loops).
            if let Ok(mut unit) = RetrievalUnit::new(&corrupted, UnitConfig::default()) {
                let _ = unit.retrieve(&req_image);
            }
            // Soft core: same containment.
            let _ = run_retrieval(&corrupted, &req_image, CpuCostModel::default());
        }

        /// When the validator accepts an image, the hardware simulator must
        /// complete without memory faults (validation soundness).
        #[test]
        fn validated_images_execute(seed in 0u64..500) {
            let case_base = CaseGen::new(2, 4, 3, 4).seed(seed).build();
            let image = encode_case_base(&case_base).unwrap();
            prop_assert!(validate_case_base(&image).is_ok());
            let request = &RequestGen::new(&case_base).seed(seed).count(1).generate()[0];
            let req_image = encode_request(request).unwrap();
            let mut unit = RetrievalUnit::new(&image, UnitConfig::default()).unwrap();
            let result = unit.retrieve(&req_image);
            prop_assert!(result.is_ok(), "validated image faulted: {result:?}");
        }
    }
}
