//! Experiment E12: memory-image integrity across the toolchain — encode,
//! validate, decode, and survive corruption without undefined behaviour in
//! any consumer (validator, decoder, hardware simulator, soft core).

// Property-based suite: needs the external `proptest` crate (not vendored
// offline). Enable with `--features proptests` where crates.io is reachable.
#![cfg(feature = "proptests")]

use proptest::prelude::*;

use rqfa::core::FixedEngine;
use rqfa::hwsim::{RetrievalUnit, UnitConfig};
use rqfa::memlist::{
    decode_case_base, decode_request, encode_case_base, encode_request, validate_case_base,
    validate_request, CaseBaseImage, MemImage,
};
use rqfa::softcore::{run_retrieval, CpuCostModel};
use rqfa::workloads::{CaseGen, RequestGen};

#[test]
fn generated_images_validate_and_roundtrip() {
    for seed in 0..10 {
        let case_base = CaseGen::new(5, 4, 6, 8).seed(seed).build();
        let image = encode_case_base(&case_base).unwrap();
        let summary = validate_case_base(&image).unwrap();
        assert_eq!(summary.types, 5);
        assert_eq!(summary.variants, 20);
        let decoded = decode_case_base(&image).unwrap();
        assert_eq!(decoded.variant_count(), case_base.variant_count());

        let requests = RequestGen::new(&case_base).seed(seed).count(3).generate();
        for request in &requests {
            let req_image = encode_request(request).unwrap();
            validate_request(&req_image, &image).unwrap();
            let back = decode_request(&req_image).unwrap();
            assert_eq!(back.fingerprint(), request.fingerprint());

            // Retrieval over the decoded case base is bit-identical.
            let engine = FixedEngine::new();
            let a = engine.retrieve(&case_base, request).unwrap().best.unwrap();
            let b = engine.retrieve(&decoded, request).unwrap().best.unwrap();
            assert_eq!((a.impl_id, a.similarity), (b.impl_id, b.similarity));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Corrupted images never panic any consumer: they either still parse
    /// (benign flip) or fail with a structured error.
    #[test]
    fn corruption_is_contained(seed in 0u64..1000, word in 0usize..4096, flip in 1u16..=u16::MAX) {
        let case_base = CaseGen::new(3, 3, 4, 5).seed(seed).build();
        let image = encode_case_base(&case_base).unwrap();
        let request = &RequestGen::new(&case_base).seed(seed).count(1).generate()[0];
        let req_image = encode_request(request).unwrap();

        let mut words = image.image().words().to_vec();
        let idx = word % words.len();
        words[idx] ^= flip;
        let corrupted = CaseBaseImage::from_image(MemImage::from_words(words).unwrap());

        // Validator: Ok or Err, never panic.
        let _ = validate_case_base(&corrupted);
        // Decoder: same.
        let _ = decode_case_base(&corrupted);
        // Hardware simulator: runs to a result or faults cleanly
        // (including the watchdog for scan loops).
        if let Ok(mut unit) = RetrievalUnit::new(&corrupted, UnitConfig::default()) {
            let _ = unit.retrieve(&req_image);
        }
        // Soft core: same containment.
        let _ = run_retrieval(&corrupted, &req_image, CpuCostModel::default());
    }

    /// When the validator accepts an image, the hardware simulator must
    /// complete without memory faults (validation soundness).
    #[test]
    fn validated_images_execute(seed in 0u64..500) {
        let case_base = CaseGen::new(2, 4, 3, 4).seed(seed).build();
        let image = encode_case_base(&case_base).unwrap();
        prop_assert!(validate_case_base(&image).is_ok());
        let request = &RequestGen::new(&case_base).seed(seed).count(1).generate()[0];
        let req_image = encode_request(request).unwrap();
        let mut unit = RetrievalUnit::new(&image, UnitConfig::default()).unwrap();
        let result = unit.retrieve(&req_image);
        prop_assert!(result.is_ok(), "validated image faulted: {result:?}");
    }
}
