//! The zero-allocation proof: a counting global allocator wraps the
//! system allocator, and the steady-state plane-kernel hot path —
//! `retrieve`, `retrieve_batch_into`, `retrieve_n_best_into` over a warm
//! [`PlaneEngine`] — must perform **zero** heap allocations per request.
//!
//! The file holds exactly one `#[test]` so no concurrent test can
//! allocate while the counter window is open (integration-test files are
//! separate binaries, but tests *within* one file share the process).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use rqfa::core::{KernelPath, PlaneEngine, Request};
use rqfa::workloads::{CaseGen, RequestGen};

/// System allocator with a global allocation counter.
struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates every operation verbatim to the system allocator;
// the counter is a relaxed atomic side effect.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

#[test]
fn steady_state_plane_retrieval_allocates_nothing() {
    // A non-trivial shape: sparse columns (6 of 10 attrs bound) and
    // enough variants that a regression to per-request allocation would
    // be unmissable across the measured window.
    let case_base = CaseGen::new(8, 16, 6, 10).seed(0xA110C).build();
    let pool = RequestGen::new(&case_base)
        .seed(0xA110C + 1)
        .count(256)
        .repeat_fraction(0.2)
        .generate();
    let mut out = Vec::new();
    let mut ranked = Vec::new();
    let batches: Vec<Vec<&Request>> = pool.chunks(32).map(|c| c.iter().collect()).collect();

    // Both kernel paths must be allocation-free: the auto path (the wide
    // SIMD kernel where the host has it) and the pinned scalar fallback.
    for path in [KernelPath::Auto, KernelPath::ForceScalar] {
        let mut engine = PlaneEngine::with_kernel(path);

        // Warm-up: compile the plane, size the scratch arena and the
        // reused output buffers.
        for request in &pool {
            engine.retrieve(&case_base, request).unwrap();
            engine
                .retrieve_n_best_into(&case_base, request, 4, &mut ranked)
                .unwrap();
        }
        for batch in &batches {
            engine.retrieve_batch_into(&case_base, batch, &mut out);
        }

        // Measured window: single-request retrievals and rankings.
        let before = allocations();
        for _ in 0..4 {
            for request in &pool {
                std::hint::black_box(engine.retrieve(&case_base, request).unwrap());
                engine
                    .retrieve_n_best_into(&case_base, request, 4, &mut ranked)
                    .unwrap();
            }
        }
        assert_eq!(
            allocations(),
            before,
            "steady-state retrieve / n-best must not allocate ({path:?})"
        );

        // Measured window: batch retrievals (register-blocked column
        // streaming). The `Vec<&Request>` of borrows is built outside
        // the window — a service worker holds its own job buffer; the
        // engine itself must stay allocation-free.
        let before = allocations();
        for _ in 0..4 {
            for batch in &batches {
                engine.retrieve_batch_into(&case_base, batch, &mut out);
            }
        }
        assert_eq!(
            allocations(),
            before,
            "steady-state batch retrieval must not allocate ({path:?})"
        );
    }
    // Measured window: the telemetry hot path. Enabling tracing must not
    // put an allocation on the request path: recording an event (ring
    // slot overwrite, including wraparound — the ring holds 1024 and the
    // window writes 4096) and reading an injectable clock are both free.
    let recorder = rqfa::telemetry::FlightRecorder::new(1024);
    let clock = rqfa::telemetry::ManualClock::new();
    recorder.record(0, 0, 0, rqfa::telemetry::EventKind::Submitted, 0);
    let before = allocations();
    for i in 0..4096u64 {
        clock.advance_us(1);
        let at_us = std::hint::black_box(clock.elapsed_us());
        recorder.record(at_us, i, (i % 4) as u8, rqfa::telemetry::EventKind::Dispatched, 0);
    }
    assert_eq!(
        allocations(),
        before,
        "flight-recorder record + manual clock must not allocate"
    );

    // Contrast: the naive engine allocates on every request (this is the
    // cost the plane removes — if this ever goes to zero the harness
    // window itself is broken).
    let naive = rqfa::core::FixedEngine::new();
    let before = allocations();
    for request in pool.iter().take(16) {
        std::hint::black_box(naive.retrieve(&case_base, request).unwrap());
    }
    assert!(
        allocations() > before,
        "sanity: the naive path allocates, so the counter window works"
    );
}
