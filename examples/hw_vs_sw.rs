//! Hardware vs software retrieval (§4.2): runs the same memory images
//! through the cycle-level hardware simulator and the sc32 soft-core
//! (hand-tuned and compiler-style routines) and reports the speedup the
//! paper quantifies as ~8.5× at equal clock.
//!
//! Run with: `cargo run --example hw_vs_sw`

use rqfa::core::paper;
use rqfa::hwsim::{RetrievalUnit, UnitConfig};
use rqfa::memlist::{encode_case_base, encode_request};
use rqfa::softcore::{run_retrieval_with, CpuCostModel, ProgramKind};
use rqfa::workloads::{CaseGen, RequestGen};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("— Table 1 example —");
    let cb = encode_case_base(&paper::table1_case_base())?;
    let request = encode_request(&paper::table1_request()?)?;
    report(&cb, &request)?;

    println!("\n— Table 3 shape (15 types × 10 impls × 10 attrs) —");
    let big = CaseGen::paper_shape().seed(42).build();
    let requests = RequestGen::new(&big).seed(7).count(1).generate();
    let big_img = encode_case_base(&big)?;
    let req_img = encode_request(&requests[0])?;
    report(&big_img, &req_img)?;
    Ok(())
}

fn report(
    cb: &rqfa::memlist::CaseBaseImage,
    request: &rqfa::memlist::RequestImage,
) -> Result<(), Box<dyn std::error::Error>> {
    let mut unit = RetrievalUnit::new(cb, UnitConfig::default())?;
    let hw = unit.retrieve(request)?;
    let (hw_id, hw_sim) = hw.best.expect("non-empty");
    println!(
        "hardware unit:      {:>8} cycles  (best: impl {} S={:.4})",
        hw.cycles,
        hw_id,
        hw_sim.to_f64()
    );

    for (kind, label) in [
        (ProgramKind::HandOptimized, "software (hand asm) "),
        (ProgramKind::CompilerStyle, "software (compiled) "),
    ] {
        let sw = run_retrieval_with(cb, request, CpuCostModel::default(), kind)?;
        let (sw_id, sw_sim) = sw.best.expect("non-empty");
        assert_eq!((sw_id, sw_sim), (hw_id, hw_sim), "bit-exact across engines");
        #[allow(clippy::cast_precision_loss)]
        let speedup = sw.stats.cycles as f64 / hw.cycles as f64;
        println!(
            "{label}: {:>8} cycles  → hardware is {speedup:.1}× faster (code {} B, CPI {:.2})",
            sw.stats.cycles,
            sw.code_bytes,
            sw.stats.cpi()
        );
    }
    println!("(paper: ~8.5× against the MicroBlaze C build at equal clock)");
    Ok(())
}
