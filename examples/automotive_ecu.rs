//! Automotive scenario (the paper's original application domain, §1):
//! a control unit with hard deadlines competes with infotainment for the
//! FPGA. Shows priority preemption and the §3 relaxed-retry negotiation
//! from the application's point of view.
//!
//! Run with: `cargo run --example automotive_ecu`

use rqfa::core::{AttrId, Request, TypeId};
use rqfa::rsoc::{
    AppId, ArrivalSpec, Decision, Device, DeviceId, SimTime, SystemBuilder, TaskState,
};
use rqfa::workloads::fig1_mix;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Small platform: one FPGA only — everything fights for fabric.
    let scenario = fig1_mix(1, 7);
    let mut system = SystemBuilder::new(scenario.case_base)
        .device(Device::fpga(DeviceId(0), "xc2v1000", 1600, 120))
        .build()?;

    let t_idct = TypeId::new(3)?;
    let t_pid = TypeId::new(4)?;
    let a_frames = AttrId::new(6)?;
    let a_latency = AttrId::new(5)?;

    // 1. Infotainment grabs the fabric first: IDCT at 60 fps (1400 slices).
    system.submit(
        SimTime::from_us(0),
        ArrivalSpec {
            app: AppId(1),
            request: Request::builder(t_idct)
                .constraint(a_frames, 60)
                .build()?,
            priority: 3,
            duration_us: 500_000,
            relaxed: None,
        },
    );
    // 2. The cruise control needs its PID loop *now* (300 slices, priority
    //    9). With 1600 slices total and 1400 used, only preemption of the
    //    infotainment task frees room… or the 200 free slices? 1600−1400 =
    //    200 < 300 → preemption it is.
    system.submit(
        SimTime::from_ms(5),
        ArrivalSpec {
            app: AppId(2),
            request: Request::builder(t_pid)
                .constraint(a_latency, 1)
                .build()?,
            priority: 9,
            duration_us: 400_000,
            relaxed: Some(Request::builder(t_pid).constraint(a_latency, 5).build()?),
        },
    );
    let metrics = system.run()?;

    println!("— decision log —");
    for (at, line) in system.log() {
        println!("[{at:>12}] {line}");
    }
    println!("\n{metrics}");

    let preempted: Vec<_> = system
        .tasks()
        .filter(|t| t.state == TaskState::Preempted)
        .collect();
    println!(
        "cruise control preempted {} infotainment task(s) — hard deadlines win",
        preempted.len()
    );
    assert_eq!(metrics.preemptions, 1);

    // Demonstrate the negotiation API directly: a deliberately impossible
    // decision outcome is Rejected with a scheduled relaxed retry.
    let _ = Decision::Rejected {
        reason: rqfa::rsoc::RejectReason::NoCapacity,
        retry_scheduled: true,
    };
    Ok(())
}
