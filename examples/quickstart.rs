//! Quickstart: build a case base, issue a QoS request, retrieve the best
//! implementation variant — the paper's core loop in ~40 lines.
//!
//! Run with: `cargo run --example quickstart`

use rqfa::core::{
    AttrBinding, AttrDecl, AttrId, BoundsTable, CaseBase, ExecutionTarget, FixedEngine,
    FunctionType, ImplId, ImplVariant, Request, TypeId,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Declare the QoS vocabulary with design-global bounds. The bounds
    //    fix d_max of equation (1) — here latency may range 0..=1000 µs.
    let latency = AttrId::new(1)?;
    let throughput = AttrId::new(2)?;
    let bounds = BoundsTable::from_decls(vec![
        AttrDecl::new(latency, "latency (µs)", 0, 1000)?,
        AttrDecl::new(throughput, "throughput (Mbit/s)", 1, 200)?,
    ])?;

    // 2. Describe the implementation variants of one function type.
    let decoder = TypeId::new(1)?;
    let variants = vec![
        ImplVariant::new(
            ImplId::new(1)?,
            ExecutionTarget::Fpga,
            vec![
                AttrBinding::new(latency, 15),
                AttrBinding::new(throughput, 160),
            ],
        )?,
        ImplVariant::new(
            ImplId::new(2)?,
            ExecutionTarget::GpProcessor,
            vec![
                AttrBinding::new(latency, 220),
                AttrBinding::new(throughput, 40),
            ],
        )?,
    ];
    let case_base = CaseBase::new(
        bounds,
        vec![FunctionType::new(decoder, "video decoder", variants)?],
    )?;

    // 3. Request the function with weighted QoS constraints: latency
    //    matters twice as much as throughput for this caller.
    let request = Request::builder(decoder)
        .weighted_constraint(latency, 50, 2.0)
        .weighted_constraint(throughput, 100, 1.0)
        .build()?;

    // 4. Retrieve the most similar variant (16-bit fixed-point engine —
    //    the same arithmetic the hardware unit uses).
    let result = FixedEngine::new().retrieve(&case_base, &request)?;
    let best = result.best.expect("case base is non-empty");
    println!("request:  {request}");
    println!(
        "selected: {} on {} with similarity {:.4}",
        best.impl_id,
        best.target,
        best.similarity.to_f64()
    );
    println!(
        "evaluated {} variants using {} arithmetic ops",
        result.evaluated,
        result.ops.arithmetic()
    );
    Ok(())
}
