//! Service demo: drive the sharded, QoS-class-aware allocation service
//! with the open-loop traffic generator, then teach it a better variant at
//! run time and watch the cache invalidate.
//!
//! Run with: `cargo run --release --example service_demo`

use rqfa::core::{paper, QosClass};
use rqfa::service::{AllocationService, Outcome, ServiceConfig};
use rqfa::workloads::{CaseGen, TrafficGen};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A mid-sized platform library and a 2-shard service over it.
    //    Shard 0 owns the even type ids, shard 1 the odd ones; each has
    //    its own worker thread, queue, engine and result cache.
    let case_base = CaseGen::new(12, 10, 6, 8).seed(42).build();
    let service = AllocationService::new(
        &case_base,
        &ServiceConfig::default()
            .with_shards(2)
            .with_queue_capacity(256)
            .with_deadline_budget_us(QosClass::Low, 2_000),
    ).expect("valid service config");

    // 2. 100 ms of open-loop Poisson traffic across the four QoS classes
    //    (CRITICAL thin, LOW bulky — the fig. 1 mix writ large).
    let arrivals = TrafficGen::new(&case_base)
        .seed(7)
        .duration_us(100_000)
        .repeat_fraction(0.4)
        .generate();
    println!("replaying {} arrivals through 2 shards…", arrivals.len());
    for arrival in &arrivals {
        // Open loop: fire and forget; the metrics tell the story.
        let _ = service.submit(arrival.request.clone(), arrival.class);
    }

    // 3. While the floods drain, a single HIGH request with a ticket we
    //    actually wait on (the paper's Table 1 example, on its own
    //    service over the paper case base).
    let paper_service = AllocationService::new(
        &paper::table1_case_base(),
        &ServiceConfig::default(),
    ).expect("valid service config");
    let reply = paper_service
        .submit(paper::table1_request()?, QosClass::High)
        .wait()
        .expect("service answers");
    if let Outcome::Allocated { best, cached, .. } = &reply.outcome {
        println!(
            "\nTable 1 request → {} (S = {}), cached: {cached}, {} µs",
            best.impl_id, best.similarity, reply.latency_us
        );
        assert_eq!(best.impl_id, paper::IMPL_DSP); // the DSP wins, as in the paper
    }

    // 4. Run-time learning: retain a perfect-match FPGA variant. The
    //    shard's generation counter bumps, invalidating its cache.
    let perfect = rqfa::core::ImplVariant::new(
        rqfa::core::ImplId::new(9)?,
        rqfa::core::ExecutionTarget::Fpga,
        vec![
            rqfa::core::AttrBinding::new(paper::ATTR_BITWIDTH, 16),
            rqfa::core::AttrBinding::new(paper::ATTR_OUTPUT, 1),
            rqfa::core::AttrBinding::new(paper::ATTR_RATE, 40),
        ],
    )?;
    paper_service.retain_variant(paper::FIR_EQUALIZER, perfect)?;
    let reply = paper_service
        .submit(paper::table1_request()?, QosClass::High)
        .wait()
        .expect("service answers");
    if let Outcome::Allocated { best, cached, .. } = &reply.outcome {
        println!(
            "after retain     → {} (S = {}), cached: {cached} (cache invalidated)",
            best.impl_id, best.similarity
        );
        assert_eq!(best.impl_id.raw(), 9); // the learned variant wins now
        assert!(!cached);
    }
    paper_service.shutdown();

    // 5. Drain the traffic service and print the per-class QoS report.
    let snapshot = service.shutdown();
    println!("\nper-class service report:\n{snapshot}");
    assert_eq!(
        snapshot.class(QosClass::Critical).shed(),
        0,
        "CRITICAL is never shed"
    );
    Ok(())
}
