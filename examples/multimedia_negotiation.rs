//! The fig. 1 system in action: MP3 player, video decoder, automotive ECU
//! and cruise control share one reconfigurable platform. The allocation
//! manager retrieves variants, checks feasibility, downgrades to
//! alternatives under contention, preempts for high-priority control
//! tasks, serves repeated calls from bypass tokens and lets rejected
//! applications retry with relaxed constraints.
//!
//! Run with: `cargo run --example multimedia_negotiation`

use rqfa::rsoc::{AppId, ArrivalSpec, Device, DeviceId, SimTime, SystemBuilder};
use rqfa::workloads::fig1_mix;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scenario = fig1_mix(6, 2026);
    println!(
        "platform library: {} function types, {} implementation variants",
        scenario.case_base.type_count(),
        scenario.case_base.variant_count()
    );

    let mut system = SystemBuilder::new(scenario.case_base)
        .device(Device::fpga(DeviceId(0), "xc2v3000", 2800, 150))
        .device(Device::dsp(DeviceId(1), "dsp", 1000, 90))
        .device(Device::cpu(DeviceId(2), "microblaze", 1000, 200))
        .repository(20, 50) // FLASH: 20 µs setup, 50 MB/s
        .build()?;

    println!("submitting {} requests …\n", scenario.arrivals.len());
    for arrival in &scenario.arrivals {
        system.submit(
            SimTime::from_us(arrival.at_us),
            ArrivalSpec {
                app: AppId(arrival.app),
                request: arrival.request.clone(),
                priority: arrival.priority,
                duration_us: arrival.duration_us,
                relaxed: arrival.relaxed.clone(),
            },
        );
    }
    let metrics = system.run()?;

    println!("— decision log (first 12 entries) —");
    for (at, line) in system.log().iter().take(12) {
        println!("[{at:>12}] {line}");
    }
    println!("…\n— final metrics —\n{metrics}");

    assert_eq!(metrics.accepted + metrics.rejected, metrics.requests);
    assert!(metrics.bypass_hits > 0, "repeated MP3 calls should bypass");
    Ok(())
}
