//! The design-time tool flow (§4.2): the paper's authors exported their
//! data structures for use "in Stateflow, VHDL and C". This example
//! produces the equivalent FPGA-flow artifacts from the Rust toolchain:
//!
//! * `$readmemh` initialization files for CB-MEM, Req-MEM and the
//!   soft-core instruction memory;
//! * a VCD waveform of the retrieval FSM (viewable in GTKWave);
//! * the sc32 disassembly listing;
//! * the synthesis report with a power estimate.
//!
//! Files are written to `target/artifacts/`.
//!
//! Run with: `cargo run --example toolchain_artifacts`

use std::fs;
use std::path::Path;

use rqfa::core::paper;
use rqfa::hwsim::{export_vcd, RetrievalUnit, UnitConfig};
use rqfa::memlist::{encode_case_base, encode_request, from_memh, to_memh};
use rqfa::softcore::retrieval_program;
use rqfa::synth::{
    build_retrieval_unit, estimate_power, synthesize_retrieval_unit, PowerCoefficients,
    TechLibrary,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dir = Path::new("target/artifacts");
    fs::create_dir_all(dir)?;

    // Memory images → $readmemh.
    let cb = encode_case_base(&paper::table1_case_base())?;
    let req = encode_request(&paper::table1_request()?)?;
    let cb_memh = to_memh(cb.image(), "CB-MEM: table 1 case base");
    let req_memh = to_memh(req.image(), "Req-MEM: table 1 request");
    fs::write(dir.join("cb_mem.memh"), &cb_memh)?;
    fs::write(dir.join("req_mem.memh"), &req_memh)?;
    // Round-trip sanity.
    assert_eq!(from_memh(&cb_memh)?.words(), cb.image().words());
    println!(
        "wrote cb_mem.memh ({} words) and req_mem.memh ({} words)",
        cb.image().len(),
        req.image().len()
    );

    // Soft-core program → $readmemh + disassembly.
    let program = retrieval_program();
    fs::write(
        dir.join("retrieval.memh"),
        program.to_memh("sc32 retrieval routine"),
    )?;
    fs::write(dir.join("retrieval.lst"), program.disassemble())?;
    println!(
        "wrote retrieval.memh ({} instructions) and retrieval.lst",
        program.instrs().len()
    );

    // Traced hardware run → VCD.
    let mut unit = RetrievalUnit::new(
        &cb,
        UnitConfig {
            trace_capacity: Some(8192),
            ..UnitConfig::default()
        },
    )?;
    let result = unit.retrieve(&req)?;
    let vcd = export_vcd(&result.trace, "table 1 retrieval, narrow classic layout");
    fs::write(dir.join("retrieval.vcd"), &vcd)?;
    println!(
        "wrote retrieval.vcd ({} events over {} cycles) — open with GTKWave",
        result.trace.events().len(),
        result.cycles
    );

    // Synthesis + power report.
    let synth = synthesize_retrieval_unit()?;
    let power = estimate_power(
        &build_retrieval_unit(),
        &TechLibrary::default(),
        &PowerCoefficients::default(),
        synth.timing.fmax_mhz,
        0.35,
    );
    let report = format!(
        "{}\npower @ {:.1} MHz, activity 0.35:\n  dynamic {:.1} mW + static {:.1} mW = {:.1} mW\n  energy per Table-1 retrieval: {:.3} µJ\n",
        synth.table2(),
        power.clock_mhz,
        power.dynamic_mw,
        power.static_mw,
        power.total_mw(),
        power.energy_per_retrieval_uj(result.cycles)
    );
    fs::write(dir.join("synthesis.rpt"), &report)?;
    println!("wrote synthesis.rpt:\n\n{report}");
    Ok(())
}
