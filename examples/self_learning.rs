//! The self-learning system of the §5 outlook: the full CBR cycle of
//! fig. 2 (retrieve → reuse → revise → retain) running against a live
//! case base. Measured QoS feedback revises wrong cases and retains novel
//! operating points, and bypass tokens invalidate automatically on every
//! case-base mutation.
//!
//! Run with: `cargo run --example self_learning`

use rqfa::core::{
    paper, AttrBinding, CbrCycle, ExecutionTarget, Footprint, LearnAction, LearnPolicy, Request,
};
use rqfa::fixed::Q15;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut case_base = paper::table1_case_base();
    // Policy: suggestions above 0.95 similarity are "the same case" (revise
    // on deviation); below that the solved problem is novel (retain).
    let mut cycle = CbrCycle::new(16).with_policy(LearnPolicy {
        retain_below: Q15::from_f64(0.95)?,
        ..LearnPolicy::default()
    });

    // A request no stored case matches exactly: 12-bit mono at 30 kS/s.
    let request = Request::builder(paper::FIR_EQUALIZER)
        .constraint(paper::ATTR_BITWIDTH, 12)
        .constraint(paper::ATTR_OUTPUT, 0)
        .constraint(paper::ATTR_RATE, 30)
        .build()?;

    // Round 1: retrieve + reuse.
    let outcome = cycle.retrieve(&case_base, &request)?;
    println!(
        "round 1: suggested {} (S = {:.4}), bypassed: {}",
        outcome.suggestion.impl_id,
        outcome.suggestion.similarity.to_f64(),
        outcome.bypassed
    );

    // The deployed solution is measured: it actually delivers exactly the
    // requested operating point (say, a parameterizable FPGA filter).
    let measured = vec![
        AttrBinding::new(paper::ATTR_BITWIDTH, 12),
        AttrBinding::new(paper::ATTR_OUTPUT, 0),
        AttrBinding::new(paper::ATTR_RATE, 30),
    ];
    let action = cycle.learn(
        &mut case_base,
        &request,
        &outcome,
        &measured,
        ExecutionTarget::Fpga,
        Footprint {
            bitstream_bytes: 80 * 1024,
            slices: 700,
            dynamic_mw: 160,
            exec_us: 14,
            ..Footprint::none()
        },
    )?;
    println!("feedback: {action:?}");
    assert!(matches!(action, LearnAction::Retained { .. }));

    // Round 2: the retained case now answers the same request perfectly.
    let again = cycle.retrieve(&case_base, &request)?;
    println!(
        "round 2: suggested {} (S = {:.4}), bypassed: {}",
        again.suggestion.impl_id,
        again.suggestion.similarity.to_f64(),
        again.bypassed
    );
    assert!(again.suggestion.similarity.is_one());

    // Round 3: repeated call → bypass token, retrieval skipped entirely.
    let third = cycle.retrieve(&case_base, &request)?;
    println!(
        "round 3: suggested {} via bypass token: {}",
        third.suggestion.impl_id, third.bypassed
    );
    assert!(third.bypassed);

    // Revision: the DSP case overstates its sample rate; measurement
    // corrects it in place.
    let dsp_request = paper::table1_request()?;
    let dsp_outcome = cycle.retrieve(&case_base, &dsp_request)?;
    let action = cycle.learn(
        &mut case_base,
        &dsp_request,
        &dsp_outcome,
        &[AttrBinding::new(paper::ATTR_RATE, 40)],
        ExecutionTarget::Dsp,
        Footprint::none(),
    )?;
    println!("DSP feedback: {action:?}");
    assert!(matches!(action, LearnAction::Revised { .. }));

    let dsp = case_base
        .function_type(paper::FIR_EQUALIZER)
        .unwrap()
        .variant(paper::IMPL_DSP)
        .unwrap();
    println!(
        "case base now holds {} FIR variants; DSP rate revised to {:?} kS/s",
        case_base.function_type(paper::FIR_EQUALIZER).unwrap().variant_count(),
        dsp.attr(paper::ATTR_RATE).unwrap()
    );
    println!(
        "bypass cache: {} hits / {} misses",
        cycle.cache().stats().hits,
        cycle.cache().stats().misses
    );
    Ok(())
}
