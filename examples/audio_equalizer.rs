//! The paper's running example (fig. 3 / Table 1): an application asks for
//! an FIR equalizer with `{16 bit, stereo, 40 kSamples/s}` and the case
//! base offers FPGA, DSP and GP-processor realizations. Prints the full
//! Table 1 similarity breakdown from both the float reference and the
//! 16-bit fixed-point engine.
//!
//! Run with: `cargo run --example audio_equalizer`

use rqfa::core::{paper, FixedEngine, FloatEngine};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let case_base = paper::table1_case_base();
    let request = paper::table1_request()?;

    println!("request on case-base: {request}\n");

    // Per-attribute breakdown (the si / d / dmax columns of Table 1).
    let fir = case_base
        .function_type(paper::FIR_EQUALIZER)
        .expect("fixture");
    println!(
        "{:<22} {:>6} {:>6} {:>6} {:>8}  S(fixed)",
        "implementation", "bw", "out", "rate", "S(float)"
    );
    let (float_scores, _) = FloatEngine::new().score_all(&case_base, &request)?;
    let (fixed_scores, _) = FixedEngine::new().score_all(&case_base, &request)?;
    for ((variant, f), q) in fir.variants().iter().zip(&float_scores).zip(&fixed_scores) {
        let attr = |id| {
            variant
                .attr(id)
                .map_or_else(|| "-".to_string(), |v| v.to_string())
        };
        println!(
            "{:<22} {:>6} {:>6} {:>6} {:>8.2}  {:.4}",
            format!("{} ({})", variant.id(), variant.target()),
            attr(paper::ATTR_BITWIDTH),
            attr(paper::ATTR_OUTPUT),
            attr(paper::ATTR_RATE),
            f.similarity,
            q.similarity.to_f64(),
        );
    }

    let best = FloatEngine::new().retrieve(&case_base, &request)?.best.unwrap();
    println!(
        "\nbest match: {} ({}) with S = {:.2}  — Table 1 expects the DSP at 0.96",
        best.impl_id, best.target, best.similarity
    );

    // Paper expectations as hard checks.
    for (impl_raw, expected) in paper::TABLE1_EXPECTED {
        let got = float_scores
            .iter()
            .find(|s| s.impl_id.raw() == impl_raw)
            .unwrap()
            .similarity;
        assert!(
            (got - expected).abs() < 5e-3,
            "impl {impl_raw}: got {got:.4}, paper says {expected}"
        );
    }
    println!("all three similarities match Table 1 to two decimals ✓");
    Ok(())
}
