//! Block-RAM port models.
//!
//! The synthesized unit uses two 18-kbit block RAMs (Table 2): **CB-MEM**
//! for the case base and **Req-MEM** for the request (fig. 7). Each is a
//! synchronous single-port memory: one word per cycle. [`Bram`] wraps a
//! [`rqfa_memlist::MemImage`] and counts accesses; the FSM charges one
//! cycle per access (or one per *pair* in wide-port mode, the compaction
//! ablation of experiment E9).

use rqfa_memlist::{MemError, MemImage};

/// Port width of a BRAM instance.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum PortWidth {
    /// 16-bit port: one word per access (the paper's configuration).
    #[default]
    Narrow,
    /// 32-bit port: two adjacent words per access ("loading IDs and values
    /// as blocks within one step", §5).
    Wide,
}

/// A synchronous single-port block RAM with access counting.
#[derive(Debug, Clone)]
pub struct Bram {
    image: MemImage,
    width: PortWidth,
    accesses: u64,
}

impl Bram {
    /// Wraps an image as a narrow-port BRAM.
    pub fn new(image: MemImage) -> Bram {
        Bram {
            image,
            width: PortWidth::Narrow,
            accesses: 0,
        }
    }

    /// Wraps an image with an explicit port width.
    pub fn with_width(image: MemImage, width: PortWidth) -> Bram {
        Bram {
            image,
            width,
            accesses: 0,
        }
    }

    /// The configured port width.
    pub fn width(&self) -> PortWidth {
        self.width
    }

    /// Reads one word; counts one access.
    ///
    /// # Errors
    ///
    /// [`MemError::OutOfRange`] outside the image.
    pub fn read(&mut self, addr: u16) -> Result<u16, MemError> {
        self.accesses += 1;
        self.image.read(addr)
    }

    /// Reads two adjacent words.
    ///
    /// On a [`PortWidth::Wide`] port this is **one** access; on a narrow
    /// port it degrades to two.
    ///
    /// # Errors
    ///
    /// [`MemError::OutOfRange`] if either word is outside the image.
    pub fn read_pair(&mut self, addr: u16) -> Result<(u16, u16), MemError> {
        self.accesses += match self.width {
            PortWidth::Wide => 1,
            PortWidth::Narrow => 2,
        };
        self.image.read_pair(addr)
    }

    /// Total accesses so far (each costs one FSM cycle).
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Resets the access counter (e.g. between retrieval runs).
    pub fn reset_stats(&mut self) {
        self.accesses = 0;
    }

    /// The wrapped image.
    pub fn image(&self) -> &MemImage {
        &self.image
    }

    /// Capacity utilization against one Virtex-II BRAM18 (18 kbit = 1024
    /// words of 16 bit + parity). Values above `1.0` mean the image needs
    /// multiple block RAMs.
    pub fn bram18_utilization(&self) -> f64 {
        #[allow(clippy::cast_precision_loss)]
        {
            self.image.len() as f64 / 1024.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn image() -> MemImage {
        MemImage::from_words((0..16u16).collect()).unwrap()
    }

    #[test]
    fn reads_count_accesses() {
        let mut b = Bram::new(image());
        assert_eq!(b.read(3).unwrap(), 3);
        assert_eq!(b.read(4).unwrap(), 4);
        assert_eq!(b.accesses(), 2);
        b.reset_stats();
        assert_eq!(b.accesses(), 0);
    }

    #[test]
    fn wide_port_halves_pair_cost() {
        let mut narrow = Bram::new(image());
        let mut wide = Bram::with_width(image(), PortWidth::Wide);
        narrow.read_pair(0).unwrap();
        wide.read_pair(0).unwrap();
        assert_eq!(narrow.accesses(), 2);
        assert_eq!(wide.accesses(), 1);
        assert_eq!(wide.width(), PortWidth::Wide);
    }

    #[test]
    fn out_of_range_read_errors() {
        let mut b = Bram::new(image());
        assert!(b.read(99).is_err());
    }

    #[test]
    fn utilization_scales_with_size() {
        let b = Bram::new(MemImage::from_words(vec![0; 512]).unwrap());
        assert!((b.bram18_utilization() - 0.5).abs() < 1e-12);
    }
}
