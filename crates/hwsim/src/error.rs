//! Error type of the hardware simulator.

use core::fmt;

use rqfa_memlist::MemError;

/// Errors raised while simulating the retrieval unit.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum HwError {
    /// The requested function type was not found in the type directory.
    ///
    /// The paper treats this as a design error that "should not happen";
    /// the hardware FSM would simply terminate with an invalid result, the
    /// simulator reports it explicitly.
    TypeNotFound {
        /// The requested raw type id.
        type_id: u16,
    },
    /// A request attribute has no supplemental bounds entry — the FSM
    /// cannot fetch a reciprocal for it.
    SupplementalMiss {
        /// The raw attribute id.
        attr: u16,
    },
    /// A structural memory fault (bad pointer, missing terminator, read
    /// outside the BRAM).
    Memory(MemError),
    /// The FSM exceeded its watchdog cycle budget — a malformed image
    /// created an unproductive scan loop.
    Watchdog {
        /// Cycles executed when the watchdog fired.
        cycles: u64,
    },
}

impl fmt::Display for HwError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HwError::TypeNotFound { type_id } => {
                write!(f, "function type {type_id} not present in the case-base image")
            }
            HwError::SupplementalMiss { attr } => {
                write!(f, "attribute {attr} has no supplemental entry (no reciprocal)")
            }
            HwError::Memory(e) => write!(f, "memory fault: {e}"),
            HwError::Watchdog { cycles } => {
                write!(f, "watchdog fired after {cycles} cycles (malformed image?)")
            }
        }
    }
}

impl std::error::Error for HwError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            HwError::Memory(e) => Some(e),
            _ => None,
        }
    }
}

impl From<MemError> for HwError {
    fn from(e: MemError) -> HwError {
        HwError::Memory(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        use std::error::Error;
        let e = HwError::TypeNotFound { type_id: 3 };
        assert!(e.to_string().contains('3'));
        assert!(e.source().is_none());
        let m = HwError::from(MemError::OutOfRange { addr: 1, len: 0 });
        assert!(m.source().is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<HwError>();
    }
}
