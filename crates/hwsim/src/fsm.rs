//! The retrieval finite-state machine (fig. 6) and its cost model.
//!
//! The FSM walks the presorted linear lists of the memory images exactly
//! like the synthesized unit: one BRAM access per word, resumable cursors
//! in the per-implementation attribute search and in the supplemental
//! list, and the strictly-greater best-comparator update. Cycle costs are
//! configurable via [`CostModel`] so the HW/SW comparison (experiment E4)
//! can include a sensitivity analysis.

use core::fmt;

/// Per-operation cycle costs of the FSM.
///
/// The defaults model the synthesized unit of §4.2: synchronous BRAM reads
/// (1 cycle), registered 18×18 multipliers (2 cycles), single-cycle ALU
/// operations and comparator updates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CostModel {
    /// Cycles per BRAM access.
    pub read: u64,
    /// Cycles per 18×18 multiply.
    pub mul: u64,
    /// Cycles per ALU operation (abs-diff, complement, accumulate).
    pub alu: u64,
    /// Cycles per best-comparator evaluation/update.
    pub compare: u64,
    /// Fixed start-up cycles (state-register initialization).
    pub setup: u64,
}

impl Default for CostModel {
    fn default() -> CostModel {
        CostModel {
            read: 1,
            mul: 2,
            alu: 1,
            compare: 1,
            setup: 2,
        }
    }
}

impl CostModel {
    /// A conservative model where every operation costs one cycle — the
    /// lower bound used in the E4 sensitivity sweep.
    pub fn unit() -> CostModel {
        CostModel {
            read: 1,
            mul: 1,
            alu: 1,
            compare: 1,
            setup: 0,
        }
    }
}

/// FSM phases, mirroring the boxes of fig. 6.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum Phase {
    /// "Extract function basic-type from request".
    FetchRequestType,
    /// "Look in case-base for corresponding entry".
    SearchTypeDirectory,
    /// "Selection of next function implementation from sub-list".
    NextImplementation,
    /// "Determine type and value of next attribute from request".
    FetchRequestAttr,
    /// "Get range constant d_max from attribute-supplemental list".
    SearchSupplemental,
    /// "Look in attribute list of implementation for a matching entry".
    SearchImplAttr,
    /// Local similarity computation + weighting (the two multipliers).
    Compute,
    /// "S > S_best?" comparator update.
    CompareBest,
    /// "Deliver most similar implementation ID".
    Done,
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Phase::FetchRequestType => "fetch-request-type",
            Phase::SearchTypeDirectory => "search-type-directory",
            Phase::NextImplementation => "next-implementation",
            Phase::FetchRequestAttr => "fetch-request-attr",
            Phase::SearchSupplemental => "search-supplemental",
            Phase::SearchImplAttr => "search-impl-attr",
            Phase::Compute => "compute",
            Phase::CompareBest => "compare-best",
            Phase::Done => "done",
        };
        f.write_str(name)
    }
}

/// Cycle accounting, broken down by phase.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CycleBreakdown {
    /// Cycles spent fetching request words.
    pub request_fetch: u64,
    /// Cycles spent searching the type directory.
    pub type_search: u64,
    /// Cycles spent walking implementation lists.
    pub impl_walk: u64,
    /// Cycles spent searching the supplemental list.
    pub supplemental_search: u64,
    /// Cycles spent searching implementation attribute lists.
    pub attr_search: u64,
    /// Cycles spent in the arithmetic datapath.
    pub compute: u64,
    /// Cycles spent in the best comparator.
    pub compare: u64,
    /// Fixed setup cycles.
    pub setup: u64,
}

impl CycleBreakdown {
    /// Total cycles across all phases.
    pub fn total(&self) -> u64 {
        self.request_fetch
            + self.type_search
            + self.impl_walk
            + self.supplemental_search
            + self.attr_search
            + self.compute
            + self.compare
            + self.setup
    }

    /// Fraction of cycles spent in pure memory search (type + supplemental
    /// + attribute scans), the quantity the §5 compaction outlook targets.
    pub fn search_fraction(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        #[allow(clippy::cast_precision_loss)]
        {
            (self.type_search + self.supplemental_search + self.attr_search) as f64 / total as f64
        }
    }
}

impl fmt::Display for CycleBreakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{:<22} {:>10}", "phase", "cycles")?;
        for (name, value) in [
            ("request fetch", self.request_fetch),
            ("type search", self.type_search),
            ("impl walk", self.impl_walk),
            ("supplemental search", self.supplemental_search),
            ("attr search", self.attr_search),
            ("compute", self.compute),
            ("compare", self.compare),
            ("setup", self.setup),
        ] {
            writeln!(f, "{name:<22} {value:>10}")?;
        }
        writeln!(f, "{:<22} {:>10}", "total", self.total())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_cost_model_matches_documented_values() {
        let c = CostModel::default();
        assert_eq!((c.read, c.mul, c.alu, c.compare, c.setup), (1, 2, 1, 1, 2));
        let u = CostModel::unit();
        assert_eq!((u.read, u.mul, u.alu, u.compare, u.setup), (1, 1, 1, 1, 0));
    }

    #[test]
    fn breakdown_totals() {
        let b = CycleBreakdown {
            request_fetch: 10,
            type_search: 5,
            impl_walk: 4,
            supplemental_search: 6,
            attr_search: 9,
            compute: 20,
            compare: 3,
            setup: 2,
        };
        assert_eq!(b.total(), 59);
        let f = b.search_fraction();
        assert!((f - 20.0 / 59.0).abs() < 1e-12);
        assert!(b.to_string().contains("total"));
    }

    #[test]
    fn phases_display() {
        assert_eq!(Phase::Compute.to_string(), "compute");
        assert_eq!(Phase::Done.to_string(), "done");
    }
}
