//! Property tests: the hardware simulator is bit-exact with the software
//! fixed-point engine over random case bases (the paper's Matlab ≡ ModelSim
//! equivalence, experiment E5), and its cycle counts behave monotonically.

use proptest::prelude::*;

use rqfa_core::{
    AttrBinding, AttrDecl, AttrId, BoundsTable, CaseBase, ExecutionTarget, FixedEngine,
    FunctionType, ImplId, ImplVariant, Request, TypeId,
};
use rqfa_memlist::{encode_case_base, encode_compact_case_base, encode_request, is_compactible};

use crate::{ImageLayout, PortWidth, RetrievalUnit, UnitConfig};

#[derive(Debug, Clone)]
struct Scenario {
    case_base: CaseBase,
    request: Request,
}

fn scenario() -> impl Strategy<Value = Scenario> {
    (1usize..=5, 1usize..=3).prop_flat_map(|(k, t)| {
        let variants = proptest::collection::vec(
            proptest::collection::vec(proptest::option::of(0u16..=50), k),
            1..=6,
        );
        let types = proptest::collection::vec(variants, t);
        let req = proptest::collection::vec(proptest::option::of(0u16..=50), k);
        let req_type = 1u16..=(t as u16);
        (types, req, req_type).prop_filter_map("nonempty request", move |(spec, req, rt)| {
            let decls: Vec<AttrDecl> = (1..=k as u16)
                .map(|x| AttrDecl::new(AttrId::new(x).unwrap(), format!("a{x}"), 0, 50).unwrap())
                .collect();
            let bounds = BoundsTable::from_decls(decls).unwrap();
            let types: Vec<FunctionType> = spec
                .iter()
                .enumerate()
                .map(|(ti, vars)| {
                    let vs: Vec<ImplVariant> = vars
                        .iter()
                        .enumerate()
                        .map(|(vi, attrs)| {
                            let bindings: Vec<AttrBinding> = attrs
                                .iter()
                                .enumerate()
                                .filter_map(|(ai, v)| {
                                    v.map(|value| {
                                        AttrBinding::new(
                                            AttrId::new((ai + 1) as u16).unwrap(),
                                            value,
                                        )
                                    })
                                })
                                .collect();
                            ImplVariant::new(
                                ImplId::new((vi + 1) as u16).unwrap(),
                                ExecutionTarget::Fpga,
                                bindings,
                            )
                            .unwrap()
                        })
                        .collect();
                    FunctionType::new(TypeId::new((ti + 1) as u16).unwrap(), format!("t{ti}"), vs)
                        .unwrap()
                })
                .collect();
            let case_base = CaseBase::new(bounds, types).unwrap();
            let mut builder = Request::builder(TypeId::new(rt).unwrap());
            let mut any = false;
            for (i, v) in req.iter().enumerate() {
                if let Some(value) = v {
                    builder = builder.constraint(AttrId::new((i + 1) as u16).unwrap(), *value);
                    any = true;
                }
            }
            if !any {
                return None;
            }
            Some(Scenario {
                case_base,
                request: builder.build().unwrap(),
            })
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Bit-exactness: hardware best == FixedEngine best, including the
    /// similarity word, across all memory organizations.
    #[test]
    fn hw_matches_fixed_engine(s in scenario()) {
        let sw = FixedEngine::new().retrieve(&s.case_base, &s.request).unwrap();
        let sw_best = sw.best.unwrap();

        let cb_img = encode_case_base(&s.case_base).unwrap();
        let req_img = encode_request(&s.request).unwrap();

        for layout in [
            ImageLayout::Classic(PortWidth::Narrow),
            ImageLayout::Classic(PortWidth::Wide),
        ] {
            let mut unit = RetrievalUnit::new(&cb_img, UnitConfig { layout, ..UnitConfig::default() }).unwrap();
            let hw = unit.retrieve(&req_img).unwrap();
            let (id, sim) = hw.best.unwrap();
            prop_assert_eq!(id, sw_best.impl_id.raw(), "layout {:?}", layout);
            prop_assert_eq!(sim, sw_best.similarity, "layout {:?}", layout);
        }

        if is_compactible(&s.case_base) {
            let compact_img = encode_compact_case_base(&s.case_base).unwrap();
            let mut unit = RetrievalUnit::new_compact(&compact_img, UnitConfig::default()).unwrap();
            let hw = unit.retrieve(&req_img).unwrap();
            let (id, sim) = hw.best.unwrap();
            prop_assert_eq!(id, sw_best.impl_id.raw());
            prop_assert_eq!(sim, sw_best.similarity);
        }
    }

    /// Full score vectors agree with the software engine (scan order too).
    #[test]
    fn hw_scores_match_fixed_engine(s in scenario()) {
        let (sw_scores, _) = FixedEngine::new().score_all(&s.case_base, &s.request).unwrap();
        let cb_img = encode_case_base(&s.case_base).unwrap();
        let req_img = encode_request(&s.request).unwrap();
        let mut unit = RetrievalUnit::new(&cb_img, UnitConfig::default()).unwrap();
        let hw = unit.retrieve(&req_img).unwrap();
        prop_assert_eq!(hw.scores.len(), sw_scores.len());
        for ((hid, hsim), sws) in hw.scores.iter().zip(&sw_scores) {
            prop_assert_eq!(*hid, sws.impl_id.raw());
            prop_assert_eq!(*hsim, sws.similarity);
        }
    }

    /// The n-best register bank reproduces the software ranking.
    #[test]
    fn hw_nbest_matches_software_rank(s in scenario(), n in 1usize..6) {
        let sw = FixedEngine::new().retrieve_n_best(&s.case_base, &s.request, n).unwrap();
        let cb_img = encode_case_base(&s.case_base).unwrap();
        let req_img = encode_request(&s.request).unwrap();
        let mut unit = RetrievalUnit::new(
            &cb_img,
            UnitConfig { n_best: n, ..UnitConfig::default() },
        ).unwrap();
        let hw = unit.retrieve(&req_img).unwrap();
        prop_assert_eq!(hw.ranked.len(), sw.ranked.len().min(n));
        for ((hid, hsim), sws) in hw.ranked.iter().zip(&sw.ranked) {
            prop_assert_eq!(*hid, sws.impl_id.raw());
            prop_assert_eq!(*hsim, sws.similarity);
        }
    }

    /// Resume vs naive restart: identical results, naive never cheaper.
    #[test]
    fn naive_search_never_cheaper(s in scenario()) {
        let cb_img = encode_case_base(&s.case_base).unwrap();
        let req_img = encode_request(&s.request).unwrap();
        let mut fast = RetrievalUnit::new(&cb_img, UnitConfig::default()).unwrap();
        let mut slow = RetrievalUnit::new(
            &cb_img,
            UnitConfig { resume: false, ..UnitConfig::default() },
        ).unwrap();
        let a = fast.retrieve(&req_img).unwrap();
        let b = slow.retrieve(&req_img).unwrap();
        prop_assert_eq!(a.best, b.best);
        prop_assert!(b.cycles >= a.cycles);
    }

    /// Cycle counts grow when a variant is added (monotone in case-base
    /// size for the same request).
    #[test]
    fn cycles_monotone_in_variants(s in scenario()) {
        let cb_img = encode_case_base(&s.case_base).unwrap();
        let req_img = encode_request(&s.request).unwrap();
        let mut unit = RetrievalUnit::new(&cb_img, UnitConfig::default()).unwrap();
        let before = unit.retrieve(&req_img).unwrap();

        let mut grown = s.case_base.clone();
        let ty = grown.require_type(s.request.type_id()).unwrap();
        let next_id = ty.variants().iter().map(|v| v.id().raw()).max().unwrap() + 1;
        grown
            .retain_variant(
                s.request.type_id(),
                ImplVariant::new(
                    ImplId::new(next_id).unwrap(),
                    ExecutionTarget::Dsp,
                    vec![AttrBinding::new(AttrId::new(1).unwrap(), 25)],
                )
                .unwrap(),
            )
            .unwrap();
        let grown_img = encode_case_base(&grown).unwrap();
        let mut unit2 = RetrievalUnit::new(&grown_img, UnitConfig::default()).unwrap();
        let after = unit2.retrieve(&req_img).unwrap();
        prop_assert!(after.cycles > before.cycles);
        prop_assert_eq!(after.evaluated, before.evaluated + 1);
    }
}
