//! Execution traces of the retrieval FSM — the simulator's equivalent of a
//! ModelSim waveform, used by tests, examples and debugging.

use core::fmt;

use crate::fsm::Phase;

/// One trace event: the FSM entered `phase` at `cycle`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Cycle count when the phase was entered.
    pub cycle: u64,
    /// The phase.
    pub phase: Phase,
    /// Free-form detail (address, id, value …).
    pub detail: String,
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{:>8}] {:<24} {}", self.cycle, self.phase.to_string(), self.detail)
    }
}

/// A bounded recording of FSM phase transitions.
///
/// Disabled traces cost nothing; enabled traces keep at most `capacity`
/// events (oldest dropped), so tracing a pathological run cannot exhaust
/// memory.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Trace {
    events: Vec<TraceEvent>,
    capacity: usize,
    enabled: bool,
    dropped: u64,
}

impl Trace {
    /// A disabled (zero-cost) trace.
    pub fn disabled() -> Trace {
        Trace::default()
    }

    /// An enabled trace keeping up to `capacity` events.
    pub fn enabled(capacity: usize) -> Trace {
        Trace {
            events: Vec::new(),
            capacity: capacity.max(1),
            enabled: true,
            dropped: 0,
        }
    }

    /// Whether events are being recorded.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Records one event (no-op when disabled).
    pub fn record(&mut self, cycle: u64, phase: Phase, detail: impl FnOnce() -> String) {
        if !self.enabled {
            return;
        }
        if self.events.len() >= self.capacity {
            self.events.remove(0);
            self.dropped += 1;
        }
        self.events.push(TraceEvent {
            cycle,
            phase,
            detail: detail(),
        });
    }

    /// The recorded events, oldest first.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of events dropped due to the capacity bound.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Clears all recorded events.
    pub fn clear(&mut self) {
        self.events.clear();
        self.dropped = 0;
    }
}

impl fmt::Display for Trace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.dropped > 0 {
            writeln!(f, "... ({} earlier events dropped)", self.dropped)?;
        }
        for e in &self.events {
            writeln!(f, "{e}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_trace_records_nothing() {
        let mut t = Trace::disabled();
        t.record(1, Phase::Compute, || "x".into());
        assert!(t.events().is_empty());
        assert!(!t.is_enabled());
    }

    #[test]
    fn capacity_bounds_events() {
        let mut t = Trace::enabled(2);
        for i in 0..5 {
            t.record(i, Phase::Compute, || format!("e{i}"));
        }
        assert_eq!(t.events().len(), 2);
        assert_eq!(t.dropped(), 3);
        assert_eq!(t.events()[0].detail, "e3");
        let shown = t.to_string();
        assert!(shown.contains("earlier events dropped"));
        t.clear();
        assert!(t.events().is_empty());
    }

    #[test]
    fn event_display() {
        let e = TraceEvent {
            cycle: 42,
            phase: Phase::CompareBest,
            detail: "impl 2".into(),
        };
        let s = e.to_string();
        assert!(s.contains("42") && s.contains("compare-best") && s.contains("impl 2"));
    }
}
