//! Datapath component models (fig. 7).
//!
//! The retrieval unit's datapath consists of: an absolute-difference unit
//! (`ABS(X)` after `Diff(A_i, A_i_CB)`), two 18×18 hardware multipliers
//! (`d · (1+d_max)⁻¹` and `s_i · w_i`), the similarity accumulator
//! (`S = Σ s_i·w_i`), and the best-score comparator holding
//! `(S_max, Realis_ID_max)`. Each component counts its activations so area
//! and energy models (and the ablation benches) can reason about usage.
//!
//! Arithmetic is delegated to [`rqfa_fixed`] so the datapath is bit-exact
//! with the [`rqfa_core::FixedEngine`] reference by construction.

use rqfa_fixed::Q15;

/// Usage counters of the datapath components.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DatapathStats {
    /// Absolute-difference activations.
    pub abs_diff_ops: u64,
    /// Multiplier 0 activations (`d · recip`).
    pub mult0_ops: u64,
    /// Multiplier 1 activations (`s_i · w_i`).
    pub mult1_ops: u64,
    /// Accumulator additions.
    pub acc_ops: u64,
    /// Best-comparator evaluations.
    pub cmp_ops: u64,
}

/// The retrieval unit's datapath state.
#[derive(Debug, Clone, Default)]
pub struct Datapath {
    acc: u32,
    best_sim: Q15,
    best_id: Option<u16>,
    stats: DatapathStats,
}

impl Datapath {
    /// Creates an idle datapath.
    pub fn new() -> Datapath {
        Datapath::default()
    }

    /// Clears the similarity accumulator (start of a new implementation).
    pub fn clear_acc(&mut self) {
        self.acc = 0;
    }

    /// Computes the local similarity `s_i = 1 − sat(|a−b| · recip)` on the
    /// 16-bit path: one abs-diff, one multiply, one complement.
    pub fn local_similarity(&mut self, request_value: u16, case_value: u16, recip: Q15) -> Q15 {
        self.stats.abs_diff_ops += 1;
        self.stats.mult0_ops += 1;
        let d = request_value.abs_diff(case_value);
        rqfa_fixed::local_similarity(d, recip)
    }

    /// Accumulates one weighted term `s_i · w_i` (multiplier 1 + adder).
    pub fn accumulate(&mut self, si: Q15, weight: Q15) {
        self.stats.mult1_ops += 1;
        self.stats.acc_ops += 1;
        self.acc += u32::from(si.mul_trunc(weight).raw());
    }

    /// Reads the accumulated global similarity (saturated to `1.0`).
    pub fn global_similarity(&self) -> Q15 {
        Q15::saturating_from_raw(self.acc.min(u32::from(Q15::ONE.raw())) as u16)
    }

    /// Feeds the finished implementation score into the best-comparator:
    /// replaces the stored best only on **strictly greater** similarity
    /// (the `S > S_best?` decision of fig. 6). The first candidate always
    /// loads the registers.
    pub fn compare_best(&mut self, impl_id: u16) -> bool {
        self.stats.cmp_ops += 1;
        let s = self.global_similarity();
        let replace = match self.best_id {
            None => true,
            Some(_) => s > self.best_sim,
        };
        if replace {
            self.best_sim = s;
            self.best_id = Some(impl_id);
        }
        replace
    }

    /// The current best `(id, similarity)` registers.
    pub fn best(&self) -> Option<(u16, Q15)> {
        self.best_id.map(|id| (id, self.best_sim))
    }

    /// Component usage counters.
    pub fn stats(&self) -> DatapathStats {
        self.stats
    }

    /// Full reset (new retrieval).
    pub fn reset(&mut self) {
        *self = Datapath {
            stats: self.stats,
            ..Datapath::default()
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rqfa_fixed::recip_plus_one;

    #[test]
    fn similarity_accumulation_matches_fixed_engine_math() {
        let mut dp = Datapath::new();
        dp.clear_acc();
        // Table 1, DSP row: s = (1, 1, 0.8919), w = 1/3 each.
        let w = Q15::new(10923).unwrap();
        let s1 = dp.local_similarity(16, 16, recip_plus_one(8));
        dp.accumulate(s1, w);
        let s3 = dp.local_similarity(1, 1, recip_plus_one(2));
        dp.accumulate(s3, w);
        let s4 = dp.local_similarity(40, 44, recip_plus_one(36));
        dp.accumulate(s4, Q15::new(10922).unwrap());
        let total = dp.global_similarity().to_f64();
        assert!((total - 0.9640).abs() < 2e-3, "got {total}");
        assert_eq!(dp.stats().mult0_ops, 3);
        assert_eq!(dp.stats().mult1_ops, 3);
    }

    #[test]
    fn comparator_keeps_first_on_tie() {
        let mut dp = Datapath::new();
        dp.clear_acc();
        dp.accumulate(Q15::ONE, Q15::ONE);
        assert!(dp.compare_best(1), "first candidate always loads");
        dp.clear_acc();
        dp.accumulate(Q15::ONE, Q15::ONE);
        assert!(!dp.compare_best(2), "equal score must not replace");
        assert_eq!(dp.best().unwrap().0, 1);
    }

    #[test]
    fn comparator_replaces_on_strictly_greater() {
        let mut dp = Datapath::new();
        dp.clear_acc();
        dp.accumulate(Q15::from_f64(0.5).unwrap(), Q15::ONE);
        dp.compare_best(1);
        dp.clear_acc();
        dp.accumulate(Q15::from_f64(0.75).unwrap(), Q15::ONE);
        assert!(dp.compare_best(2));
        let (id, sim) = dp.best().unwrap();
        assert_eq!(id, 2);
        assert!((sim.to_f64() - 0.75).abs() < 1e-3);
    }

    #[test]
    fn reset_preserves_counters() {
        let mut dp = Datapath::new();
        dp.accumulate(Q15::ONE, Q15::ONE);
        dp.compare_best(1);
        let stats = dp.stats();
        dp.reset();
        assert_eq!(dp.stats(), stats);
        assert!(dp.best().is_none());
    }

    #[test]
    fn accumulator_saturates() {
        let mut dp = Datapath::new();
        dp.clear_acc();
        for _ in 0..4 {
            dp.accumulate(Q15::ONE, Q15::ONE);
        }
        assert_eq!(dp.global_similarity(), Q15::ONE);
    }
}
