//! VCD (Value Change Dump) export of retrieval traces.
//!
//! The authors verified their unit by inspecting ModelSim waveforms; this
//! module produces the equivalent artifact from a simulator [`Trace`]: a
//! standard IEEE 1364 VCD file with the FSM phase as a 4-bit vector and a
//! per-phase activity strobe, loadable into GTKWave or any waveform
//! viewer.

use core::fmt::Write;

use crate::fsm::Phase;
use crate::trace::Trace;

/// Encodes a phase as a 4-bit code (stable across releases — documented in
/// the VCD header comment).
fn phase_code(phase: Phase) -> u8 {
    match phase {
        Phase::FetchRequestType => 0,
        Phase::SearchTypeDirectory => 1,
        Phase::NextImplementation => 2,
        Phase::FetchRequestAttr => 3,
        Phase::SearchSupplemental => 4,
        Phase::SearchImplAttr => 5,
        Phase::Compute => 6,
        Phase::CompareBest => 7,
        Phase::Done => 8,
    }
}

fn bits4(value: u8) -> String {
    format!("{:04b}", value & 0x0F)
}

/// Renders a trace as VCD text. The timescale is one cycle = 1 ns (the
/// unit runs at ~75 MHz; absolute time is not the point of the waveform).
///
/// Signals:
/// * `phase[3:0]` — the FSM phase code;
/// * `active` — toggles on every recorded event (an event strobe).
///
/// ```
/// use rqfa_core::paper;
/// use rqfa_memlist::{encode_case_base, encode_request};
/// use rqfa_hwsim::{export_vcd, RetrievalUnit, UnitConfig};
///
/// let cb = encode_case_base(&paper::table1_case_base())?;
/// let request = encode_request(&paper::table1_request()?)?;
/// let mut unit = RetrievalUnit::new(&cb, UnitConfig {
///     trace_capacity: Some(4096),
///     ..UnitConfig::default()
/// })?;
/// let result = unit.retrieve(&request)?;
/// let vcd = export_vcd(&result.trace, "table1 retrieval");
/// assert!(vcd.contains("$timescale"));
/// assert!(vcd.contains("$var wire 4"));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn export_vcd(trace: &Trace, title: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "$comment {title} $end");
    let _ = writeln!(
        out,
        "$comment phase codes: 0=fetch-type 1=search-type 2=next-impl \
         3=fetch-attr 4=suppl 5=attr-search 6=compute 7=compare 8=done $end"
    );
    let _ = writeln!(out, "$timescale 1ns $end");
    let _ = writeln!(out, "$scope module retrieval_unit $end");
    let _ = writeln!(out, "$var wire 4 p phase [3:0] $end");
    let _ = writeln!(out, "$var wire 1 a active $end");
    let _ = writeln!(out, "$upscope $end");
    let _ = writeln!(out, "$enddefinitions $end");
    let _ = writeln!(out, "$dumpvars");
    let _ = writeln!(out, "b0000 p");
    let _ = writeln!(out, "0a");
    let _ = writeln!(out, "$end");

    let mut strobe = false;
    let mut last_cycle: Option<u64> = None;
    for event in trace.events() {
        // VCD requires monotonically non-decreasing timestamps; identical
        // cycles share one timestamp block.
        if last_cycle != Some(event.cycle) {
            let _ = writeln!(out, "#{}", event.cycle);
            last_cycle = Some(event.cycle);
        }
        let _ = writeln!(out, "b{} p", bits4(phase_code(event.phase)));
        strobe = !strobe;
        let _ = writeln!(out, "{}a", u8::from(strobe));
    }
    if let Some(last) = last_cycle {
        let _ = writeln!(out, "#{}", last + 1);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::unit::{RetrievalUnit, UnitConfig};
    use rqfa_core::paper;
    use rqfa_memlist::{encode_case_base, encode_request};

    fn traced_run() -> Trace {
        let cb = encode_case_base(&paper::table1_case_base()).unwrap();
        let request = encode_request(&paper::table1_request().unwrap()).unwrap();
        let mut unit = RetrievalUnit::new(
            &cb,
            UnitConfig {
                trace_capacity: Some(4096),
                ..UnitConfig::default()
            },
        )
        .unwrap();
        unit.retrieve(&request).unwrap().trace
    }

    #[test]
    fn vcd_structure_is_valid() {
        let vcd = export_vcd(&traced_run(), "test");
        // Header blocks in order.
        let defs = vcd.find("$enddefinitions").unwrap();
        assert!(vcd.find("$timescale").unwrap() < defs);
        assert!(vcd.find("$var wire 4 p").unwrap() < defs);
        assert!(vcd.find("$var wire 1 a").unwrap() < defs);
        // Value changes appear after definitions.
        assert!(vcd[defs..].contains("b0110 p"), "compute phase present");
    }

    #[test]
    fn timestamps_are_monotone() {
        let vcd = export_vcd(&traced_run(), "test");
        let mut last = -1i64;
        for line in vcd.lines() {
            if let Some(ts) = line.strip_prefix('#') {
                let t: i64 = ts.parse().unwrap();
                assert!(t >= last, "timestamp went backwards: {t} after {last}");
                last = t;
            }
        }
        assert!(last > 0, "at least one timestamp");
    }

    #[test]
    fn all_phase_codes_are_distinct() {
        let phases = [
            Phase::FetchRequestType,
            Phase::SearchTypeDirectory,
            Phase::NextImplementation,
            Phase::FetchRequestAttr,
            Phase::SearchSupplemental,
            Phase::SearchImplAttr,
            Phase::Compute,
            Phase::CompareBest,
            Phase::Done,
        ];
        let mut codes: Vec<u8> = phases.iter().map(|&p| phase_code(p)).collect();
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), phases.len());
    }

    #[test]
    fn empty_trace_yields_header_only() {
        let vcd = export_vcd(&Trace::disabled(), "empty");
        assert!(vcd.contains("$enddefinitions"));
        assert!(!vcd.contains("#0\nb"), "no value changes");
    }
}
