//! # rqfa-hwsim — cycle-level simulator of the hardware retrieval unit
//!
//! Models the FPGA retrieval unit of Ullmann et al. (DATE 2004), §4.2:
//! the finite-state machine of fig. 6 and the datapath of fig. 7 (two
//! 18×18 multipliers, absolute-difference unit, UQ1.15 accumulator,
//! best-score comparator) operating on the 16-bit word memory images of
//! [`rqfa_memlist`] through synchronous BRAM ports.
//!
//! The simulator plays the role the VHDL model + ModelSim played for the
//! authors: it must produce **bit-identical retrieval results** to the
//! fixed-point software reference ([`rqfa_core::FixedEngine`]) while
//! yielding credible cycle counts for the performance comparison against
//! the soft-core processor (experiment E4, the paper's 8.5× claim).
//!
//! ```
//! use rqfa_core::paper;
//! use rqfa_memlist::{encode_case_base, encode_request};
//! use rqfa_hwsim::{RetrievalUnit, UnitConfig};
//!
//! let cb = encode_case_base(&paper::table1_case_base())?;
//! let request = encode_request(&paper::table1_request()?)?;
//! let mut unit = RetrievalUnit::new(&cb, UnitConfig::default())?;
//! let result = unit.retrieve(&request)?;
//! assert_eq!(result.best.unwrap().0, 2); // the DSP variant of Table 1
//! println!("retrieval took {} cycles", result.cycles);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! ## Variants (for the ablation experiments)
//!
//! * [`UnitConfig::n_best`] — the n-most-similar register bank (§5).
//! * [`ImageLayout::Classic`] with [`PortWidth::Wide`] — 32-bit fetches.
//! * [`ImageLayout::Compact`] — packed attribute words (§5, ≥2× claim).
//! * [`UnitConfig::resume`] `= false` — disables the §4.1 sorted-cursor
//!   optimization (restart-from-top baseline).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bram;
mod datapath;
mod error;
mod fsm;
mod trace;
mod unit;
mod vcd;

pub use bram::{Bram, PortWidth};
pub use datapath::{Datapath, DatapathStats};
pub use error::HwError;
pub use fsm::{CostModel, CycleBreakdown, Phase};
pub use trace::{Trace, TraceEvent};
pub use unit::{HwRetrieval, ImageLayout, RetrievalUnit, UnitConfig};
pub use vcd::export_vcd;

#[cfg(all(test, feature = "proptests"))]
mod proptests;
