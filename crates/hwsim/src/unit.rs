//! The retrieval unit: FSM + datapath + BRAMs wired together.
//!
//! [`RetrievalUnit`] executes the most-similar-retrieval algorithm of
//! fig. 6 over encoded memory images, cycle-accounted per the documented
//! [`CostModel`](crate::CostModel). Three memory organizations are
//! supported (experiments E6/E9):
//!
//! * **Classic / narrow** — the paper's configuration: 16-bit ports, two
//!   words per attribute entry;
//! * **Classic / wide** — 32-bit ports fetching `(id, value)` pairs in one
//!   access ("loading IDs and values as blocks within one step", §5);
//! * **Compact** — packed single-word attribute entries
//!   ([`rqfa_memlist::compact`]).
//!
//! The unit also implements the *n-most-similar* extension (§5 outlook) via
//! a small bank of best-score registers, and a `resume: false` mode that
//! disables the sorted-list cursor optimization of §4.1 — the baseline the
//! paper's "repeated search from the top" remark refers to (E12).

use rqfa_fixed::Q15;
use rqfa_memlist::{CaseBaseImage, CompactCaseBaseImage, RequestImage, END_MARKER};

use crate::bram::{Bram, PortWidth};
use crate::datapath::{Datapath, DatapathStats};
use crate::error::HwError;
use crate::fsm::{CostModel, CycleBreakdown, Phase};
use crate::trace::Trace;

/// Memory organization of the case-base image.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ImageLayout {
    /// Two-word attribute entries with the given port width.
    Classic(PortWidth),
    /// Packed single-word attribute entries.
    Compact,
}

impl Default for ImageLayout {
    fn default() -> ImageLayout {
        ImageLayout::Classic(PortWidth::Narrow)
    }
}

/// Configuration of a retrieval unit instance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UnitConfig {
    /// Cycle cost model.
    pub cost: CostModel,
    /// Memory organization.
    pub layout: ImageLayout,
    /// Number of best-score registers (1 = the paper's unit; >1 = the
    /// n-most-similar extension).
    pub n_best: usize,
    /// Enable the resumable-search cursor of §4.1 (`true` = paper's
    /// optimized unit; `false` = restart every attribute search from the
    /// top of the list).
    pub resume: bool,
    /// Trace capacity (`None` = tracing disabled).
    pub trace_capacity: Option<usize>,
}

impl Default for UnitConfig {
    fn default() -> UnitConfig {
        UnitConfig {
            cost: CostModel::default(),
            layout: ImageLayout::default(),
            n_best: 1,
            resume: true,
            trace_capacity: None,
        }
    }
}

/// The outcome of one hardware retrieval.
#[derive(Debug, Clone, PartialEq)]
pub struct HwRetrieval {
    /// Best `(impl id, similarity)` — the unit's output registers.
    pub best: Option<(u16, Q15)>,
    /// The n-best register bank, best first (length ≤ `n_best`).
    pub ranked: Vec<(u16, Q15)>,
    /// Per-implementation scores in scan order (simulator-side visibility;
    /// the real unit does not store these).
    pub scores: Vec<(u16, Q15)>,
    /// Implementations evaluated.
    pub evaluated: usize,
    /// Total cycles.
    pub cycles: u64,
    /// Cycles per FSM phase.
    pub breakdown: CycleBreakdown,
    /// Datapath component usage.
    pub datapath: DatapathStats,
    /// CB-MEM accesses.
    pub cb_accesses: u64,
    /// Req-MEM accesses.
    pub req_accesses: u64,
    /// Recorded trace (empty if disabled).
    pub trace: Trace,
}

/// The simulated retrieval unit, loaded with one case-base image.
///
/// ```
/// use rqfa_core::paper;
/// use rqfa_memlist::{encode_case_base, encode_request};
/// use rqfa_hwsim::{RetrievalUnit, UnitConfig};
///
/// let cb = encode_case_base(&paper::table1_case_base())?;
/// let request = encode_request(&paper::table1_request()?)?;
/// let mut unit = RetrievalUnit::new(&cb, UnitConfig::default())?;
/// let result = unit.retrieve(&request)?;
/// let (impl_id, similarity) = result.best.unwrap();
/// assert_eq!(impl_id, 2); // Table 1: the DSP implementation wins
/// assert!((similarity.to_f64() - 0.96).abs() < 5e-3);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct RetrievalUnit {
    config: UnitConfig,
    cb: Bram,
    suppl_base: u16,
    tree_base: u16,
}

/// Internal bookkeeping for one run.
struct Run {
    cycles: u64,
    breakdown: CycleBreakdown,
    trace: Trace,
    watchdog: u64,
}

impl Run {
    fn charge(&mut self, bucket: Bucket, cycles: u64) -> Result<(), HwError> {
        self.cycles += cycles;
        let slot = match bucket {
            Bucket::RequestFetch => &mut self.breakdown.request_fetch,
            Bucket::TypeSearch => &mut self.breakdown.type_search,
            Bucket::ImplWalk => &mut self.breakdown.impl_walk,
            Bucket::SupplementalSearch => &mut self.breakdown.supplemental_search,
            Bucket::AttrSearch => &mut self.breakdown.attr_search,
            Bucket::Compute => &mut self.breakdown.compute,
            Bucket::Compare => &mut self.breakdown.compare,
            Bucket::Setup => &mut self.breakdown.setup,
        };
        *slot += cycles;
        if self.cycles > self.watchdog {
            return Err(HwError::Watchdog { cycles: self.cycles });
        }
        Ok(())
    }
}

#[derive(Clone, Copy)]
enum Bucket {
    RequestFetch,
    TypeSearch,
    ImplWalk,
    SupplementalSearch,
    AttrSearch,
    Compute,
    Compare,
    Setup,
}

impl RetrievalUnit {
    /// Loads a classic-layout case-base image.
    ///
    /// # Errors
    ///
    /// [`HwError::Memory`] if the image lacks the two header pointers.
    pub fn new(image: &CaseBaseImage, config: UnitConfig) -> Result<RetrievalUnit, HwError> {
        let width = match config.layout {
            ImageLayout::Classic(w) => w,
            // A compact config paired with a classic image is a caller bug
            // we tolerate by reading it as narrow classic.
            ImageLayout::Compact => PortWidth::Narrow,
        };
        let suppl_base = image.supplemental_base()?;
        let tree_base = image.tree_base()?;
        Ok(RetrievalUnit {
            config: UnitConfig {
                layout: ImageLayout::Classic(width),
                ..config
            },
            cb: Bram::with_width(image.image().clone(), width),
            suppl_base,
            tree_base,
        })
    }

    /// Loads a compact-layout case-base image.
    ///
    /// # Errors
    ///
    /// [`HwError::Memory`] if the image lacks the two header pointers.
    pub fn new_compact(
        image: &CompactCaseBaseImage,
        config: UnitConfig,
    ) -> Result<RetrievalUnit, HwError> {
        let suppl_base = image.supplemental_base()?;
        let tree_base = image.tree_base()?;
        Ok(RetrievalUnit {
            config: UnitConfig {
                layout: ImageLayout::Compact,
                ..config
            },
            cb: Bram::new(image.image().clone()),
            suppl_base,
            tree_base,
        })
    }

    /// The active configuration.
    pub fn config(&self) -> &UnitConfig {
        &self.config
    }

    /// Runs one retrieval over the loaded case base.
    ///
    /// # Errors
    ///
    /// * [`HwError::TypeNotFound`] when the requested type is absent;
    /// * [`HwError::SupplementalMiss`] for attributes without bounds entry;
    /// * [`HwError::Memory`] on structural faults;
    /// * [`HwError::Watchdog`] if a malformed image loops the FSM.
    #[allow(clippy::too_many_lines)]
    pub fn retrieve(&mut self, request: &RequestImage) -> Result<HwRetrieval, HwError> {
        let cost = self.config.cost;
        let n_best = self.config.n_best.max(1);
        let wide = matches!(self.config.layout, ImageLayout::Classic(PortWidth::Wide));
        let compact = matches!(self.config.layout, ImageLayout::Compact);
        self.cb.reset_stats();
        let mut req = Bram::with_width(
            request.image().clone(),
            if wide { PortWidth::Wide } else { PortWidth::Narrow },
        );

        let cb_len = self.cb.image().len() as u64;
        let req_len = req.image().len() as u64;
        let mut run = Run {
            cycles: 0,
            breakdown: CycleBreakdown::default(),
            trace: self
                .config
                .trace_capacity
                .map_or_else(Trace::disabled, Trace::enabled),
            watchdog: 64 * (cb_len + 16) * (req_len + 16),
        };
        let mut dp = Datapath::new();
        let mut ranked: Vec<(u16, Q15)> = Vec::with_capacity(n_best);
        let mut scores: Vec<(u16, Q15)> = Vec::new();

        run.charge(Bucket::Setup, cost.setup)?;

        // ── Phase: fetch request type ───────────────────────────────────
        run.trace.record(run.cycles, Phase::FetchRequestType, String::new);
        let type_id = req.read(0)?;
        run.charge(Bucket::RequestFetch, cost.read)?;

        // ── Phase: search type directory ────────────────────────────────
        run.trace
            .record(run.cycles, Phase::SearchTypeDirectory, || format!("type {type_id}"));
        let mut addr = u32::from(self.tree_base);
        let impl_list = loop {
            let (id, ptr) = if wide {
                let (id, ptr) = self.fetch_pair(addr)?;
                run.charge(Bucket::TypeSearch, cost.read)?;
                (id, ptr)
            } else {
                let id = self.cb.read(clip(addr)?)?;
                run.charge(Bucket::TypeSearch, cost.read)?;
                (id, None)
            };
            if id == END_MARKER {
                return Err(HwError::TypeNotFound { type_id });
            }
            if id == type_id {
                let ptr = match ptr {
                    Some(p) => p,
                    None => {
                        let p = self.cb.read(clip(addr + 1)?)?;
                        run.charge(Bucket::TypeSearch, cost.read)?;
                        p
                    }
                };
                break ptr;
            }
            addr += 2;
        };

        // ── Implementation loop ─────────────────────────────────────────
        let mut impl_addr = u32::from(impl_list);
        let mut evaluated = 0usize;
        loop {
            run.trace
                .record(run.cycles, Phase::NextImplementation, || format!("@{impl_addr:#06x}"));
            let (impl_id, maybe_ptr) = if wide {
                let pair = self.fetch_pair(impl_addr)?;
                run.charge(Bucket::ImplWalk, cost.read)?;
                pair
            } else {
                let id = self.cb.read(clip(impl_addr)?)?;
                run.charge(Bucket::ImplWalk, cost.read)?;
                (id, None)
            };
            if impl_id == END_MARKER {
                break;
            }
            let attr_list = match maybe_ptr {
                Some(p) => p,
                None => {
                    let p = self.cb.read(clip(impl_addr + 1)?)?;
                    run.charge(Bucket::ImplWalk, cost.read)?;
                    p
                }
            };

            // Reset per-implementation state.
            dp.clear_acc();
            run.charge(Bucket::Compute, cost.alu)?;
            let mut req_addr: u32 = 1;
            let mut suppl_cursor = u32::from(self.suppl_base);
            let mut attr_cursor = u32::from(attr_list);

            // ── Request-attribute loop ──────────────────────────────────
            loop {
                run.trace
                    .record(run.cycles, Phase::FetchRequestAttr, || format!("@{req_addr}"));
                let attr = req.read(clip(req_addr)?)?;
                run.charge(Bucket::RequestFetch, cost.read)?;
                if attr == END_MARKER {
                    break;
                }
                let (value, weight) = if wide {
                    // (attr, value) came as a notional pair; charge one more
                    // access for the weight word.
                    let value = req.image().read(clip(req_addr + 1)?)?;
                    let weight = req.read(clip(req_addr + 2)?)?;
                    run.charge(Bucket::RequestFetch, cost.read)?;
                    (value, weight)
                } else {
                    let value = req.read(clip(req_addr + 1)?)?;
                    let weight = req.read(clip(req_addr + 2)?)?;
                    run.charge(Bucket::RequestFetch, 2 * cost.read)?;
                    (value, weight)
                };
                let weight = Q15::saturating_from_raw(weight);

                // ── Supplemental search (resumable, 4-word blocks) ──────
                run.trace
                    .record(run.cycles, Phase::SearchSupplemental, || format!("attr {attr}"));
                if !self.config.resume {
                    suppl_cursor = u32::from(self.suppl_base);
                }
                let recip = loop {
                    let sid = self.cb.read(clip(suppl_cursor)?)?;
                    run.charge(Bucket::SupplementalSearch, cost.read)?;
                    if sid == END_MARKER || sid > attr {
                        return Err(HwError::SupplementalMiss { attr });
                    }
                    if sid == attr {
                        let raw = self.cb.read(clip(suppl_cursor + 3)?)?;
                        run.charge(Bucket::SupplementalSearch, cost.read)?;
                        suppl_cursor += 4;
                        break Q15::saturating_from_raw(raw);
                    }
                    suppl_cursor += 4;
                };

                // ── Implementation attribute search ─────────────────────
                run.trace
                    .record(run.cycles, Phase::SearchImplAttr, || format!("attr {attr}"));
                if !self.config.resume {
                    attr_cursor = u32::from(attr_list);
                }
                let mut found: Option<u16> = None;
                loop {
                    if compact {
                        let word = self.cb.read(clip(attr_cursor)?)?;
                        run.charge(Bucket::AttrSearch, cost.read)?;
                        if word == END_MARKER {
                            break;
                        }
                        let (cid, cval) = rqfa_memlist::compact::unpack_attr(word);
                        if cid == attr {
                            attr_cursor += 1;
                            found = Some(cval);
                            break;
                        }
                        if cid > attr {
                            break;
                        }
                        attr_cursor += 1;
                    } else if wide {
                        let (cid, cval) = self.fetch_pair(attr_cursor)?;
                        run.charge(Bucket::AttrSearch, cost.read)?;
                        if cid == END_MARKER {
                            break;
                        }
                        if cid == attr {
                            attr_cursor += 2;
                            found = cval;
                            if found.is_none() {
                                let v = self.cb.read(clip(attr_cursor - 1)?)?;
                                run.charge(Bucket::AttrSearch, cost.read)?;
                                found = Some(v);
                            }
                            break;
                        }
                        if cid > attr {
                            break;
                        }
                        attr_cursor += 2;
                    } else {
                        let cid = self.cb.read(clip(attr_cursor)?)?;
                        run.charge(Bucket::AttrSearch, cost.read)?;
                        if cid == END_MARKER {
                            break;
                        }
                        if cid == attr {
                            let v = self.cb.read(clip(attr_cursor + 1)?)?;
                            run.charge(Bucket::AttrSearch, cost.read)?;
                            attr_cursor += 2;
                            found = Some(v);
                            break;
                        }
                        if cid > attr {
                            break;
                        }
                        attr_cursor += 2;
                    }
                }

                // ── Compute ─────────────────────────────────────────────
                run.trace.record(run.cycles, Phase::Compute, || {
                    format!("attr {attr}, found: {found:?}")
                });
                match found {
                    Some(case_value) => {
                        let si = dp.local_similarity(value, case_value, recip);
                        dp.accumulate(si, weight);
                        run.charge(Bucket::Compute, 2 * cost.mul + 3 * cost.alu)?;
                    }
                    None => {
                        // "a missing attribute can be seen as unsatisfiable
                        // requirement": S_i := 0, one register clear.
                        run.charge(Bucket::Compute, cost.alu)?;
                    }
                }
                req_addr += 3;
            }

            // ── Compare best ────────────────────────────────────────────
            let similarity = dp.global_similarity();
            run.trace.record(run.cycles, Phase::CompareBest, || {
                format!("impl {impl_id}: S={similarity}")
            });
            scores.push((impl_id, similarity));
            evaluated += 1;
            // n-best register bank: find the insertion point with strict-
            // greater comparisons (ties keep scan order), shift, truncate.
            let mut inserted = false;
            for i in 0..ranked.len() {
                run.charge(Bucket::Compare, cost.compare)?;
                dp.compare_best(impl_id); // account comparator activity
                if similarity > ranked[i].1 {
                    ranked.insert(i, (impl_id, similarity));
                    inserted = true;
                    break;
                }
            }
            if !inserted {
                run.charge(Bucket::Compare, cost.compare)?;
                dp.compare_best(impl_id);
                if ranked.len() < n_best {
                    ranked.push((impl_id, similarity));
                }
            }
            ranked.truncate(n_best);

            impl_addr += 2;
        }

        run.trace.record(run.cycles, Phase::Done, || {
            format!("best: {:?}", ranked.first())
        });

        Ok(HwRetrieval {
            best: ranked.first().copied(),
            ranked,
            scores,
            evaluated,
            cycles: run.cycles,
            breakdown: run.breakdown,
            datapath: dp.stats(),
            cb_accesses: self.cb.accesses(),
            req_accesses: req.accesses(),
            trace: run.trace,
        })
    }

    /// Wide fetch helper: reads `(addr, addr+1)` as one access where
    /// possible, degrading to a single-word read at the image boundary.
    fn fetch_pair(&mut self, addr: u32) -> Result<(u16, Option<u16>), HwError> {
        let a = clip(addr)?;
        if usize::from(a) + 1 < self.cb.image().len() {
            let (x, y) = self.cb.read_pair(a)?;
            Ok((x, Some(y)))
        } else {
            Ok((self.cb.read(a)?, None))
        }
    }
}

/// Clamps a 32-bit internal address back to the 16-bit bus, erroring if a
/// scan ran past the address space.
fn clip(addr: u32) -> Result<u16, HwError> {
    u16::try_from(addr).map_err(|_| {
        HwError::Memory(rqfa_memlist::MemError::OutOfRange {
            addr: u16::MAX,
            len: usize::from(u16::MAX),
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rqfa_core::{paper, FixedEngine};
    use rqfa_memlist::{encode_case_base, encode_compact_case_base, encode_request};

    fn table1_images() -> (CaseBaseImage, RequestImage) {
        let cb = encode_case_base(&paper::table1_case_base()).unwrap();
        let req = encode_request(&paper::table1_request().unwrap()).unwrap();
        (cb, req)
    }

    #[test]
    fn table1_best_is_dsp_bit_exact_with_fixed_engine() {
        let (cb_img, req_img) = table1_images();
        let mut unit = RetrievalUnit::new(&cb_img, UnitConfig::default()).unwrap();
        let hw = unit.retrieve(&req_img).unwrap();
        let (id, sim) = hw.best.unwrap();
        assert_eq!(id, 2);

        let sw = FixedEngine::new()
            .retrieve(&paper::table1_case_base(), &paper::table1_request().unwrap())
            .unwrap()
            .best
            .unwrap();
        assert_eq!(id, sw.impl_id.raw());
        assert_eq!(sim, sw.similarity, "bit-exact similarity");
        assert_eq!(hw.evaluated, 3);
    }

    #[test]
    fn all_scores_match_fixed_engine() {
        let (cb_img, req_img) = table1_images();
        let mut unit = RetrievalUnit::new(&cb_img, UnitConfig::default()).unwrap();
        let hw = unit.retrieve(&req_img).unwrap();
        let (sw_scores, _) = FixedEngine::new()
            .score_all(&paper::table1_case_base(), &paper::table1_request().unwrap())
            .unwrap();
        assert_eq!(hw.scores.len(), sw_scores.len());
        for ((hid, hsim), sw) in hw.scores.iter().zip(&sw_scores) {
            assert_eq!(*hid, sw.impl_id.raw());
            assert_eq!(*hsim, sw.similarity);
        }
    }

    #[test]
    fn cycles_are_positive_and_broken_down() {
        let (cb_img, req_img) = table1_images();
        let mut unit = RetrievalUnit::new(&cb_img, UnitConfig::default()).unwrap();
        let hw = unit.retrieve(&req_img).unwrap();
        assert!(hw.cycles > 50, "a real retrieval takes many cycles");
        assert_eq!(hw.breakdown.total(), hw.cycles);
        assert!(hw.breakdown.attr_search > 0);
        assert!(hw.breakdown.compute > 0);
        assert!(hw.cb_accesses > 0 && hw.req_accesses > 0);
    }

    #[test]
    fn unknown_type_faults() {
        let (cb_img, _) = table1_images();
        let req = encode_request(
            &rqfa_core::Request::builder(rqfa_core::TypeId::new(42).unwrap())
                .constraint(paper::ATTR_BITWIDTH, 8)
                .build()
                .unwrap(),
        )
        .unwrap();
        let mut unit = RetrievalUnit::new(&cb_img, UnitConfig::default()).unwrap();
        assert!(matches!(
            unit.retrieve(&req),
            Err(HwError::TypeNotFound { type_id: 42 })
        ));
    }

    #[test]
    fn missing_supplemental_faults() {
        // Request an attribute that exists in no supplemental entry.
        let (cb_img, _) = table1_images();
        let req = encode_request(
            &rqfa_core::Request::builder(paper::FIR_EQUALIZER)
                .constraint(rqfa_core::AttrId::new(9).unwrap(), 1)
                .build()
                .unwrap(),
        )
        .unwrap();
        let mut unit = RetrievalUnit::new(&cb_img, UnitConfig::default()).unwrap();
        assert!(matches!(
            unit.retrieve(&req),
            Err(HwError::SupplementalMiss { attr: 9 })
        ));
    }

    #[test]
    fn wide_port_reduces_cycles_same_result() {
        let (cb_img, req_img) = table1_images();
        let mut narrow = RetrievalUnit::new(&cb_img, UnitConfig::default()).unwrap();
        let mut wide = RetrievalUnit::new(
            &cb_img,
            UnitConfig {
                layout: ImageLayout::Classic(PortWidth::Wide),
                ..UnitConfig::default()
            },
        )
        .unwrap();
        let a = narrow.retrieve(&req_img).unwrap();
        let b = wide.retrieve(&req_img).unwrap();
        assert_eq!(a.best, b.best);
        assert_eq!(a.scores, b.scores);
        assert!(b.cycles < a.cycles, "wide {} vs narrow {}", b.cycles, a.cycles);
    }

    #[test]
    fn compact_layout_reduces_cycles_same_result() {
        let case_base = paper::table1_case_base();
        let req_img = encode_request(&paper::table1_request().unwrap()).unwrap();
        let classic_img = encode_case_base(&case_base).unwrap();
        let compact_img = encode_compact_case_base(&case_base).unwrap();
        let mut classic = RetrievalUnit::new(&classic_img, UnitConfig::default()).unwrap();
        let mut compact = RetrievalUnit::new_compact(&compact_img, UnitConfig::default()).unwrap();
        let a = classic.retrieve(&req_img).unwrap();
        let b = compact.retrieve(&req_img).unwrap();
        assert_eq!(a.best, b.best);
        assert_eq!(a.scores, b.scores);
        assert!(b.cycles < a.cycles);
    }

    #[test]
    fn nbest_registers_match_rank_semantics() {
        let (cb_img, req_img) = table1_images();
        let mut unit = RetrievalUnit::new(
            &cb_img,
            UnitConfig {
                n_best: 2,
                ..UnitConfig::default()
            },
        )
        .unwrap();
        let hw = unit.retrieve(&req_img).unwrap();
        let ids: Vec<u16> = hw.ranked.iter().map(|(id, _)| *id).collect();
        assert_eq!(ids, [2, 1], "DSP then FPGA");
        let sw = FixedEngine::new()
            .retrieve_n_best(&paper::table1_case_base(), &paper::table1_request().unwrap(), 2)
            .unwrap();
        for ((hid, hsim), s) in hw.ranked.iter().zip(&sw.ranked) {
            assert_eq!(*hid, s.impl_id.raw());
            assert_eq!(*hsim, s.similarity);
        }
    }

    #[test]
    fn naive_search_costs_more_cycles_same_result() {
        let (cb_img, req_img) = table1_images();
        let mut resume = RetrievalUnit::new(&cb_img, UnitConfig::default()).unwrap();
        let mut naive = RetrievalUnit::new(
            &cb_img,
            UnitConfig {
                resume: false,
                ..UnitConfig::default()
            },
        )
        .unwrap();
        let a = resume.retrieve(&req_img).unwrap();
        let b = naive.retrieve(&req_img).unwrap();
        assert_eq!(a.best, b.best);
        assert!(
            b.cycles > a.cycles,
            "naive restart must cost more: {} vs {}",
            b.cycles,
            a.cycles
        );
    }

    #[test]
    fn trace_records_phases() {
        let (cb_img, req_img) = table1_images();
        let mut unit = RetrievalUnit::new(
            &cb_img,
            UnitConfig {
                trace_capacity: Some(256),
                ..UnitConfig::default()
            },
        )
        .unwrap();
        let hw = unit.retrieve(&req_img).unwrap();
        assert!(!hw.trace.events().is_empty());
        let phases: Vec<Phase> = hw.trace.events().iter().map(|e| e.phase).collect();
        assert!(phases.contains(&Phase::SearchTypeDirectory));
        assert!(phases.contains(&Phase::CompareBest));
        assert!(phases.contains(&Phase::Done));
    }

    #[test]
    fn repeated_retrievals_are_deterministic() {
        let (cb_img, req_img) = table1_images();
        let mut unit = RetrievalUnit::new(&cb_img, UnitConfig::default()).unwrap();
        let a = unit.retrieve(&req_img).unwrap();
        let b = unit.retrieve(&req_img).unwrap();
        assert_eq!(a.best, b.best);
        assert_eq!(a.cycles, b.cycles);
    }
}

#[cfg(test)]
mod cost_model_tests {
    use super::*;
    use crate::fsm::CostModel;
    use rqfa_core::paper;
    use rqfa_memlist::{encode_case_base, encode_request};

    fn run_with(cost: CostModel) -> HwRetrieval {
        let cb = encode_case_base(&paper::table1_case_base()).unwrap();
        let req = encode_request(&paper::table1_request().unwrap()).unwrap();
        let mut unit = RetrievalUnit::new(
            &cb,
            UnitConfig {
                cost,
                ..UnitConfig::default()
            },
        )
        .unwrap();
        unit.retrieve(&req).unwrap()
    }

    /// Doubling the BRAM read cost scales exactly the memory-bound phases.
    #[test]
    fn read_cost_scales_search_phases() {
        let base = run_with(CostModel::default());
        let slow = run_with(CostModel {
            read: 2,
            ..CostModel::default()
        });
        assert_eq!(base.best, slow.best, "cost model never changes results");
        assert_eq!(
            slow.breakdown.attr_search,
            2 * base.breakdown.attr_search,
            "attr search is pure reads"
        );
        assert_eq!(
            slow.breakdown.supplemental_search,
            2 * base.breakdown.supplemental_search
        );
        assert_eq!(slow.breakdown.compute, base.breakdown.compute);
    }

    /// Multiplier latency only affects the compute phase.
    #[test]
    fn mul_cost_scales_compute_only() {
        let base = run_with(CostModel::unit());
        let slow = run_with(CostModel {
            mul: 4,
            ..CostModel::unit()
        });
        assert_eq!(base.best, slow.best);
        assert!(slow.breakdown.compute > base.breakdown.compute);
        assert_eq!(slow.breakdown.attr_search, base.breakdown.attr_search);
        assert_eq!(slow.breakdown.request_fetch, base.breakdown.request_fetch);
    }

    /// The unit cost model gives strictly fewer cycles than the default.
    #[test]
    fn unit_model_is_lower_bound() {
        let unit_cycles = run_with(CostModel::unit()).cycles;
        let default_cycles = run_with(CostModel::default()).cycles;
        assert!(unit_cycles < default_cycles);
    }
}
