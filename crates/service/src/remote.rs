//! The distributed plane: remote shards over memlist-framed RPC.
//!
//! A single-node [`AllocationService`] routes
//! every request to a local worker thread. This module stretches the
//! same shard math across machines:
//!
//! * [`NodeServer`] exposes one service over TCP — it answers
//!   [`Message::Submit`] and [`Message::Mutate`] frames with the exact
//!   replies the in-process API produces.
//! * [`RemoteShard`] is the client of one node: a framed connection with
//!   socket timeouts, a bounded [`RetryPolicy`] with doubling backoff,
//!   lock-free [`NetStats`] counters and optional flight-recorder
//!   events ([`EventKind::FrameSent`] … [`EventKind::FrameTimedOut`]).
//!   A dead node degrades into [`Outcome::Unavailable`], never a hang.
//! * [`ClusterClient`] is the front-end: it asks a
//!   [`Placement`] where the owning shard of each
//!   request lives and routes to the local service or the owning node.
//!   Because placement never changes *which* shard owns a type (see
//!   [`rqfa_core::placement::shard_index`]), a cluster answers
//!   bit-identically to one big single-node service — the invariant
//!   `tests/distributed.rs` proves under byte-level fault injection.
//! * [`replicate_shard`] / [`serve_follower`] implement leader → follower
//!   replication: the shard's dual-slot snapshot container ships in
//!   chunks, then the WAL tail streams as exact log frames, each
//!   acknowledged. On leader death the follower
//!   [promotes](rqfa_net::Follower::promote) and serves the same answers.
//! * [`Supervisor`] closes the detect→decide→act loop: heartbeat probes
//!   renew each node's lease in a [`FailureDetector`]; when a node's
//!   lease decays to [`Liveness::Down`], the supervisor bumps the
//!   cluster's fencing epoch, runs the node's registered promotion hook
//!   (promote the follower, spawn a replacement server, restore
//!   redundancy) and repoints placement via
//!   [`ClusterClient::set_node`] — all driven by the injected clock, so
//!   failover is deterministic under a `ManualClock`.
//!
//! ## Fencing
//!
//! Every [`Message::Mutate`] carries the sender's cluster epoch. A node
//! server remembers the highest epoch it has ever seen and **rejects**
//! mutations stamped lower — so a stale leader reconnecting after a
//! partition (its client still holding the pre-failover epoch) cannot
//! mutate state behind the promoted leader's back. Split-brain writes
//! are refused at the wire, not merely discouraged. Submits are
//! read-only and stay unfenced.
//!
//! ## Duplicate-delivery discipline
//!
//! The transport retries on failure, so frames are delivered *at least
//! once*. The two RPC families absorb duplicates differently:
//!
//! * **Submit** is read-only: a duplicated submit is simply answered
//!   twice, and the client matches replies by id (stale replies for
//!   earlier ids are skipped).
//! * **Mutate** is not idempotent, so the server deduplicates: a mutate
//!   frame byte-identical to the immediately preceding one on the same
//!   connection is treated as a transport duplicate — it is neither
//!   re-applied nor re-acknowledged. (A client never sends two identical
//!   mutations back-to-back on one connection without awaiting the ack
//!   between them, so this window of one is exact.)

use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use rqfa_core::placement::{NodeId, Placement, ShardSite};
use rqfa_core::{CaseMutation, Generation, QosClass, Request};
use rqfa_net::{
    connect_loopback, snapshot_stream, CircuitBreaker, FailureDetector, Follower, FollowerEvent,
    FrameConn, Heartbeat, Liveness, Message, MutateAck, NetError, NetStats, RetryPolicy, TailAck,
    WireOutcome, WireReply,
};
use rqfa_telemetry::{clock::micros_between, EventKind, FlightRecorder, SharedClock};

use crate::{shard, AllocationService, Outcome, Reply, ServiceError};

/// Everything a remote-shard transport stream must be. Blanket-implemented
/// for every `Read + Write + Send` type, so tests can wrap a
/// [`TcpStream`] in a [`rqfa_net::FaultyStream`] and hand it to the same
/// client code production uses.
pub trait RemoteStream: Read + Write + Send {}

impl<S: Read + Write + Send> RemoteStream for S {}

/// Produces a fresh transport stream per (re)connection attempt.
pub type StreamFactory =
    Box<dyn Fn() -> Result<Box<dyn RemoteStream>, NetError> + Send + Sync>;

fn net_err(error: NetError) -> ServiceError {
    ServiceError::Remote(error.to_string())
}

/// Converts a service outcome to its wire mirror.
///
/// # Errors
///
/// [`NetError::Malformed`] for outcomes this protocol version cannot
/// express (impossible for outcomes the service actually produces).
pub fn outcome_to_wire(outcome: &Outcome) -> Result<WireOutcome, NetError> {
    Ok(match outcome {
        Outcome::Allocated {
            best,
            evaluated,
            cached,
        } => WireOutcome::Allocated {
            best: *best,
            evaluated: *evaluated as u64,
            cached: *cached,
        },
        Outcome::ShedQueueFull => WireOutcome::ShedQueueFull,
        Outcome::ShedDeadline => WireOutcome::ShedDeadline,
        Outcome::Failed(error) => WireOutcome::Failed(error.clone()),
        Outcome::Unavailable { attempts } => WireOutcome::Unavailable {
            attempts: *attempts,
        },
        Outcome::ShedPredicted { late_us } => WireOutcome::ShedPredicted { late_us: *late_us },
    })
}

/// Converts a wire outcome back into the service's vocabulary.
pub fn outcome_from_wire(outcome: WireOutcome) -> Outcome {
    match outcome {
        WireOutcome::Allocated {
            best,
            evaluated,
            cached,
        } => Outcome::Allocated {
            best,
            evaluated: usize::try_from(evaluated).unwrap_or(usize::MAX),
            cached,
        },
        WireOutcome::ShedQueueFull => Outcome::ShedQueueFull,
        WireOutcome::ShedDeadline => Outcome::ShedDeadline,
        WireOutcome::Failed(error) => Outcome::Failed(error),
        WireOutcome::Unavailable { attempts } => Outcome::Unavailable { attempts },
        WireOutcome::ShedPredicted { late_us } => Outcome::ShedPredicted { late_us },
    }
}

// ---------------------------------------------------------------------------
// Server side
// ---------------------------------------------------------------------------

/// Serves one [`AllocationService`] over TCP loopback: every accepted
/// connection gets its own thread answering [`Message::Submit`] and
/// [`Message::Mutate`] frames. [`NodeServer::shutdown`] stops accepting,
/// closes every connection and joins all threads — the harness's "kill a
/// node" switch.
pub struct NodeServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    /// Highest mutation epoch this node has ever seen (the fence).
    fence: Arc<AtomicU64>,
    accept_thread: Option<JoinHandle<()>>,
    conn_threads: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl NodeServer {
    /// Binds an ephemeral loopback port and starts serving `service`
    /// with the fence at epoch 0 (every mutation epoch accepted until a
    /// higher one arrives).
    ///
    /// # Errors
    ///
    /// [`ServiceError::Remote`] if the listener cannot be bound.
    pub fn spawn(service: Arc<AllocationService>) -> Result<NodeServer, ServiceError> {
        NodeServer::spawn_fenced(service, 0)
    }

    /// As [`NodeServer::spawn`], but born with the fence already at
    /// `epoch` — the failover path: a server spawned over a promoted
    /// follower starts at the promotion epoch, so the deposed leader's
    /// older-epoch mutations are rejected from the first frame.
    pub fn spawn_fenced(
        service: Arc<AllocationService>,
        epoch: u64,
    ) -> Result<NodeServer, ServiceError> {
        let listener = TcpListener::bind(("127.0.0.1", 0))
            .map_err(|e| ServiceError::Remote(format!("bind loopback listener: {e}")))?;
        let addr = listener
            .local_addr()
            .map_err(|e| ServiceError::Remote(format!("resolve listener address: {e}")))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| ServiceError::Remote(format!("arm nonblocking accept: {e}")))?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let fence = Arc::new(AtomicU64::new(epoch));
        let conn_threads: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::default();
        let accept_flag = Arc::clone(&shutdown);
        let accept_fence = Arc::clone(&fence);
        let accept_threads = Arc::clone(&conn_threads);
        let accept_thread = std::thread::spawn(move || loop {
            if accept_flag.load(Ordering::Acquire) {
                break;
            }
            match listener.accept() {
                Ok((stream, _peer)) => {
                    let service = Arc::clone(&service);
                    let flag = Arc::clone(&accept_flag);
                    let fence = Arc::clone(&accept_fence);
                    let handle =
                        std::thread::spawn(move || serve_connection(&service, stream, &flag, &fence));
                    accept_threads
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner)
                        .push(handle);
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(1));
                }
                Err(_) => break,
            }
        });
        Ok(NodeServer {
            addr,
            shutdown,
            fence,
            accept_thread: Some(accept_thread),
            conn_threads,
        })
    }

    /// The address clients connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The highest mutation epoch this node has seen (the fence).
    pub fn fence_epoch(&self) -> u64 {
        self.fence.load(Ordering::Acquire)
    }

    /// Kills the node: stops accepting, unwinds every connection thread
    /// (each polls the shutdown flag between frames) and joins them all.
    /// In-flight requests already handed to the service still complete
    /// inside the service; their replies just never reach the wire.
    pub fn shutdown(mut self) {
        self.shutdown.store(true, Ordering::Release);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
        let handles = std::mem::take(
            &mut *self
                .conn_threads
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner),
        );
        for handle in handles {
            let _ = handle.join();
        }
    }
}

impl Drop for NodeServer {
    fn drop(&mut self) {
        // A dropped-without-shutdown server still stops serving; the
        // threads observe the flag and exit (unjoined, reaped at process
        // exit). `shutdown` is the clean path.
        self.shutdown.store(true, Ordering::Release);
    }
}

/// One connection's serve loop: strictly request → reply, closing on any
/// protocol violation or transport damage (the client reconnects).
fn serve_connection(
    service: &AllocationService,
    stream: TcpStream,
    shutdown: &AtomicBool,
    fence: &AtomicU64,
) {
    // A short read timeout turns the blocking recv into a poll so the
    // thread notices `shutdown` within ~25 ms even on an idle connection.
    if stream
        .set_read_timeout(Some(Duration::from_millis(25)))
        .is_err()
    {
        return;
    }
    let _ = stream.set_nodelay(true);
    let mut conn = FrameConn::new(stream);
    let mut last_mutate: Option<(u64, CaseMutation)> = None;
    while !shutdown.load(Ordering::Acquire) {
        let message = match conn.recv() {
            Ok((message, _bytes)) => message,
            Err(NetError::Timeout) => continue,
            // Truncation, desync, CRC damage, EOF: the framing is gone —
            // drop the connection and let the client's retry establish a
            // fresh one.
            Err(_) => return,
        };
        match message {
            Message::Submit(submit) => {
                let id = submit.id;
                let ticket = match submit.deadline_us {
                    Some(us) => service.submit_with_deadline(
                        submit.request,
                        submit.class,
                        Duration::from_micros(us),
                    ),
                    None => service.submit(submit.request, submit.class),
                };
                let Some(reply) = ticket.wait() else { return };
                let Ok(outcome) = outcome_to_wire(&reply.outcome) else {
                    return;
                };
                let wire = WireReply {
                    // The node's internal ids are its own; the wire reply
                    // echoes the *caller's* id.
                    id,
                    class: reply.class,
                    outcome,
                    latency_us: reply.latency_us,
                };
                if conn.send(&Message::Reply(wire)).is_err() {
                    return;
                }
            }
            Message::Mutate { epoch, mutation } => {
                if last_mutate.as_ref() == Some(&(epoch, mutation.clone())) {
                    // Transport duplicate (see the module docs): already
                    // answered — swallow it.
                    continue;
                }
                // The fence: remember the highest epoch ever seen and
                // reject anything older — a stale leader's mutation is
                // refused *before* it can touch state (no split-brain).
                let seen = fence.fetch_max(epoch, Ordering::AcqRel).max(epoch);
                let ack = if epoch < seen {
                    MutateAck {
                        generation: 0,
                        error: Some(format!(
                            "fenced: mutation epoch {epoch} is stale (node epoch {seen})"
                        )),
                    }
                } else {
                    match service.apply_mutation(&mutation) {
                        Ok(_inverse) => {
                            let owner = shard::route(mutation.type_id(), service.shard_count());
                            MutateAck {
                                generation: service.shard_generation(owner).raw(),
                                error: None,
                            }
                        }
                        Err(error) => MutateAck {
                            generation: 0,
                            error: Some(error.to_string()),
                        },
                    }
                };
                last_mutate = Some((epoch, mutation));
                if conn.send(&Message::MutateAck(ack)).is_err() {
                    return;
                }
            }
            Message::Heartbeat(probe) => {
                // Liveness probe: echo the node id, answering with this
                // node's fence epoch and its shard-0 generation (the
                // one-shard-per-node convention of the cluster harness)
                // so the prober learns both liveness and progress.
                let echo = Heartbeat {
                    node: probe.node,
                    epoch: fence.load(Ordering::Acquire),
                    generation: service.shard_generation(0).raw(),
                };
                if conn.send(&Message::Heartbeat(echo)).is_err() {
                    return;
                }
            }
            // Replies, acks and replication frames have no business
            // arriving at a node server: protocol violation, close.
            _ => return,
        }
    }
}

// ---------------------------------------------------------------------------
// Client side
// ---------------------------------------------------------------------------

struct Tracer {
    recorder: Arc<FlightRecorder>,
    clock: SharedClock,
    epoch: Instant,
}

/// The client of one remote node: a cached framed connection plus the
/// retry loop that makes every call either answer or fail *boundedly*.
///
/// All transport failures follow one discipline: drop the connection,
/// count the attempt, back off (doubling), reconnect through the stream
/// factory and resend. When the [`RetryPolicy`] budget is exhausted the
/// call returns the attempt count and the caller surfaces
/// [`Outcome::Unavailable`] — the caller's liveness never depends on the
/// node's.
pub struct RemoteShard {
    factory: StreamFactory,
    policy: RetryPolicy,
    stats: Arc<NetStats>,
    conn: Mutex<Option<FrameConn<Box<dyn RemoteStream>>>>,
    tracer: Option<Tracer>,
    /// Optional circuit breaker: when open, calls fail fast with
    /// attempt count 0 instead of burning the whole retry budget
    /// against a node that is known-dead (see [`CircuitBreaker`]).
    breaker: Option<Arc<CircuitBreaker>>,
}

impl RemoteShard {
    /// A client drawing fresh streams from `factory` under `policy`.
    pub fn new(factory: StreamFactory, policy: RetryPolicy) -> RemoteShard {
        RemoteShard {
            factory,
            policy,
            stats: Arc::new(NetStats::new()),
            conn: Mutex::new(None),
            tracer: None,
            breaker: None,
        }
    }

    /// A TCP client of `addr` with `timeout` armed on connect, read and
    /// write.
    pub fn tcp(addr: SocketAddr, timeout: Duration, policy: RetryPolicy) -> RemoteShard {
        RemoteShard::new(
            Box::new(move || {
                connect_loopback(addr, timeout)
                    .map(|stream| Box::new(stream) as Box<dyn RemoteStream>)
            }),
            policy,
        )
    }

    /// Arms net-plane flight recording: every frame sent/received and
    /// every retry/timeout lands in `recorder` stamped by `clock`
    /// (timestamps are µs since this call).
    pub fn with_recorder(
        mut self,
        recorder: Arc<FlightRecorder>,
        clock: SharedClock,
    ) -> RemoteShard {
        let epoch = clock.now();
        self.tracer = Some(Tracer {
            recorder,
            clock,
            epoch,
        });
        self
    }

    /// Guards every call with `breaker`: an exhausted retry budget
    /// counts one failure, a trip makes later calls fail fast (attempt
    /// count 0) until the breaker's clock-driven probe re-closes it.
    #[must_use]
    pub fn with_breaker(mut self, breaker: Arc<CircuitBreaker>) -> RemoteShard {
        self.breaker = Some(breaker);
        self
    }

    /// This client's circuit breaker, if one is attached.
    pub fn breaker(&self) -> Option<Arc<CircuitBreaker>> {
        self.breaker.clone()
    }

    /// This client's transport counters.
    pub fn stats(&self) -> Arc<NetStats> {
        Arc::clone(&self.stats)
    }

    fn record(&self, request_id: u64, class: QosClass, kind: EventKind, arg: u64) {
        if let Some(tracer) = &self.tracer {
            let at_us = micros_between(tracer.epoch, tracer.clock.now());
            #[allow(clippy::cast_possible_truncation)]
            tracer
                .recorder
                .record(at_us, request_id, class.index() as u8, kind, arg);
        }
    }

    /// Submits over the wire; `Err(attempts)` when the node stayed
    /// unreachable through the whole retry budget.
    pub fn call_submit(&self, submit: rqfa_net::Submit) -> Result<WireReply, u32> {
        let id = submit.id;
        let class = submit.class;
        self.call(id, class, &Message::Submit(submit), |message| match message {
            Message::Reply(reply) if reply.id == id => Some(reply),
            // Stale replies (duplicated frames of earlier calls) are
            // skipped by id — never misattributed.
            _ => None,
        })
    }

    /// Applies a mutation over the wire, stamped with the caller's
    /// cluster `epoch` (the server rejects stale epochs — see the
    /// module's fencing docs); `Err(attempts)` on exhaustion.
    pub fn call_mutate(&self, epoch: u64, mutation: &CaseMutation) -> Result<MutateAck, u32> {
        // Control-plane events are traced under request id 0, class HIGH.
        self.call(
            0,
            QosClass::High,
            &Message::Mutate {
                epoch,
                mutation: mutation.clone(),
            },
            |message| match message {
                Message::MutateAck(ack) => Some(ack),
                _ => None,
            },
        )
    }

    /// Probes the node's liveness: sends a heartbeat carrying `node`
    /// and returns the server's echo (fence epoch + shard-0
    /// generation); `Err(attempts)` when the node stayed unreachable.
    pub fn call_heartbeat(&self, node: u16) -> Result<Heartbeat, u32> {
        let probe = Heartbeat {
            node,
            epoch: 0,
            generation: 0,
        };
        self.call(
            u64::from(node),
            QosClass::Critical,
            &Message::Heartbeat(probe),
            |message| match message {
                Message::Heartbeat(echo) => Some(echo),
                _ => None,
            },
        )
    }

    /// One request/response exchange under the retry discipline.
    fn call<T>(
        &self,
        trace_id: u64,
        class: QosClass,
        message: &Message,
        matcher: impl Fn(Message) -> Option<T>,
    ) -> Result<T, u32> {
        // Degradation ladder, rung one: an open breaker fails the call
        // *before* any transport work. Attempt count 0 distinguishes
        // the fast-fail from a genuinely exhausted retry budget.
        if let Some(breaker) = &self.breaker {
            if !breaker.admit() {
                return Err(0);
            }
        }
        let mut guard = self
            .conn
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        for attempt in 0..self.policy.attempts {
            if attempt > 0 {
                self.stats.on_retry();
                self.record(trace_id, class, EventKind::FrameRetried, u64::from(attempt));
                std::thread::sleep(self.policy.backoff(attempt));
            }
            let mut conn = match guard.take() {
                Some(conn) => conn,
                None => match (self.factory)() {
                    Ok(stream) => FrameConn::new(stream),
                    Err(_) => continue,
                },
            };
            match conn.send(message) {
                Ok(bytes) => {
                    self.stats.on_sent(bytes);
                    // `arg` is the frame's payload size in words (frame
                    // minus 3 header and 2 trailer words).
                    self.record(
                        trace_id,
                        class,
                        EventKind::FrameSent,
                        (bytes as u64 / 2).saturating_sub(5),
                    );
                }
                Err(error) => {
                    self.note_failure(trace_id, class, attempt, &error);
                    continue;
                }
            }
            loop {
                match conn.recv() {
                    Ok((reply, bytes)) => {
                        self.stats.on_received(bytes);
                        self.record(
                            trace_id,
                            class,
                            EventKind::FrameReceived,
                            (bytes as u64 / 2).saturating_sub(5),
                        );
                        if let Some(value) = matcher(reply) {
                            *guard = Some(conn);
                            if let Some(breaker) = &self.breaker {
                                breaker.on_success();
                            }
                            return Ok(value);
                        }
                    }
                    Err(error) => {
                        self.note_failure(trace_id, class, attempt, &error);
                        break;
                    }
                }
            }
        }
        // One exhausted call = one breaker failure (not one per
        // attempt): the retry budget already oversamples the node.
        if let Some(breaker) = &self.breaker {
            breaker.on_failure();
        }
        Err(self.policy.attempts)
    }

    fn note_failure(&self, trace_id: u64, class: QosClass, attempt: u32, error: &NetError) {
        if matches!(error, NetError::Timeout) {
            self.stats.on_timeout();
            self.record(
                trace_id,
                class,
                EventKind::FrameTimedOut,
                u64::from(attempt + 1),
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Cluster front-end
// ---------------------------------------------------------------------------

/// Routes requests and mutations across a cluster by asking a
/// [`Placement`] where each function type's shard lives, then calling
/// the local service or the owning node's [`RemoteShard`].
///
/// Ids are assigned by the client (sequential from 0), so a cluster's
/// reply stream is directly comparable to a single-node oracle fed the
/// same requests in the same order.
pub struct ClusterClient {
    placement: Box<dyn Placement>,
    local: Option<Arc<AllocationService>>,
    remotes: RwLock<HashMap<NodeId, Arc<RemoteShard>>>,
    /// The cluster epoch: bumped by every promotion, stamped on every
    /// mutation so a fenced node can reject a stale leader's writes.
    epoch: AtomicU64,
    next_id: AtomicU64,
}

impl ClusterClient {
    /// A client over `placement`. `local` serves the
    /// [`ShardSite::Local`] sites (pass `None` for a placement that is
    /// fully remote). The cluster epoch starts at 1 (epoch 0 is the
    /// "never promoted" floor every node server is born fenced at).
    pub fn new(
        placement: Box<dyn Placement>,
        local: Option<Arc<AllocationService>>,
    ) -> ClusterClient {
        ClusterClient {
            placement,
            local,
            remotes: RwLock::new(HashMap::new()),
            epoch: AtomicU64::new(1),
            next_id: AtomicU64::new(0),
        }
    }

    /// Registers the client of node `node`. Replaces any previous client
    /// for that node — the failover path points a node id at its promoted
    /// replacement with exactly this call (`&self`, so a supervisor can
    /// repoint placement while submitters hold the client).
    pub fn set_node(&self, node: NodeId, shard: RemoteShard) {
        self.remotes
            .write()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .insert(node, Arc::new(shard));
    }

    /// The client of node `node`, if one is registered.
    pub fn remote(&self, node: NodeId) -> Option<Arc<RemoteShard>> {
        self.remotes
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .get(&node)
            .cloned()
    }

    /// Every node id with a registered client, ascending.
    pub fn node_ids(&self) -> Vec<NodeId> {
        let mut ids: Vec<NodeId> = self
            .remotes
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .keys()
            .copied()
            .collect();
        ids.sort_unstable_by_key(|node| node.raw());
        ids
    }

    /// The current cluster epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Advances the cluster epoch (one promotion = one bump), returning
    /// the new value. Mutations sent after the bump carry it, fencing
    /// out any leader deposed by the promotion.
    pub fn bump_epoch(&self) -> u64 {
        self.epoch.fetch_add(1, Ordering::AcqRel) + 1
    }

    /// Submits a request, blocking until its reply (remote hops resolve
    /// within the bounded retry budget, so this never hangs).
    ///
    /// # Panics
    ///
    /// Panics if the placement routes to a local site with no local
    /// service, or to a node never registered with
    /// [`ClusterClient::set_node`] — both are wiring errors, not runtime
    /// conditions.
    pub fn submit(&self, request: Request, class: QosClass) -> Reply {
        self.submit_inner(request, class, None)
    }

    /// Submits a request with an explicit relative deadline.
    ///
    /// # Panics
    ///
    /// As [`ClusterClient::submit`].
    pub fn submit_with_deadline(
        &self,
        request: Request,
        class: QosClass,
        deadline: Duration,
    ) -> Reply {
        #[allow(clippy::cast_possible_truncation)]
        self.submit_inner(request, class, Some(deadline.as_micros() as u64))
    }

    fn submit_inner(&self, request: Request, class: QosClass, deadline_us: Option<u64>) -> Reply {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        match self.placement.site(request.type_id()) {
            ShardSite::Local { .. } => {
                let service = self
                    .local
                    .as_ref()
                    .expect("placement routed to a local site but no local service is attached");
                let ticket = match deadline_us {
                    Some(us) => {
                        service.submit_with_deadline(request, class, Duration::from_micros(us))
                    }
                    None => service.submit(request, class),
                };
                let mut reply = ticket.wait().expect("local service answered");
                // The local service numbers its own requests; the cluster
                // reply carries the *cluster* id.
                reply.id = id;
                reply
            }
            ShardSite::Remote { node, .. } => {
                // Clone the Arc out of the lock before the (blocking)
                // call so a concurrent failover's `set_node` never
                // waits on a submitter's retry budget.
                let remote = self
                    .remote(node)
                    .unwrap_or_else(|| panic!("no client registered for {node}"));
                let submit = rqfa_net::Submit {
                    id,
                    class,
                    deadline_us,
                    request,
                };
                match remote.call_submit(submit) {
                    Ok(reply) => Reply {
                        id: reply.id,
                        class: reply.class,
                        outcome: outcome_from_wire(reply.outcome),
                        latency_us: reply.latency_us,
                    },
                    Err(attempts) => Reply {
                        id,
                        class,
                        outcome: Outcome::Unavailable { attempts },
                        latency_us: 0,
                    },
                }
            }
        }
    }

    /// Applies a mutation on the owning shard's site, returning the
    /// owning shard's generation after the apply.
    ///
    /// # Errors
    ///
    /// [`ServiceError::Remote`] when the owning node rejected the
    /// mutation or stayed unreachable through the retry budget; local
    /// sites fail as the in-process API does.
    ///
    /// # Panics
    ///
    /// As [`ClusterClient::submit`] for wiring errors.
    pub fn apply_mutation(&self, mutation: &CaseMutation) -> Result<Generation, ServiceError> {
        match self.placement.site(mutation.type_id()) {
            ShardSite::Local { shard } => {
                let service = self
                    .local
                    .as_ref()
                    .expect("placement routed to a local site but no local service is attached");
                service.apply_mutation(mutation)?;
                Ok(service.shard_generation(shard))
            }
            ShardSite::Remote { node, .. } => {
                let remote = self
                    .remote(node)
                    .unwrap_or_else(|| panic!("no client registered for {node}"));
                match remote.call_mutate(self.epoch(), mutation) {
                    Ok(MutateAck { error: None, generation }) => {
                        Ok(Generation::from_raw(generation))
                    }
                    Ok(MutateAck {
                        error: Some(message),
                        ..
                    }) => Err(ServiceError::Remote(message)),
                    Err(attempts) => Err(ServiceError::Remote(format!(
                        "{node} unreachable after {attempts} attempt(s)"
                    ))),
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Supervision
// ---------------------------------------------------------------------------

/// A node's promotion hook: given the new cluster epoch, promote the
/// node's follower, spawn a replacement server fenced at that epoch
/// (see [`NodeServer::spawn_fenced`]) and return the client of the
/// replacement. Restoring redundancy (re-seeding a fresh follower via
/// [`replicate_shard`]) is also this hook's contract — the supervisor
/// only decides *when*.
pub type PromoteFn = Box<dyn FnMut(u64) -> Result<RemoteShard, ServiceError> + Send>;

/// One supervision decision, as reported by [`Supervisor::tick`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SupervisorEvent {
    /// The node answered its heartbeat probe; its lease was renewed.
    Beat {
        /// The probed node.
        node: NodeId,
    },
    /// The node's lease decayed to [`Liveness::Down`] and its standby
    /// was promoted under the new cluster epoch.
    Promoted {
        /// The replaced node.
        node: NodeId,
        /// The cluster epoch the promotion established.
        epoch: u64,
    },
    /// The node is down but promotion failed (or no standby is
    /// registered); the supervisor retries next tick.
    PromotionFailed {
        /// The down node.
        node: NodeId,
        /// Why the promotion hook failed.
        error: String,
    },
}

/// The supervision loop: probes every registered node each
/// [`tick`](Supervisor::tick), feeds the answers to a
/// [`FailureDetector`], and on a `Down` verdict executes the fenced
/// failover — bump the [`ClusterClient`] epoch, run the node's
/// [`PromoteFn`], repoint placement with [`ClusterClient::set_node`].
///
/// The supervisor owns no threads and reads no wall clock: the harness
/// (or a production pacer) calls `tick` at its chosen cadence, and all
/// lease arithmetic flows through the detector's injected
/// [`rqfa_telemetry::Clock`] — which is what makes the chaos tests in
/// `tests/distributed.rs` deterministic.
pub struct Supervisor {
    client: Arc<ClusterClient>,
    detector: Arc<FailureDetector>,
    standbys: HashMap<NodeId, PromoteFn>,
    recorder: Option<Arc<FlightRecorder>>,
    clock: Option<(SharedClock, Instant)>,
}

impl Supervisor {
    /// A supervisor over `client`, judging liveness with `detector`.
    /// Nodes are discovered from the client's registry each tick;
    /// failover requires a standby registered via
    /// [`Supervisor::register_standby`].
    pub fn new(client: Arc<ClusterClient>, detector: Arc<FailureDetector>) -> Supervisor {
        Supervisor {
            client,
            detector,
            standbys: HashMap::new(),
            recorder: None,
            clock: None,
        }
    }

    /// Arms flight recording: promotions land in `recorder` as
    /// [`EventKind::NodePromoted`] stamped by `clock` (µs since this
    /// call), with the node id in the request-id field and the new
    /// epoch as the argument.
    #[must_use]
    pub fn with_recorder(mut self, recorder: Arc<FlightRecorder>, clock: SharedClock) -> Supervisor {
        let epoch = clock.now();
        self.recorder = Some(recorder);
        self.clock = Some((clock, epoch));
        self
    }

    /// Registers `promote` as node `node`'s failover hook. One standby
    /// per node; registering again replaces the hook.
    pub fn register_standby(&mut self, node: NodeId, promote: PromoteFn) {
        self.standbys.insert(node, promote);
    }

    /// This supervisor's failure detector.
    pub fn detector(&self) -> Arc<FailureDetector> {
        Arc::clone(&self.detector)
    }

    /// One supervision round: probe every registered node, renew leases
    /// for the ones that answer, and run the fenced failover for any
    /// whose lease has decayed to `Down`. Returns what happened, in
    /// node-id order.
    pub fn tick(&mut self) -> Vec<SupervisorEvent> {
        let mut events = Vec::new();
        for node in self.client.node_ids() {
            let Some(remote) = self.client.remote(node) else {
                continue;
            };
            let node_u16 = node.raw();
            if remote.call_heartbeat(node_u16).is_ok() {
                self.detector.beat(node_u16);
                events.push(SupervisorEvent::Beat { node });
                continue;
            }
            // Probe failed: let the *lease* decide. A single missed
            // probe inside the lease window is noise, not a failure —
            // this is the no-false-promotion invariant.
            if self.detector.assess(node_u16) != Liveness::Down {
                continue;
            }
            events.push(self.fail_over(node, node_u16));
        }
        events
    }

    fn fail_over(&mut self, node: NodeId, node_u16: u16) -> SupervisorEvent {
        let Some(mut promote) = self.standbys.remove(&node) else {
            return SupervisorEvent::PromotionFailed {
                node,
                error: format!("no standby registered for {node}"),
            };
        };
        // The epoch bump happens *before* the promotion runs, so the
        // replacement server is born fenced at the new epoch and the
        // deposed leader's clients are stale from this instant.
        let epoch = self.client.bump_epoch();
        match promote(epoch) {
            Ok(replacement) => {
                self.client.set_node(node, replacement);
                // The promoted node is alive by construction: reset its
                // lease so the next tick judges the replacement, not
                // the corpse.
                self.detector.beat(node_u16);
                if let (Some(recorder), Some((clock, since))) = (&self.recorder, &self.clock) {
                    recorder.record(
                        micros_between(*since, clock.now()),
                        u64::from(node_u16),
                        0,
                        EventKind::NodePromoted,
                        epoch,
                    );
                }
                SupervisorEvent::Promoted { node, epoch }
            }
            Err(error) => {
                // Put the hook back for a retry next tick. The epoch
                // bump is *not* rolled back: epochs only move forward.
                self.standbys.insert(node, promote);
                SupervisorEvent::PromotionFailed {
                    node,
                    error: error.to_string(),
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Replication
// ---------------------------------------------------------------------------

/// Leader side of one replication round: ships shard `shard`'s snapshot
/// container in `chunk_words`-sized windows, awaits the follower's
/// install ack, then streams the WAL tail frame by frame, awaiting an
/// ack per record. Returns the generation the follower reached.
///
/// # Errors
///
/// [`ServiceError::Remote`] when the stream dies or the follower
/// misacknowledges (the caller re-ships after a
/// [`Follower::reset`]); the shard-export errors of
/// [`AllocationService::export_shard_snapshot`].
pub fn replicate_shard<S: Read + Write>(
    service: &AllocationService,
    shard: usize,
    conn: &mut FrameConn<S>,
    chunk_words: usize,
) -> Result<Generation, ServiceError> {
    let (container, generation) = service.export_shard_snapshot(shard)?;
    let messages = snapshot_stream(&container, generation, chunk_words).map_err(net_err)?;
    for message in &messages {
        conn.send(message).map_err(net_err)?;
    }
    expect_ack(conn, generation.raw())?;
    let mut reached = generation;
    for stamped in service.shard_wal_tail(shard, generation)? {
        let stamp = stamped.generation;
        conn.send(&Message::TailFrame(stamped)).map_err(net_err)?;
        expect_ack(conn, stamp.raw())?;
        reached = stamp;
    }
    Ok(reached)
}

fn expect_ack<S: Read + Write>(conn: &mut FrameConn<S>, want: u64) -> Result<(), ServiceError> {
    match conn.recv() {
        Ok((Message::TailAck(TailAck { generation }), _)) if generation == want => Ok(()),
        Ok((other, _)) => Err(ServiceError::Remote(format!(
            "unexpected replication response: {other:?}"
        ))),
        Err(error) => Err(ServiceError::Remote(format!(
            "replication stream failed: {error}"
        ))),
    }
}

/// Follower side of a replication stream: feeds every received message
/// through the [`Follower`] state machine and acknowledges installs and
/// applies with the follower's generation. Returns cleanly when the
/// leader closes (or tears) the stream — the follower keeps whatever
/// consistent prefix it reached, ready for another round or promotion.
///
/// # Errors
///
/// [`ServiceError::Remote`] on protocol violations (chunk gaps,
/// generation gaps, corrupt containers) — the caller should
/// [`Follower::reset`] and request a fresh ship.
pub fn serve_follower<S: Read + Write>(
    conn: &mut FrameConn<S>,
    follower: &mut Follower,
) -> Result<(), ServiceError> {
    loop {
        let message = match conn.recv() {
            Ok((message, _bytes)) => message,
            // Stream end (leader done or killed): keep the prefix.
            Err(NetError::Truncated | NetError::Timeout) => return Ok(()),
            Err(error) => return Err(net_err(error)),
        };
        match follower.ingest(&message).map_err(net_err)? {
            FollowerEvent::Progress => {}
            FollowerEvent::Installed { generation } | FollowerEvent::Applied { generation } => {
                conn.send(&Message::TailAck(TailAck {
                    generation: generation.raw(),
                }))
                .map_err(net_err)?;
            }
            FollowerEvent::Ignored => {
                // Duplicate tail frame: re-ack the current generation so
                // the leader's per-record handshake still advances.
                let generation = follower.generation().map_or(0, Generation::raw);
                conn.send(&Message::TailAck(TailAck { generation }))
                    .map_err(net_err)?;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rqfa_core::{paper, TypeId};
    use rqfa_net::WireOutcome;

    #[test]
    fn outcomes_convert_losslessly_both_ways() {
        let outcomes = vec![
            Outcome::ShedQueueFull,
            Outcome::ShedDeadline,
            Outcome::Failed(rqfa_core::CoreError::UnknownType {
                type_id: TypeId::new(9).unwrap(),
            }),
            Outcome::Unavailable { attempts: 3 },
            Outcome::ShedPredicted { late_us: 1_250 },
        ];
        for outcome in outcomes {
            let wire = outcome_to_wire(&outcome).unwrap();
            assert_eq!(outcome_from_wire(wire), outcome);
        }
    }

    #[test]
    fn allocated_evaluated_counts_survive_the_round_trip() {
        let wire = WireOutcome::Allocated {
            best: rqfa_core::Scored {
                impl_id: rqfa_core::ImplId::new(4).unwrap(),
                target: rqfa_core::ExecutionTarget::Dsp,
                similarity: rqfa_fixed::Q15::ONE,
            },
            evaluated: 123,
            cached: true,
        };
        let outcome = outcome_from_wire(wire.clone());
        assert_eq!(outcome_to_wire(&outcome).unwrap(), wire);
    }

    #[test]
    fn node_server_answers_the_paper_request_over_tcp() {
        let service = Arc::new(
            AllocationService::new(
                &paper::table1_case_base(),
                &crate::ServiceConfig::default().with_shards(2),
            )
            .expect("valid service config"),
        );
        let server = NodeServer::spawn(Arc::clone(&service)).unwrap();
        let remote = RemoteShard::tcp(
            server.addr(),
            Duration::from_millis(500),
            RetryPolicy::loopback(),
        );
        let reply = remote
            .call_submit(rqfa_net::Submit {
                id: 41,
                class: QosClass::High,
                deadline_us: None,
                request: paper::table1_request().unwrap(),
            })
            .unwrap();
        assert_eq!(reply.id, 41);
        match reply.outcome {
            WireOutcome::Allocated { best, .. } => assert_eq!(best.impl_id, paper::IMPL_DSP),
            other => panic!("unexpected outcome: {other:?}"),
        }
        let stats = remote.stats();
        assert_eq!(stats.frames_sent.load(Ordering::Relaxed), 1);
        assert_eq!(stats.frames_received.load(Ordering::Relaxed), 1);
        server.shutdown();
        // A killed node degrades into a bounded Unavailable, not a hang.
        let after = remote.call_submit(rqfa_net::Submit {
            id: 42,
            class: QosClass::High,
            deadline_us: None,
            request: paper::table1_request().unwrap(),
        });
        assert_eq!(after, Err(RetryPolicy::loopback().attempts));
        if let Some(service) = Arc::into_inner(service) {
            service.shutdown();
        }
    }

    #[test]
    fn breaker_fast_fails_and_recovers_via_half_open() {
        let service = Arc::new(
            AllocationService::new(
                &paper::table1_case_base(),
                &crate::ServiceConfig::default().with_shards(1),
            )
            .expect("valid service config"),
        );
        let server = NodeServer::spawn(Arc::clone(&service)).unwrap();
        let addr = server.addr();
        // A severable link: while `cut`, every (re)connection attempt
        // fails before touching the live server.
        let cut = Arc::new(AtomicBool::new(true));
        let cut_in_factory = Arc::clone(&cut);
        let clock = Arc::new(rqfa_telemetry::ManualClock::new());
        let breaker = Arc::new(CircuitBreaker::new(
            Arc::clone(&clock) as SharedClock,
            0,
            2,
            1_000,
        ));
        let remote = RemoteShard::new(
            Box::new(move || {
                if cut_in_factory.load(Ordering::SeqCst) {
                    return Err(NetError::Timeout);
                }
                connect_loopback(addr, Duration::from_millis(500))
                    .map(|stream| Box::new(stream) as Box<dyn RemoteStream>)
            }),
            RetryPolicy {
                attempts: 1,
                base_backoff: Duration::from_micros(1),
                jitter_seed: 0,
            },
        )
        .with_breaker(Arc::clone(&breaker));
        let submit = |id| rqfa_net::Submit {
            id,
            class: QosClass::High,
            deadline_us: None,
            request: paper::table1_request().unwrap(),
        };
        // Two exhausted calls trip the threshold-2 breaker.
        assert_eq!(remote.call_submit(submit(0)), Err(1));
        assert_eq!(remote.call_submit(submit(1)), Err(1));
        assert_eq!(breaker.opens(), 1);
        // Open: the next call fails fast — attempt count 0 and zero
        // transport work, not a burned retry budget.
        assert_eq!(remote.call_submit(submit(2)), Err(0));
        assert_eq!(breaker.fast_fails(), 1);
        assert_eq!(remote.stats().frames_sent.load(Ordering::Relaxed), 0);
        // After the cooldown the single half-open probe re-closes it.
        clock.advance_us(1_000);
        cut.store(false, Ordering::SeqCst);
        let reply = remote.call_submit(submit(3)).expect("probe call lands");
        assert_eq!(reply.id, 3);
        assert_eq!(breaker.state(), rqfa_net::BreakerState::Closed);
        assert_eq!(remote.call_submit(submit(4)).expect("closed again").id, 4);
        server.shutdown();
        if let Some(service) = Arc::into_inner(service) {
            service.shutdown();
        }
    }

    #[test]
    fn remote_mutations_apply_once_and_report_generations() {
        let service = Arc::new(
            AllocationService::new(
                &paper::table1_case_base(),
                &crate::ServiceConfig::default().with_shards(1),
            )
            .expect("valid service config"),
        );
        let server = NodeServer::spawn(Arc::clone(&service)).unwrap();
        let remote = RemoteShard::tcp(
            server.addr(),
            Duration::from_millis(100),
            RetryPolicy::loopback(),
        );
        let evict = CaseMutation::Evict {
            type_id: paper::FIR_EQUALIZER,
            impl_id: paper::IMPL_GP,
        };
        let ack = remote.call_mutate(1, &evict).unwrap();
        assert_eq!(ack, MutateAck { generation: 1, error: None });
        // The same eviction again looks like a transport duplicate on
        // this connection, so the server swallows it; the client times
        // out, reconnects, and the re-sent call is then applied — where
        // it fails (already evicted) and reports the remote error.
        let again = remote.call_mutate(1, &evict).unwrap();
        assert!(again.error.is_some());
        assert!(remote.stats().retries.load(Ordering::Relaxed) >= 1);
        assert_eq!(service.shard_generation(0).raw(), 1);
        server.shutdown();
        if let Some(service) = Arc::into_inner(service) {
            service.shutdown();
        }
    }
}
