//! Weighted round-robin scheduling across QoS classes.
//!
//! The shard worker asks the scheduler which class to serve next each time
//! it moves one job into a dispatch batch. The policy is credit-based
//! weighted round-robin — the software analogue of an AXI interconnect's
//! weighted arbiter: each class holds a credit counter refilled to
//! [`QosClass::weight`]; picking a job costs one credit; the most urgent
//! class with both work and credit wins; when every backlogged class is
//! out of credit, all counters refill. LOW traffic therefore keeps forward
//! progress (no starvation) while CRITICAL gets an 8:4:2:1 share under
//! saturation.

use rqfa_core::QosClass;

/// Credit-based weighted round-robin arbiter over the four QoS classes.
#[derive(Debug, Clone)]
pub struct WeightedArbiter {
    credits: [u32; QosClass::COUNT],
    weights: [u32; QosClass::COUNT],
}

impl WeightedArbiter {
    /// An arbiter with the default 8:4:2:1 class weights.
    pub fn new() -> WeightedArbiter {
        WeightedArbiter::with_weights(QosClass::ALL.map(QosClass::weight))
    }

    /// An arbiter with explicit per-class weights (each clamped to ≥ 1,
    /// indexed by [`QosClass::index`]).
    pub fn with_weights(weights: [u32; QosClass::COUNT]) -> WeightedArbiter {
        let weights = weights.map(|w| w.max(1));
        WeightedArbiter {
            credits: weights,
            weights,
        }
    }

    /// Picks the class to serve next given which classes have queued work.
    /// Returns `None` when no class has work; consumes one credit otherwise.
    pub fn pick(&mut self, backlogged: [bool; QosClass::COUNT]) -> Option<QosClass> {
        if !backlogged.iter().any(|&b| b) {
            return None;
        }
        loop {
            for class in QosClass::ALL {
                let i = class.index();
                if backlogged[i] && self.credits[i] > 0 {
                    self.credits[i] -= 1;
                    return Some(class);
                }
            }
            // Every backlogged class is out of credit: new scheduling round.
            self.credits = self.weights;
        }
    }
}

impl Default for WeightedArbiter {
    fn default() -> WeightedArbiter {
        WeightedArbiter::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_backlog_yields_none() {
        let mut arb = WeightedArbiter::new();
        assert_eq!(arb.pick([false; 4]), None);
    }

    #[test]
    fn single_backlogged_class_always_wins() {
        let mut arb = WeightedArbiter::new();
        let only_low = [false, false, false, true];
        for _ in 0..100 {
            assert_eq!(arb.pick(only_low), Some(QosClass::Low));
        }
    }

    #[test]
    fn saturation_share_follows_weights() {
        let mut arb = WeightedArbiter::new();
        let mut counts = [0u32; 4];
        for _ in 0..1500 {
            let class = arb.pick([true; 4]).unwrap();
            counts[class.index()] += 1;
        }
        // 1500 picks = 100 full rounds of 15 credits → exactly 8:4:2:1.
        assert_eq!(counts, [800, 400, 200, 100]);
    }

    #[test]
    fn low_is_not_starved_by_critical() {
        let mut arb = WeightedArbiter::new();
        let crit_and_low = [true, false, false, true];
        let mut low = 0;
        for _ in 0..900 {
            if arb.pick(crit_and_low) == Some(QosClass::Low) {
                low += 1;
            }
        }
        assert_eq!(low, 100, "LOW must get its 1/9 share");
    }

    #[test]
    fn custom_weights_apply() {
        let mut arb = WeightedArbiter::with_weights([1, 1, 1, 1]);
        let mut counts = [0u32; 4];
        for _ in 0..400 {
            counts[arb.pick([true; 4]).unwrap().index()] += 1;
        }
        assert_eq!(counts, [100; 4]);
    }
}
