//! QoS scheduling policy: weighted round-robin across classes with
//! bounded deadline-slack promotion.
//!
//! The shard worker asks the scheduler which class to serve next each time
//! it moves one job into a dispatch batch. Two mechanisms compose (the
//! full model, with its invariants, is spelled out in
//! [`docs/scheduling.md`](https://github.com/rqfa/rqfa/blob/main/docs/scheduling.md)):
//!
//! * **Credit-based weighted round-robin** — the software analogue of an
//!   AXI interconnect's weighted arbiter: each class holds a credit
//!   counter refilled to [`QosClass::weight`]; picking a job costs one
//!   credit; the most urgent class with both work and credit wins; when
//!   every backlogged class is out of credit, all counters refill (a new
//!   *round*). LOW traffic therefore keeps forward progress (no
//!   starvation) while CRITICAL gets an 8:4:2:1 share under saturation.
//! * **Bounded slack promotion** — deadline awareness *across* lanes.
//!   The queue flags a lane as *urgent* when its head job's remaining
//!   slack (deadline − now) has shrunk to the configured promotion
//!   margin. An urgent lane may be served ahead of the weighted order:
//!   if it still has credit the promotion merely reorders work inside
//!   the round (free — round totals are unchanged); if it is out of
//!   credit it consumes one of `promotions_per_round` tokens. The token
//!   bound is the anti-starvation guarantee: a round can grow by at most
//!   `promotions_per_round` extra picks, so CRITICAL's share never drops
//!   below `weight / (Σ weights + promotions_per_round)` no matter how
//!   many lower-class deadlines are about to burst.
//!
//! Within a lane, ordering is the queue's business
//! ([earliest-deadline-first](crate::queue::ClassQueue)); the arbiter
//! only ever decides *which lane* yields the next job.

use rqfa_core::QosClass;

/// How a per-shard queue orders jobs *within* one class lane.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedMode {
    /// Earliest-deadline-first: the lane job with the nearest effective
    /// deadline dispatches first; jobs without a deadline keep arrival
    /// order behind every deadlined job inside a one-year horizon. With
    /// only per-class budgets (no per-request deadlines) this degrades
    /// to exactly FIFO, so it is the safe default.
    #[default]
    Edf,
    /// Strict arrival order — the pre-EDF behaviour, kept as the
    /// baseline for A/B benches (`service_throughput`). Disables slack
    /// promotion and slack-ordered displacement too.
    Fifo,
}

/// One scheduling decision of [`WeightedArbiter::pick_urgent`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pick {
    /// The lane to serve.
    pub class: QosClass,
    /// Whether deadline urgency overrode the plain weighted order (the
    /// pick jumped ahead of a more urgent class's credits).
    pub promoted: bool,
}

/// Credit-based weighted round-robin arbiter over the four QoS classes,
/// with a bounded per-round budget of deadline-slack promotions.
#[derive(Debug, Clone)]
pub struct WeightedArbiter {
    credits: [u32; QosClass::COUNT],
    weights: [u32; QosClass::COUNT],
    promotions_per_round: u32,
    promotions_left: u32,
}

impl WeightedArbiter {
    /// An arbiter with the default 8:4:2:1 class weights and the default
    /// promotion budget ([`WeightedArbiter::DEFAULT_PROMOTIONS`]).
    pub fn new() -> WeightedArbiter {
        WeightedArbiter::with_weights(QosClass::ALL.map(QosClass::weight))
    }

    /// Default out-of-credit promotions allowed per scheduling round.
    pub const DEFAULT_PROMOTIONS: u32 = 2;

    /// An arbiter with explicit per-class weights (each clamped to ≥ 1,
    /// indexed by [`QosClass::index`]).
    pub fn with_weights(weights: [u32; QosClass::COUNT]) -> WeightedArbiter {
        let weights = weights.map(|w| w.max(1));
        WeightedArbiter {
            credits: weights,
            weights,
            promotions_per_round: WeightedArbiter::DEFAULT_PROMOTIONS,
            promotions_left: WeightedArbiter::DEFAULT_PROMOTIONS,
        }
    }

    /// Sets the promotion budget: how many times per round an urgent,
    /// out-of-credit lane may be served anyway. `0` disables token
    /// promotions entirely (credit-covered reordering still applies).
    pub fn with_promotions(mut self, per_round: u32) -> WeightedArbiter {
        self.promotions_per_round = per_round;
        self.promotions_left = per_round;
        self
    }

    /// Picks the class to serve next given which classes have queued work.
    /// Returns `None` when no class has work; consumes one credit
    /// otherwise. Equivalent to [`WeightedArbiter::pick_urgent`] with no
    /// lane urgent.
    pub fn pick(&mut self, backlogged: [bool; QosClass::COUNT]) -> Option<QosClass> {
        self.pick_urgent(backlogged, [false; QosClass::COUNT])
            .map(|p| p.class)
    }

    /// Picks the class to serve next, honouring deadline urgency.
    ///
    /// `backlogged[i]` says lane `i` has queued work; `urgent[i]` says
    /// its *head* job is within the promotion margin of missing its
    /// deadline. The most urgent-class urgent lane is served ahead of
    /// the weighted order, bounded by the per-round promotion budget
    /// when it is out of credit; otherwise plain weighted round-robin
    /// applies. Returns `None` when no lane has work.
    pub fn pick_urgent(
        &mut self,
        backlogged: [bool; QosClass::COUNT],
        urgent: [bool; QosClass::COUNT],
    ) -> Option<Pick> {
        if !backlogged.iter().any(|&b| b) {
            return None;
        }
        // Refill = new round (also restores the promotion budget).
        while !QosClass::ALL
            .iter()
            .any(|c| backlogged[c.index()] && self.credits[c.index()] > 0)
        {
            self.credits = self.weights;
            self.promotions_left = self.promotions_per_round;
        }
        let normal = QosClass::ALL
            .into_iter()
            .find(|c| backlogged[c.index()] && self.credits[c.index()] > 0)
            .expect("refill loop guarantees a creditable lane");
        let urgent_lane = QosClass::ALL
            .into_iter()
            .find(|c| backlogged[c.index()] && urgent[c.index()]);
        if let Some(u) = urgent_lane {
            if u != normal {
                if self.credits[u.index()] > 0 {
                    // Credit-covered promotion: reorders inside the round
                    // without changing its totals.
                    self.credits[u.index()] -= 1;
                    return Some(Pick { class: u, promoted: true });
                }
                if self.promotions_left > 0 {
                    // Token promotion: an extra pick beyond the lane's
                    // weight, bounded per round.
                    self.promotions_left -= 1;
                    return Some(Pick { class: u, promoted: true });
                }
                // Budget exhausted: fall through to the weighted order.
            }
        }
        self.credits[normal.index()] -= 1;
        Some(Pick {
            class: normal,
            promoted: false,
        })
    }
}

impl Default for WeightedArbiter {
    fn default() -> WeightedArbiter {
        WeightedArbiter::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_backlog_yields_none() {
        let mut arb = WeightedArbiter::new();
        assert_eq!(arb.pick([false; 4]), None);
    }

    #[test]
    fn single_backlogged_class_always_wins() {
        let mut arb = WeightedArbiter::new();
        let only_low = [false, false, false, true];
        for _ in 0..100 {
            assert_eq!(arb.pick(only_low), Some(QosClass::Low));
        }
    }

    #[test]
    fn saturation_share_follows_weights() {
        let mut arb = WeightedArbiter::new();
        let mut counts = [0u32; 4];
        for _ in 0..1500 {
            let class = arb.pick([true; 4]).unwrap();
            counts[class.index()] += 1;
        }
        // 1500 picks = 100 full rounds of 15 credits → exactly 8:4:2:1.
        assert_eq!(counts, [800, 400, 200, 100]);
    }

    #[test]
    fn low_is_not_starved_by_critical() {
        let mut arb = WeightedArbiter::new();
        let crit_and_low = [true, false, false, true];
        let mut low = 0;
        for _ in 0..900 {
            if arb.pick(crit_and_low) == Some(QosClass::Low) {
                low += 1;
            }
        }
        assert_eq!(low, 100, "LOW must get its 1/9 share");
    }

    #[test]
    fn custom_weights_apply() {
        let mut arb = WeightedArbiter::with_weights([1, 1, 1, 1]);
        let mut counts = [0u32; 4];
        for _ in 0..400 {
            counts[arb.pick([true; 4]).unwrap().index()] += 1;
        }
        assert_eq!(counts, [100; 4]);
    }

    #[test]
    fn urgent_lane_with_credit_jumps_the_weighted_order_for_free() {
        // CRITICAL and LOW backlogged; LOW urgent; token budget zero so
        // only the credit-covered mechanism is in play. LOW's single
        // credit serves it *first* instead of ninth, but the round still
        // totals 8 + 1.
        let mut arb = WeightedArbiter::new().with_promotions(0);
        let backlogged = [true, false, false, true];
        let urgent = [false, false, false, true];
        let first = arb.pick_urgent(backlogged, urgent).unwrap();
        assert_eq!(first, Pick { class: QosClass::Low, promoted: true });
        let mut counts = [0u32; 4];
        for _ in 0..8 {
            let p = arb.pick_urgent(backlogged, urgent).unwrap();
            counts[p.class.index()] += 1;
            assert!(!p.promoted, "LOW spent its credit and has no tokens");
        }
        assert_eq!(counts, [8, 0, 0, 0], "round totals unchanged");
    }

    #[test]
    fn token_promotions_are_bounded_per_round() {
        // MEDIUM permanently urgent against a CRITICAL flood: each round
        // is 8 CRITICAL + 2 MEDIUM credits + at most 2 MEDIUM tokens.
        let mut arb = WeightedArbiter::new().with_promotions(2);
        let backlogged = [true, false, true, false];
        let urgent = [false, false, true, false];
        let mut counts = [0u32; 4];
        let mut promoted = 0u32;
        for _ in 0..1200 {
            let p = arb.pick_urgent(backlogged, urgent).unwrap();
            counts[p.class.index()] += 1;
            promoted += u32::from(p.promoted);
        }
        // 1200 picks = 100 rounds of (8 + 2 + 2): CRITICAL keeps exactly
        // its 8/12 share — the anti-starvation bound.
        assert_eq!(counts, [800, 0, 400, 0]);
        assert_eq!(promoted, 400, "2 credit + 2 token promotions per round");
    }

    #[test]
    fn zero_promotion_budget_restores_plain_wrr_totals() {
        let mut arb = WeightedArbiter::new().with_promotions(0);
        let backlogged = [true, false, true, false];
        let urgent = [false, false, true, false];
        let mut counts = [0u32; 4];
        for _ in 0..1000 {
            counts[arb.pick_urgent(backlogged, urgent).unwrap().class.index()] += 1;
        }
        // 1000 picks = 100 rounds of (8 + 2): shares exactly as unpromoted.
        assert_eq!(counts, [800, 0, 200, 0]);
    }

    #[test]
    fn most_urgent_class_wins_among_urgent_lanes() {
        let mut arb = WeightedArbiter::new();
        // HIGH and LOW both urgent: HIGH (more urgent class) is served.
        let p = arb
            .pick_urgent([true, true, false, true], [false, true, false, true])
            .unwrap();
        assert_eq!(p.class, QosClass::High);
        assert!(p.promoted);
    }
}
