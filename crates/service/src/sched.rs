//! QoS scheduling policy: a mode-selectable arbitration layer over the
//! four class lanes, plus the measured service-time estimator that
//! closes the control loop.
//!
//! The shard worker asks the scheduler which class to serve next each
//! time it moves one job into a dispatch batch. The arbiter runs in one
//! of four [`ArbiterMode`]s — the AXI4 QoS arbiter vocabulary mapped
//! onto software (the full model, with its invariants, is spelled out in
//! [`docs/scheduling.md`](https://github.com/rqfa/rqfa/blob/main/docs/scheduling.md)):
//!
//! * **STRICT_PRIORITY** — the most urgent backlogged class always wins.
//!   No credits, no fairness: LOW starves under a CRITICAL flood. Kept
//!   as the baseline the other modes are judged against.
//! * **WEIGHTED_ROUND_ROBIN** (default) — the software analogue of an
//!   AXI interconnect's weighted arbiter: each class holds a credit
//!   counter refilled to [`QosClass::weight`]; picking a job costs one
//!   credit; the most urgent class with both work and credit wins; when
//!   every backlogged class is out of credit, all counters refill (a new
//!   *round*). LOW traffic therefore keeps forward progress (no
//!   starvation) while CRITICAL gets an 8:4:2:1 share under saturation.
//!   Composes with **bounded slack promotion**: the queue flags a lane
//!   *urgent* when its head job's remaining slack (deadline − now) has
//!   shrunk to the promotion margin. An urgent lane may be served ahead
//!   of the weighted order: if it still has credit the promotion merely
//!   reorders work inside the round (free — round totals are unchanged);
//!   if it is out of credit it consumes one of `promotions_per_round`
//!   tokens. The token bound is the anti-starvation guarantee: a round
//!   can grow by at most `promotions_per_round` extra picks, so
//!   CRITICAL's share never drops below
//!   `weight / (Σ weights + promotions_per_round)` no matter how many
//!   lower-class deadlines are about to burst.
//! * **DYNAMIC_PRIORITY** — weighted round-robin credits and tokens, but
//!   a lane's *effective* priority rises while its head stays inside the
//!   urgency margin (one boost level per arbitration while urgent, up to
//!   [`WeightedArbiter::BOOST_MAX`]) and decays by half each time the
//!   lane is served. Effective priority orders *both* paths of the
//!   credit engine: among urgent lanes the highest effective priority
//!   takes the promotion, so a LOW lane whose deadline keeps shrinking
//!   can out-rank an urgent HIGH lane that was just served — and among
//!   creditable lanes it decides who spends the next credit, so a
//!   boosted lane's own per-round share is served *early* in the round,
//!   while its heads are still rescuable, instead of at its fixed
//!   class-order position. The urgency margin itself is
//!   *measured*, not configured: the queue sizes it from the per-shard
//!   [`ServiceTimeEstimator`] ([`ServiceTimeEstimator::margin_us`]) that
//!   the worker feeds with real batch service times. Credits and tokens
//!   are unchanged, so the WRR anti-starvation bound still holds.
//! * **FAIR_SHARE** — per-class bandwidth regulation under measurement:
//!   the arbiter keeps a sliding window of the last
//!   [`WeightedArbiter::FAIR_SHARE_WINDOW`] *served* picks and grants the
//!   backlogged class with the largest deficit between its target share
//!   (its weight over the weight sum) and its measured share of that
//!   window. Because the window slides, an idle class's deficit is
//!   bounded by `target × window` — it cannot bank unbounded credit and
//!   then monopolize the fabric on return. Urgency flags are ignored:
//!   this mode trades deadline reactivity for share stability.
//!
//! Within a lane, ordering is the queue's business
//! ([earliest-deadline-first](crate::queue::ClassQueue)); the arbiter
//! only ever decides *which lane* yields the next job.

use std::sync::atomic::{AtomicU64, Ordering};

use rqfa_core::QosClass;

/// How a per-shard queue orders jobs *within* one class lane.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedMode {
    /// Earliest-deadline-first: the lane job with the nearest effective
    /// deadline dispatches first; jobs without a deadline keep arrival
    /// order behind every deadlined job inside a one-year horizon. With
    /// only per-class budgets (no per-request deadlines) this degrades
    /// to exactly FIFO, so it is the safe default.
    #[default]
    Edf,
    /// Strict arrival order — the pre-EDF behaviour, kept as the
    /// baseline for A/B benches (`service_throughput`). Disables slack
    /// promotion, slack-ordered displacement and deadline-aware batch
    /// composition too.
    Fifo,
}

/// Which arbitration policy decides the next lane to serve — the AXI4
/// QoS arbiter vocabulary (see the module docs for the full semantics).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ArbiterMode {
    /// The most urgent backlogged class always wins. Starvation-prone by
    /// design; the baseline the regulated modes are judged against.
    StrictPriority,
    /// Credit-based weighted round-robin with bounded slack promotion
    /// (the historical behaviour and the default).
    #[default]
    WeightedRoundRobin,
    /// WRR credits plus urgency-accumulated priority boosts, with the
    /// urgency margin sized from the measured batch service time.
    DynamicPriority,
    /// Sliding-window served-share regulation toward the weight targets;
    /// deficit carry-over bounded by the window length.
    FairShare,
}

impl ArbiterMode {
    /// Every mode, in declaration order — the A/B sweep order the
    /// benches use.
    pub const ALL: [ArbiterMode; 4] = [
        ArbiterMode::StrictPriority,
        ArbiterMode::WeightedRoundRobin,
        ArbiterMode::DynamicPriority,
        ArbiterMode::FairShare,
    ];

    /// Stable lower-snake-case label (metric prefixes, CLI output).
    pub fn label(self) -> &'static str {
        match self {
            ArbiterMode::StrictPriority => "strict_priority",
            ArbiterMode::WeightedRoundRobin => "weighted_round_robin",
            ArbiterMode::DynamicPriority => "dynamic_priority",
            ArbiterMode::FairShare => "fair_share",
        }
    }
}

/// One scheduling decision of [`WeightedArbiter::pick_urgent`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pick {
    /// The lane to serve.
    pub class: QosClass,
    /// Whether deadline urgency overrode the plain weighted order (the
    /// pick jumped ahead of a more urgent class's credits).
    pub promoted: bool,
}

/// Per-shard EWMA estimator of batch service time, fed by the worker
/// with *measured* durations (or by the replay driver with cost-model
/// durations) and read by the scheduler to size urgency margins and
/// stop batch fill before a picked job is made late.
///
/// Single writer (the shard's worker), many readers; state is plain
/// relaxed atomics in ×16 fixed point, so readers never block the worker
/// and a torn read is impossible (each field is one word). Cold (no
/// samples yet) the estimator reports 0 and the scheduler falls back to
/// its configured margins.
#[derive(Debug, Default)]
pub struct ServiceTimeEstimator {
    /// EWMA of one batch's service time, µs × 16.
    batch_q4: AtomicU64,
    /// EWMA of per-job marginal service time, µs × 16.
    per_job_q4: AtomicU64,
    /// Batches observed.
    samples: AtomicU64,
}

impl ServiceTimeEstimator {
    /// EWMA smoothing: `new = old + (sample - old) / 8`.
    const ALPHA_SHIFT: u32 = 3;

    /// A cold estimator (no samples; every query reports 0).
    pub fn new() -> ServiceTimeEstimator {
        ServiceTimeEstimator::default()
    }

    /// Feeds one served batch: its total service time in µs and how many
    /// jobs it carried. Zero-job batches are ignored. The first sample
    /// seeds the EWMA directly (no slow warm-up from zero).
    pub fn observe(&self, batch_us: u64, jobs: usize) {
        if jobs == 0 {
            return;
        }
        let batch_sample = batch_us << 4;
        let per_job_sample = (batch_us / jobs as u64) << 4;
        if self.samples.fetch_add(1, Ordering::Relaxed) == 0 {
            self.batch_q4.store(batch_sample, Ordering::Relaxed);
            self.per_job_q4.store(per_job_sample, Ordering::Relaxed);
            return;
        }
        let ewma = |cell: &AtomicU64, sample: u64| {
            let old = cell.load(Ordering::Relaxed);
            let new = old + (sample >> Self::ALPHA_SHIFT) - (old >> Self::ALPHA_SHIFT);
            cell.store(new, Ordering::Relaxed);
        };
        ewma(&self.batch_q4, batch_sample);
        ewma(&self.per_job_q4, per_job_sample);
    }

    /// Smoothed service time of one batch, µs (0 while cold).
    pub fn batch_service_us(&self) -> u64 {
        self.batch_q4.load(Ordering::Relaxed) >> 4
    }

    /// Smoothed marginal service time of one job, µs (0 while cold).
    pub fn per_job_us(&self) -> u64 {
        self.per_job_q4.load(Ordering::Relaxed) >> 4
    }

    /// Batches observed so far.
    pub fn samples(&self) -> u64 {
        self.samples.load(Ordering::Relaxed)
    }

    /// The measured urgency margin: twice the smoothed batch service
    /// time (a lane head typically waits out about one in-flight batch
    /// before its lane is arbitrated again, doubled for headroom), or
    /// `fallback_us` while the estimator is cold.
    pub fn margin_us(&self, fallback_us: u64) -> u64 {
        if self.samples() == 0 {
            fallback_us
        } else {
            self.batch_service_us().saturating_mul(2)
        }
    }
}

/// Mode-selectable arbiter over the four QoS classes. Despite the
/// historical name it hosts all four [`ArbiterMode`]s; credit-based
/// weighted round-robin with a bounded per-round budget of
/// deadline-slack promotions remains the default.
#[derive(Debug, Clone)]
pub struct WeightedArbiter {
    mode: ArbiterMode,
    credits: [u32; QosClass::COUNT],
    weights: [u32; QosClass::COUNT],
    promotions_per_round: u32,
    promotions_left: u32,
    /// DYNAMIC_PRIORITY: per-class urgency boost levels.
    boosts: [u32; QosClass::COUNT],
    /// FAIR_SHARE: ring of the last `window_len` served classes.
    window: [u8; WeightedArbiter::FAIR_SHARE_WINDOW],
    window_head: usize,
    window_len: usize,
    /// FAIR_SHARE: per-class pick counts inside the window.
    window_counts: [u32; QosClass::COUNT],
}

impl WeightedArbiter {
    /// An arbiter with the default 8:4:2:1 class weights and the default
    /// promotion budget ([`WeightedArbiter::DEFAULT_PROMOTIONS`]).
    pub fn new() -> WeightedArbiter {
        WeightedArbiter::with_weights(QosClass::ALL.map(QosClass::weight))
    }

    /// Default out-of-credit promotions allowed per scheduling round.
    pub const DEFAULT_PROMOTIONS: u32 = 2;

    /// FAIR_SHARE: how many *served* picks the sliding share window
    /// remembers. Also the deficit bound: an idle class can bank at most
    /// `target share × window` picks of catch-up before its history
    /// slides out.
    pub const FAIR_SHARE_WINDOW: usize = 64;

    /// DYNAMIC_PRIORITY: ceiling on a lane's accumulated urgency boost
    /// (effective priority = class priority + boost, so LOW at the
    /// ceiling out-ranks any unboosted class).
    pub const BOOST_MAX: u32 = 8;

    /// An arbiter with explicit per-class weights (each clamped to ≥ 1,
    /// indexed by [`QosClass::index`]).
    pub fn with_weights(weights: [u32; QosClass::COUNT]) -> WeightedArbiter {
        let weights = weights.map(|w| w.max(1));
        WeightedArbiter {
            mode: ArbiterMode::default(),
            credits: weights,
            weights,
            promotions_per_round: WeightedArbiter::DEFAULT_PROMOTIONS,
            promotions_left: WeightedArbiter::DEFAULT_PROMOTIONS,
            boosts: [0; QosClass::COUNT],
            window: [0; WeightedArbiter::FAIR_SHARE_WINDOW],
            window_head: 0,
            window_len: 0,
            window_counts: [0; QosClass::COUNT],
        }
    }

    /// Sets the promotion budget: how many times per round an urgent,
    /// out-of-credit lane may be served anyway. `0` disables token
    /// promotions entirely (credit-covered reordering still applies).
    /// Bounds DYNAMIC_PRIORITY identically — boosts reorder, credits and
    /// tokens still pay.
    pub fn with_promotions(mut self, per_round: u32) -> WeightedArbiter {
        self.promotions_per_round = per_round;
        self.promotions_left = per_round;
        self
    }

    /// Selects the arbitration policy (default
    /// [`ArbiterMode::WeightedRoundRobin`]).
    pub fn with_mode(mut self, mode: ArbiterMode) -> WeightedArbiter {
        self.mode = mode;
        self
    }

    /// The arbitration policy in effect.
    pub fn mode(&self) -> ArbiterMode {
        self.mode
    }

    /// Picks the class to serve next given which classes have queued work.
    /// Returns `None` when no class has work; consumes one credit
    /// otherwise. Equivalent to [`WeightedArbiter::pick_urgent`] with no
    /// lane urgent.
    pub fn pick(&mut self, backlogged: [bool; QosClass::COUNT]) -> Option<QosClass> {
        self.pick_urgent(backlogged, [false; QosClass::COUNT])
            .map(|p| p.class)
    }

    /// Picks the class to serve next, honouring deadline urgency.
    ///
    /// `backlogged[i]` says lane `i` has queued work; `urgent[i]` says
    /// its *head* job is within the promotion margin of missing its
    /// deadline. How the two inputs combine depends on the
    /// [`ArbiterMode`] (see the module docs). Returns `None` when no
    /// lane has work.
    pub fn pick_urgent(
        &mut self,
        backlogged: [bool; QosClass::COUNT],
        urgent: [bool; QosClass::COUNT],
    ) -> Option<Pick> {
        if !backlogged.iter().any(|&b| b) {
            return None;
        }
        let pick = match self.mode {
            ArbiterMode::StrictPriority => self.pick_strict(backlogged),
            ArbiterMode::WeightedRoundRobin => self.pick_weighted(backlogged, urgent, false),
            ArbiterMode::DynamicPriority => {
                // Boost accrues once per arbitration while a backlogged
                // lane's head stays urgent; service decays it below.
                for c in QosClass::ALL {
                    if backlogged[c.index()] && urgent[c.index()] {
                        let b = &mut self.boosts[c.index()];
                        *b = (*b + 1).min(WeightedArbiter::BOOST_MAX);
                    }
                }
                let pick = self.pick_weighted(backlogged, urgent, true);
                self.boosts[pick.class.index()] /= 2;
                pick
            }
            ArbiterMode::FairShare => self.pick_fair(backlogged),
        };
        Some(pick)
    }

    /// STRICT_PRIORITY: the most urgent backlogged class, always.
    fn pick_strict(&mut self, backlogged: [bool; QosClass::COUNT]) -> Pick {
        let class = QosClass::ALL
            .into_iter()
            .find(|c| backlogged[c.index()])
            .expect("caller checked a lane is backlogged");
        Pick {
            class,
            promoted: false,
        }
    }

    /// The backlogged lane with the highest *effective* priority (class
    /// priority + accumulated boost) among those passing `eligible`.
    /// Strict `>` keeps ties on the more urgent class (`ALL` iterates
    /// most urgent first).
    fn best_boosted(&self, eligible: [bool; QosClass::COUNT]) -> Option<QosClass> {
        let mut best: Option<(u32, QosClass)> = None;
        for c in QosClass::ALL {
            if eligible[c.index()] {
                let base = (QosClass::COUNT - 1 - c.index()) as u32;
                let effective = base + self.boosts[c.index()];
                if best.is_none_or(|(b, _)| effective > b) {
                    best = Some((effective, c));
                }
            }
        }
        best.map(|(_, c)| c)
    }

    /// The credit engine shared by WEIGHTED_ROUND_ROBIN and
    /// DYNAMIC_PRIORITY. `boosted` selects how lanes are ordered: by
    /// class order (WRR) or by effective priority (class priority +
    /// accumulated boost) — for the winning urgent lane *and* for which
    /// creditable lane spends the next credit, so a long-urgent lane's
    /// own credits are spent early in the round, while its heads are
    /// still rescuable, instead of at its fixed class-order position.
    /// Credits and promotion tokens are identical either way — ordering
    /// inside a round moves, per-round totals do not — so both modes
    /// share one anti-starvation bound.
    fn pick_weighted(
        &mut self,
        backlogged: [bool; QosClass::COUNT],
        urgent: [bool; QosClass::COUNT],
        boosted: bool,
    ) -> Pick {
        // Refill = new round (also restores the promotion budget).
        while !QosClass::ALL
            .iter()
            .any(|c| backlogged[c.index()] && self.credits[c.index()] > 0)
        {
            self.credits = self.weights;
            self.promotions_left = self.promotions_per_round;
        }
        let mut creditable = [false; QosClass::COUNT];
        for c in QosClass::ALL {
            creditable[c.index()] = backlogged[c.index()] && self.credits[c.index()] > 0;
        }
        let normal = if boosted {
            self.best_boosted(creditable)
        } else {
            QosClass::ALL.into_iter().find(|c| creditable[c.index()])
        }
        .expect("refill loop guarantees a creditable lane");
        let mut urgent_backlogged = [false; QosClass::COUNT];
        for c in QosClass::ALL {
            urgent_backlogged[c.index()] = backlogged[c.index()] && urgent[c.index()];
        }
        let urgent_lane = if boosted {
            self.best_boosted(urgent_backlogged)
        } else {
            QosClass::ALL.into_iter().find(|c| urgent_backlogged[c.index()])
        };
        if let Some(u) = urgent_lane {
            if u != normal {
                if self.credits[u.index()] > 0 {
                    // Credit-covered promotion: reorders inside the round
                    // without changing its totals.
                    self.credits[u.index()] -= 1;
                    return Pick { class: u, promoted: true };
                }
                if self.promotions_left > 0 {
                    // Token promotion: an extra pick beyond the lane's
                    // weight, bounded per round.
                    self.promotions_left -= 1;
                    return Pick { class: u, promoted: true };
                }
                // Budget exhausted: fall through to the weighted order.
            }
        }
        self.credits[normal.index()] -= 1;
        Pick {
            class: normal,
            promoted: false,
        }
    }

    /// FAIR_SHARE: grant the backlogged class with the largest deficit
    /// between its target share (weight / Σ weights) and its measured
    /// share of the sliding served-pick window, then record the grant in
    /// the window. Compared cross-multiplied so no division happens on
    /// the pick path; ties go to the more urgent class.
    fn pick_fair(&mut self, backlogged: [bool; QosClass::COUNT]) -> Pick {
        let total_weight: u64 = self.weights.iter().map(|&w| u64::from(w)).sum();
        let window = WeightedArbiter::FAIR_SHARE_WINDOW as u64;
        let mut best: Option<(i64, QosClass)> = None;
        for c in QosClass::ALL {
            if !backlogged[c.index()] {
                continue;
            }
            // deficit = target·window − measured·total, in units of
            // picks × Σ weights (both terms ≤ 2^38 for u32 weights).
            let target = u64::from(self.weights[c.index()]) * window;
            let measured = u64::from(self.window_counts[c.index()]) * total_weight;
            let deficit = target as i64 - measured as i64;
            if best.is_none_or(|(b, _)| deficit > b) {
                best = Some((deficit, c));
            }
        }
        let (_, class) = best.expect("caller checked a lane is backlogged");
        // Slide the window: the oldest pick's count makes room.
        if self.window_len == WeightedArbiter::FAIR_SHARE_WINDOW {
            let oldest = self.window[self.window_head] as usize;
            self.window_counts[oldest] -= 1;
        } else {
            self.window_len += 1;
        }
        self.window[self.window_head] = class.index() as u8;
        self.window_head = (self.window_head + 1) % WeightedArbiter::FAIR_SHARE_WINDOW;
        self.window_counts[class.index()] += 1;
        Pick {
            class,
            promoted: false,
        }
    }
}

impl Default for WeightedArbiter {
    fn default() -> WeightedArbiter {
        WeightedArbiter::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_backlog_yields_none() {
        let mut arb = WeightedArbiter::new();
        assert_eq!(arb.pick([false; 4]), None);
    }

    #[test]
    fn single_backlogged_class_always_wins() {
        let mut arb = WeightedArbiter::new();
        let only_low = [false, false, false, true];
        for _ in 0..100 {
            assert_eq!(arb.pick(only_low), Some(QosClass::Low));
        }
    }

    #[test]
    fn saturation_share_follows_weights() {
        let mut arb = WeightedArbiter::new();
        let mut counts = [0u32; 4];
        for _ in 0..1500 {
            let class = arb.pick([true; 4]).unwrap();
            counts[class.index()] += 1;
        }
        // 1500 picks = 100 full rounds of 15 credits → exactly 8:4:2:1.
        assert_eq!(counts, [800, 400, 200, 100]);
    }

    #[test]
    fn low_is_not_starved_by_critical() {
        let mut arb = WeightedArbiter::new();
        let crit_and_low = [true, false, false, true];
        let mut low = 0;
        for _ in 0..900 {
            if arb.pick(crit_and_low) == Some(QosClass::Low) {
                low += 1;
            }
        }
        assert_eq!(low, 100, "LOW must get its 1/9 share");
    }

    #[test]
    fn custom_weights_apply() {
        let mut arb = WeightedArbiter::with_weights([1, 1, 1, 1]);
        let mut counts = [0u32; 4];
        for _ in 0..400 {
            counts[arb.pick([true; 4]).unwrap().index()] += 1;
        }
        assert_eq!(counts, [100; 4]);
    }

    #[test]
    fn urgent_lane_with_credit_jumps_the_weighted_order_for_free() {
        // CRITICAL and LOW backlogged; LOW urgent; token budget zero so
        // only the credit-covered mechanism is in play. LOW's single
        // credit serves it *first* instead of ninth, but the round still
        // totals 8 + 1.
        let mut arb = WeightedArbiter::new().with_promotions(0);
        let backlogged = [true, false, false, true];
        let urgent = [false, false, false, true];
        let first = arb.pick_urgent(backlogged, urgent).unwrap();
        assert_eq!(first, Pick { class: QosClass::Low, promoted: true });
        let mut counts = [0u32; 4];
        for _ in 0..8 {
            let p = arb.pick_urgent(backlogged, urgent).unwrap();
            counts[p.class.index()] += 1;
            assert!(!p.promoted, "LOW spent its credit and has no tokens");
        }
        assert_eq!(counts, [8, 0, 0, 0], "round totals unchanged");
    }

    #[test]
    fn token_promotions_are_bounded_per_round() {
        // MEDIUM permanently urgent against a CRITICAL flood: each round
        // is 8 CRITICAL + 2 MEDIUM credits + at most 2 MEDIUM tokens.
        let mut arb = WeightedArbiter::new().with_promotions(2);
        let backlogged = [true, false, true, false];
        let urgent = [false, false, true, false];
        let mut counts = [0u32; 4];
        let mut promoted = 0u32;
        for _ in 0..1200 {
            let p = arb.pick_urgent(backlogged, urgent).unwrap();
            counts[p.class.index()] += 1;
            promoted += u32::from(p.promoted);
        }
        // 1200 picks = 100 rounds of (8 + 2 + 2): CRITICAL keeps exactly
        // its 8/12 share — the anti-starvation bound.
        assert_eq!(counts, [800, 0, 400, 0]);
        assert_eq!(promoted, 400, "2 credit + 2 token promotions per round");
    }

    #[test]
    fn zero_promotion_budget_restores_plain_wrr_totals() {
        let mut arb = WeightedArbiter::new().with_promotions(0);
        let backlogged = [true, false, true, false];
        let urgent = [false, false, true, false];
        let mut counts = [0u32; 4];
        for _ in 0..1000 {
            counts[arb.pick_urgent(backlogged, urgent).unwrap().class.index()] += 1;
        }
        // 1000 picks = 100 rounds of (8 + 2): shares exactly as unpromoted.
        assert_eq!(counts, [800, 0, 200, 0]);
    }

    #[test]
    fn most_urgent_class_wins_among_urgent_lanes() {
        let mut arb = WeightedArbiter::new();
        // HIGH and LOW both urgent: HIGH (more urgent class) is served.
        let p = arb
            .pick_urgent([true, true, false, true], [false, true, false, true])
            .unwrap();
        assert_eq!(p.class, QosClass::High);
        assert!(p.promoted);
    }

    #[test]
    fn strict_priority_starves_low_under_a_critical_flood() {
        let mut arb = WeightedArbiter::new().with_mode(ArbiterMode::StrictPriority);
        let crit_and_low = [true, false, false, true];
        for _ in 0..200 {
            assert_eq!(arb.pick(crit_and_low), Some(QosClass::Critical));
        }
        // Urgency does not override strict order either.
        let p = arb
            .pick_urgent(crit_and_low, [false, false, false, true])
            .unwrap();
        assert_eq!(p.class, QosClass::Critical);
        assert!(!p.promoted);
    }

    #[test]
    fn fair_share_converges_to_weight_targets_under_saturation() {
        let mut arb = WeightedArbiter::new().with_mode(ArbiterMode::FairShare);
        let mut counts = [0u64; 4];
        const PICKS: u64 = 1500;
        for _ in 0..PICKS {
            counts[arb.pick([true; 4]).unwrap().index()] += 1;
        }
        // Targets 8:4:2:1 of 1500 = [800, 400, 200, 100]; the sliding
        // window holds each class within one window of its target.
        let targets = [800i64, 400, 200, 100];
        for (i, &target) in targets.iter().enumerate() {
            let got = counts[i] as i64;
            assert!(
                (got - target).abs() <= WeightedArbiter::FAIR_SHARE_WINDOW as i64,
                "class {i}: {got} vs target {target}"
            );
        }
    }

    #[test]
    fn fair_share_deficit_carry_over_is_bounded_by_the_window() {
        // CRITICAL idles while LOW is served far beyond one window, then
        // returns: its catch-up burst must be bounded by target × window
        // (≈ 8/15 × 64 = 34), not by the total time it sat idle.
        let mut arb = WeightedArbiter::new().with_mode(ArbiterMode::FairShare);
        for _ in 0..10 * WeightedArbiter::FAIR_SHARE_WINDOW {
            assert_eq!(arb.pick([false, false, false, true]), Some(QosClass::Low));
        }
        let mut burst = 0u32;
        while arb.pick([true, false, false, true]) == Some(QosClass::Critical) {
            burst += 1;
            assert!(burst < 64, "catch-up burst must terminate inside one window");
        }
        // The burst overshoots CRITICAL's steady window share (≈ 34)
        // because LOW's idle-time surplus must drain too, but it can
        // never exceed the window itself.
        assert!(
            (34..64).contains(&burst),
            "burst {burst} should be bounded by one window"
        );
    }

    #[test]
    fn fair_share_ignores_urgency_flags() {
        let mut arb = WeightedArbiter::new().with_mode(ArbiterMode::FairShare);
        let backlogged = [true, false, false, true];
        let urgent = [false, false, false, true];
        let mut promoted = 0u32;
        for _ in 0..100 {
            promoted += u32::from(arb.pick_urgent(backlogged, urgent).unwrap().promoted);
        }
        assert_eq!(promoted, 0, "FAIR_SHARE never reports promotions");
    }

    #[test]
    fn dynamic_priority_boost_lets_low_outrank_a_fresher_urgent_high() {
        // Both HIGH and LOW urgent. Under plain WRR, HIGH (more urgent
        // class) wins the urgent tie every single pick. Under
        // DYNAMIC_PRIORITY, serving HIGH decays its boost while LOW's
        // keeps accruing, so LOW must be granted well before HIGH has
        // drained — the boost ladder out-ranks static class order.
        let mut arb = WeightedArbiter::new().with_mode(ArbiterMode::DynamicPriority);
        let backlogged = [false, true, false, true];
        let urgent = [false, true, false, true];
        let mut first_low = None;
        for i in 0..20 {
            let p = arb.pick_urgent(backlogged, urgent).unwrap();
            if p.class == QosClass::Low {
                first_low = Some(i);
                break;
            }
        }
        let first_low = first_low.expect("LOW must be served inside 20 picks");
        // LOW (base 0) passes HIGH (base 2, halved each service) after a
        // couple of boost levels; with weights 4:1 plain WRR would also
        // eventually serve LOW, but only after HIGH's 4 credits drain.
        assert!(first_low <= 3, "boost should grant LOW by pick 3, got {first_low}");
    }

    #[test]
    fn dynamic_priority_keeps_the_wrr_share_bound() {
        // CRITICAL flood with MEDIUM permanently urgent — the same
        // adversarial pattern as the WRR token test. Boosts change *who*
        // among urgent lanes wins, never how many extra picks a round
        // can grow by, so CRITICAL's floor is identical: 8/(8+2+2).
        let mut arb = WeightedArbiter::new()
            .with_mode(ArbiterMode::DynamicPriority)
            .with_promotions(2);
        let backlogged = [true, false, true, false];
        let urgent = [false, false, true, false];
        let mut counts = [0u64; 4];
        for _ in 0..1200 {
            counts[arb.pick_urgent(backlogged, urgent).unwrap().class.index()] += 1;
        }
        assert_eq!(
            counts,
            [800, 0, 400, 0],
            "the token bound caps urgent picks exactly as in WRR"
        );
    }

    #[test]
    fn dynamic_priority_without_urgency_is_plain_wrr() {
        let mut wrr = WeightedArbiter::new();
        let mut dyn_ = WeightedArbiter::new().with_mode(ArbiterMode::DynamicPriority);
        for _ in 0..300 {
            assert_eq!(wrr.pick([true; 4]), dyn_.pick([true; 4]));
        }
    }

    #[test]
    fn estimator_tracks_a_steady_signal_and_sizes_the_margin() {
        let est = ServiceTimeEstimator::new();
        assert_eq!(est.margin_us(1234), 1234, "cold estimator falls back");
        for _ in 0..64 {
            est.observe(400, 8);
        }
        assert_eq!(est.batch_service_us(), 400, "EWMA locks onto a constant");
        assert_eq!(est.per_job_us(), 50);
        assert_eq!(est.margin_us(1234), 800, "margin = 2 × batch EWMA");
        assert_eq!(est.samples(), 64);
    }

    #[test]
    fn estimator_converges_toward_a_level_shift() {
        let est = ServiceTimeEstimator::new();
        est.observe(100, 1);
        for _ in 0..64 {
            est.observe(900, 1);
        }
        let batch = est.batch_service_us();
        assert!(
            (850..=900).contains(&batch),
            "EWMA {batch} should have converged near 900"
        );
        est.observe(0, 0);
        assert_eq!(est.samples(), 65, "zero-job batches are ignored");
    }
}
