//! Retrieval result cache with generation-based invalidation.
//!
//! Keyed by [`Request::fingerprint`](rqfa_core::Request::fingerprint) — the
//! same canonical digest the paper's bypass tokens use (§3) — and stamped
//! with the owning shard's case-base generation counter. Any mutation of
//! the case base (retain/revise/evict) bumps the generation, which makes
//! every cached result stale at once without walking the map: a stale hit
//! is detected on lookup, reported as a miss, and overwritten in place by
//! the recompute that follows.
//!
//! Eviction is FIFO over insertion order. That is deliberately simpler
//! than LRU: the service's hit pattern is dominated by *bursts* of
//! identical requests (the bypass-token traffic of §3), which FIFO serves
//! equally well without per-hit bookkeeping on the hot path.

use std::collections::{HashMap, VecDeque};

use rqfa_core::{Generation, OpCounts, Retrieval, Scored};
use rqfa_fixed::Q15;

/// One cached retrieval outcome.
#[derive(Debug, Clone)]
struct Entry {
    generation: Generation,
    best: Option<Scored<Q15>>,
    evaluated: usize,
}

/// Fixed-capacity FIFO cache of retrieval results.
#[derive(Debug)]
pub struct RetrievalCache {
    capacity: usize,
    map: HashMap<u64, Entry>,
    order: VecDeque<u64>,
    hits: u64,
    misses: u64,
    stale: u64,
}

impl RetrievalCache {
    /// A cache holding at most `capacity` results (0 disables caching).
    pub fn new(capacity: usize) -> RetrievalCache {
        RetrievalCache {
            capacity,
            map: HashMap::with_capacity(capacity.min(1 << 16)),
            order: VecDeque::with_capacity(capacity.min(1 << 16)),
            hits: 0,
            misses: 0,
            stale: 0,
        }
    }

    /// Looks up the result for `fingerprint` computed at `generation`.
    /// A hit from an older generation counts as stale and is discarded.
    pub fn lookup(&mut self, fingerprint: u64, generation: Generation) -> Option<Retrieval<Q15>> {
        match self.map.get(&fingerprint) {
            Some(entry) if entry.generation == generation => {
                self.hits += 1;
                Some(Retrieval {
                    best: entry.best,
                    evaluated: entry.evaluated,
                    ops: OpCounts::default(),
                })
            }
            Some(_) => {
                // Invalidated by a case-base mutation. Leave the entry in
                // place: generations only grow, so it can never match a
                // future lookup, and the recompute that follows this miss
                // overwrites it in its existing FIFO slot. Removing it
                // here would desync `order` from `map` (the re-insert
                // would push a duplicate order entry).
                self.stale += 1;
                self.misses += 1;
                None
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Stores a retrieval computed at `generation`.
    pub fn insert(&mut self, fingerprint: u64, generation: Generation, result: &Retrieval<Q15>) {
        if self.capacity == 0 {
            return;
        }
        if !self.map.contains_key(&fingerprint) {
            while self.map.len() >= self.capacity {
                match self.order.pop_front() {
                    Some(old) => {
                        self.map.remove(&old);
                    }
                    None => break,
                }
            }
            self.order.push_back(fingerprint);
        }
        self.map.insert(
            fingerprint,
            Entry {
                generation,
                best: result.best,
                evaluated: result.evaluated,
            },
        );
    }

    /// Live entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// `(hits, misses, stale_detections)` counters since construction.
    pub fn stats(&self) -> (u64, u64, u64) {
        (self.hits, self.misses, self.stale)
    }

    /// FIFO bookkeeping length (test hook: must track `len`).
    #[cfg(test)]
    fn order_len(&self) -> usize {
        self.order.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rqfa_core::ids::ImplId;
    use rqfa_core::ExecutionTarget;

    fn g(raw: u64) -> Generation {
        Generation::from_raw(raw)
    }

    fn result(raw_impl: u16) -> Retrieval<Q15> {
        Retrieval {
            best: Some(Scored {
                impl_id: ImplId::new(raw_impl).unwrap(),
                target: ExecutionTarget::Dsp,
                similarity: Q15::ONE,
            }),
            evaluated: 3,
            ops: OpCounts::default(),
        }
    }

    #[test]
    fn hit_requires_matching_generation() {
        let mut cache = RetrievalCache::new(8);
        cache.insert(42, g(0), &result(1));
        assert!(cache.lookup(42, g(0)).is_some());
        // A mutation bumped the generation: the entry is stale.
        assert!(cache.lookup(42, g(1)).is_none());
        assert_eq!(cache.stats(), (1, 1, 1));
        // The recompute overwrites the stale entry in place — no
        // duplicate FIFO slot, and the new generation hits again.
        cache.insert(42, g(1), &result(2));
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.lookup(42, g(1)).unwrap().best.unwrap().impl_id.raw(), 2);
    }

    #[test]
    fn invalidation_cycles_do_not_grow_the_cache() {
        // Regression: stale removal used to leave dangling keys in the
        // FIFO order deque, one per invalidation cycle, and eviction
        // could then drop the *live* re-inserted entry. Hammer the
        // retain→re-request cycle and check both maps stay in lockstep.
        let mut cache = RetrievalCache::new(2);
        for raw in 0..100u64 {
            let generation = g(raw);
            assert!(cache.lookup(1, generation).is_none() || raw > 0);
            cache.insert(1, generation, &result(1));
            cache.insert(2, generation, &result(2));
            assert!(cache.lookup(1, generation).is_some());
            assert!(cache.lookup(2, generation).is_some());
            assert!(cache.len() <= 2);
        }
        assert_eq!(cache.order_len(), cache.len());
    }

    #[test]
    fn fifo_eviction_bounds_size() {
        let mut cache = RetrievalCache::new(2);
        cache.insert(1, g(0), &result(1));
        cache.insert(2, g(0), &result(2));
        cache.insert(3, g(0), &result(3));
        assert_eq!(cache.len(), 2);
        assert!(cache.lookup(1, g(0)).is_none(), "oldest entry evicted");
        assert!(cache.lookup(3, g(0)).is_some());
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut cache = RetrievalCache::new(0);
        cache.insert(1, g(0), &result(1));
        assert!(cache.is_empty());
        assert!(cache.lookup(1, g(0)).is_none());
    }

    #[test]
    fn reinsert_updates_value() {
        let mut cache = RetrievalCache::new(4);
        cache.insert(7, g(0), &result(1));
        cache.insert(7, g(1), &result(2));
        let hit = cache.lookup(7, g(1)).unwrap();
        assert_eq!(hit.best.unwrap().impl_id.raw(), 2);
        assert_eq!(cache.len(), 1);
    }
}
