//! Retrieval result cache with generation-based invalidation.
//!
//! Keyed by [`Request::fingerprint`](rqfa_core::Request::fingerprint) — the
//! same canonical digest the paper's bypass tokens use (§3) — and stamped
//! with the owning shard's case-base generation counter. Any mutation of
//! the case base (retain/revise/evict) bumps the generation, which makes
//! every cached result stale at once without walking the map: a stale hit
//! is detected on lookup, reported as a miss, dropped on the spot, and
//! re-inserted fresh by the recompute that follows (so a refreshed entry
//! is the cache's *newest*, not a resurrection of its original age).
//!
//! [`RetrievalCache`] is a typed facade over [`rqfa_cache::GenCache`] —
//! the same generalized store behind `rqfa_core::TokenCache` — holding
//! [`RankedEntry`] values, which buys **n-best subsumption** for free: a
//! cached top-*k* ranking answers later best-of and top-*j* (`j ≤ k`)
//! lookups bit-identically to a recompute (`rank` sorts then truncates, so
//! smaller requests are exact prefixes — see `rqfa_core::nbest::rank`).
//!
//! Eviction defaults to FIFO — the exact-compat baseline: the service's
//! hit pattern is dominated by *bursts* of identical requests (the
//! bypass-token traffic of §3), which FIFO serves with zero per-hit
//! bookkeeping. Under zipf-skewed popularity, [`CachePolicy::Lru`] and
//! especially [`CachePolicy::TwoQ`] (+ admission) keep the hot set
//! resident against the one-hit-wonder tail — `service_throughput`
//! reports the A/B. The normative semantics table lives in
//! `docs/caching.md`.

use rqfa_cache::{CachePolicy, CacheStats, GenCache, RankedEntry};
use rqfa_core::{Generation, NBest, OpCounts, Retrieval, Scored};
use rqfa_fixed::Q15;

/// What one cache probe observed (the worker feeds this into the
/// per-class `cache_*` metrics).
#[derive(Debug, Clone, PartialEq)]
pub enum CacheLookup {
    /// Served from the cache.
    Hit(Retrieval<Q15>),
    /// Not served; `stale` tells a generation-mismatch drop apart from a
    /// cold (or insufficient-coverage) miss.
    Miss {
        /// Whether the miss invalidated a stale entry.
        stale: bool,
    },
}

/// Fixed-capacity cache of ranked retrieval results.
#[derive(Debug)]
pub struct RetrievalCache {
    inner: GenCache<RankedEntry<Scored<Q15>>, Generation>,
}

impl RetrievalCache {
    /// A FIFO cache holding at most `capacity` results (0 disables
    /// caching) — the historical configuration.
    pub fn new(capacity: usize) -> RetrievalCache {
        RetrievalCache::with_policy(capacity, CachePolicy::Fifo, false)
    }

    /// A cache with an explicit eviction policy and optional
    /// one-hit-wonder admission filtering.
    pub fn with_policy(capacity: usize, policy: CachePolicy, admission: bool) -> RetrievalCache {
        RetrievalCache {
            inner: GenCache::new(capacity, policy).with_admission(admission),
        }
    }

    /// Looks up the best-of result for `fingerprint` computed at
    /// `generation`. A hit from an older generation counts as stale and
    /// is discarded.
    pub fn lookup(&mut self, fingerprint: u64, generation: Generation) -> Option<Retrieval<Q15>> {
        match self.lookup_outcome(fingerprint, generation) {
            CacheLookup::Hit(retrieval) => Some(retrieval),
            CacheLookup::Miss { .. } => None,
        }
    }

    /// Like [`RetrievalCache::lookup`], but reports *why* a miss missed.
    pub fn lookup_outcome(&mut self, fingerprint: u64, generation: Generation) -> CacheLookup {
        let stale_before = self.inner.stats().stale;
        match self.inner.lookup_if(fingerprint, generation, |e| e.covers(1)) {
            Some(entry) => CacheLookup::Hit(Retrieval {
                best: entry.best().copied(),
                evaluated: entry.evaluated(),
                ops: OpCounts::default(),
            }),
            None => CacheLookup::Miss {
                stale: self.inner.stats().stale > stale_before,
            },
        }
    }

    /// Looks up a top-`n` ranking. Subsumption: any cached entry whose
    /// ranking covers `n` (it requested ≥ `n`, or it ranked every
    /// evaluated candidate) answers exactly; a fresh-but-narrower entry
    /// is a miss that leaves the entry in place for smaller requests.
    /// Cached results report zeroed [`OpCounts`] — no scan ran.
    pub fn lookup_n_best(
        &mut self,
        fingerprint: u64,
        generation: Generation,
        n: usize,
    ) -> Option<NBest<Q15>> {
        self.inner
            .lookup_if(fingerprint, generation, |e| e.covers(n))
            .map(|entry| NBest {
                ranked: entry.prefix(n).to_vec(),
                evaluated: entry.evaluated(),
                ops: OpCounts::default(),
            })
    }

    /// Stores a best-of retrieval computed at `generation` (a ranking of
    /// size 1 — later best-of lookups hit it; larger n-best lookups
    /// recompute and widen the entry).
    pub fn insert(&mut self, fingerprint: u64, generation: Generation, result: &Retrieval<Q15>) {
        self.insert_entry(
            fingerprint,
            generation,
            RankedEntry::new(
                result.best.into_iter().collect(),
                1,
                result.evaluated,
            ),
        );
    }

    /// Stores an **unfiltered** top-`requested` ranking computed at
    /// `generation`. Threshold-filtered results
    /// (`retrieve_n_best_above`) must not be cached here: a filtered
    /// list is not prefix-closed, so subsumption would fabricate
    /// answers.
    pub fn insert_n_best(
        &mut self,
        fingerprint: u64,
        generation: Generation,
        requested: usize,
        nbest: &NBest<Q15>,
    ) {
        if requested == 0 && nbest.evaluated > 0 {
            return; // a top-0 of something answers nothing — don't waste a slot
        }
        self.insert_entry(
            fingerprint,
            generation,
            RankedEntry::new(nbest.ranked.clone(), requested, nbest.evaluated),
        );
    }

    /// Keep-the-wider-entry merge: never let a narrow result clobber a
    /// same-generation entry that already answers more.
    fn insert_entry(
        &mut self,
        fingerprint: u64,
        generation: Generation,
        entry: RankedEntry<Scored<Q15>>,
    ) {
        if let Some(existing) = self.inner.peek(fingerprint, generation) {
            if existing.coverage() >= entry.coverage() {
                return;
            }
        }
        self.inner.insert(fingerprint, generation, entry);
    }

    /// Records that `fingerprint` repeated inside one dispatch batch
    /// (a coalesced duplicate served off the leader's computation): the
    /// admission filter counts the repeat as a sighting, so the leader's
    /// insert is not bounced as a one-hit wonder. No-op without an
    /// admission filter.
    pub fn note_repeat(&mut self, fingerprint: u64) {
        self.inner.note_sighting(fingerprint);
    }

    /// Live entries.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// `(hits, misses, stale_detections)` counters since construction
    /// (the historical triple; see [`RetrievalCache::cache_stats`] for
    /// the full set).
    pub fn stats(&self) -> (u64, u64, u64) {
        let s = self.inner.stats();
        (s.hits, s.misses, s.stale)
    }

    /// The full counter set of the underlying store.
    pub fn cache_stats(&self) -> CacheStats {
        self.inner.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rqfa_core::ids::ImplId;
    use rqfa_core::ExecutionTarget;

    fn g(raw: u64) -> Generation {
        Generation::from_raw(raw)
    }

    fn scored(raw_impl: u16, similarity: f64) -> Scored<Q15> {
        Scored {
            impl_id: ImplId::new(raw_impl).unwrap(),
            target: ExecutionTarget::Dsp,
            similarity: Q15::from_f64(similarity).unwrap(),
        }
    }

    fn result(raw_impl: u16) -> Retrieval<Q15> {
        Retrieval {
            best: Some(scored(raw_impl, 1.0)),
            evaluated: 3,
            ops: OpCounts::default(),
        }
    }

    #[test]
    fn hit_requires_matching_generation() {
        let mut cache = RetrievalCache::new(8);
        cache.insert(42, g(0), &result(1));
        assert!(cache.lookup(42, g(0)).is_some());
        // A mutation bumped the generation: the entry is stale.
        assert!(cache.lookup(42, g(1)).is_none());
        assert_eq!(cache.stats(), (1, 1, 1));
        // The recompute re-inserts fresh; the new generation hits again.
        cache.insert(42, g(1), &result(2));
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.lookup(42, g(1)).unwrap().best.unwrap().impl_id.raw(), 2);
    }

    #[test]
    fn stale_miss_is_distinguished_from_cold_miss() {
        let mut cache = RetrievalCache::new(8);
        assert_eq!(cache.lookup_outcome(7, g(0)), CacheLookup::Miss { stale: false });
        cache.insert(7, g(0), &result(1));
        assert_eq!(cache.lookup_outcome(7, g(2)), CacheLookup::Miss { stale: true });
        assert_eq!(cache.lookup_outcome(7, g(2)), CacheLookup::Miss { stale: false });
    }

    #[test]
    fn invalidation_cycles_do_not_grow_the_cache() {
        // Regression: stale removal used to leave dangling keys in the
        // FIFO order deque, one per invalidation cycle, and eviction
        // could then drop the *live* re-inserted entry. Hammer the
        // retain→re-request cycle and check the cache stays bounded.
        let mut cache = RetrievalCache::new(2);
        for raw in 0..100u64 {
            let generation = g(raw);
            assert!(cache.lookup(1, generation).is_none() || raw > 0);
            cache.insert(1, generation, &result(1));
            cache.insert(2, generation, &result(2));
            assert!(cache.lookup(1, generation).is_some());
            assert!(cache.lookup(2, generation).is_some());
            assert!(cache.len() <= 2);
        }
    }

    #[test]
    fn stale_refresh_is_re_aged() {
        // The historical FIFO cache overwrote stale entries in place and
        // kept their original insertion age, so a just-refreshed entry
        // could be the next eviction victim. The unified store drops
        // stale entries at detection, making the refresh the newest.
        let mut cache = RetrievalCache::new(2);
        cache.insert(1, g(0), &result(1));
        cache.insert(2, g(0), &result(2));
        assert!(cache.lookup(1, g(1)).is_none(), "stale drop");
        cache.insert(1, g(1), &result(1)); // refresh
        cache.insert(3, g(1), &result(3)); // evicts 2, not the fresh 1
        assert!(cache.lookup(1, g(1)).is_some(), "refreshed entry survives");
        assert!(cache.lookup(2, g(1)).is_none());
        assert!(cache.lookup(3, g(1)).is_some());
    }

    #[test]
    fn fifo_eviction_bounds_size() {
        let mut cache = RetrievalCache::new(2);
        cache.insert(1, g(0), &result(1));
        cache.insert(2, g(0), &result(2));
        cache.insert(3, g(0), &result(3));
        assert_eq!(cache.len(), 2);
        assert!(cache.lookup(1, g(0)).is_none(), "oldest entry evicted");
        assert!(cache.lookup(3, g(0)).is_some());
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut cache = RetrievalCache::new(0);
        cache.insert(1, g(0), &result(1));
        assert!(cache.is_empty());
        assert!(cache.lookup(1, g(0)).is_none());
    }

    #[test]
    fn reinsert_updates_value() {
        let mut cache = RetrievalCache::new(4);
        cache.insert(7, g(0), &result(1));
        cache.insert(7, g(1), &result(2));
        let hit = cache.lookup(7, g(1)).unwrap();
        assert_eq!(hit.best.unwrap().impl_id.raw(), 2);
        assert_eq!(cache.len(), 1);
    }

    fn nbest(scores: &[(u16, f64)], evaluated: usize) -> NBest<Q15> {
        NBest {
            ranked: scores.iter().map(|&(id, s)| scored(id, s)).collect(),
            evaluated,
            ops: OpCounts::default(),
        }
    }

    #[test]
    fn cached_n_best_serves_best_of_and_smaller_n() {
        let mut cache = RetrievalCache::new(8);
        let three = nbest(&[(2, 0.9), (1, 0.8), (3, 0.4)], 5);
        cache.insert_n_best(9, g(0), 3, &three);
        // Best-of is the ranking's head.
        let best = cache.lookup(9, g(0)).unwrap();
        assert_eq!(best.best.unwrap().impl_id.raw(), 2);
        assert_eq!(best.evaluated, 5);
        // top-2 is the exact prefix.
        let two = cache.lookup_n_best(9, g(0), 2).unwrap();
        assert_eq!(
            two.ranked.iter().map(|s| s.impl_id.raw()).collect::<Vec<_>>(),
            [2, 1]
        );
        // top-4 exceeds the cached coverage (3 of 5): miss, entry stays.
        assert!(cache.lookup_n_best(9, g(0), 4).is_none());
        assert_eq!(cache.cache_stats().uncovered, 1);
        assert!(cache.lookup(9, g(0)).is_some(), "entry still serves j ≤ 3");
    }

    #[test]
    fn complete_ranking_covers_any_request() {
        let mut cache = RetrievalCache::new(8);
        // requested 10 ≥ evaluated 2: the ranking is complete.
        let all = nbest(&[(2, 0.9), (1, 0.8)], 2);
        cache.insert_n_best(5, g(0), 10, &all);
        let big = cache.lookup_n_best(5, g(0), 50).unwrap();
        assert_eq!(big.ranked.len(), 2);
        assert_eq!(big.evaluated, 2);
    }

    #[test]
    fn narrow_insert_never_clobbers_wider_same_generation_entry() {
        let mut cache = RetrievalCache::new(8);
        cache.insert_n_best(4, g(0), 3, &nbest(&[(2, 0.9), (1, 0.8), (3, 0.4)], 5));
        // A best-of store for the same fingerprint+generation arrives
        // (e.g. from an API caller that bypassed lookup): keep the wide one.
        cache.insert(4, g(0), &result(2));
        assert!(cache.lookup_n_best(4, g(0), 3).is_some());
        // A *newer-generation* best-of does replace it.
        cache.insert(4, g(1), &result(2));
        assert!(cache.lookup_n_best(4, g(1), 3).is_none());
        assert!(cache.lookup(4, g(1)).is_some());
    }

    #[test]
    fn generation_bump_invalidates_ranked_and_best_atomically() {
        let mut cache = RetrievalCache::new(8);
        cache.insert_n_best(6, g(0), 3, &nbest(&[(2, 0.9), (1, 0.8), (3, 0.4)], 3));
        assert!(cache.lookup(6, g(0)).is_some());
        // One mutation: *both* views of the entry go stale at once.
        assert!(cache.lookup_n_best(6, g(1), 2).is_none());
        assert!(cache.lookup(6, g(1)).is_none());
        assert_eq!(cache.cache_stats().stale, 1, "one entry, one stale drop");
    }
}
