//! Service-level error type.

use core::fmt;

use rqfa_core::CoreError;
use rqfa_persist::PersistError;

/// Everything a service-level mutation or durability operation can fail
/// with. Retrieval failures stay [`CoreError`]s inside
/// [`Outcome::Failed`](crate::Outcome::Failed); this type covers the
/// control plane (mutations, checkpoints, durable open/recover).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ServiceError {
    /// The mutation violated a case-base invariant (unknown type,
    /// duplicate impl, out-of-bounds value, …).
    Core(CoreError),
    /// The durability layer failed (I/O, torn write, corrupt state).
    Persist(PersistError),
    /// The durable-state directory is missing or its manifest is
    /// unreadable / inconsistent.
    Manifest(String),
    /// The service configuration is invalid (e.g. zero shards).
    Config(String),
    /// A remote-shard or replication operation failed (transport error,
    /// protocol violation, remote rejection).
    Remote(String),
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::Core(e) => write!(f, "case-base violation: {e}"),
            ServiceError::Persist(e) => write!(f, "persistence failure: {e}"),
            ServiceError::Manifest(m) => write!(f, "durable-state manifest: {m}"),
            ServiceError::Config(m) => write!(f, "invalid configuration: {m}"),
            ServiceError::Remote(m) => write!(f, "remote shard: {m}"),
        }
    }
}

impl std::error::Error for ServiceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServiceError::Core(e) => Some(e),
            ServiceError::Persist(e) => Some(e),
            ServiceError::Manifest(_) | ServiceError::Config(_) | ServiceError::Remote(_) => None,
        }
    }
}

impl From<CoreError> for ServiceError {
    fn from(e: CoreError) -> ServiceError {
        ServiceError::Core(e)
    }
}

impl From<PersistError> for ServiceError {
    fn from(e: PersistError) -> ServiceError {
        // A persisted-but-invalid mutation surfaces as the core error it
        // wraps; everything else is a durability failure.
        match e {
            PersistError::Core(core) => ServiceError::Core(core),
            other => ServiceError::Persist(other),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn persist_core_errors_unwrap_to_core() {
        let e: ServiceError = PersistError::Core(CoreError::EmptyCaseBase).into();
        assert!(matches!(e, ServiceError::Core(CoreError::EmptyCaseBase)));
        let io: ServiceError = PersistError::NoValidSnapshot.into();
        assert!(matches!(io, ServiceError::Persist(_)));
    }

    #[test]
    fn display_covers_variants() {
        assert!(ServiceError::Manifest("bad".into()).to_string().contains("bad"));
        let e: ServiceError = CoreError::EmptyCaseBase.into();
        assert!(!e.to_string().is_empty());
    }
}
