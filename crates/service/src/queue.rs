//! The per-shard batching request queue.
//!
//! One [`ClassQueue`] feeds each shard worker: four class-indexed FIFO
//! lanes behind one mutex, a condvar to park the worker when idle, and the
//! [`WeightedArbiter`](crate::sched::WeightedArbiter) deciding which lane
//! each batch slot is drawn from.
//!
//! ## Overload policy
//!
//! Admission limits step with urgency so total queue memory stays
//! bounded while less-urgent traffic sheds first: a LOW job is refused
//! once `capacity` jobs are queued, MEDIUM at `2 × capacity`, HIGH at
//! `4 × capacity`; CRITICAL is always admitted — it must never be shed.
//! Refused jobs bounce back to the caller, who replies `Shed`. On top of
//! admission control, per-class deadline budgets (when configured) shed
//! HIGH/MEDIUM/LOW at *dispatch* once they have waited too long — work
//! that can still meet its deadline is never refused by the budget.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

use rqfa_core::QosClass;

use crate::sched::WeightedArbiter;
use crate::Job;

struct Inner {
    lanes: [VecDeque<Job>; QosClass::COUNT],
    arbiter: WeightedArbiter,
    len: usize,
    shutdown: bool,
}

impl Inner {
    fn backlogged(&self) -> [bool; QosClass::COUNT] {
        [
            !self.lanes[0].is_empty(),
            !self.lanes[1].is_empty(),
            !self.lanes[2].is_empty(),
            !self.lanes[3].is_empty(),
        ]
    }
}

/// A bounded, class-aware MPSC job queue feeding one shard worker.
pub struct ClassQueue {
    inner: Mutex<Inner>,
    available: Condvar,
    capacity: usize,
}

impl ClassQueue {
    /// A queue admitting at most `capacity` jobs (min 1) across classes,
    /// scheduled by `arbiter`.
    pub fn new(capacity: usize, arbiter: WeightedArbiter) -> ClassQueue {
        ClassQueue {
            inner: Mutex::new(Inner {
                lanes: Default::default(),
                arbiter,
                len: 0,
                shutdown: false,
            }),
            available: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Enqueues a job. Returns the job back when it was refused: the
    /// queue is shut down, or the class's admission limit (LOW: 1×
    /// capacity, MEDIUM: 2×, HIGH: 4×, CRITICAL: unlimited) is reached.
    pub fn push(&self, job: Job) -> Result<(), Job> {
        let mut inner = self.inner.lock().expect("queue poisoned");
        if inner.shutdown {
            return Err(job);
        }
        let limit = match job.class {
            QosClass::Critical => usize::MAX,
            QosClass::High => self.capacity.saturating_mul(4),
            QosClass::Medium => self.capacity.saturating_mul(2),
            QosClass::Low => self.capacity,
        };
        if inner.len >= limit {
            return Err(job);
        }
        inner.lanes[job.class.index()].push_back(job);
        inner.len += 1;
        drop(inner);
        self.available.notify_one();
        Ok(())
    }

    /// Pops the next batch of up to `max` jobs, blocking while the queue
    /// is empty. Returns `None` once the queue is shut down *and* drained,
    /// which is the worker's signal to exit.
    pub fn pop_batch(&self, max: usize) -> Option<Vec<Job>> {
        let mut inner = self.inner.lock().expect("queue poisoned");
        loop {
            if inner.len > 0 {
                break;
            }
            if inner.shutdown {
                return None;
            }
            inner = self.available.wait(inner).expect("queue poisoned");
        }
        let mut batch = Vec::with_capacity(max.min(inner.len));
        while batch.len() < max {
            let Some(class) = ({
                let backlogged = inner.backlogged();
                inner.arbiter.pick(backlogged)
            }) else {
                break;
            };
            let job = inner.lanes[class.index()]
                .pop_front()
                .expect("arbiter picked a backlogged lane");
            inner.len -= 1;
            batch.push(job);
        }
        Some(batch)
    }

    /// Jobs currently queued.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("queue poisoned").len
    }

    /// Whether no jobs are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Initiates shutdown: new pushes are refused, blocked workers wake,
    /// and `pop_batch` drains the backlog before returning `None`.
    pub fn shutdown(&self) {
        self.inner.lock().expect("queue poisoned").shutdown = true;
        self.available.notify_all();
    }
}

/// Creates a detached job (its reply receiver is dropped) for queue tests.
#[cfg(test)]
pub(crate) fn test_job(id: u64, class: QosClass, request: rqfa_core::Request) -> Job {
    let (reply_tx, _) = std::sync::mpsc::channel();
    Job {
        id,
        class,
        request,
        enqueued_at: std::time::Instant::now(),
        reply_tx,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rqfa_core::ids::{AttrId, TypeId};
    use rqfa_core::Request;

    fn request() -> Request {
        Request::builder(TypeId::new(1).unwrap())
            .constraint(AttrId::new(1).unwrap(), 5)
            .build()
            .unwrap()
    }

    fn queue(capacity: usize) -> ClassQueue {
        ClassQueue::new(capacity, WeightedArbiter::new())
    }

    #[test]
    fn fifo_within_class_weighted_across_classes() {
        let q = queue(64);
        for id in 0..4 {
            q.push(test_job(id, QosClass::Low, request())).unwrap();
        }
        for id in 4..8 {
            q.push(test_job(id, QosClass::Critical, request())).unwrap();
        }
        let batch = q.pop_batch(8).unwrap();
        assert_eq!(batch.len(), 8);
        // Critical jobs dominate the front of the batch.
        assert_eq!(batch[0].class, QosClass::Critical);
        let crit_ids: Vec<u64> = batch
            .iter()
            .filter(|j| j.class == QosClass::Critical)
            .map(|j| j.id)
            .collect();
        assert_eq!(crit_ids, [4, 5, 6, 7], "FIFO inside a class");
    }

    #[test]
    fn low_is_refused_when_full_but_critical_is_not() {
        let q = queue(2);
        q.push(test_job(0, QosClass::Low, request())).unwrap();
        q.push(test_job(1, QosClass::Low, request())).unwrap();
        assert!(q.push(test_job(2, QosClass::Low, request())).is_err());
        assert!(q.push(test_job(3, QosClass::Critical, request())).is_ok());
        assert!(q.push(test_job(4, QosClass::High, request())).is_ok());
        assert_eq!(q.len(), 4);
    }

    #[test]
    fn admission_limits_step_with_urgency() {
        // capacity 2 → LOW refused at 2, MEDIUM at 4, HIGH at 8,
        // CRITICAL never: total memory stays bounded for sheddable
        // classes even with no deadline budgets configured.
        let q = queue(2);
        let fill = |q: &ClassQueue, class, n: u64| {
            (0..n).filter(|&i| q.push(test_job(i, class, request())).is_ok()).count()
        };
        assert_eq!(fill(&q, QosClass::Low, 10), 2);
        assert_eq!(fill(&q, QosClass::Medium, 10), 2); // len 2 → stops at 4
        assert_eq!(fill(&q, QosClass::High, 10), 4); // len 4 → stops at 8
        assert!(q.push(test_job(99, QosClass::Medium, request())).is_err());
        assert!(q.push(test_job(99, QosClass::Low, request())).is_err());
        assert_eq!(fill(&q, QosClass::Critical, 10), 10); // unbounded
        assert_eq!(q.len(), 18);
    }

    #[test]
    fn pop_respects_batch_limit() {
        let q = queue(64);
        for id in 0..10 {
            q.push(test_job(id, QosClass::Medium, request())).unwrap();
        }
        assert_eq!(q.pop_batch(4).unwrap().len(), 4);
        assert_eq!(q.len(), 6);
    }

    #[test]
    fn shutdown_drains_then_ends() {
        let q = queue(64);
        q.push(test_job(0, QosClass::Low, request())).unwrap();
        q.shutdown();
        assert!(q.push(test_job(1, QosClass::Critical, request())).is_err());
        assert_eq!(q.pop_batch(8).unwrap().len(), 1);
        assert!(q.pop_batch(8).is_none());
    }

    #[test]
    fn blocked_pop_wakes_on_push() {
        use std::sync::Arc;
        let q = Arc::new(queue(8));
        let q2 = Arc::clone(&q);
        let handle = std::thread::spawn(move || q2.pop_batch(1).map(|b| b.len()));
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.push(test_job(0, QosClass::High, request())).unwrap();
        assert_eq!(handle.join().unwrap(), Some(1));
    }
}
