//! The per-shard batching request queue with deadline-aware lanes.
//!
//! One [`ClassQueue`] feeds each shard worker: four class-indexed lanes
//! behind one mutex, a condvar to park the worker when idle, and the
//! [`WeightedArbiter`] deciding which lane
//! each batch slot is drawn from.
//!
//! ## Lane ordering
//!
//! Each lane is an ordered map keyed by `(sort key, sequence)`. In
//! [`SchedMode::Edf`] the sort key is the job's *effective deadline*
//! (its explicit per-request deadline, else enqueue time + class
//! budget); a job with no deadline at all carries an explicit
//! no-deadline sentinel that orders **after every instant**, so *any*
//! explicit deadline — however far in the future — sorts ahead of the
//! deadline-free backlog, and deadline-free jobs keep arrival order
//! among themselves. The lane head is therefore always the job closest
//! to missing — earliest-deadline-first. In [`SchedMode::Fifo`] the sort
//! key is the enqueue time, reproducing strict arrival order. The
//! monotonic sequence breaks ties deterministically, so two runs over the
//! same trace dispatch — and shed — identically.
//!
//! ## Overload policy
//!
//! Admission limits step with urgency so total queue memory stays
//! bounded while less-urgent traffic sheds first: a LOW job is refused
//! once `capacity` jobs are queued, MEDIUM at `2 × capacity`, HIGH at
//! `4 × capacity`; CRITICAL is always admitted — it must never be shed.
//! At its limit a sheddable class sheds by **largest slack first**: if
//! the newcomer's effective deadline is nearer than the lane's
//! largest-slack resident, that resident is displaced (it had the most
//! schedule room to lose) and the newcomer admitted; otherwise the
//! newcomer — itself the largest-slack job — bounces. With no deadlines
//! in play the newcomer always has the largest key, so this degrades to
//! the classic refuse-the-arrival policy (and `Fifo` mode keeps it
//! exactly). On top of admission control, effective deadlines shed
//! HIGH/MEDIUM/LOW at *dispatch* once they have expired — work that can
//! still meet its deadline is never refused by the budget.

use std::collections::BTreeMap;
use std::sync::atomic::Ordering;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use rqfa_core::QosClass;
use rqfa_telemetry::{clock::micros_between, monotonic, EventKind, FlightRecorder, SharedClock};

use crate::metrics::ServiceMetrics;
use crate::sched::{ArbiterMode, SchedMode, ServiceTimeEstimator, WeightedArbiter};
use crate::Job;

/// A lane's sort key: explicit instants order chronologically, and the
/// no-deadline sentinel orders after **every** instant (the derived
/// `Ord` follows variant order). The former 1-year sort *horizon*
/// misordered here: an explicit deadline beyond the horizon sorted
/// behind deadline-free jobs and was displaced first as "largest slack".
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum SortKey {
    /// Order by this instant: the effective deadline (EDF) or the
    /// enqueue time (FIFO).
    At(Instant),
    /// EDF job with no deadline at all: behind every deadlined job, in
    /// arrival order among themselves (via the tie-breaking sequence).
    NoDeadline,
}

/// How [`ClassQueue::push`] disposed of a job.
#[derive(Debug)]
pub enum Admission {
    /// The job was queued.
    Admitted,
    /// The job was queued by displacing the same-class resident with the
    /// largest slack — the displaced job must be answered as shed.
    Displaced(Job),
    /// The job was refused (class limit reached and the job itself holds
    /// the largest slack, or the queue is shut down).
    Refused(Job),
    /// Predictive shed: the measured service rate says the job's
    /// deadline cannot be met even if queued, so it is refused *fast*
    /// instead of occupying a slot it is doomed to shed at dispatch.
    /// Carries the predicted lateness in µs.
    Doomed {
        /// The refused job (the caller answers it).
        job: Job,
        /// Predicted completion lateness had the job been queued, µs.
        late_us: u64,
    },
}

struct Inner {
    lanes: [BTreeMap<(SortKey, u64), Job>; QosClass::COUNT],
    arbiter: WeightedArbiter,
    len: usize,
    seq: u64,
    shutdown: bool,
}

impl Inner {
    fn backlogged(&self) -> [bool; QosClass::COUNT] {
        [
            !self.lanes[0].is_empty(),
            !self.lanes[1].is_empty(),
            !self.lanes[2].is_empty(),
            !self.lanes[3].is_empty(),
        ]
    }

    /// Which lane heads are within `margin` of their effective deadline
    /// *and still viable*. An already-expired head is deliberately not
    /// urgent: promoting it spends rescue bandwidth on a job that sheds
    /// at dispatch anyway — it drains at the lane's weighted rate
    /// instead.
    fn urgent(&self, now: Instant, margin: Duration) -> [bool; QosClass::COUNT] {
        let mut urgent = [false; QosClass::COUNT];
        for (i, lane) in self.lanes.iter().enumerate() {
            if let Some((_, head)) = lane.first_key_value() {
                if let Some(deadline) = head.deadline {
                    urgent[i] =
                        now <= deadline && deadline.saturating_duration_since(now) <= margin;
                }
            }
        }
        urgent
    }
}

/// A bounded, class-aware, deadline-aware MPSC job queue feeding one
/// shard worker.
pub struct ClassQueue {
    inner: Mutex<Inner>,
    available: Condvar,
    capacity: usize,
    mode: SchedMode,
    promotion_margin: Duration,
    metrics: Arc<ServiceMetrics>,
    /// Time source for urgency checks and trace timestamps — injected so
    /// the scheduler is drivable deterministically.
    clock: SharedClock,
    /// Flight recorder for `Scheduled` events (`None` = tracing off).
    recorder: Option<Arc<FlightRecorder>>,
    /// Zero point of trace timestamps.
    epoch: Instant,
    /// Measured batch-service-time estimator shared with the shard
    /// worker (`None` = no measurement: fixed margins, no deadline-aware
    /// batch composition).
    estimator: Option<Arc<ServiceTimeEstimator>>,
    /// Whether admission refuses deadlined sheddable jobs the estimator
    /// predicts cannot finish in time even if queued (see
    /// [`Admission::Doomed`]). Off by default.
    predictive_shed: bool,
}

impl ClassQueue {
    /// A queue admitting at most `capacity` jobs (min 1) across classes,
    /// ordered per `mode`, scheduled by `arbiter`; lane heads within
    /// `promotion_margin_us` of their deadline are flagged urgent to the
    /// arbiter (EDF mode only). Promotions are counted into `metrics`.
    /// Uses the wall clock and no tracing; see
    /// [`ClassQueue::with_telemetry`].
    pub fn new(
        capacity: usize,
        arbiter: WeightedArbiter,
        mode: SchedMode,
        promotion_margin_us: u64,
        metrics: Arc<ServiceMetrics>,
    ) -> ClassQueue {
        let clock = monotonic();
        let epoch = clock.now();
        ClassQueue {
            inner: Mutex::new(Inner {
                lanes: Default::default(),
                arbiter,
                len: 0,
                seq: 0,
                shutdown: false,
            }),
            available: Condvar::new(),
            capacity: capacity.max(1),
            mode,
            promotion_margin: Duration::from_micros(promotion_margin_us),
            metrics,
            clock,
            recorder: None,
            epoch,
            estimator: None,
            predictive_shed: false,
        }
    }

    /// Replaces the queue's time source and flight recorder. `epoch` is
    /// the zero point trace timestamps are measured from (share one
    /// epoch across a service so per-request timelines line up).
    pub fn with_telemetry(
        mut self,
        clock: SharedClock,
        recorder: Option<Arc<FlightRecorder>>,
        epoch: Instant,
    ) -> ClassQueue {
        self.clock = clock;
        self.recorder = recorder;
        self.epoch = epoch;
        self
    }

    /// Attaches the shard's measured service-time estimator. With it the
    /// queue (in EDF mode) sizes the [`ArbiterMode::DynamicPriority`]
    /// urgency margin from live measurement
    /// ([`ServiceTimeEstimator::margin_us`], falling back to the
    /// configured fixed margin while cold) and stops filling a batch
    /// when the estimator predicts the next pick would make an
    /// already-picked job miss its effective deadline.
    pub fn with_estimator(mut self, estimator: Arc<ServiceTimeEstimator>) -> ClassQueue {
        self.estimator = Some(estimator);
        self
    }

    /// Enables predictive shedding at admission (needs an estimator to
    /// have any effect; a cold estimator predicts nothing).
    pub fn with_predictive_shed(mut self, on: bool) -> ClassQueue {
        self.predictive_shed = on;
        self
    }

    /// The shard's measured service-time estimator, if attached.
    pub(crate) fn estimator(&self) -> Option<Arc<ServiceTimeEstimator>> {
        self.estimator.clone()
    }

    /// Predicted lateness (µs) of a deadlined sheddable job arriving
    /// now, from the warm estimator's per-job rate over the current
    /// backlog: with `n` jobs already queued the newcomer completes
    /// after roughly `(n + 1) × per_job_us`. `None` = viable (or not
    /// predictable: predictive shedding off, cold estimator, CRITICAL,
    /// or no deadline).
    fn predicted_lateness(&self, job: &Job, queued: usize, now: Instant) -> Option<u64> {
        if !self.predictive_shed || !job.class.sheddable() {
            return None;
        }
        let deadline = job.deadline?;
        let estimator = self.estimator.as_ref()?;
        if estimator.samples() == 0 {
            return None;
        }
        let per_job = estimator.per_job_us();
        let predicted_us = per_job.checked_mul(queued as u64 + 1)?;
        let completes = now + Duration::from_micros(predicted_us);
        if completes > deadline {
            Some(micros_between(deadline, completes))
        } else {
            None
        }
    }

    /// The lane sort key of a job under this queue's mode.
    fn sort_key(&self, job: &Job) -> SortKey {
        match self.mode {
            SchedMode::Fifo => SortKey::At(job.enqueued_at),
            SchedMode::Edf => job.deadline.map_or(SortKey::NoDeadline, SortKey::At),
        }
    }

    /// Enqueues a job. See [`Admission`] for the three outcomes; the
    /// class's admission limit is LOW: 1× capacity, MEDIUM: 2×, HIGH:
    /// 4×, CRITICAL: unlimited.
    pub fn push(&self, job: Job) -> Admission {
        let mut inner = self.inner.lock().expect("queue poisoned");
        if inner.shutdown {
            return Admission::Refused(job);
        }
        if let Some(late_us) = self.predicted_lateness(&job, inner.len, self.clock.now()) {
            // Refuse-fast: the measured service rate says this job
            // sheds at dispatch anyway; answering now costs nothing and
            // keeps the doomed work from occupying a queue slot.
            drop(inner);
            return Admission::Doomed { job, late_us };
        }
        let limit = match job.class {
            QosClass::Critical => usize::MAX,
            QosClass::High => self.capacity.saturating_mul(4),
            QosClass::Medium => self.capacity.saturating_mul(2),
            QosClass::Low => self.capacity,
        };
        let key = (self.sort_key(&job), inner.seq);
        inner.seq += 1;
        if inner.len >= limit {
            // Shed by largest slack: the lane's last key is its
            // largest-slack resident. Strict `<` keeps the no-deadline
            // (and Fifo) case on the classic refuse-the-arrival policy.
            let lane = &mut inner.lanes[job.class.index()];
            if job.class.sheddable() {
                if let Some((&last_key, _)) = lane.last_key_value() {
                    if key.0 < last_key.0 {
                        let (_, victim) = lane.pop_last().expect("lane non-empty");
                        lane.insert(key, job);
                        drop(inner);
                        self.available.notify_one();
                        return Admission::Displaced(victim);
                    }
                }
            }
            return Admission::Refused(job);
        }
        inner.lanes[job.class.index()].insert(key, job);
        inner.len += 1;
        drop(inner);
        self.available.notify_one();
        Admission::Admitted
    }

    /// Pops the next batch of up to `max` jobs, blocking while the queue
    /// is empty. Returns `None` once the queue is shut down *and* drained,
    /// which is the worker's signal to exit.
    pub fn pop_batch(&self, max: usize) -> Option<Vec<Job>> {
        let mut inner = self.inner.lock().expect("queue poisoned");
        loop {
            if inner.len > 0 {
                break;
            }
            if inner.shutdown {
                return None;
            }
            inner = self.available.wait(inner).expect("queue poisoned");
        }
        // DYNAMIC_PRIORITY sizes the urgency margin from measurement;
        // every other mode keeps the configured fixed margin. The
        // estimator is written only by this shard's worker — the thread
        // running this very loop — so both reads are stable across the
        // whole fill.
        let margin = match (&self.estimator, inner.arbiter.mode()) {
            (Some(est), ArbiterMode::DynamicPriority) => Duration::from_micros(
                est.margin_us(self.promotion_margin.as_micros() as u64),
            ),
            _ => self.promotion_margin,
        };
        self.metrics.sched_margin_us.set(margin.as_micros() as u64);
        let per_job_us = self
            .estimator
            .as_deref()
            .map_or(0, ServiceTimeEstimator::per_job_us);
        // Tightest effective deadline among jobs already picked — the
        // deadline-aware composition bound.
        let mut tightest: Option<Instant> = None;
        let mut batch = Vec::with_capacity(max.min(inner.len));
        while batch.len() < max {
            // Re-stamp every pick: under a real clock the urgency flags
            // and `Scheduled` trace stamps must not go stale across a
            // long batch. A frozen manual clock returns the same instant
            // each read, so deterministic replays are unaffected.
            let now = self.clock.now();
            let at_us = micros_between(self.epoch, now);
            if self.mode == SchedMode::Edf && per_job_us > 0 {
                if let Some(tight) = tightest {
                    // Stop filling when the estimator says one more pick
                    // would turn an already-picked job from meeting its
                    // deadline into missing it. An already-late batch
                    // keeps filling — stopping cannot unmiss it.
                    let len = batch.len() as u64;
                    let finish = now + Duration::from_micros(per_job_us * len);
                    let next = now + Duration::from_micros(per_job_us * (len + 1));
                    if finish <= tight && next > tight {
                        break;
                    }
                }
            }
            let Some(pick) = ({
                let backlogged = inner.backlogged();
                let urgent = match self.mode {
                    SchedMode::Edf => inner.urgent(now, margin),
                    SchedMode::Fifo => [false; QosClass::COUNT],
                };
                inner.arbiter.pick_urgent(backlogged, urgent)
            }) else {
                break;
            };
            let (_, job) = inner.lanes[pick.class.index()]
                .pop_first()
                .expect("arbiter picked a backlogged lane");
            let class_metrics = self.metrics.class(pick.class);
            class_metrics.picks.fetch_add(1, Ordering::Relaxed);
            if pick.promoted {
                class_metrics.promoted.fetch_add(1, Ordering::Relaxed);
            }
            if let Some(recorder) = &self.recorder {
                recorder.record(
                    at_us,
                    job.id,
                    job.class.index() as u8,
                    EventKind::Scheduled,
                    u64::from(pick.promoted),
                );
            }
            if self.mode == SchedMode::Edf {
                if let Some(deadline) = job.deadline {
                    tightest = Some(tightest.map_or(deadline, |t| t.min(deadline)));
                }
            }
            inner.len -= 1;
            batch.push(job);
        }
        Some(batch)
    }

    /// Jobs currently queued.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("queue poisoned").len
    }

    /// Whether no jobs are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Initiates shutdown: new pushes are refused, blocked workers wake,
    /// and `pop_batch` drains the backlog before returning `None`.
    pub fn shutdown(&self) {
        self.inner.lock().expect("queue poisoned").shutdown = true;
        self.available.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testkit;
    use rqfa_core::ids::{AttrId, TypeId};
    use rqfa_core::Request;

    fn request() -> Request {
        Request::builder(TypeId::new(1).unwrap())
            .constraint(AttrId::new(1).unwrap(), 5)
            .build()
            .unwrap()
    }

    fn job(id: u64, class: QosClass) -> Job {
        testkit::job(id, class, request(), Instant::now(), None).0
    }

    fn deadline_job(id: u64, class: QosClass, base: Instant, deadline_us: u64) -> Job {
        testkit::job(
            id,
            class,
            request(),
            base,
            Some(base + Duration::from_micros(deadline_us)),
        )
        .0
    }

    fn queue(capacity: usize) -> ClassQueue {
        queue_mode(capacity, SchedMode::Edf)
    }

    fn queue_mode(capacity: usize, mode: SchedMode) -> ClassQueue {
        ClassQueue::new(
            capacity,
            WeightedArbiter::new(),
            mode,
            0,
            Arc::new(ServiceMetrics::default()),
        )
    }

    fn push_ok(q: &ClassQueue, job: Job) {
        assert!(matches!(q.push(job), Admission::Admitted));
    }

    #[test]
    fn fifo_within_class_weighted_across_classes() {
        // Without deadlines EDF degrades to arrival order inside a lane.
        let q = queue(64);
        for id in 0..4 {
            push_ok(&q, job(id, QosClass::Low));
        }
        for id in 4..8 {
            push_ok(&q, job(id, QosClass::Critical));
        }
        let batch = q.pop_batch(8).unwrap();
        assert_eq!(batch.len(), 8);
        // Critical jobs dominate the front of the batch.
        assert_eq!(batch[0].class, QosClass::Critical);
        let crit_ids: Vec<u64> = batch
            .iter()
            .filter(|j| j.class == QosClass::Critical)
            .map(|j| j.id)
            .collect();
        assert_eq!(crit_ids, [4, 5, 6, 7], "arrival order inside a class");
    }

    #[test]
    fn edf_orders_a_lane_by_effective_deadline() {
        let q = queue(64);
        let base = Instant::now();
        // Insertion order 0..4 with deadlines 40/10/30/20 ms — and one
        // deadline-free job that must sort behind all of them.
        for (id, us) in [(0, 40_000u64), (1, 10_000), (2, 30_000), (3, 20_000)] {
            push_ok(&q, deadline_job(id, QosClass::High, base, us));
        }
        push_ok(&q, testkit::job(4, QosClass::High, request(), base, None).0);
        let order: Vec<u64> = q.pop_batch(8).unwrap().iter().map(|j| j.id).collect();
        assert_eq!(order, [1, 3, 2, 0, 4], "earliest deadline first");
    }

    #[test]
    fn fifo_mode_ignores_deadlines() {
        let q = queue_mode(64, SchedMode::Fifo);
        let base = Instant::now();
        for (id, us) in [(0, 40_000u64), (1, 10_000), (2, 30_000), (3, 20_000)] {
            push_ok(&q, deadline_job(id, QosClass::High, base, us));
        }
        let order: Vec<u64> = q.pop_batch(8).unwrap().iter().map(|j| j.id).collect();
        assert_eq!(order, [0, 1, 2, 3], "strict arrival order");
    }

    #[test]
    fn low_is_refused_when_full_but_critical_is_not() {
        let q = queue(2);
        push_ok(&q, job(0, QosClass::Low));
        push_ok(&q, job(1, QosClass::Low));
        assert!(matches!(q.push(job(2, QosClass::Low)), Admission::Refused(_)));
        push_ok(&q, job(3, QosClass::Critical));
        push_ok(&q, job(4, QosClass::High));
        assert_eq!(q.len(), 4);
    }

    #[test]
    fn admission_limits_step_with_urgency() {
        // capacity 2 → LOW refused at 2, MEDIUM at 4, HIGH at 8,
        // CRITICAL never: total memory stays bounded for sheddable
        // classes even with no deadline budgets configured.
        let q = queue(2);
        let fill = |q: &ClassQueue, class, n: u64| {
            (0..n)
                .filter(|&i| matches!(q.push(job(i, class)), Admission::Admitted))
                .count()
        };
        assert_eq!(fill(&q, QosClass::Low, 10), 2);
        assert_eq!(fill(&q, QosClass::Medium, 10), 2); // len 2 → stops at 4
        assert_eq!(fill(&q, QosClass::High, 10), 4); // len 4 → stops at 8
        assert!(matches!(q.push(job(99, QosClass::Medium)), Admission::Refused(_)));
        assert!(matches!(q.push(job(99, QosClass::Low)), Admission::Refused(_)));
        assert_eq!(fill(&q, QosClass::Critical, 10), 10); // unbounded
        assert_eq!(q.len(), 18);
    }

    #[test]
    fn overload_displaces_the_largest_slack_resident() {
        let q = queue(3);
        let base = Instant::now();
        push_ok(&q, deadline_job(0, QosClass::Low, base, 40_000));
        push_ok(&q, deadline_job(1, QosClass::Low, base, 10_000));
        push_ok(&q, deadline_job(2, QosClass::Low, base, 30_000));
        // Full. A tighter newcomer displaces id 0 (largest slack)…
        match q.push(deadline_job(3, QosClass::Low, base, 5_000)) {
            Admission::Displaced(victim) => assert_eq!(victim.id, 0),
            other => panic!("expected displacement, got {other:?}"),
        }
        // …while a looser newcomer (now the largest slack itself) bounces.
        match q.push(deadline_job(4, QosClass::Low, base, 50_000)) {
            Admission::Refused(refused) => assert_eq!(refused.id, 4),
            other => panic!("expected refusal, got {other:?}"),
        }
        assert_eq!(q.len(), 3);
        let order: Vec<u64> = q.pop_batch(8).unwrap().iter().map(|j| j.id).collect();
        assert_eq!(order, [3, 1, 2], "survivors dispatch EDF");
    }

    #[test]
    fn far_deadline_sorts_before_no_deadline() {
        // Regression: an explicit deadline beyond the old 1-year sort
        // horizon used to sort *behind* deadline-free jobs — and was
        // displaced first as "largest slack" under overload. Any
        // explicit deadline must order before the no-deadline sentinel.
        let q = queue(2);
        let base = Instant::now();
        let two_years_us = 2 * 365 * 24 * 3600 * 1_000_000u64;
        push_ok(&q, testkit::job(0, QosClass::Low, request(), base, None).0);
        push_ok(&q, deadline_job(1, QosClass::Low, base, two_years_us));
        // Full. The tight newcomer must displace the no-deadline job,
        // not the far-deadline one.
        match q.push(deadline_job(2, QosClass::Low, base, 1_000)) {
            Admission::Displaced(victim) => {
                assert_eq!(victim.id, 0, "the deadline-free job holds the largest slack");
            }
            other => panic!("expected displacement, got {other:?}"),
        }
        let order: Vec<u64> = q.pop_batch(8).unwrap().iter().map(|j| j.id).collect();
        assert_eq!(order, [2, 1], "far deadline dispatches before none");
    }

    /// Tiny deterministic generator (splitmix64) for the mixed-trace
    /// property test below.
    fn splitmix(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    #[test]
    fn sort_order_matches_the_documented_contract_under_mixed_traces() {
        // Property: over random mixes of no-deadline / near-deadline /
        // far-deadline jobs (far: beyond the old 1-year horizon), one
        // lane's pop order equals the documented total order in both
        // modes — EDF: explicit deadlines ascending then deadline-free
        // in arrival order, ties by sequence; FIFO: strict arrival
        // order, deadlines ignored.
        let year_us = 365u64 * 24 * 3600 * 1_000_000;
        for seed in 0..8u64 {
            for mode in [SchedMode::Edf, SchedMode::Fifo] {
                let mut state = seed ^ 0xEDF0;
                let q = queue_mode(1024, mode);
                let base = Instant::now();
                // (id, absolute deadline in µs from base, if any);
                // arrival instants strictly increase with id.
                let mut jobs: Vec<(u64, Option<u64>)> = Vec::new();
                for id in 0..64u64 {
                    let deadline_us = match splitmix(&mut state) % 3 {
                        0 => None,
                        1 => Some(id + splitmix(&mut state) % 100_000),
                        _ => Some(id + year_us + splitmix(&mut state) % year_us),
                    };
                    let enqueued = base + Duration::from_micros(id);
                    let deadline =
                        deadline_us.map(|at| base + Duration::from_micros(at));
                    push_ok(
                        &q,
                        testkit::job(id, QosClass::High, request(), enqueued, deadline).0,
                    );
                    jobs.push((id, deadline_us));
                }
                let mut expected: Vec<u64> = jobs.iter().map(|&(id, _)| id).collect();
                if mode == SchedMode::Edf {
                    // Push order == sequence order, so (deadline-free
                    // last, deadline ascending, id) is the contract.
                    expected.sort_by_key(|&id| {
                        let (_, deadline) = jobs[usize::try_from(id).unwrap()];
                        (deadline.is_none(), deadline.unwrap_or(0), id)
                    });
                }
                let order: Vec<u64> =
                    q.pop_batch(jobs.len()).unwrap().iter().map(|j| j.id).collect();
                assert_eq!(order, expected, "mode {mode:?}, seed {seed}");
            }
        }
    }

    /// A clock that jumps forward one fixed step on every read — makes
    /// the per-pick clock re-read in `pop_batch` observable.
    #[derive(Debug)]
    struct TickingClock {
        base: Instant,
        step_us: u64,
        reads: std::sync::atomic::AtomicU64,
    }

    impl rqfa_telemetry::Clock for TickingClock {
        fn now(&self) -> Instant {
            let n = self.reads.fetch_add(1, Ordering::SeqCst);
            self.base + Duration::from_micros(self.step_us * n)
        }
    }

    #[test]
    fn scheduled_stamps_re_read_the_clock_per_pick() {
        // Regression: `pop_batch` used to read the clock once before the
        // fill loop, so every `Scheduled` event in a batch carried the
        // same stamp (and urgency went stale) under an advancing clock.
        let clock: SharedClock = Arc::new(TickingClock {
            base: Instant::now(),
            step_us: 10,
            reads: std::sync::atomic::AtomicU64::new(0),
        });
        let epoch = clock.now();
        let recorder = Arc::new(FlightRecorder::new(64));
        let q = ClassQueue::new(
            64,
            WeightedArbiter::new(),
            SchedMode::Edf,
            0,
            Arc::new(ServiceMetrics::default()),
        )
        .with_telemetry(Arc::clone(&clock), Some(Arc::clone(&recorder)), epoch);
        for id in 0..4 {
            push_ok(&q, job(id, QosClass::High));
        }
        assert_eq!(q.pop_batch(4).unwrap().len(), 4);
        let stamps: Vec<u64> = recorder
            .drain()
            .events
            .iter()
            .filter(|e| e.kind == EventKind::Scheduled)
            .map(|e| e.at_us)
            .collect();
        assert_eq!(stamps.len(), 4);
        for pair in stamps.windows(2) {
            assert!(pair[1] > pair[0], "each pick re-reads the clock: {stamps:?}");
        }
    }

    #[test]
    fn expired_heads_are_not_urgent() {
        // Regression: an already-expired lane head used to flag its lane
        // urgent (slack saturates to zero ≤ margin), so promotions spent
        // rescue bandwidth on jobs that shed at dispatch anyway. An
        // expired head must drain at the lane's weighted rate; a viable
        // head inside the margin must still be promoted.
        let manual = Arc::new(rqfa_telemetry::ManualClock::new());
        let clock: SharedClock = Arc::clone(&manual) as SharedClock;
        let base = clock.now();
        let metrics = Arc::new(ServiceMetrics::default());
        let q = ClassQueue::new(
            64,
            WeightedArbiter::new(),
            SchedMode::Edf,
            1_000,
            Arc::clone(&metrics),
        )
        .with_telemetry(Arc::clone(&clock), None, base);
        push_ok(&q, deadline_job(0, QosClass::Low, base, 100));
        for id in 1..4 {
            push_ok(&q, job(id, QosClass::Critical));
        }
        manual.advance_us(200); // LOW's head is now 100 µs past its deadline
        let first = q.pop_batch(1).unwrap();
        assert_eq!(first[0].class, QosClass::Critical, "expired head attracts no promotion");
        assert_eq!(metrics.class(QosClass::Low).promoted.load(Ordering::Relaxed), 0);
        // Control: the same shape with a still-viable head inside the
        // margin is promoted ahead of CRITICAL as before.
        let metrics2 = Arc::new(ServiceMetrics::default());
        let q2 = ClassQueue::new(
            64,
            WeightedArbiter::new(),
            SchedMode::Edf,
            1_000,
            Arc::clone(&metrics2),
        )
        .with_telemetry(Arc::clone(&clock), None, base);
        push_ok(&q2, deadline_job(10, QosClass::Low, clock.now(), 500));
        for id in 11..14 {
            push_ok(&q2, job(id, QosClass::Critical));
        }
        let next = q2.pop_batch(1).unwrap();
        assert_eq!(next[0].id, 10, "viable head inside the margin jumps the order");
        assert_eq!(metrics2.class(QosClass::Low).promoted.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn estimator_caps_the_batch_at_the_tightest_picked_deadline() {
        // 50 µs estimated per job against a 100 µs deadline: two picks
        // fit, a third would turn job 0 from meeting its deadline into
        // missing it, so the fill stops at 2 of max 8.
        let manual = Arc::new(rqfa_telemetry::ManualClock::new());
        let clock: SharedClock = Arc::clone(&manual) as SharedClock;
        let base = clock.now();
        let estimator = Arc::new(ServiceTimeEstimator::new());
        estimator.observe(100, 2);
        let q = ClassQueue::new(
            64,
            WeightedArbiter::new(),
            SchedMode::Edf,
            0,
            Arc::new(ServiceMetrics::default()),
        )
        .with_telemetry(Arc::clone(&clock), None, base)
        .with_estimator(estimator);
        push_ok(&q, deadline_job(0, QosClass::High, base, 100));
        for id in 1..8 {
            push_ok(&q, job(id, QosClass::High));
        }
        let batch = q.pop_batch(8).unwrap();
        assert_eq!(batch.len(), 2, "fill stops before an estimated miss");
        assert_eq!(batch[0].id, 0);
        assert_eq!(q.len(), 6);
    }

    #[test]
    fn an_already_late_batch_keeps_filling() {
        // 100 µs estimated per job against a 50 µs deadline: job 0 is
        // late after its own service time alone. Capping the batch
        // cannot unmiss it, so the fill must keep going to max.
        let manual = Arc::new(rqfa_telemetry::ManualClock::new());
        let clock: SharedClock = Arc::clone(&manual) as SharedClock;
        let base = clock.now();
        let estimator = Arc::new(ServiceTimeEstimator::new());
        estimator.observe(100, 1);
        let q = ClassQueue::new(
            64,
            WeightedArbiter::new(),
            SchedMode::Edf,
            0,
            Arc::new(ServiceMetrics::default()),
        )
        .with_telemetry(Arc::clone(&clock), None, base)
        .with_estimator(estimator);
        push_ok(&q, deadline_job(0, QosClass::High, base, 50));
        for id in 1..8 {
            push_ok(&q, job(id, QosClass::High));
        }
        assert_eq!(q.pop_batch(8).unwrap().len(), 8);
    }

    #[test]
    fn predictive_shedding_dooms_only_the_truly_doomed() {
        // 100 µs estimated per job. Five jobs already queued, so a
        // newcomer completes at ~(5+1)×100 = 600 µs.
        let manual = Arc::new(rqfa_telemetry::ManualClock::new());
        let clock: SharedClock = Arc::clone(&manual) as SharedClock;
        let base = clock.now();
        let estimator = Arc::new(ServiceTimeEstimator::new());
        estimator.observe(100, 1);
        let q = ClassQueue::new(
            64,
            WeightedArbiter::new(),
            SchedMode::Edf,
            0,
            Arc::new(ServiceMetrics::default()),
        )
        .with_telemetry(Arc::clone(&clock), None, base)
        .with_estimator(estimator)
        .with_predictive_shed(true);
        for id in 0..5 {
            push_ok(&q, job(id, QosClass::Low));
        }
        // Doomed: 300 µs deadline against a 600 µs predicted completion.
        match q.push(deadline_job(10, QosClass::Low, base, 300)) {
            Admission::Doomed { job, late_us } => {
                assert_eq!(job.id, 10);
                assert_eq!(late_us, 300, "predicted 600 µs against a 300 µs deadline");
            }
            other => panic!("expected Doomed, got {other:?}"),
        }
        // Viable: 1 ms of slack admits normally.
        push_ok(&q, deadline_job(11, QosClass::Low, base, 1_000));
        // No deadline: nothing to predict against.
        push_ok(&q, job(12, QosClass::Low));
        // CRITICAL is never sheddable, predicted lateness or not.
        push_ok(&q, deadline_job(13, QosClass::Critical, base, 1));
    }

    #[test]
    fn predictive_shedding_stays_dormant_when_cold_or_disabled() {
        let manual = Arc::new(rqfa_telemetry::ManualClock::new());
        let clock: SharedClock = Arc::clone(&manual) as SharedClock;
        let base = clock.now();
        // Cold estimator (no samples): admit even hopeless deadlines.
        let cold = ClassQueue::new(
            64,
            WeightedArbiter::new(),
            SchedMode::Edf,
            0,
            Arc::new(ServiceMetrics::default()),
        )
        .with_telemetry(Arc::clone(&clock), None, base)
        .with_estimator(Arc::new(ServiceTimeEstimator::new()))
        .with_predictive_shed(true);
        for id in 0..5 {
            push_ok(&cold, job(id, QosClass::Low));
        }
        push_ok(&cold, deadline_job(10, QosClass::Low, base, 1));
        // Feature off: a warm estimator must not shed either.
        let estimator = Arc::new(ServiceTimeEstimator::new());
        estimator.observe(100, 1);
        let off = ClassQueue::new(
            64,
            WeightedArbiter::new(),
            SchedMode::Edf,
            0,
            Arc::new(ServiceMetrics::default()),
        )
        .with_telemetry(Arc::clone(&clock), None, base)
        .with_estimator(estimator);
        for id in 0..5 {
            push_ok(&off, job(id, QosClass::Low));
        }
        push_ok(&off, deadline_job(10, QosClass::Low, base, 1));
    }

    #[test]
    fn pop_respects_batch_limit() {
        let q = queue(64);
        for id in 0..10 {
            push_ok(&q, job(id, QosClass::Medium));
        }
        assert_eq!(q.pop_batch(4).unwrap().len(), 4);
        assert_eq!(q.len(), 6);
    }

    #[test]
    fn shutdown_drains_then_ends() {
        let q = queue(64);
        push_ok(&q, job(0, QosClass::Low));
        q.shutdown();
        assert!(matches!(q.push(job(1, QosClass::Critical)), Admission::Refused(_)));
        assert_eq!(q.pop_batch(8).unwrap().len(), 1);
        assert!(q.pop_batch(8).is_none());
    }

    #[test]
    fn blocked_pop_wakes_on_push() {
        let q = Arc::new(queue(8));
        let q2 = Arc::clone(&q);
        let handle = std::thread::spawn(move || q2.pop_batch(1).map(|b| b.len()));
        std::thread::sleep(std::time::Duration::from_millis(20));
        push_ok(&q, job(0, QosClass::High));
        assert_eq!(handle.join().unwrap(), Some(1));
    }
}
