//! Deterministic trace replay through the real service pipeline.
//!
//! The live [`AllocationService`](crate::AllocationService) is
//! intentionally concurrent: worker threads race the submitters, so two
//! runs of the same workload interleave differently and produce different
//! latency histograms. That is correct for production and useless for a
//! regression trajectory. [`TraceDriver`] removes exactly the two sources
//! of nondeterminism — threads and the wall clock — and keeps everything
//! else: arrivals go through the real [`ClassQueue`] (same admission
//! limits, displacement, EDF lanes, weighted arbiter, promotions) and
//! batches run through the real worker batch path (same coalescing,
//! cache, plane kernel, metrics commit), all under a [`ManualClock`]
//! driven by a single-threaded discrete-event loop.
//!
//! ## Event model
//!
//! Time advances only to the next *event*: an arrival instant from the
//! trace, or the instant a busy shard becomes free. At each event time
//! `t`, arrivals at `t` are submitted first, then every shard that is
//! free and backlogged dispatches one batch. A dispatched batch is
//! *processed at* `t` (queue wait is the reply latency, exactly as in the
//! live service where a worker stamps the batch when it picks it up) and
//! occupies its shard until `t + cost(batch)`, where
//! [`CostModel`] prices a batch as `dispatch_overhead_us` plus
//! `per_request_us` per job. Shards dispatch in ascending index order;
//! ties between arrivals are broken by trace order. Every choice is
//! total-ordered, so a replay is bit-identical across runs and machines —
//! `service_trace` in `rqfa-bench` replays its workload twice and asserts
//! exactly that before writing a BENCH artifact.

use std::sync::mpsc;
use std::sync::Arc;
use std::time::Duration;

use rqfa_core::{CaseBase, QosClass, Request};
use rqfa_telemetry::{EventKind, FlightRecorder, ManualClock, SharedClock, TraceDump};

use crate::cache::RetrievalCache;
use crate::metrics::ServiceMetrics;
use crate::queue::{Admission, ClassQueue};
use crate::sched::ServiceTimeEstimator;
use crate::shard::{self, ShardStore, WorkerContext};
use crate::{Job, MetricsSnapshot, Outcome, Reply, ServiceConfig};

/// Deterministic service-time model of one dispatched batch.
#[derive(Debug, Clone, Copy)]
pub struct CostModel {
    /// Fixed cost of one dispatch round (lock, plane check, fan-out), µs.
    pub dispatch_overhead_us: u64,
    /// Marginal cost per job in the batch, µs.
    pub per_request_us: u64,
}

impl Default for CostModel {
    fn default() -> CostModel {
        CostModel {
            dispatch_overhead_us: 50,
            per_request_us: 25,
        }
    }
}

impl CostModel {
    /// Service time of a batch of `jobs` jobs, µs (min 1, so a shard
    /// never dispatches twice at one instant).
    pub fn batch_us(&self, jobs: usize) -> u64 {
        (self.dispatch_overhead_us + self.per_request_us * jobs as u64).max(1)
    }
}

/// One timestamped request of a replayable trace.
#[derive(Debug, Clone)]
pub struct TraceArrival {
    /// Submission instant, µs from the start of the replay.
    pub at_us: u64,
    /// QoS class the request is submitted in.
    pub class: QosClass,
    /// Explicit per-request deadline, µs after submission (`None` falls
    /// back to the class budget, as in the live service).
    pub deadline_us: Option<u64>,
    /// The allocation request itself.
    pub request: Request,
}

/// What one replay produced.
#[derive(Debug)]
pub struct TraceReport {
    /// Every reply, in request-id order (one per trace arrival).
    pub replies: Vec<Reply>,
    /// The final metrics snapshot.
    pub metrics: MetricsSnapshot,
    /// The merged flight-recorder dump (tracing is always on in a
    /// replay, sized by [`ServiceConfig::trace_capacity`] or a default).
    pub trace: TraceDump,
}

/// One replayed shard: real queue, real worker context, a free-at stamp,
/// and the shard's service-time estimator (fed from the cost model, so
/// the adaptive scheduler modes close their loop deterministically).
struct ReplayShard {
    queue: ClassQueue,
    store: ShardStore,
    ctx: WorkerContext,
    estimator: Arc<ServiceTimeEstimator>,
    free_at_us: u64,
}

/// The single-threaded discrete-event driver. See the module docs.
pub struct TraceDriver {
    config: ServiceConfig,
    cost: CostModel,
    case_base: CaseBase,
}

impl TraceDriver {
    /// A driver over `case_base`, sharded and tuned by `config`.
    /// `config.clock` is ignored — the driver owns a private
    /// [`ManualClock`]; `config.trace_capacity` of 0 is raised to a
    /// default so the replay always yields a trace.
    pub fn new(case_base: &CaseBase, config: &ServiceConfig, cost: CostModel) -> TraceDriver {
        let mut config = config.clone();
        if config.trace_capacity == 0 {
            config.trace_capacity = 1 << 16;
        }
        TraceDriver {
            config,
            cost,
            case_base: case_base.clone(),
        }
    }

    /// Replays `arrivals` (sorted by `at_us` internally, trace order
    /// breaking ties) and returns replies, metrics and the event trace.
    /// Deterministic: identical inputs give an identical report.
    pub fn run(&self, arrivals: &[TraceArrival]) -> TraceReport {
        let clock = Arc::new(ManualClock::new());
        let shared: SharedClock = Arc::clone(&clock) as SharedClock;
        let epoch = shared.now();
        let metrics = Arc::new(ServiceMetrics::default());
        let recorder = Arc::new(FlightRecorder::new(self.config.trace_capacity));

        let mut shards: Vec<ReplayShard> = shard::partition(&self.case_base, self.config.shards)
            .into_iter()
            .map(|slice| {
                let store = match slice {
                    Some(cb) => ShardStore::Ephemeral(cb),
                    None => ShardStore::Empty,
                };
                let estimator = Arc::new(ServiceTimeEstimator::new());
                let queue = ClassQueue::new(
                    self.config.queue_capacity,
                    self.config.arbiter(),
                    self.config.scheduling,
                    self.config.promotion_margin_us,
                    Arc::clone(&metrics),
                )
                .with_telemetry(Arc::clone(&shared), Some(Arc::clone(&recorder)), epoch)
                .with_estimator(Arc::clone(&estimator));
                let cache = RetrievalCache::with_policy(
                    self.config.cache_capacity,
                    self.config.cache_policy,
                    self.config.cache_admission,
                );
                let ctx = WorkerContext::new(cache)
                    .with_kernel(self.config.kernel_path)
                    .with_telemetry(Arc::clone(&shared), Some(Arc::clone(&recorder)), epoch);
                ReplayShard {
                    queue,
                    store,
                    ctx,
                    estimator,
                    free_at_us: 0,
                }
            })
            .collect();

        // Stable sort: equal-instant arrivals keep trace order.
        let mut order: Vec<usize> = (0..arrivals.len()).collect();
        order.sort_by_key(|&i| arrivals[i].at_us);

        let batch_size = self.config.batch_size.max(1);
        let mut receivers: Vec<mpsc::Receiver<Reply>> = Vec::with_capacity(arrivals.len());
        let mut next = 0usize; // index into `order`
        loop {
            // The next event: an arrival, or a backlogged shard freeing up.
            let next_arrival = order.get(next).map(|&i| arrivals[i].at_us);
            let next_free = shards
                .iter()
                .filter(|s| !s.queue.is_empty())
                .map(|s| s.free_at_us)
                .min();
            let t = match (next_arrival, next_free) {
                (Some(a), Some(f)) => a.min(f),
                (Some(a), None) => a,
                (None, Some(f)) => f,
                (None, None) => break,
            };
            clock.set_us(t);

            // Arrivals first at equal instants: in the live service a job
            // must be queued before a worker can pick it up.
            while let Some(&i) = order.get(next) {
                if arrivals[i].at_us > t {
                    break;
                }
                receivers.push(self.submit(&shards, &metrics, &recorder, &shared, epoch, i as u64, &arrivals[i]));
                next += 1;
            }

            // Then every free, backlogged shard dispatches one batch,
            // processed at `t` and occupying the shard for its cost.
            for shard in &mut shards {
                if shard.free_at_us > t || shard.queue.is_empty() {
                    continue;
                }
                let batch = shard
                    .queue
                    .pop_batch(batch_size)
                    .expect("backlogged queue yields a batch");
                let served = batch.len();
                shard::process_batch(batch, &shard.store, &metrics, &mut shard.ctx);
                let batch_us = self.cost.batch_us(served);
                // The live worker measures elapsed wall time around the
                // batch; here the cost model *is* the truth, so the
                // estimator sees exactly what the event loop charges —
                // the adaptive modes replay bit-identically.
                shard.estimator.observe(batch_us, served);
                shard.free_at_us = t + batch_us;
            }
        }

        let mut replies: Vec<Reply> = receivers
            .into_iter()
            .map(|rx| rx.try_recv().expect("drained replay answers every job"))
            .collect();
        replies.sort_by_key(|r| r.id);
        TraceReport {
            replies,
            metrics: metrics.snapshot(),
            trace: recorder.drain(),
        }
    }

    /// The front-end half of the live service's `submit_inner`, inline:
    /// same metrics, same admission handling, same trace events.
    #[allow(clippy::too_many_arguments)]
    fn submit(
        &self,
        shards: &[ReplayShard],
        metrics: &ServiceMetrics,
        recorder: &FlightRecorder,
        clock: &SharedClock,
        epoch: std::time::Instant,
        id: u64,
        arrival: &TraceArrival,
    ) -> mpsc::Receiver<Reply> {
        let class = arrival.class;
        metrics.class(class).submitted.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let (reply_tx, rx) = mpsc::channel();
        let shard = &shards[shard::route(arrival.request.type_id(), shards.len())];
        let now = clock.now();
        let at_us = rqfa_telemetry::clock::micros_between(epoch, now);
        let record = |request_id: u64, class: QosClass, kind: EventKind, arg: u64| {
            recorder.record(at_us, request_id, class.index() as u8, kind, arg);
        };
        record(id, class, EventKind::Submitted, 0);
        let budget = if class.sheddable() {
            self.config.deadline_budget_us[class.index()].map(Duration::from_micros)
        } else {
            None
        };
        let deadline = arrival
            .deadline_us
            .map(Duration::from_micros)
            .or(budget)
            .map(|d| now + d);
        let job = Job {
            id,
            class,
            request: arrival.request.clone(),
            enqueued_at: now,
            deadline,
            reply_tx,
        };
        match shard.queue.push(job) {
            Admission::Admitted => {
                record(id, class, EventKind::Admitted, 0);
            }
            Admission::Displaced(victim) => {
                record(id, class, EventKind::Admitted, 0);
                record(victim.id, victim.class, EventKind::Displaced, id);
                record(victim.id, victim.class, EventKind::ShedQueueFull, 0);
                metrics
                    .class(victim.class)
                    .shed_queue_full
                    .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                let waited = rqfa_telemetry::clock::micros_between(victim.enqueued_at, now);
                victim.reply(Outcome::ShedQueueFull, waited, metrics);
            }
            Admission::Refused(job) => {
                record(id, class, EventKind::Refused, 0);
                record(id, class, EventKind::ShedQueueFull, 0);
                metrics
                    .class(class)
                    .shed_queue_full
                    .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                job.reply(Outcome::ShedQueueFull, 0, metrics);
            }
            Admission::Doomed { job, late_us } => {
                record(id, class, EventKind::Refused, 0);
                record(id, class, EventKind::ShedPredicted, late_us);
                metrics
                    .class(class)
                    .shed_predicted
                    .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                job.reply(Outcome::ShedPredicted { late_us }, 0, metrics);
            }
        }
        rx
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rqfa_core::paper;

    fn arrivals(n: u64, gap_us: u64) -> Vec<TraceArrival> {
        (0..n)
            .map(|i| TraceArrival {
                at_us: i * gap_us,
                class: QosClass::ALL[(i % 4) as usize],
                deadline_us: Some(5_000),
                request: paper::table1_request().unwrap(),
            })
            .collect()
    }

    #[test]
    fn replay_is_deterministic() {
        let cb = paper::table1_case_base();
        let config = ServiceConfig::default().with_shards(2).with_batch_size(4);
        let driver = TraceDriver::new(&cb, &config, CostModel::default());
        let trace = arrivals(64, 40);
        let a = driver.run(&trace);
        let b = driver.run(&trace);
        assert_eq!(a.replies, b.replies);
        assert_eq!(a.metrics, b.metrics);
        assert_eq!(a.trace.events.len(), b.trace.events.len());
    }

    #[test]
    fn every_arbiter_mode_replays_bit_identically() {
        // The adaptive modes close their feedback loop through the
        // estimator; fed from the cost model it is as deterministic as
        // the event loop itself, so replays stay bit-identical.
        let cb = paper::table1_case_base();
        for mode in crate::sched::ArbiterMode::ALL {
            let config = ServiceConfig::default()
                .with_shards(2)
                .with_batch_size(4)
                .with_arbiter_mode(mode);
            let driver = TraceDriver::new(&cb, &config, CostModel::default());
            let trace = arrivals(96, 20);
            let a = driver.run(&trace);
            let b = driver.run(&trace);
            assert_eq!(a.replies, b.replies, "{mode:?}");
            assert_eq!(a.metrics, b.metrics, "{mode:?}");
            assert_eq!(a.trace.events.len(), b.trace.events.len(), "{mode:?}");
        }
    }

    #[test]
    fn latencies_equal_queue_wait_under_the_cost_model() {
        // One shard, arrivals back to back: the second batch waits for
        // the first batch's service time.
        let cb = paper::table1_case_base();
        let config = ServiceConfig::default().with_shards(1).with_batch_size(1);
        let cost = CostModel {
            dispatch_overhead_us: 100,
            per_request_us: 0,
        };
        let driver = TraceDriver::new(&cb, &config, cost);
        let trace = vec![
            TraceArrival {
                at_us: 0,
                class: QosClass::Critical,
                deadline_us: None,
                request: paper::table1_request().unwrap(),
            },
            TraceArrival {
                at_us: 0,
                class: QosClass::Critical,
                deadline_us: None,
                request: paper::table1_request().unwrap(),
            },
        ];
        let report = driver.run(&trace);
        assert_eq!(report.replies[0].latency_us, 0, "dispatched at arrival");
        assert_eq!(
            report.replies[1].latency_us, 100,
            "waited out the first batch's service time"
        );
    }

    #[test]
    fn expired_deadlines_shed_at_dispatch() {
        let cb = paper::table1_case_base();
        let config = ServiceConfig::default().with_shards(1).with_batch_size(1);
        let cost = CostModel {
            dispatch_overhead_us: 10_000,
            per_request_us: 0,
        };
        let driver = TraceDriver::new(&cb, &config, cost);
        let mut trace = arrivals(1, 0);
        trace.push(TraceArrival {
            at_us: 1,
            class: QosClass::Low,
            deadline_us: Some(50), // expires while the first batch runs
            request: paper::table1_request().unwrap(),
        });
        let report = driver.run(&trace);
        assert_eq!(report.replies[1].outcome, Outcome::ShedDeadline);
        assert_eq!(report.metrics.class(QosClass::Low).shed_deadline, 1);
    }
}
