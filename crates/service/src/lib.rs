//! # rqfa-service — a sharded, batched, QoS-class-aware allocation service
//!
//! The paper's retrieval unit answers one allocation request at a time
//! on-chip. This crate turns that single-shot engine into a service layer
//! that multiplexes *many* requesters over shared retrieval resources with
//! per-class guarantees — the shape hardware QoS enforcement and NoC
//! virtualization literature converges on:
//!
//! * **Sharding** ([`shard`]): function types partition across N shards,
//!   each owned by a worker thread with a private
//!   [`FixedEngine`](rqfa_core::FixedEngine) — since
//!   retrieval only touches the requested type's subtree, shard answers
//!   are bit-identical to one big engine over the merged case base.
//! * **Batching + QoS scheduling** ([`queue`], [`sched`]): per-class FIFO
//!   lanes drained in weighted round-robin (8:4:2:1), per-class deadline
//!   budgets, and urgency-tiered admission limits that shed LOW first
//!   under overload — CRITICAL is never shed, ever.
//! * **Result caching** ([`cache`]): retrievals are memoized by request
//!   fingerprint and stamped with the case-base generation counter; any
//!   retain/revise/evict invalidates the shard's cache wholesale.
//! * **Metrics** ([`metrics`]): per-class p50/p99 latency, hit rate and
//!   shed counts from lock-free counters.
//!
//! ## Quick start
//!
//! ```
//! use rqfa_core::{paper, QosClass};
//! use rqfa_service::{AllocationService, Outcome, ServiceConfig};
//!
//! let service = AllocationService::new(
//!     &paper::table1_case_base(),
//!     &ServiceConfig::default().with_shards(2),
//! );
//! let ticket = service.submit(paper::table1_request()?, QosClass::High);
//! let reply = ticket.wait().expect("service alive");
//! match reply.outcome {
//!     Outcome::Allocated { best, .. } => assert_eq!(best.impl_id, paper::IMPL_DSP),
//!     other => panic!("unexpected outcome: {other:?}"),
//! }
//! service.shutdown();
//! # Ok::<(), rqfa_core::CoreError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod metrics;
pub mod queue;
pub mod sched;
pub mod shard;

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::Arc;
use std::time::{Duration, Instant};

use rqfa_core::{CaseBase, CoreError, ImplVariant, QosClass, Request, Scored, TypeId};
use rqfa_fixed::Q15;

pub use metrics::{ClassSnapshot, MetricsSnapshot, ServiceMetrics};
pub use sched::WeightedArbiter;

/// Configuration of an [`AllocationService`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Number of shards / worker threads (min 1).
    pub shards: usize,
    /// Maximum jobs dispatched per scheduling round of one worker.
    pub batch_size: usize,
    /// Per-shard queue bound across classes. Admission limits step with
    /// urgency: LOW is refused at `1×` this bound, MEDIUM at `2×`, HIGH
    /// at `4×`; CRITICAL is always admitted.
    pub queue_capacity: usize,
    /// Per-shard result-cache capacity in entries (0 disables caching).
    pub cache_capacity: usize,
    /// Per-class queueing-delay budget in µs, indexed by
    /// [`QosClass::index`]. A sheddable job that has waited longer than
    /// its budget when the worker picks it up is dropped. `None` disables
    /// the budget; CRITICAL ignores its budget entirely.
    pub deadline_budget_us: [Option<u64>; QosClass::COUNT],
    /// Weighted-round-robin credit per class, indexed by
    /// [`QosClass::index`].
    pub class_weights: [u32; QosClass::COUNT],
}

impl Default for ServiceConfig {
    fn default() -> ServiceConfig {
        ServiceConfig {
            shards: 1,
            batch_size: 32,
            queue_capacity: 4096,
            cache_capacity: 1 << 16,
            deadline_budget_us: [None; QosClass::COUNT],
            class_weights: QosClass::ALL.map(QosClass::weight),
        }
    }
}

impl ServiceConfig {
    /// Sets the shard count.
    pub fn with_shards(mut self, shards: usize) -> ServiceConfig {
        self.shards = shards.max(1);
        self
    }

    /// Sets the dispatch batch size.
    pub fn with_batch_size(mut self, batch_size: usize) -> ServiceConfig {
        self.batch_size = batch_size.max(1);
        self
    }

    /// Sets the per-shard queue bound.
    pub fn with_queue_capacity(mut self, capacity: usize) -> ServiceConfig {
        self.queue_capacity = capacity.max(1);
        self
    }

    /// Sets the per-shard cache capacity (0 disables caching).
    pub fn with_cache_capacity(mut self, capacity: usize) -> ServiceConfig {
        self.cache_capacity = capacity;
        self
    }

    /// Sets one class's queueing-delay budget.
    pub fn with_deadline_budget_us(mut self, class: QosClass, budget_us: u64) -> ServiceConfig {
        self.deadline_budget_us[class.index()] = Some(budget_us);
        self
    }

    /// The arbiter the configuration describes.
    pub(crate) fn arbiter(&self) -> WeightedArbiter {
        WeightedArbiter::with_weights(self.class_weights)
    }
}

/// How one request ended.
#[derive(Debug, Clone, PartialEq)]
pub enum Outcome {
    /// Retrieval succeeded.
    Allocated {
        /// The winning implementation variant.
        best: Scored<Q15>,
        /// Variants evaluated to produce this result. A cached reply
        /// reports the count recorded when the entry was computed — use
        /// `cached`, not this field, to tell hits from fresh retrievals.
        evaluated: usize,
        /// Whether the result came from the shard's result cache.
        cached: bool,
    },
    /// Shed at admission: the shard queue was full (LOW only).
    ShedQueueFull,
    /// Shed at dispatch: the job outlived its class deadline budget.
    ShedDeadline,
    /// Retrieval failed (e.g. unknown function type).
    Failed(CoreError),
}

impl Outcome {
    /// Whether the request was shed (either way).
    pub fn is_shed(&self) -> bool {
        matches!(self, Outcome::ShedQueueFull | Outcome::ShedDeadline)
    }
}

/// The service's answer to one submitted request.
#[derive(Debug, Clone, PartialEq)]
pub struct Reply {
    /// The id [`AllocationService::submit`] handed out.
    pub id: u64,
    /// The request's QoS class.
    pub class: QosClass,
    /// What happened.
    pub outcome: Outcome,
    /// End-to-end latency (submit → reply), µs.
    pub latency_us: u64,
}

/// One queued allocation request (internal).
#[derive(Debug)]
pub struct Job {
    pub(crate) id: u64,
    pub(crate) class: QosClass,
    pub(crate) request: Request,
    pub(crate) enqueued_at: Instant,
    pub(crate) reply_tx: mpsc::Sender<Reply>,
}

/// A handle to one in-flight request.
#[derive(Debug)]
pub struct Ticket {
    id: u64,
    class: QosClass,
    rx: mpsc::Receiver<Reply>,
}

impl Ticket {
    /// The request id (matches [`Reply::id`]).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The request's QoS class.
    pub fn class(&self) -> QosClass {
        self.class
    }

    /// Blocks until the reply arrives. `None` only if the service was torn
    /// down without answering (worker panic) — a drained shutdown replies
    /// to everything first.
    pub fn wait(self) -> Option<Reply> {
        self.rx.recv().ok()
    }

    /// Non-blocking poll.
    pub fn try_wait(&self) -> Option<Reply> {
        self.rx.try_recv().ok()
    }

    /// Blocks up to `timeout` for the reply.
    pub fn wait_timeout(&self, timeout: Duration) -> Option<Reply> {
        self.rx.recv_timeout(timeout).ok()
    }
}

/// The sharded, batched, QoS-class-aware allocation service.
///
/// See the [crate docs](crate) for the architecture. The service owns a
/// private copy of the case base (split into shard slices); run-time
/// learning flows through [`AllocationService::retain_variant`] and
/// friends, which mutate the owning shard and invalidate its cache.
pub struct AllocationService {
    shards: Vec<shard::Shard>,
    metrics: Arc<ServiceMetrics>,
    next_id: AtomicU64,
}

impl AllocationService {
    /// Builds the service over a snapshot of `case_base` and spawns one
    /// worker thread per shard.
    pub fn new(case_base: &CaseBase, config: &ServiceConfig) -> AllocationService {
        let metrics = Arc::new(ServiceMetrics::default());
        let slices = shard::partition(case_base, config.shards);
        let shards = slices
            .into_iter()
            .enumerate()
            .map(|(index, slice)| {
                shard::Shard::spawn(index, slice, config, Arc::clone(&metrics))
            })
            .collect();
        AllocationService {
            shards,
            metrics,
            next_id: AtomicU64::new(0),
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Submits a request in the given QoS class. Always returns a ticket;
    /// a request shed at admission gets its `ShedQueueFull` reply
    /// immediately.
    pub fn submit(&self, request: Request, class: QosClass) -> Ticket {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        self.metrics
            .class(class)
            .submitted
            .fetch_add(1, Ordering::Relaxed);
        let (reply_tx, rx) = mpsc::channel();
        let shard = &self.shards[shard::route(request.type_id(), self.shards.len())];
        let job = Job {
            id,
            class,
            request,
            enqueued_at: Instant::now(),
            reply_tx,
        };
        if let Err(job) = shard.queue.push(job) {
            self.metrics
                .class(class)
                .shed_queue_full
                .fetch_add(1, Ordering::Relaxed);
            job.reply(Outcome::ShedQueueFull, 0, &self.metrics);
        }
        Ticket { id, class, rx }
    }

    /// *Retain* step routed to the owning shard; bumps that shard's
    /// generation counter, invalidating its cached results.
    ///
    /// # Errors
    ///
    /// Same conditions as [`CaseBase::retain_variant`].
    pub fn retain_variant(&self, type_id: TypeId, variant: ImplVariant) -> Result<(), CoreError> {
        self.shard_for(type_id)
            .mutate(|cb| cb.retain_variant(type_id, variant), type_id)
    }

    /// *Revise* step routed to the owning shard.
    ///
    /// # Errors
    ///
    /// Same conditions as [`CaseBase::revise_variant`].
    pub fn revise_variant(&self, type_id: TypeId, revised: ImplVariant) -> Result<(), CoreError> {
        self.shard_for(type_id)
            .mutate(|cb| cb.revise_variant(type_id, revised), type_id)
    }

    /// Eviction routed to the owning shard.
    ///
    /// # Errors
    ///
    /// Same conditions as [`CaseBase::evict_variant`].
    pub fn evict_variant(
        &self,
        type_id: TypeId,
        impl_id: rqfa_core::ImplId,
    ) -> Result<ImplVariant, CoreError> {
        self.shard_for(type_id)
            .mutate(|cb| cb.evict_variant(type_id, impl_id), type_id)
    }

    /// Jobs currently queued across all shards.
    pub fn pending(&self) -> usize {
        self.shards.iter().map(|s| s.queue.len()).sum()
    }

    /// A point-in-time metrics snapshot.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.metrics.snapshot()
    }

    /// Drains every queue, joins the workers and returns the final
    /// metrics. Every submitted request is answered before this returns.
    pub fn shutdown(mut self) -> MetricsSnapshot {
        for shard in &mut self.shards {
            shard.join();
        }
        self.metrics.snapshot()
    }

    fn shard_for(&self, type_id: TypeId) -> &shard::Shard {
        &self.shards[shard::route(type_id, self.shards.len())]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rqfa_core::paper;

    #[test]
    fn answers_the_paper_example() {
        let service = AllocationService::new(
            &paper::table1_case_base(),
            &ServiceConfig::default().with_shards(2),
        );
        let ticket = service.submit(paper::table1_request().unwrap(), QosClass::Medium);
        let reply = ticket.wait().unwrap();
        match reply.outcome {
            Outcome::Allocated { best, cached, .. } => {
                assert_eq!(best.impl_id, paper::IMPL_DSP);
                assert!(!cached);
            }
            other => panic!("unexpected: {other:?}"),
        }
        let snap = service.shutdown();
        assert_eq!(snap.class(QosClass::Medium).completed, 1);
    }

    #[test]
    fn repeat_requests_hit_the_cache() {
        let service =
            AllocationService::new(&paper::table1_case_base(), &ServiceConfig::default());
        let request = paper::table1_request().unwrap();
        let first = service.submit(request.clone(), QosClass::High).wait().unwrap();
        let second = service.submit(request, QosClass::High).wait().unwrap();
        let (a, b) = match (&first.outcome, &second.outcome) {
            (
                Outcome::Allocated { best: a, cached: ca, .. },
                Outcome::Allocated { best: b, cached: cb, .. },
            ) => {
                assert!(!ca);
                assert!(cb, "second identical request must be a cache hit");
                (*a, *b)
            }
            other => panic!("unexpected: {other:?}"),
        };
        assert_eq!(a, b);
        assert_eq!(service.shutdown().class(QosClass::High).cache_hits, 1);
    }

    #[test]
    fn unknown_type_fails_cleanly() {
        let service =
            AllocationService::new(&paper::table1_case_base(), &ServiceConfig::default().with_shards(3));
        let request = Request::builder(TypeId::new(57).unwrap())
            .constraint(rqfa_core::AttrId::new(1).unwrap(), 1)
            .build()
            .unwrap();
        let reply = service.submit(request, QosClass::Low).wait().unwrap();
        assert!(matches!(
            reply.outcome,
            Outcome::Failed(CoreError::UnknownType { .. })
        ));
        service.shutdown();
    }

    #[test]
    fn shutdown_answers_everything_first() {
        let service = AllocationService::new(
            &paper::table1_case_base(),
            &ServiceConfig::default().with_batch_size(2),
        );
        let tickets: Vec<Ticket> = (0..50)
            .map(|_| service.submit(paper::table1_request().unwrap(), QosClass::Low))
            .collect();
        service.shutdown();
        for ticket in tickets {
            assert!(ticket.wait().is_some());
        }
    }
}
