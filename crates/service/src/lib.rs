//! # rqfa-service — a sharded, batched, QoS-class-aware allocation service
//!
//! The paper's retrieval unit answers one allocation request at a time
//! on-chip. This crate turns that single-shot engine into a service layer
//! that multiplexes *many* requesters over shared retrieval resources with
//! per-class guarantees — the shape hardware QoS enforcement and NoC
//! virtualization literature converges on:
//!
//! * **Sharding** ([`shard`]): function types partition across N shards,
//!   each owned by a worker thread with a private
//!   [`FixedEngine`](rqfa_core::FixedEngine) — since
//!   retrieval only touches the requested type's subtree, shard answers
//!   are bit-identical to one big engine over the merged case base.
//! * **Batching + deadline-aware QoS scheduling** ([`queue`], [`sched`]):
//!   per-class lanes ordered earliest-deadline-first, drained in weighted
//!   round-robin (8:4:2:1) with bounded slack promotion for lane heads
//!   about to miss their budget, per-class deadline budgets and
//!   per-request deadlines ([`AllocationService::submit_with_deadline`]),
//!   and urgency-tiered admission limits that shed by **largest slack
//!   first** under overload — CRITICAL is never shed, ever. The full
//!   model lives in `docs/scheduling.md`.
//! * **Result caching** ([`cache`]): retrievals are memoized by request
//!   fingerprint and stamped with the case-base generation counter; any
//!   retain/revise/evict invalidates the shard's cache wholesale. The
//!   eviction policy is a QoS knob ([`ServiceConfig::cache_policy`]:
//!   FIFO, LRU, or 2Q, plus an optional one-hit-wonder admission
//!   filter), backed by the workspace-wide `rqfa-cache` store — the
//!   normative model lives in `docs/caching.md`.
//! * **Metrics** ([`metrics`]): per-class p50/p99 latency, hit rate and
//!   shed counts from lock-free counters, with batch-granular snapshot
//!   consistency and a [`MetricSource`]
//!   bridge into the workspace metrics registry.
//! * **Observability** (`rqfa-telemetry`): the service clock is
//!   injectable ([`ServiceConfig::with_clock`]) so schedulers, deadline
//!   checks and latency stamps run against a
//!   [`ManualClock`] in tests and replays;
//!   [`ServiceConfig::with_trace_capacity`] arms a per-shard
//!   [flight recorder](rqfa_telemetry::FlightRecorder) whose events
//!   reconstruct per-request timelines
//!   ([`AllocationService::drain_trace`]). `docs/observability.md` has
//!   the full model.
//! * **Deterministic replay** ([`replay`]): a single-threaded
//!   discrete-event driver that pushes a timestamped trace through the
//!   real queue/scheduler/batch pipeline under a manual clock — same
//!   code, reproducible latencies.
//!
//! ## Quick start
//!
//! ```
//! use rqfa_core::{paper, QosClass};
//! use rqfa_service::{AllocationService, Outcome, ServiceConfig};
//!
//! let service = AllocationService::new(
//!     &paper::table1_case_base(),
//!     &ServiceConfig::default().with_shards(2),
//! )?;
//! let ticket = service.submit(paper::table1_request()?, QosClass::High);
//! let reply = ticket.wait().expect("service alive");
//! match reply.outcome {
//!     Outcome::Allocated { best, .. } => assert_eq!(best.impl_id, paper::IMPL_DSP),
//!     other => panic!("unexpected outcome: {other:?}"),
//! }
//! service.shutdown();
//! # Ok::<(), rqfa_service::ServiceError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
mod error;
pub mod metrics;
pub mod queue;
pub mod remote;
pub mod replay;
pub mod sched;
pub mod shard;

use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::Arc;
use std::time::{Duration, Instant};

use rqfa_core::{CaseBase, CaseMutation, CoreError, ImplVariant, QosClass, Request, Scored, TypeId};

// The kernel-path knob is part of the service configuration surface.
pub use rqfa_core::KernelPath;
use rqfa_fixed::Q15;
use rqfa_persist::{
    DurableCaseBase, FileStore, PersistError, PersistPolicy, RecoveryReport, Store, StoreSet,
};
use rqfa_telemetry::{clock::micros_between, monotonic, EventKind, MetricSource, Registry};

pub use error::ServiceError;
pub use metrics::{ClassSnapshot, MetricsSnapshot, ServiceMetrics};
pub use rqfa_cache::{CachePolicy, CacheStats};
pub use rqfa_telemetry::{
    Clock, ManualClock, MonotonicClock, RequestTimeline, SharedClock, StageBreakdown, TraceDump,
};
pub use sched::{ArbiterMode, Pick, SchedMode, ServiceTimeEstimator, WeightedArbiter};

/// First line of the durable-state manifest file.
const MANIFEST_HEADER: &str = "rqfa-durable-service v1";
/// Manifest file name inside a durable-state directory.
const MANIFEST_FILE: &str = "MANIFEST";

/// Configuration of an [`AllocationService`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Number of shards / worker threads (min 1).
    pub shards: usize,
    /// Maximum jobs dispatched per scheduling round of one worker.
    pub batch_size: usize,
    /// Per-shard queue bound across classes. Admission limits step with
    /// urgency: LOW is refused at `1×` this bound, MEDIUM at `2×`, HIGH
    /// at `4×`; CRITICAL is always admitted.
    pub queue_capacity: usize,
    /// Per-shard result-cache capacity in entries (0 disables caching).
    pub cache_capacity: usize,
    /// Eviction policy of the per-shard result cache. FIFO (the
    /// historical default) has zero per-hit bookkeeping and serves the
    /// bursty repeat traffic of §3 well; LRU and 2Q keep a zipf-skewed
    /// hot set resident (see `docs/caching.md` and the
    /// `service_throughput` policy A/B).
    pub cache_policy: CachePolicy,
    /// Whether the per-shard cache runs a one-hit-wonder admission
    /// filter: a fingerprint must be sighted twice before its result is
    /// cached at all (the first sighting is only remembered, even while
    /// the cache has free room). Off by default (the historical
    /// behaviour).
    pub cache_admission: bool,
    /// Per-class queueing-delay budget in µs, indexed by
    /// [`QosClass::index`]. The budget defines a sheddable job's
    /// *effective deadline* (submit time + budget) unless the request
    /// carried an explicit deadline
    /// ([`AllocationService::submit_with_deadline`]); a job whose
    /// effective deadline has expired when the worker picks it up is
    /// dropped. `None` disables the budget; CRITICAL ignores its budget
    /// entirely (never shed, but a served-late CRITICAL request counts as
    /// a [`missed deadline`](ClassSnapshot::missed_deadline)).
    pub deadline_budget_us: [Option<u64>; QosClass::COUNT],
    /// How jobs are ordered within a class lane: earliest-deadline-first
    /// (default) or strict arrival order (the A/B baseline).
    pub scheduling: SchedMode,
    /// Which arbitration policy decides the next lane each batch slot is
    /// drawn from: strict priority, credit WRR with bounded slack
    /// promotion (default), dynamic priority under measured urgency
    /// margins, or sliding-window fair-share bandwidth regulation. See
    /// [`ArbiterMode`] and `docs/scheduling.md`.
    pub arbiter_mode: ArbiterMode,
    /// A lane head within this many µs of its effective deadline is
    /// *urgent*: the scheduler may serve it ahead of the weighted order
    /// (bounded by [`ServiceConfig::promotions_per_round`]). `0` promotes
    /// only already-overdue heads, which is usually too late — size it
    /// around one batch's service time. Ignored in FIFO mode.
    pub promotion_margin_us: u64,
    /// How many times per scheduling round an urgent, out-of-credit lane
    /// may be served anyway. Bounds priority inversion: CRITICAL's share
    /// never drops below `weight / (Σ weights + promotions_per_round)`.
    pub promotions_per_round: u32,
    /// Weighted-round-robin credit per class, indexed by
    /// [`QosClass::index`].
    pub class_weights: [u32; QosClass::COUNT],
    /// Durable shards checkpoint (snapshot + WAL compaction) after this
    /// many acknowledged mutations; `0` checkpoints only on
    /// [`AllocationService::checkpoint`]. Ignored by ephemeral services.
    ///
    /// A checkpoint runs under the owning shard's store lock, so the
    /// shard serves no retrievals for its duration (snapshot write +
    /// fsync + log rewrite). Latency-sensitive deployments with frequent
    /// mutations should set `0` and run explicit
    /// [`AllocationService::checkpoint`]s from a maintenance context at
    /// quiet moments instead.
    pub snapshot_every: u64,
    /// The time source of the whole request path: admission stamps, EDF
    /// ordering, slack promotion, dispatch-time deadline checks and
    /// reply latencies all read this clock — never `Instant::now()`
    /// directly. Defaults to the monotonic wall clock; inject a
    /// [`ManualClock`] for deterministic tests and trace replays.
    pub clock: SharedClock,
    /// Per-shard flight-recorder capacity in events. `0` (the default)
    /// disables tracing entirely — no recorder is allocated and the
    /// request path records nothing. When armed, each shard keeps the
    /// newest `trace_capacity` events in a fixed ring (zero allocation
    /// per event); drain them with [`AllocationService::drain_trace`].
    pub trace_capacity: usize,
    /// Whether admission refuses deadlined sheddable jobs the measured
    /// service rate predicts cannot finish in time even if queued
    /// (answered with [`Outcome::ShedPredicted`] immediately). Off by
    /// default; has no effect until the shard's estimator is warm. The
    /// degradation lever that keeps doomed LOW work from clogging
    /// queues — and burning remote retry budgets — while a node is
    /// down (see `docs/distribution.md`).
    pub predictive_shed: bool,
    /// Kernel path of the per-shard plane engines:
    /// [`KernelPath::Auto`] (default) runtime-detects the wide SIMD
    /// kernel, [`KernelPath::ForceScalar`] pins the scalar loops. Either
    /// way results are bit-identical; this is a performance/debugging
    /// knob (the CI fallback lane forces scalar).
    pub kernel_path: KernelPath,
}

impl Default for ServiceConfig {
    fn default() -> ServiceConfig {
        ServiceConfig {
            shards: 1,
            batch_size: 32,
            queue_capacity: 4096,
            cache_capacity: 1 << 16,
            cache_policy: CachePolicy::Fifo,
            cache_admission: false,
            deadline_budget_us: [None; QosClass::COUNT],
            scheduling: SchedMode::Edf,
            arbiter_mode: ArbiterMode::WeightedRoundRobin,
            promotion_margin_us: 0,
            promotions_per_round: WeightedArbiter::DEFAULT_PROMOTIONS,
            class_weights: QosClass::ALL.map(QosClass::weight),
            snapshot_every: PersistPolicy::default().snapshot_every,
            clock: monotonic(),
            trace_capacity: 0,
            predictive_shed: false,
            kernel_path: KernelPath::default(),
        }
    }
}

impl ServiceConfig {
    /// Sets the shard count. The value is stored as given — a zero shard
    /// count is rejected at service construction with
    /// [`ServiceError::Config`], never silently clamped.
    pub fn with_shards(mut self, shards: usize) -> ServiceConfig {
        self.shards = shards;
        self
    }

    /// Sets the dispatch batch size.
    pub fn with_batch_size(mut self, batch_size: usize) -> ServiceConfig {
        self.batch_size = batch_size.max(1);
        self
    }

    /// Sets the per-shard queue bound.
    pub fn with_queue_capacity(mut self, capacity: usize) -> ServiceConfig {
        self.queue_capacity = capacity.max(1);
        self
    }

    /// Sets the per-shard cache capacity (0 disables caching).
    pub fn with_cache_capacity(mut self, capacity: usize) -> ServiceConfig {
        self.cache_capacity = capacity;
        self
    }

    /// Sets the per-shard cache eviction policy.
    pub fn with_cache_policy(mut self, policy: CachePolicy) -> ServiceConfig {
        self.cache_policy = policy;
        self
    }

    /// Enables/disables the one-hit-wonder admission filter.
    pub fn with_cache_admission(mut self, admission: bool) -> ServiceConfig {
        self.cache_admission = admission;
        self
    }

    /// Sets one class's queueing-delay budget.
    pub fn with_deadline_budget_us(mut self, class: QosClass, budget_us: u64) -> ServiceConfig {
        self.deadline_budget_us[class.index()] = Some(budget_us);
        self
    }

    /// Sets the within-lane scheduling mode (EDF vs FIFO baseline).
    pub fn with_scheduling(mut self, mode: SchedMode) -> ServiceConfig {
        self.scheduling = mode;
        self
    }

    /// Selects the cross-lane arbitration policy (see [`ArbiterMode`]).
    pub fn with_arbiter_mode(mut self, mode: ArbiterMode) -> ServiceConfig {
        self.arbiter_mode = mode;
        self
    }

    /// Sets the slack margin (µs) under which a lane head is promoted.
    pub fn with_promotion_margin_us(mut self, margin_us: u64) -> ServiceConfig {
        self.promotion_margin_us = margin_us;
        self
    }

    /// Sets the per-round bound on out-of-credit promotions.
    pub fn with_promotions_per_round(mut self, per_round: u32) -> ServiceConfig {
        self.promotions_per_round = per_round;
        self
    }

    /// Sets the durable checkpoint cadence (0 = manual only).
    pub fn with_snapshot_every(mut self, mutations: u64) -> ServiceConfig {
        self.snapshot_every = mutations;
        self
    }

    /// Injects the request-path time source (see
    /// [`ServiceConfig::clock`]).
    pub fn with_clock(mut self, clock: SharedClock) -> ServiceConfig {
        self.clock = clock;
        self
    }

    /// Arms per-shard flight recording with the given ring capacity in
    /// events (0 disables tracing).
    pub fn with_trace_capacity(mut self, capacity: usize) -> ServiceConfig {
        self.trace_capacity = capacity;
        self
    }

    /// Enables predictive shedding at admission (see
    /// [`ServiceConfig::predictive_shed`]).
    pub fn with_predictive_shed(mut self, on: bool) -> ServiceConfig {
        self.predictive_shed = on;
        self
    }

    /// Pins the plane-kernel path of every shard worker (see
    /// [`ServiceConfig::kernel_path`]).
    pub fn with_kernel_path(mut self, path: KernelPath) -> ServiceConfig {
        self.kernel_path = path;
        self
    }

    /// The arbiter the configuration describes.
    pub(crate) fn arbiter(&self) -> WeightedArbiter {
        WeightedArbiter::with_weights(self.class_weights)
            .with_promotions(self.promotions_per_round)
            .with_mode(self.arbiter_mode)
    }
}

/// Validates a configuration before any shard state is built or touched.
fn validate_config(config: &ServiceConfig) -> Result<(), ServiceError> {
    if config.shards == 0 {
        return Err(ServiceError::Config(
            "shards must be at least 1 (routing is type_id % shards)".into(),
        ));
    }
    Ok(())
}

/// How one request ended.
#[derive(Debug, Clone, PartialEq)]
pub enum Outcome {
    /// Retrieval succeeded.
    Allocated {
        /// The winning implementation variant.
        best: Scored<Q15>,
        /// Variants evaluated to produce this result. A cached reply
        /// reports the count recorded when the entry was computed — use
        /// `cached`, not this field, to tell hits from fresh retrievals.
        evaluated: usize,
        /// Whether the result came from the shard's result cache.
        cached: bool,
    },
    /// Shed at admission: the shard queue was full (LOW only).
    ShedQueueFull,
    /// Shed at dispatch: the job outlived its class deadline budget.
    ShedDeadline,
    /// Retrieval failed (e.g. unknown function type).
    Failed(CoreError),
    /// The owning shard lives on a remote node that stayed unreachable
    /// through the transport's bounded retry budget (see
    /// [`remote`]). Produced client-side — a dead node degrades the
    /// requests routed to it into this explicit outcome, never a hang.
    Unavailable {
        /// Connection/send attempts made before giving up.
        attempts: u32,
    },
    /// Shed at admission by *prediction*: the measured service rate
    /// ([`ServiceTimeEstimator`]) said the deadline could not be met
    /// even if the job were queued, so it was refused fast instead of
    /// occupying a slot only to shed at dispatch (enable with
    /// [`ServiceConfig::with_predictive_shed`]).
    ShedPredicted {
        /// Predicted completion lateness had the job been queued, µs.
        late_us: u64,
    },
}

impl Outcome {
    /// Whether the request was shed (any way).
    pub fn is_shed(&self) -> bool {
        matches!(
            self,
            Outcome::ShedQueueFull | Outcome::ShedDeadline | Outcome::ShedPredicted { .. }
        )
    }
}

/// The service's answer to one submitted request.
#[derive(Debug, Clone, PartialEq)]
pub struct Reply {
    /// The id [`AllocationService::submit`] handed out.
    pub id: u64,
    /// The request's QoS class.
    pub class: QosClass,
    /// What happened.
    pub outcome: Outcome,
    /// End-to-end latency (submit → reply), µs.
    pub latency_us: u64,
}

/// One queued allocation request (internal).
#[derive(Debug)]
pub struct Job {
    pub(crate) id: u64,
    pub(crate) class: QosClass,
    pub(crate) request: Request,
    pub(crate) enqueued_at: Instant,
    /// Effective deadline: the explicit per-request deadline, else
    /// submit time + class budget, else none (EDF far horizon).
    pub(crate) deadline: Option<Instant>,
    pub(crate) reply_tx: mpsc::Sender<Reply>,
}

impl Job {
    /// The id [`AllocationService::submit`] handed out.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The job's QoS class.
    pub fn class(&self) -> QosClass {
        self.class
    }

    /// The job's effective deadline, if any.
    pub fn deadline(&self) -> Option<Instant> {
        self.deadline
    }
}

/// A handle to one in-flight request.
#[derive(Debug)]
pub struct Ticket {
    id: u64,
    class: QosClass,
    rx: mpsc::Receiver<Reply>,
}

impl Ticket {
    /// The request id (matches [`Reply::id`]).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The request's QoS class.
    pub fn class(&self) -> QosClass {
        self.class
    }

    /// Blocks until the reply arrives. `None` only if the service was torn
    /// down without answering (worker panic) — a drained shutdown replies
    /// to everything first.
    pub fn wait(self) -> Option<Reply> {
        self.rx.recv().ok()
    }

    /// Non-blocking poll.
    pub fn try_wait(&self) -> Option<Reply> {
        self.rx.try_recv().ok()
    }

    /// Blocks up to `timeout` for the reply.
    pub fn wait_timeout(&self, timeout: Duration) -> Option<Reply> {
        self.rx.recv_timeout(timeout).ok()
    }
}

/// The sharded, batched, QoS-class-aware allocation service.
///
/// See the [crate docs](crate) for the architecture. The service owns a
/// private copy of the case base (split into shard slices); run-time
/// learning flows through [`AllocationService::retain_variant`] and
/// friends, which mutate the owning shard and invalidate its cache.
pub struct AllocationService {
    shards: Vec<shard::Shard>,
    metrics: Arc<ServiceMetrics>,
    next_id: AtomicU64,
    deadline_budget_us: [Option<u64>; QosClass::COUNT],
    clock: SharedClock,
    /// Trace timestamps are µs offsets from this instant (the moment the
    /// service was built), so every shard's events share one timebase.
    epoch: Instant,
}

impl AllocationService {
    /// Builds an ephemeral (in-memory) service over a snapshot of
    /// `case_base` and spawns one worker thread per shard. Learned
    /// mutations do not survive the process — see
    /// [`AllocationService::durable_create`].
    ///
    /// # Errors
    ///
    /// [`ServiceError::Config`] for an invalid configuration (zero
    /// shards) — routing is `type_id % shards`, so a shard count of 0
    /// has no meaning and must not silently degrade to 1.
    pub fn new(
        case_base: &CaseBase,
        config: &ServiceConfig,
    ) -> Result<AllocationService, ServiceError> {
        validate_config(config)?;
        let slices = shard::partition(case_base, config.shards);
        let stores = slices
            .into_iter()
            .map(|slice| match slice {
                Some(cb) => shard::ShardStore::Ephemeral(cb),
                None => shard::ShardStore::Empty,
            })
            .collect();
        Ok(AllocationService::from_stores(stores, config))
    }

    /// Builds a *durable* service: each non-empty shard gets its own
    /// write-ahead log and snapshot pair under `dir/shard-<i>/`, seeded
    /// with a genesis snapshot of its slice of `case_base`. Any previous
    /// durable state in `dir` is discarded.
    ///
    /// ```
    /// use rqfa_core::paper;
    /// use rqfa_service::{AllocationService, ServiceConfig};
    ///
    /// let dir = std::env::temp_dir().join("rqfa-durable-doctest");
    /// let config = ServiceConfig::default().with_shards(2);
    ///
    /// // Create durable state, learn something, "crash" (drop without a
    /// // checkpoint)…
    /// let service =
    ///     AllocationService::durable_create(&paper::table1_case_base(), &dir, &config)?;
    /// service.evict_variant(paper::FIR_EQUALIZER, paper::IMPL_GP)?;
    /// drop(service);
    ///
    /// // …and recover: the shard layout comes from the on-disk MANIFEST,
    /// // the mutation replays from the WAL, and answers are bit-identical
    /// // to a service that never crashed.
    /// let (recovered, reports) = AllocationService::durable_recover(&dir, &config)?;
    /// let replayed: usize = reports.iter().flatten().map(|r| r.replayed).sum();
    /// assert_eq!(replayed, 1);
    /// recovered.shutdown();
    /// # std::fs::remove_dir_all(&dir).ok();
    /// # Ok::<(), rqfa_service::ServiceError>(())
    /// ```
    ///
    /// # Errors
    ///
    /// [`ServiceError::Persist`] on store initialization failures,
    /// [`ServiceError::Manifest`] if the manifest cannot be written.
    pub fn durable_create(
        case_base: &CaseBase,
        dir: &Path,
        config: &ServiceConfig,
    ) -> Result<AllocationService, ServiceError> {
        validate_config(config)?;
        // Discard previous durable state up front: a stale `shard-<i>`
        // directory from an older layout would otherwise resurrect on
        // the next recover (e.g. a shard whose slice is empty now writes
        // nothing, so the old directory would win).
        if dir.is_dir() {
            let _ = std::fs::remove_file(dir.join(MANIFEST_FILE));
            let entries = std::fs::read_dir(dir)
                .map_err(|e| ServiceError::Manifest(format!("scan {}: {e}", dir.display())))?;
            for entry in entries.flatten() {
                if entry.file_name().to_string_lossy().starts_with("shard-") {
                    std::fs::remove_dir_all(entry.path()).map_err(|e| {
                        ServiceError::Manifest(format!("purge stale shard state: {e}"))
                    })?;
                }
            }
        }
        // The shard drives the checkpoint cadence itself (two-phase, off
        // the store lock); the inner durable case base must never
        // auto-checkpoint under the lock.
        let policy = PersistPolicy::manual();
        let slices = shard::partition(case_base, config.shards);
        let mut stores = Vec::with_capacity(slices.len());
        for (index, slice) in slices.into_iter().enumerate() {
            match slice {
                Some(cb) => {
                    let set = StoreSet::in_dir(&dir.join(format!("shard-{index}")))?;
                    let durable = DurableCaseBase::create(&cb, set, policy)?;
                    stores.push(shard::ShardStore::Durable(Box::new(durable)));
                }
                None => stores.push(shard::ShardStore::Empty),
            }
        }
        // The manifest records *which* shards hold durable state, so a
        // lost shard directory is a loud recovery error, never a silent
        // empty shard. Written with the same durability discipline as
        // every other persistent file (atomic replace + fsync via
        // FileStore) — it is the one file recovery cannot do without.
        let durable_shards: Vec<String> = stores
            .iter()
            .enumerate()
            .filter(|(_, s)| matches!(s, shard::ShardStore::Durable(_)))
            .map(|(i, _)| i.to_string())
            .collect();
        let manifest = format!(
            "{MANIFEST_HEADER}\nshards={}\ndurable={}\n",
            stores.len(),
            durable_shards.join(",")
        );
        std::fs::create_dir_all(dir).map_err(|e| ServiceError::Manifest(e.to_string()))?;
        FileStore::new(dir.join(MANIFEST_FILE))
            .replace(manifest.as_bytes())
            .map_err(|e| ServiceError::Manifest(format!("write {MANIFEST_FILE}: {e}")))?;
        Ok(AllocationService::from_stores(stores, config))
    }

    /// Recovers a durable service from `dir`: reads the manifest, then
    /// per shard picks the newest valid snapshot and replays that shard's
    /// WAL on top. A recovered service answers every request
    /// bit-identically to one that never crashed (the workspace recovery
    /// harness asserts this).
    ///
    /// The shard count comes from the manifest — `config.shards` is
    /// ignored, because the type→shard routing must match the layout the
    /// logs were written under.
    ///
    /// Returns the service plus one [`RecoveryReport`] per shard
    /// (`None` for shards that never held state).
    ///
    /// # Errors
    ///
    /// [`ServiceError::Manifest`] for a missing/bad manifest,
    /// [`ServiceError::Persist`] for unrecoverable shard state.
    pub fn durable_recover(
        dir: &Path,
        config: &ServiceConfig,
    ) -> Result<(AllocationService, Vec<Option<RecoveryReport>>), ServiceError> {
        let manifest = std::fs::read_to_string(dir.join(MANIFEST_FILE))
            .map_err(|e| ServiceError::Manifest(format!("read {MANIFEST_FILE}: {e}")))?;
        let mut lines = manifest.lines();
        if lines.next() != Some(MANIFEST_HEADER) {
            return Err(ServiceError::Manifest("unknown header".into()));
        }
        let shards: usize = lines
            .next()
            .and_then(|l| l.strip_prefix("shards="))
            .and_then(|n| n.parse().ok())
            .ok_or_else(|| ServiceError::Manifest("missing shards= line".into()))?;
        if shards == 0 {
            return Err(ServiceError::Manifest("zero shards".into()));
        }
        let durable_set: Vec<usize> = match lines.next().and_then(|l| l.strip_prefix("durable=")) {
            Some("") => Vec::new(),
            Some(list) => list
                .split(',')
                .map(|n| {
                    let index: usize = n
                        .parse()
                        .map_err(|_| ServiceError::Manifest(format!("bad durable index {n:?}")))?;
                    if index >= shards {
                        return Err(ServiceError::Manifest(format!(
                            "durable index {index} out of range for {shards} shard(s)"
                        )));
                    }
                    Ok(index)
                })
                .collect::<Result<_, _>>()?,
            None => return Err(ServiceError::Manifest("missing durable= line".into())),
        };
        // As in durable_create: checkpoint cadence is shard-driven.
        let policy = PersistPolicy::manual();
        let mut stores = Vec::with_capacity(shards);
        let mut reports = Vec::with_capacity(shards);
        for index in 0..shards {
            if !durable_set.contains(&index) {
                stores.push(shard::ShardStore::Empty);
                reports.push(None);
                continue;
            }
            let shard_dir = dir.join(format!("shard-{index}"));
            if !shard_dir.is_dir() {
                // Losing a shard's state must be a loud error, not a
                // silent UnknownType degradation for its types.
                return Err(ServiceError::Manifest(format!(
                    "manifest lists shard-{index} as durable but its directory is missing"
                )));
            }
            let set = StoreSet::in_dir(&shard_dir)?;
            let (durable, report) = DurableCaseBase::recover(set, policy)?;
            stores.push(shard::ShardStore::Durable(Box::new(durable)));
            reports.push(Some(report));
        }
        Ok((AllocationService::from_stores(stores, config), reports))
    }

    /// Spawns the workers over prepared shard stores.
    fn from_stores(stores: Vec<shard::ShardStore>, config: &ServiceConfig) -> AllocationService {
        let metrics = Arc::new(ServiceMetrics::default());
        let epoch = config.clock.now();
        let shards = stores
            .into_iter()
            .enumerate()
            .map(|(index, store)| {
                shard::Shard::spawn(index, store, config, Arc::clone(&metrics), epoch)
            })
            .collect();
        AllocationService {
            shards,
            metrics,
            next_id: AtomicU64::new(0),
            deadline_budget_us: config.deadline_budget_us,
            clock: Arc::clone(&config.clock),
            epoch,
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Exports shard `shard`'s snapshot container (the replication
    /// transfer unit — the same dual-slot image format checkpoints
    /// write) together with the generation it captures.
    ///
    /// # Errors
    ///
    /// [`ServiceError::Remote`] unless the shard is durable (replication
    /// needs a WAL to stream the tail from).
    pub fn export_shard_snapshot(
        &self,
        shard: usize,
    ) -> Result<(Vec<u8>, rqfa_core::Generation), ServiceError> {
        self.shards[shard].export_snapshot()
    }

    /// Shard `shard`'s write-ahead-log records newer than `through` —
    /// the tail a leader streams to a follower holding a snapshot at
    /// generation `through`.
    ///
    /// # Errors
    ///
    /// [`ServiceError::Remote`] unless the shard is durable;
    /// [`ServiceError::Persist`] if the log cannot be read.
    pub fn shard_wal_tail(
        &self,
        shard: usize,
        through: rqfa_core::Generation,
    ) -> Result<Vec<rqfa_persist::StampedMutation>, ServiceError> {
        self.shards[shard].wal_tail(through)
    }

    /// The generation of shard `shard`'s served case base.
    pub fn shard_generation(&self, shard: usize) -> rqfa_core::Generation {
        self.shards[shard].generation()
    }

    /// Submits a request in the given QoS class. Always returns a ticket;
    /// a request shed at admission gets its `ShedQueueFull` reply
    /// immediately. The job's effective deadline is the class budget
    /// (sheddable classes only); use
    /// [`AllocationService::submit_with_deadline`] for per-request
    /// deadlines.
    pub fn submit(&self, request: Request, class: QosClass) -> Ticket {
        self.submit_inner(request, class, None)
    }

    /// Submits a request that must complete within `deadline` from now.
    /// The explicit deadline overrides the class budget for EDF ordering,
    /// slack promotion, displacement *and* dispatch shedding — except
    /// that CRITICAL is still never shed: a late CRITICAL request is
    /// served anyway and counted as a
    /// [`missed deadline`](ClassSnapshot::missed_deadline).
    pub fn submit_with_deadline(
        &self,
        request: Request,
        class: QosClass,
        deadline: Duration,
    ) -> Ticket {
        self.submit_inner(request, class, Some(deadline))
    }

    fn submit_inner(
        &self,
        request: Request,
        class: QosClass,
        deadline: Option<Duration>,
    ) -> Ticket {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        self.metrics
            .class(class)
            .submitted
            .fetch_add(1, Ordering::Relaxed);
        let (reply_tx, rx) = mpsc::channel();
        let shard = &self.shards[shard::route(request.type_id(), self.shards.len())];
        let now = self.clock.now();
        let at_us = micros_between(self.epoch, now);
        let record = |request_id: u64, class: QosClass, kind: EventKind, arg: u64| {
            if let Some(recorder) = &shard.recorder {
                recorder.record(at_us, request_id, class.index() as u8, kind, arg);
            }
        };
        record(id, class, EventKind::Submitted, 0);
        let budget = if class.sheddable() {
            self.deadline_budget_us[class.index()].map(Duration::from_micros)
        } else {
            None
        };
        let job = Job {
            id,
            class,
            request,
            enqueued_at: now,
            deadline: deadline.or(budget).map(|d| now + d),
            reply_tx,
        };
        match shard.queue.push(job) {
            queue::Admission::Admitted => {
                record(id, class, EventKind::Admitted, 0);
            }
            queue::Admission::Displaced(victim) => {
                // The newcomer took the largest-slack resident's slot.
                record(id, class, EventKind::Admitted, 0);
                record(victim.id, victim.class, EventKind::Displaced, id);
                record(victim.id, victim.class, EventKind::ShedQueueFull, 0);
                self.metrics
                    .class(victim.class)
                    .shed_queue_full
                    .fetch_add(1, Ordering::Relaxed);
                let waited = micros_between(victim.enqueued_at, now);
                victim.reply(Outcome::ShedQueueFull, waited, &self.metrics);
            }
            queue::Admission::Refused(job) => {
                record(id, class, EventKind::Refused, 0);
                record(id, class, EventKind::ShedQueueFull, 0);
                self.metrics
                    .class(class)
                    .shed_queue_full
                    .fetch_add(1, Ordering::Relaxed);
                job.reply(Outcome::ShedQueueFull, 0, &self.metrics);
            }
            queue::Admission::Doomed { job, late_us } => {
                record(id, class, EventKind::Refused, 0);
                record(id, class, EventKind::ShedPredicted, late_us);
                self.metrics
                    .class(class)
                    .shed_predicted
                    .fetch_add(1, Ordering::Relaxed);
                job.reply(Outcome::ShedPredicted { late_us }, 0, &self.metrics);
            }
        }
        Ticket { id, class, rx }
    }

    /// Seeds shard `shard`'s measured service-time estimator with one
    /// observed batch (`batch_us` µs over `jobs` jobs) — exactly what
    /// the shard worker feeds it after a real dispatch. Lets harnesses
    /// under a frozen [`ManualClock`] (where measured batch durations
    /// are zero) warm the predictive-shedding and dynamic-margin
    /// machinery from a cost model instead; a no-op on a shard without
    /// an estimator.
    pub fn prime_service_estimate(&self, shard: usize, batch_us: u64, jobs: usize) {
        if let Some(estimator) = self.shards[shard].queue.estimator() {
            estimator.observe(batch_us, jobs);
        }
    }

    /// Applies any [`CaseMutation`] on the shard owning its function
    /// type, returning the inverse mutation. On a durable service the
    /// mutation is in that shard's write-ahead log before this returns
    /// `Ok` — a crash afterwards cannot lose it.
    ///
    /// An *automatic* checkpoint that fails afterwards does not fail the
    /// apply (the mutation itself is durable); poll
    /// [`AllocationService::take_checkpoint_errors`] or force
    /// [`AllocationService::checkpoint`] to observe such failures before
    /// the un-compacted log grows unboundedly.
    ///
    /// # Errors
    ///
    /// [`ServiceError::Core`] for invariant violations (nothing is
    /// logged), [`ServiceError::Persist`] when durability fails (the
    /// in-memory state is rolled back so memory never runs ahead of the
    /// log).
    pub fn apply_mutation(&self, mutation: &CaseMutation) -> Result<CaseMutation, ServiceError> {
        self.shard_for(mutation.type_id()).apply(mutation)
    }

    /// Applies a batch of mutations with **group commit**: the batch is
    /// split by owning shard (relative order preserved — mutations of
    /// one function type always target one shard) and each shard's group
    /// becomes a single write-ahead append, i.e. one fsync per shard per
    /// call instead of one per mutation. Returns the inverse mutations
    /// in input order.
    ///
    /// Atomicity is **per shard**: a shard's group applies all-or-nothing,
    /// but a failure in one shard does not roll back groups already
    /// committed on other shards — the error reports the first failing
    /// shard and every prior shard's group stays acknowledged (each was
    /// already durable).
    ///
    /// # Errors
    ///
    /// Same conditions as [`AllocationService::apply_mutation`].
    pub fn apply_mutations(
        &self,
        mutations: &[CaseMutation],
    ) -> Result<Vec<CaseMutation>, ServiceError> {
        // Group by shard, remembering each mutation's input slot.
        let mut groups: Vec<(Vec<usize>, Vec<CaseMutation>)> =
            (0..self.shards.len()).map(|_| Default::default()).collect();
        for (slot, mutation) in mutations.iter().enumerate() {
            let shard = shard::route(mutation.type_id(), self.shards.len());
            groups[shard].0.push(slot);
            groups[shard].1.push(mutation.clone());
        }
        let mut inverses: Vec<Option<CaseMutation>> = vec![None; mutations.len()];
        for (shard, (slots, group)) in self.shards.iter().zip(groups) {
            if group.is_empty() {
                continue;
            }
            let group_inverses = shard.apply_batch(&group)?;
            for (slot, inverse) in slots.into_iter().zip(group_inverses) {
                inverses[slot] = Some(inverse);
            }
        }
        Ok(inverses
            .into_iter()
            .map(|inv| inv.expect("every mutation was grouped exactly once"))
            .collect())
    }

    /// *Retain* step routed to the owning shard; bumps that shard's
    /// generation counter, invalidating its cached results.
    ///
    /// # Errors
    ///
    /// Same conditions as [`AllocationService::apply_mutation`].
    pub fn retain_variant(
        &self,
        type_id: TypeId,
        variant: ImplVariant,
    ) -> Result<(), ServiceError> {
        self.apply_mutation(&CaseMutation::Retain { type_id, variant })
            .map(|_| ())
    }

    /// *Revise* step routed to the owning shard.
    ///
    /// # Errors
    ///
    /// Same conditions as [`AllocationService::apply_mutation`].
    pub fn revise_variant(
        &self,
        type_id: TypeId,
        revised: ImplVariant,
    ) -> Result<(), ServiceError> {
        self.apply_mutation(&CaseMutation::Revise {
            type_id,
            variant: revised,
        })
        .map(|_| ())
    }

    /// Eviction routed to the owning shard.
    ///
    /// # Errors
    ///
    /// Same conditions as [`AllocationService::apply_mutation`].
    pub fn evict_variant(
        &self,
        type_id: TypeId,
        impl_id: rqfa_core::ImplId,
    ) -> Result<ImplVariant, ServiceError> {
        match self.apply_mutation(&CaseMutation::Evict { type_id, impl_id })? {
            CaseMutation::Retain { variant, .. } => Ok(variant),
            other => unreachable!("inverse of evict is retain, got {other:?}"),
        }
    }

    /// Forces a checkpoint (snapshot + WAL compaction) on every durable
    /// shard — e.g. before a planned shutdown, to make the next recovery
    /// replay-free. No-op on an ephemeral service.
    ///
    /// # Errors
    ///
    /// [`ServiceError::Persist`] if any shard's checkpoint fails; earlier
    /// shards' checkpoints remain in effect (each shard checkpoints
    /// independently, and no acknowledged mutation is ever at risk).
    pub fn checkpoint(&self) -> Result<(), ServiceError> {
        for shard in &self.shards {
            shard.checkpoint()?;
        }
        Ok(())
    }

    /// Drains the errors of failed *automatic* checkpoints, as
    /// `(shard index, error)` pairs. Automatic checkpoints run inside
    /// [`AllocationService::apply_mutation`] and do not fail the apply
    /// (the mutation is already durable in the WAL), so an operator must
    /// poll this — or run explicit [`AllocationService::checkpoint`]s —
    /// to notice a shard whose snapshots are failing while its log
    /// grows. Empty on ephemeral services and in healthy operation.
    pub fn take_checkpoint_errors(&self) -> Vec<(usize, PersistError)> {
        self.shards
            .iter()
            .enumerate()
            .filter_map(|(index, shard)| {
                shard.take_checkpoint_error().map(|e| (index, e))
            })
            .collect()
    }

    /// Jobs currently queued across all shards.
    pub fn pending(&self) -> usize {
        self.shards.iter().map(|s| s.queue.len()).sum()
    }

    /// A point-in-time metrics snapshot.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.metrics.snapshot()
    }

    /// Drains every shard's flight recorder into one merged dump
    /// (empty when tracing is off — see
    /// [`ServiceConfig::with_trace_capacity`]). Timestamps are µs since
    /// the service was built, shared across shards; the drain is
    /// non-destructive and safe under live traffic.
    pub fn drain_trace(&self) -> TraceDump {
        TraceDump::merge(
            self.shards
                .iter()
                .filter_map(|shard| shard.recorder.as_ref())
                .map(|recorder| recorder.drain()),
        )
    }

    /// Registers this service's metric sources on `registry`: the
    /// service counters under `prefix`, and each durable shard's persist
    /// counters under `prefix/shard-<i>/persist`.
    pub fn register_metrics(&self, registry: &Registry, prefix: &str) {
        registry.register(prefix, Arc::clone(&self.metrics) as Arc<dyn MetricSource>);
        for (index, shard) in self.shards.iter().enumerate() {
            if let Some(stats) = shard.persist_stats() {
                registry.register(format!("{prefix}/shard-{index}/persist"), stats);
            }
        }
    }

    /// Drains every queue, joins the workers and returns the final
    /// metrics. Every submitted request is answered before this returns.
    pub fn shutdown(mut self) -> MetricsSnapshot {
        for shard in &mut self.shards {
            shard.join();
        }
        self.metrics.snapshot()
    }

    fn shard_for(&self, type_id: TypeId) -> &shard::Shard {
        &self.shards[shard::route(type_id, self.shards.len())]
    }
}

/// Deterministic construction of internal [`Job`]s, so queue- and
/// scheduler-level properties (EDF order, anti-starvation, shed
/// determinism) can be asserted from the workspace test suites without
/// going through live worker threads and wall-clock timing.
///
/// Not part of the stable API — test support only.
#[doc(hidden)]
pub mod testkit {
    use super::*;

    pub use crate::shard::BatchHarness;

    /// Builds a job with an explicit enqueue instant and effective
    /// deadline, plus the receiver its reply (if any) arrives on.
    pub fn job(
        id: u64,
        class: QosClass,
        request: Request,
        enqueued_at: Instant,
        deadline: Option<Instant>,
    ) -> (Job, mpsc::Receiver<Reply>) {
        let (reply_tx, rx) = mpsc::channel();
        (
            Job {
                id,
                class,
                request,
                enqueued_at,
                deadline,
                reply_tx,
            },
            rx,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rqfa_core::paper;

    #[test]
    fn answers_the_paper_example() {
        let service = AllocationService::new(
            &paper::table1_case_base(),
            &ServiceConfig::default().with_shards(2),
        ).expect("valid service config");
        let ticket = service.submit(paper::table1_request().unwrap(), QosClass::Medium);
        let reply = ticket.wait().unwrap();
        match reply.outcome {
            Outcome::Allocated { best, cached, .. } => {
                assert_eq!(best.impl_id, paper::IMPL_DSP);
                assert!(!cached);
            }
            other => panic!("unexpected: {other:?}"),
        }
        let snap = service.shutdown();
        assert_eq!(snap.class(QosClass::Medium).completed, 1);
    }

    #[test]
    fn repeat_requests_hit_the_cache() {
        let service =
            AllocationService::new(&paper::table1_case_base(), &ServiceConfig::default()).expect("valid service config");
        let request = paper::table1_request().unwrap();
        let first = service.submit(request.clone(), QosClass::High).wait().unwrap();
        let second = service.submit(request, QosClass::High).wait().unwrap();
        let (a, b) = match (&first.outcome, &second.outcome) {
            (
                Outcome::Allocated { best: a, cached: ca, .. },
                Outcome::Allocated { best: b, cached: cb, .. },
            ) => {
                assert!(!ca);
                assert!(cb, "second identical request must be a cache hit");
                (*a, *b)
            }
            other => panic!("unexpected: {other:?}"),
        };
        assert_eq!(a, b);
        assert_eq!(service.shutdown().class(QosClass::High).cache_hits, 1);
    }

    #[test]
    fn unknown_type_fails_cleanly() {
        let service =
            AllocationService::new(&paper::table1_case_base(), &ServiceConfig::default().with_shards(3)).expect("valid service config");
        let request = Request::builder(TypeId::new(57).unwrap())
            .constraint(rqfa_core::AttrId::new(1).unwrap(), 1)
            .build()
            .unwrap();
        let reply = service.submit(request, QosClass::Low).wait().unwrap();
        assert!(matches!(
            reply.outcome,
            Outcome::Failed(CoreError::UnknownType { .. })
        ));
        service.shutdown();
    }

    #[test]
    fn recover_refuses_when_a_durable_shard_directory_is_missing() {
        // Losing a shard's on-disk state must fail recovery loudly, not
        // degrade its types into silent UnknownType replies.
        let dir = std::env::temp_dir().join(format!(
            "rqfa-durable-missing-shard-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let service = AllocationService::durable_create(
            &paper::table1_case_base(),
            &dir,
            &ServiceConfig::default().with_shards(3),
        )
        .unwrap();
        assert!(service.take_checkpoint_errors().is_empty());
        service.shutdown();
        std::fs::remove_dir_all(dir.join("shard-2")).unwrap();
        let result = AllocationService::durable_recover(&dir, &ServiceConfig::default());
        match result {
            Err(ServiceError::Manifest(message)) => {
                assert!(message.contains("shard-2"), "{message}");
            }
            Err(other) => panic!("wrong error kind: {other}"),
            Ok(_) => panic!("missing shard state must not recover silently"),
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn durable_create_purges_stale_shard_directories() {
        // Regression: re-creating durable state in a directory used to
        // leave old `shard-<i>` dirs behind; a shard empty under the new
        // layout would then resurrect the *old* case base on recover.
        let dir = std::env::temp_dir().join(format!(
            "rqfa-durable-purge-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        // Layout 1: 2 types over 3 shards → shard-1 and shard-2 durable.
        let first = AllocationService::durable_create(
            &paper::table1_case_base(),
            &dir,
            &ServiceConfig::default().with_shards(3),
        )
        .unwrap();
        first.shutdown();
        assert!(dir.join("shard-2").is_dir());

        // Layout 2: only FIR (TypeId 1) over 2 shards → shard-1 only.
        let cb = CaseBase::new(
            paper::table1_case_base().bounds().clone(),
            vec![paper::table1_case_base().function_types()[0].clone()],
        )
        .unwrap();
        let second = AllocationService::durable_create(
            &cb,
            &dir,
            &ServiceConfig::default().with_shards(2),
        )
        .unwrap();
        second.shutdown();
        assert!(
            !dir.join("shard-2").is_dir(),
            "stale shard dir from the old layout must be purged"
        );

        // Recovery serves the new layout: FFT (TypeId 2) is unknown now.
        let (recovered, reports) = AllocationService::durable_recover(
            &dir,
            &ServiceConfig::default(),
        )
        .unwrap();
        assert_eq!(reports.len(), 2);
        let request = Request::builder(TypeId::new(2).unwrap())
            .constraint(rqfa_core::AttrId::new(1).unwrap(), 10)
            .build()
            .unwrap();
        let reply = recovered.submit(request, QosClass::Medium).wait().unwrap();
        assert!(matches!(
            reply.outcome,
            Outcome::Failed(CoreError::UnknownType { .. })
        ));
        recovered.shutdown();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn zero_shards_is_a_config_error_not_a_clamp() {
        // Regression: `with_shards(0)` used to clamp silently to one
        // shard, making `shards=0` mean something it shouldn't. Now the
        // value is stored verbatim and construction refuses it loudly.
        assert_eq!(ServiceConfig::default().with_shards(0).shards, 0);
        let Err(err) = AllocationService::new(
            &paper::table1_case_base(),
            &ServiceConfig::default().with_shards(0),
        ) else {
            panic!("zero shards must be rejected")
        };
        assert!(matches!(err, ServiceError::Config(_)), "{err}");
        // The durable constructor validates before touching the disk.
        let dir = std::env::temp_dir().join(format!("rqfa-zero-shards-{}", std::process::id()));
        let Err(err) = AllocationService::durable_create(
            &paper::table1_case_base(),
            &dir,
            &ServiceConfig::default().with_shards(0),
        ) else {
            panic!("zero shards must be rejected")
        };
        assert!(matches!(err, ServiceError::Config(_)), "{err}");
        assert!(!dir.exists(), "rejected config must not create state");
    }

    #[test]
    fn shutdown_answers_everything_first() {
        let service = AllocationService::new(
            &paper::table1_case_base(),
            &ServiceConfig::default().with_batch_size(2),
        ).expect("valid service config");
        let tickets: Vec<Ticket> = (0..50)
            .map(|_| service.submit(paper::table1_request().unwrap(), QosClass::Low))
            .collect();
        service.shutdown();
        for ticket in tickets {
            assert!(ticket.wait().is_some());
        }
    }
}
