//! The sharded case-base store and its worker threads.
//!
//! Function types are partitioned across N shards by `TypeId` (modulo N —
//! type ids are dense in practice, so the spread is even). Each shard owns
//! a private [`CaseBase`] slice behind a mutex, a private
//! [`RetrievalCache`], a [`ClassQueue`] and one worker thread running a
//! [`FixedEngine`]. Because retrieval only ever touches the requested
//! type's subtree, a shard answers exactly as the single big engine would
//! over the merged case base — sharding changes *where* a request runs,
//! never *what* it answers (the integration suite asserts this).
//!
//! Mutations (retain/revise/evict) lock the owning shard's case base
//! directly; the bumped generation counter invalidates that shard's cache
//! on the workers' next lookup. A *durable* shard additionally owns a
//! [`DurableCaseBase`] — its write-ahead log is appended under the same
//! lock before the mutation is acknowledged, so the log can never run
//! behind the state the workers serve from.

use std::sync::atomic::Ordering;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

use rqfa_core::{CaseBase, CaseMutation, CoreError, FixedEngine, Generation, QosClass, TypeId};
use rqfa_persist::{DurableCaseBase, FileStore, PersistError};

use crate::cache::RetrievalCache;
use crate::error::ServiceError;
use crate::metrics::ServiceMetrics;
use crate::queue::ClassQueue;
use crate::{Job, Outcome, Reply, ServiceConfig};

/// Routes a function type to its owning shard.
pub fn route(type_id: TypeId, shards: usize) -> usize {
    usize::from(type_id.raw()) % shards.max(1)
}

/// Splits a case base into per-shard slices. Slice `i` holds every
/// function type with `route(id, n) == i`; all slices share the (cloned)
/// bounds table. A slice may be empty (`None`) when no type routes to it.
pub fn partition(case_base: &CaseBase, shards: usize) -> Vec<Option<CaseBase>> {
    let shards = shards.max(1);
    let mut buckets: Vec<Vec<rqfa_core::FunctionType>> = vec![Vec::new(); shards];
    for ty in case_base.function_types() {
        buckets[route(ty.id(), shards)].push(ty.clone());
    }
    buckets
        .into_iter()
        .map(|types| {
            if types.is_empty() {
                None
            } else {
                Some(
                    CaseBase::new(case_base.bounds().clone(), types)
                        .expect("slices of a valid case base stay valid"),
                )
            }
        })
        .collect()
}

/// What one shard serves retrievals from and applies mutations to.
///
/// The worker thread only ever reads [`ShardStore::case_base`]; the
/// mutation path goes through [`ShardStore::apply`], which for a durable
/// shard is write-ahead: validate + apply in memory, append to the WAL,
/// roll back if the append fails.
pub(crate) enum ShardStore {
    /// No function type routes to this shard.
    Empty,
    /// In-memory only (the pre-persistence behaviour).
    Ephemeral(CaseBase),
    /// WAL + snapshot backed.
    Durable(Box<DurableCaseBase<FileStore>>),
}

impl ShardStore {
    /// The case base served by this shard, if any.
    pub(crate) fn case_base(&self) -> Option<&CaseBase> {
        match self {
            ShardStore::Empty => None,
            ShardStore::Ephemeral(cb) => Some(cb),
            ShardStore::Durable(durable) => Some(durable.case_base()),
        }
    }

    /// The generation the cache stamps results with.
    pub(crate) fn generation(&self) -> Generation {
        self.case_base()
            .map_or(Generation::GENESIS, CaseBase::generation)
    }

    /// Applies a mutation, returning its inverse (durably for a durable
    /// shard — the mutation is in the WAL before this returns `Ok`).
    pub(crate) fn apply(&mut self, mutation: &CaseMutation) -> Result<CaseMutation, ServiceError> {
        match self {
            ShardStore::Empty => Err(ServiceError::Core(CoreError::UnknownType {
                type_id: mutation.type_id(),
            })),
            ShardStore::Ephemeral(cb) => cb.apply_mutation(mutation).map_err(ServiceError::Core),
            ShardStore::Durable(durable) => durable.apply(mutation).map_err(ServiceError::from),
        }
    }

    /// Forces a checkpoint (snapshot + log compaction) on a durable
    /// shard; a no-op otherwise.
    pub(crate) fn checkpoint(&mut self) -> Result<(), PersistError> {
        match self {
            ShardStore::Durable(durable) => durable.checkpoint(),
            _ => Ok(()),
        }
    }

    /// Takes (and clears) the error of this shard's last failed
    /// *automatic* checkpoint, if any.
    pub(crate) fn take_checkpoint_error(&mut self) -> Option<PersistError> {
        match self {
            ShardStore::Durable(durable) => durable.take_checkpoint_error(),
            _ => None,
        }
    }
}

/// One shard: queue, store, and worker thread.
pub(crate) struct Shard {
    pub(crate) queue: Arc<ClassQueue>,
    pub(crate) store: Arc<Mutex<ShardStore>>,
    worker: Option<JoinHandle<()>>,
}

impl Shard {
    /// Spawns the shard worker over `store`.
    pub(crate) fn spawn(
        index: usize,
        store: ShardStore,
        config: &ServiceConfig,
        metrics: Arc<ServiceMetrics>,
    ) -> Shard {
        let queue = Arc::new(ClassQueue::new(config.queue_capacity, config.arbiter()));
        let store = Arc::new(Mutex::new(store));
        let worker_queue = Arc::clone(&queue);
        let worker_store = Arc::clone(&store);
        let batch_size = config.batch_size.max(1);
        let cache_capacity = config.cache_capacity;
        let deadline_budget_us = config.deadline_budget_us;
        let worker = std::thread::Builder::new()
            .name(format!("rqfa-shard-{index}"))
            .spawn(move || {
                run_worker(
                    &worker_queue,
                    &worker_store,
                    &metrics,
                    batch_size,
                    cache_capacity,
                    deadline_budget_us,
                );
            })
            .expect("spawn shard worker");
        Shard {
            queue,
            store,
            worker: Some(worker),
        }
    }

    /// Applies a mutation to this shard's store under its lock, returning
    /// the inverse mutation.
    pub(crate) fn apply(&self, mutation: &CaseMutation) -> Result<CaseMutation, ServiceError> {
        self.store.lock().expect("store poisoned").apply(mutation)
    }

    /// Forces a checkpoint on this shard's store (durable shards only).
    pub(crate) fn checkpoint(&self) -> Result<(), PersistError> {
        self.store.lock().expect("store poisoned").checkpoint()
    }

    /// Drains this shard's parked automatic-checkpoint error, if any.
    pub(crate) fn take_checkpoint_error(&self) -> Option<PersistError> {
        self.store
            .lock()
            .expect("store poisoned")
            .take_checkpoint_error()
    }

    /// Signals shutdown and joins the worker, draining queued jobs first.
    pub(crate) fn join(&mut self) {
        self.queue.shutdown();
        if let Some(handle) = self.worker.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Shard {
    fn drop(&mut self) {
        self.join();
    }
}

/// The worker loop: pop a batch, shed expired jobs, answer hits from the
/// cache, run the rest through the engine's batch API, reply, repeat.
fn run_worker(
    queue: &ClassQueue,
    store: &Mutex<ShardStore>,
    metrics: &ServiceMetrics,
    batch_size: usize,
    cache_capacity: usize,
    deadline_budget_us: [Option<u64>; QosClass::COUNT],
) {
    let engine = FixedEngine::new();
    let mut cache = RetrievalCache::new(cache_capacity);
    while let Some(batch) = queue.pop_batch(batch_size) {
        if batch.is_empty() {
            continue;
        }
        metrics.batches.fetch_add(1, Ordering::Relaxed);
        metrics
            .batched_requests
            .fetch_add(batch.len() as u64, Ordering::Relaxed);
        let store = store.lock().expect("store poisoned");
        let now = Instant::now();

        // Pass 1: deadline shedding and cache lookups.
        let mut pending: Vec<Job> = Vec::with_capacity(batch.len());
        for job in batch {
            let waited_us = duration_us(now.duration_since(job.enqueued_at));
            if let Some(budget) = deadline_budget_us[job.class.index()] {
                if job.class.sheddable() && waited_us > budget {
                    metrics
                        .class(job.class)
                        .shed_deadline
                        .fetch_add(1, Ordering::Relaxed);
                    job.reply(Outcome::ShedDeadline, waited_us, metrics);
                    continue;
                }
            }
            let generation = store.generation();
            if let Some(hit) = cache.lookup(job.request.fingerprint(), generation) {
                finish(job, hit, true, metrics);
                continue;
            }
            pending.push(job);
        }

        // Pass 2: one batched engine call for every cache miss.
        if pending.is_empty() {
            continue;
        }
        match store.case_base() {
            Some(case_base) => {
                let requests: Vec<&rqfa_core::Request> =
                    pending.iter().map(|j| &j.request).collect();
                let results = engine.retrieve_batch(case_base, &requests);
                let generation = case_base.generation();
                for (job, result) in pending.into_iter().zip(results) {
                    match result {
                        Ok(retrieval) => {
                            cache.insert(job.request.fingerprint(), generation, &retrieval);
                            finish(job, retrieval, false, metrics);
                        }
                        Err(error) => {
                            metrics.class(job.class).failed.fetch_add(1, Ordering::Relaxed);
                            let waited_us = duration_us(now.duration_since(job.enqueued_at));
                            job.reply(Outcome::Failed(error), waited_us, metrics);
                        }
                    }
                }
            }
            None => {
                // Empty shard: no type routes here, so the type is unknown.
                for job in pending {
                    metrics.class(job.class).failed.fetch_add(1, Ordering::Relaxed);
                    let type_id = job.request.type_id();
                    let waited_us = duration_us(now.duration_since(job.enqueued_at));
                    job.reply(Outcome::Failed(CoreError::UnknownType { type_id }), waited_us, metrics);
                }
            }
        }
    }
}

/// Completes one job with a retrieval result.
fn finish(job: Job, retrieval: rqfa_core::Retrieval<rqfa_fixed::Q15>, cached: bool, metrics: &ServiceMetrics) {
    let class = job.class;
    let latency_us = duration_us(job.enqueued_at.elapsed());
    let outcome = match retrieval.best {
        Some(best) => {
            metrics.class(class).completed.fetch_add(1, Ordering::Relaxed);
            if cached {
                metrics.class(class).cache_hits.fetch_add(1, Ordering::Relaxed);
            }
            Outcome::Allocated {
                best,
                evaluated: retrieval.evaluated,
                cached,
            }
        }
        // Unreachable for a validated case base; reported honestly anyway.
        None => {
            metrics.class(class).failed.fetch_add(1, Ordering::Relaxed);
            Outcome::Failed(CoreError::UnknownType {
                type_id: job.request.type_id(),
            })
        }
    };
    job.reply(outcome, latency_us, metrics);
}

/// Saturating µs conversion.
pub(crate) fn duration_us(duration: std::time::Duration) -> u64 {
    u64::try_from(duration.as_micros()).unwrap_or(u64::MAX)
}

impl Job {
    /// Sends the reply and records the latency sample. Shed replies stay
    /// out of the histogram — a near-zero "latency" for dropped work
    /// would drown the p50/p99 of the traffic actually served. A send
    /// error means the caller dropped its ticket — the result is simply
    /// discarded.
    pub(crate) fn reply(self, outcome: Outcome, latency_us: u64, metrics: &ServiceMetrics) {
        if !outcome.is_shed() {
            metrics.class(self.class).latency.record(latency_us);
        }
        let _ = self.reply_tx.send(Reply {
            id: self.id,
            class: self.class,
            outcome,
            latency_us,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rqfa_core::paper;

    #[test]
    fn partition_covers_every_type_exactly_once() {
        let cb = paper::table1_case_base();
        for shards in 1..=4 {
            let slices = partition(&cb, shards);
            assert_eq!(slices.len(), shards);
            let total: usize = slices
                .iter()
                .flatten()
                .map(CaseBase::type_count)
                .sum();
            assert_eq!(total, cb.type_count());
            for slice in slices.iter().flatten() {
                for ty in slice.function_types() {
                    assert_eq!(
                        slice.function_types().len(),
                        slice.type_count(),
                    );
                    // Every type landed on its routed shard.
                    let original = cb.function_type(ty.id()).unwrap();
                    assert_eq!(original, ty);
                }
            }
        }
    }

    #[test]
    fn routing_is_stable_and_in_range() {
        for raw in 1..50u16 {
            let id = TypeId::new(raw).unwrap();
            for shards in 1..=8 {
                let s = route(id, shards);
                assert!(s < shards);
                assert_eq!(s, route(id, shards));
            }
        }
    }

    #[test]
    fn single_shard_partition_is_the_whole_case_base() {
        let cb = paper::table1_case_base();
        let slices = partition(&cb, 1);
        assert_eq!(slices[0].as_ref().unwrap(), &cb);
    }
}
