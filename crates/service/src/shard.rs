//! The sharded case-base store and its worker threads.
//!
//! Function types are partitioned across N shards by `TypeId` (modulo N —
//! type ids are dense in practice, so the spread is even). Each shard owns
//! a private [`CaseBase`] slice behind a mutex, a private
//! [`RetrievalCache`], a [`ClassQueue`] and one worker thread running a
//! [`PlaneEngine`]. Because retrieval only ever touches the requested
//! type's subtree, a shard answers exactly as the single big engine would
//! over the merged case base — sharding changes *where* a request runs,
//! never *what* it answers (the integration suite asserts this).
//!
//! Mutations (retain/revise/evict) lock the owning shard's case base
//! directly; the bumped generation counter invalidates that shard's cache
//! on the workers' next lookup. A *durable* shard additionally owns a
//! [`DurableCaseBase`] — its write-ahead log is appended under the same
//! lock before the mutation is acknowledged, so the log can never run
//! behind the state the workers serve from.
//!
//! Checkpoints (snapshot + log compaction) run in **two phases** so their
//! I/O never stalls the shard's retrievals: phase 1 clones the state and
//! checks the stale snapshot slot out under the store lock (cheap), the
//! snapshot write then runs with the lock *released*, and phase 2
//! re-locks only to reinstall the slot and trim the already-snapshotted
//! log prefix (bounded read + atomic replace). A per-shard checkpoint
//! mutex serializes checkpoints against each other — never against
//! retrievals; automatic checkpoints triggered by the mutation cadence
//! simply skip a beat when one is already in flight.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

use rqfa_core::{CaseBase, CaseMutation, CoreError, Generation, PlaneEngine, Retrieval, TypeId};
use rqfa_fixed::Q15;
use rqfa_persist::{DurableCaseBase, FileStore, PendingCheckpoint, PersistError, WrittenCheckpoint};
use rqfa_telemetry::{clock::micros_between, monotonic, EventKind, FlightRecorder, SharedClock, TraceDump};

use crate::cache::{CacheLookup, RetrievalCache};
use crate::error::ServiceError;
use crate::metrics::{BatchDeltas, ServiceMetrics};
use crate::queue::ClassQueue;
use crate::sched::ServiceTimeEstimator;
use crate::{Job, Outcome, Reply, ServiceConfig};

/// Routes a function type to its owning shard — the service's placement
/// function, delegating to [`rqfa_core::placement::shard_index`] so every
/// layer (local workers, remote nodes, replication) agrees on ownership.
///
/// # Panics
///
/// With `shards == 0` — a shard count is validated at service
/// construction ([`ServiceError::Config`]),
/// never silently clamped here.
pub fn route(type_id: TypeId, shards: usize) -> usize {
    rqfa_core::placement::shard_index(type_id, shards)
}

/// Splits a case base into per-shard slices. Slice `i` holds every
/// function type with `route(id, n) == i`; all slices share the (cloned)
/// bounds table and inherit the source's generation — a service built
/// over a promoted replica resumes counting at the replica's generation
/// instead of rewinding to genesis. A slice may be empty (`None`) when
/// no type routes to it.
///
/// # Panics
///
/// With `shards == 0` (see [`route`]).
pub fn partition(case_base: &CaseBase, shards: usize) -> Vec<Option<CaseBase>> {
    assert!(shards > 0, "partition requires at least one shard");
    let mut buckets: Vec<Vec<rqfa_core::FunctionType>> = vec![Vec::new(); shards];
    for ty in case_base.function_types() {
        buckets[route(ty.id(), shards)].push(ty.clone());
    }
    buckets
        .into_iter()
        .map(|types| {
            if types.is_empty() {
                None
            } else {
                let mut slice = CaseBase::new(case_base.bounds().clone(), types)
                    .expect("slices of a valid case base stay valid");
                slice.restore_generation(case_base.generation());
                Some(slice)
            }
        })
        .collect()
}

/// What one shard serves retrievals from and applies mutations to.
///
/// The worker thread only ever reads [`ShardStore::case_base`]; the
/// mutation path goes through [`ShardStore::apply`], which for a durable
/// shard is write-ahead: validate + apply in memory, append to the WAL,
/// roll back if the append fails.
pub(crate) enum ShardStore {
    /// No function type routes to this shard.
    Empty,
    /// In-memory only (the pre-persistence behaviour).
    Ephemeral(CaseBase),
    /// WAL + snapshot backed.
    Durable(Box<DurableCaseBase<FileStore>>),
}

impl ShardStore {
    /// The case base served by this shard, if any.
    pub(crate) fn case_base(&self) -> Option<&CaseBase> {
        match self {
            ShardStore::Empty => None,
            ShardStore::Ephemeral(cb) => Some(cb),
            ShardStore::Durable(durable) => Some(durable.case_base()),
        }
    }

    /// The generation the cache stamps results with.
    pub(crate) fn generation(&self) -> Generation {
        self.case_base()
            .map_or(Generation::GENESIS, CaseBase::generation)
    }

    /// Applies a mutation, returning its inverse (durably for a durable
    /// shard — the mutation is in the WAL before this returns `Ok`).
    pub(crate) fn apply(&mut self, mutation: &CaseMutation) -> Result<CaseMutation, ServiceError> {
        match self {
            ShardStore::Empty => Err(ServiceError::Core(CoreError::UnknownType {
                type_id: mutation.type_id(),
            })),
            ShardStore::Ephemeral(cb) => cb.apply_mutation(mutation).map_err(ServiceError::Core),
            ShardStore::Durable(durable) => durable.apply(mutation).map_err(ServiceError::from),
        }
    }

    /// Applies a whole batch of mutations, returning their inverses in
    /// order. All-or-nothing in memory; on a durable shard the batch is
    /// one group-committed WAL append (a single fsync).
    pub(crate) fn apply_batch(
        &mut self,
        mutations: &[CaseMutation],
    ) -> Result<Vec<CaseMutation>, ServiceError> {
        let Some(first) = mutations.first() else {
            return Ok(Vec::new());
        };
        match self {
            ShardStore::Empty => Err(ServiceError::Core(CoreError::UnknownType {
                type_id: first.type_id(),
            })),
            ShardStore::Ephemeral(cb) => cb
                .apply_mutations_atomic(mutations)
                .map_err(ServiceError::Core),
            ShardStore::Durable(durable) => {
                durable.apply_batch(mutations).map_err(ServiceError::from)
            }
        }
    }

    /// Phase 1 of a checkpoint: checks the stale snapshot slot out with a
    /// clone of the state. `None` for shards with nothing to checkpoint.
    pub(crate) fn checkpoint_begin(
        &mut self,
    ) -> Result<Option<PendingCheckpoint<FileStore>>, PersistError> {
        match self {
            ShardStore::Durable(durable) => durable.checkpoint_begin().map(Some),
            _ => Ok(None),
        }
    }

    /// Phase 3 of a checkpoint: reinstalls the slot and trims the log.
    pub(crate) fn checkpoint_finish(
        &mut self,
        written: WrittenCheckpoint<FileStore>,
    ) -> Result<(), PersistError> {
        match self {
            ShardStore::Durable(durable) => durable.checkpoint_finish(written),
            _ => Ok(()),
        }
    }
}

/// One shard: queue, store, worker thread, and checkpoint cadence.
pub(crate) struct Shard {
    pub(crate) queue: Arc<ClassQueue>,
    pub(crate) store: Arc<Mutex<ShardStore>>,
    /// This shard's flight recorder (`None` = tracing disabled).
    pub(crate) recorder: Option<Arc<FlightRecorder>>,
    /// Serializes checkpoints against each other (never against the
    /// store lock — retrievals keep flowing during checkpoint I/O).
    checkpoint_lock: Mutex<()>,
    /// Acknowledged mutations since the last checkpoint *began*.
    since_checkpoint: AtomicU64,
    /// Auto-checkpoint after this many mutations (0 = manual only).
    snapshot_every: u64,
    /// Parked error of the last failed automatic checkpoint.
    checkpoint_error: Mutex<Option<PersistError>>,
    worker: Option<JoinHandle<()>>,
}

impl Shard {
    /// Spawns the shard worker over `store`. `epoch` is the service-wide
    /// zero point of trace timestamps.
    pub(crate) fn spawn(
        index: usize,
        store: ShardStore,
        config: &ServiceConfig,
        metrics: Arc<ServiceMetrics>,
        epoch: Instant,
    ) -> Shard {
        // Only durable stores have anything to checkpoint; an ephemeral
        // shard with a live cadence would pointlessly re-take the store
        // lock (held by the worker across whole batches) on every
        // mutation past the threshold.
        let snapshot_every = match store {
            ShardStore::Durable(_) => config.snapshot_every,
            _ => 0,
        };
        let recorder = (config.trace_capacity > 0)
            .then(|| Arc::new(FlightRecorder::new(config.trace_capacity)));
        // The measured service-time signal: the worker writes what each
        // batch actually cost, the queue reads it to size DYNAMIC_PRIORITY
        // urgency margins and stop deadline-breaking batch fill.
        let estimator = Arc::new(ServiceTimeEstimator::new());
        let queue = Arc::new(
            ClassQueue::new(
                config.queue_capacity,
                config.arbiter(),
                config.scheduling,
                config.promotion_margin_us,
                Arc::clone(&metrics),
            )
            .with_telemetry(Arc::clone(&config.clock), recorder.clone(), epoch)
            .with_estimator(Arc::clone(&estimator))
            .with_predictive_shed(config.predictive_shed),
        );
        let store = Arc::new(Mutex::new(store));
        let worker_queue = Arc::clone(&queue);
        let worker_store = Arc::clone(&store);
        let batch_size = config.batch_size.max(1);
        let cache = RetrievalCache::with_policy(
            config.cache_capacity,
            config.cache_policy,
            config.cache_admission,
        );
        let ctx = WorkerContext::new(cache)
            .with_kernel(config.kernel_path)
            .with_telemetry(Arc::clone(&config.clock), recorder.clone(), epoch);
        let worker = std::thread::Builder::new()
            .name(format!("rqfa-shard-{index}"))
            .spawn(move || {
                run_worker(
                    &worker_queue,
                    &worker_store,
                    &metrics,
                    batch_size,
                    ctx,
                    &estimator,
                );
            })
            .expect("spawn shard worker");
        Shard {
            queue,
            store,
            recorder,
            checkpoint_lock: Mutex::new(()),
            since_checkpoint: AtomicU64::new(0),
            snapshot_every,
            checkpoint_error: Mutex::new(None),
            worker: Some(worker),
        }
    }

    /// Applies a mutation to this shard's store under its lock, returning
    /// the inverse mutation, then runs the auto-checkpoint cadence.
    pub(crate) fn apply(&self, mutation: &CaseMutation) -> Result<CaseMutation, ServiceError> {
        let inverse = self.store.lock().expect("store poisoned").apply(mutation)?;
        self.after_acknowledged(1);
        Ok(inverse)
    }

    /// Applies a batch (one group commit on a durable shard) and runs the
    /// auto-checkpoint cadence.
    pub(crate) fn apply_batch(
        &self,
        mutations: &[CaseMutation],
    ) -> Result<Vec<CaseMutation>, ServiceError> {
        let inverses = self
            .store
            .lock()
            .expect("store poisoned")
            .apply_batch(mutations)?;
        self.after_acknowledged(inverses.len() as u64);
        Ok(inverses)
    }

    /// Bumps the checkpoint debt and, when the cadence is due, runs an
    /// automatic checkpoint. A checkpoint already in flight makes this a
    /// no-op (the debt keeps accumulating and re-triggers); a failed
    /// automatic checkpoint parks its error for
    /// [`Shard::take_checkpoint_error`] instead of failing the apply —
    /// the mutation itself is already durable in the WAL.
    fn after_acknowledged(&self, count: u64) {
        if self.snapshot_every == 0 || count == 0 {
            return;
        }
        let due = self.since_checkpoint.fetch_add(count, Ordering::Relaxed) + count;
        if due < self.snapshot_every {
            return;
        }
        let Ok(guard) = self.checkpoint_lock.try_lock() else {
            return; // one is in flight; it will absorb this debt
        };
        if let Err(e) = self.checkpoint_locked() {
            *self.checkpoint_error.lock().expect("error slot poisoned") = Some(e);
        }
        drop(guard);
    }

    /// Forces a checkpoint on this shard's store (durable shards only).
    pub(crate) fn checkpoint(&self) -> Result<(), PersistError> {
        let _guard = self.checkpoint_lock.lock().expect("checkpoint poisoned");
        self.checkpoint_locked()
    }

    /// The two-phase checkpoint body. Caller holds `checkpoint_lock`;
    /// the store lock is only taken for the cheap begin/finish phases,
    /// so retrievals and mutations keep flowing during the snapshot
    /// write.
    fn checkpoint_locked(&self) -> Result<(), PersistError> {
        let (pending, counted) = {
            let mut store = self.store.lock().expect("store poisoned");
            match store.checkpoint_begin()? {
                Some(pending) => (pending, self.since_checkpoint.load(Ordering::Relaxed)),
                None => return Ok(()), // nothing durable to checkpoint
            }
        };
        let written = pending.write(); // the expensive I/O — off-lock
        let result = self
            .store
            .lock()
            .expect("store poisoned")
            .checkpoint_finish(written);
        if result.is_ok() {
            // Only the debt captured at begin is paid off — mutations
            // acknowledged during the write are the *next* checkpoint's
            // debt. A failed checkpoint keeps the full debt, so the next
            // mutation retries instead of waiting out another interval.
            self.since_checkpoint.fetch_sub(counted, Ordering::Relaxed);
        }
        result
    }

    /// Drains this shard's parked automatic-checkpoint error, if any.
    pub(crate) fn take_checkpoint_error(&self) -> Option<PersistError> {
        self.checkpoint_error
            .lock()
            .expect("error slot poisoned")
            .take()
    }

    /// The durable store's write-path counters (`None` for ephemeral and
    /// empty shards). The returned block reads lock-free afterwards.
    pub(crate) fn persist_stats(&self) -> Option<Arc<rqfa_persist::PersistStats>> {
        match &*self.store.lock().expect("store poisoned") {
            ShardStore::Durable(durable) => Some(durable.stats()),
            _ => None,
        }
    }

    /// Exports this durable shard's snapshot container (the replication
    /// transfer unit) together with the generation it captures. The
    /// store lock is held only for the in-memory encode.
    pub(crate) fn export_snapshot(&self) -> Result<(Vec<u8>, Generation), ServiceError> {
        match &*self.store.lock().expect("store poisoned") {
            ShardStore::Durable(durable) => {
                let bytes = durable.export_snapshot()?;
                Ok((bytes, durable.generation()))
            }
            _ => Err(ServiceError::Remote(
                "only durable shards replicate (no WAL to stream)".into(),
            )),
        }
    }

    /// This durable shard's WAL records newer than `through` — the tail a
    /// leader streams to a follower holding a snapshot at `through`.
    pub(crate) fn wal_tail(
        &self,
        through: Generation,
    ) -> Result<Vec<rqfa_persist::StampedMutation>, ServiceError> {
        match &*self.store.lock().expect("store poisoned") {
            ShardStore::Durable(durable) => Ok(durable.wal_tail(through)?),
            _ => Err(ServiceError::Remote(
                "only durable shards replicate (no WAL to stream)".into(),
            )),
        }
    }

    /// The generation of this shard's served case base.
    pub(crate) fn generation(&self) -> Generation {
        self.store.lock().expect("store poisoned").generation()
    }

    /// Signals shutdown and joins the worker, draining queued jobs first.
    pub(crate) fn join(&mut self) {
        self.queue.shutdown();
        if let Some(handle) = self.worker.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Shard {
    fn drop(&mut self) {
        self.join();
    }
}

/// The reusable per-worker state of the retrieval hot path: the compiled
/// plane engine (scratch arena + plane, recompiled on generation change),
/// the shard's result cache, and the batch-local coalescing buffers.
///
/// Everything here is sized by the first few batches and reused after, so
/// the steady-state engine path allocates nothing per request (the
/// per-batch job vectors from the queue are the only churn).
pub(crate) struct WorkerContext {
    engine: PlaneEngine,
    cache: RetrievalCache,
    /// Engine results of the current batch's leaders, reused.
    results: Vec<Result<Retrieval<Q15>, CoreError>>,
    /// Batch-local map: fingerprint → leader index in `pending`.
    seen: HashMap<u64, usize>,
    /// Coalesced within-batch duplicates: `(leader index, job)`.
    followers: Vec<(usize, Job)>,
    /// Injected time source (stamps batches and latencies).
    clock: SharedClock,
    /// Zero point of trace timestamps.
    epoch: Instant,
    /// Flight recorder for pipeline events (`None` = tracing off).
    recorder: Option<Arc<FlightRecorder>>,
    /// The current batch's outcome deltas, committed batch-atomically.
    deltas: BatchDeltas,
}

impl WorkerContext {
    pub(crate) fn new(cache: RetrievalCache) -> WorkerContext {
        let clock = monotonic();
        let epoch = clock.now();
        WorkerContext {
            engine: PlaneEngine::new(),
            cache,
            results: Vec::new(),
            seen: HashMap::new(),
            followers: Vec::new(),
            clock,
            epoch,
            recorder: None,
            deltas: BatchDeltas::default(),
        }
    }

    /// Pins the worker engine's kernel path (see
    /// [`ServiceConfig::kernel_path`](crate::ServiceConfig::kernel_path)).
    pub(crate) fn with_kernel(mut self, path: rqfa_core::KernelPath) -> WorkerContext {
        self.engine = PlaneEngine::with_kernel(path);
        self
    }

    /// Replaces the worker's time source and flight recorder.
    pub(crate) fn with_telemetry(
        mut self,
        clock: SharedClock,
        recorder: Option<Arc<FlightRecorder>>,
        epoch: Instant,
    ) -> WorkerContext {
        self.clock = clock;
        self.recorder = recorder;
        self.epoch = epoch;
        self
    }
}

/// The worker loop: pop a batch, process it against the (locked) store,
/// and feed the measured service time (store-lock wait included — it is
/// part of what the next lane head will wait out) back to the
/// scheduler's estimator. Under a frozen [`ManualClock`]
/// (`rqfa_telemetry::ManualClock`) every measurement is 0, so the
/// estimator stays cold and the scheduler keeps its configured margins —
/// deterministic tests see the historical behaviour.
fn run_worker(
    queue: &ClassQueue,
    store: &Mutex<ShardStore>,
    metrics: &ServiceMetrics,
    batch_size: usize,
    mut ctx: WorkerContext,
    estimator: &ServiceTimeEstimator,
) {
    while let Some(batch) = queue.pop_batch(batch_size) {
        if batch.is_empty() {
            continue;
        }
        let served = batch.len();
        let started = ctx.clock.now();
        let store = store.lock().expect("store poisoned");
        process_batch(batch, &store, metrics, &mut ctx);
        drop(store);
        estimator.observe(micros_between(started, ctx.clock.now()), served);
    }
}

/// One batch's trace stamp: the recorder (if tracing) plus the batch
/// timestamp every event of this batch carries.
struct BatchTrace<'a> {
    at_us: u64,
    recorder: Option<&'a FlightRecorder>,
}

impl BatchTrace<'_> {
    fn record(&self, job: &Job, kind: EventKind, arg: u64) {
        if let Some(recorder) = self.recorder {
            recorder.record(self.at_us, job.id, job.class.index() as u8, kind, arg);
        }
    }
}

/// Processes one dispatched batch: shed expired jobs, answer cache hits,
/// **coalesce within-batch duplicates**, run the remaining *leaders*
/// through the plane kernel's batch API, fan replies out, repeat.
///
/// Coalescing: identical fingerprints inside one batch are scored once.
/// The first miss becomes the *leader* (counted as one cache miss); every
/// later duplicate becomes a *follower* that skips the cache probe and
/// the engine entirely and is served a copy of the leader's result,
/// counted — and flagged in its reply — as a cache hit. The admission
/// filter is told about each coalesced repeat
/// ([`RetrievalCache::note_repeat`]) so the leader's insert is not
/// bounced as a one-hit wonder. Normative semantics: `docs/retrieval.md`.
pub(crate) fn process_batch(
    batch: Vec<Job>,
    store: &ShardStore,
    metrics: &ServiceMetrics,
    ctx: &mut WorkerContext,
) {
    metrics.batches.fetch_add(1, Ordering::Relaxed);
    metrics
        .batched_requests
        .fetch_add(batch.len() as u64, Ordering::Relaxed);
    // One clock read stamps the whole batch: dispatch events, deadline
    // checks and reply latencies all see the same `now`, which keeps a
    // manual-clock replay exactly reproducible.
    let now = ctx.clock.now();
    let trace = BatchTrace {
        at_us: micros_between(ctx.epoch, now),
        recorder: ctx.recorder.as_deref(),
    };
    let generation = store.generation();

    // Pass 1: deadline shedding, cache lookups, duplicate coalescing.
    // Leaders keep their pass-1 fingerprint so the insert in pass 2 does
    // not re-hash the constraint list.
    let mut pending: Vec<(u64, Job)> = Vec::with_capacity(batch.len());
    ctx.seen.clear();
    for job in batch {
        trace.record(&job, EventKind::Dispatched, 0);
        let waited_us = micros_between(job.enqueued_at, now);
        if let Some(deadline) = job.deadline {
            if job.class.sheddable() && now > deadline {
                ctx.deltas.class(job.class).shed_deadline += 1;
                trace.record(&job, EventKind::ShedDeadline, 0);
                job.reply(Outcome::ShedDeadline, waited_us, metrics);
                continue;
            }
        }
        let fingerprint = job.request.fingerprint();
        if let Some(&leader) = ctx.seen.get(&fingerprint) {
            // Within-batch duplicate: one computation will serve it.
            ctx.cache.note_repeat(fingerprint);
            ctx.followers.push((leader, job));
            continue;
        }
        match ctx.cache.lookup_outcome(fingerprint, generation) {
            CacheLookup::Hit(hit) => {
                trace.record(&job, EventKind::CacheHit, 0);
                finish(job, hit, true, now, &trace, &mut ctx.deltas, metrics);
                continue;
            }
            CacheLookup::Miss { stale } => {
                let deltas = ctx.deltas.class(job.class);
                deltas.cache_misses += 1;
                if stale {
                    deltas.cache_stale += 1;
                    trace.record(&job, EventKind::CacheStale, 0);
                } else {
                    trace.record(&job, EventKind::CacheMiss, 0);
                }
            }
        }
        ctx.seen.insert(fingerprint, pending.len());
        pending.push((fingerprint, job));
    }

    // Pass 2: one batched plane-kernel call for every leader.
    'serve: {
        if pending.is_empty() {
            debug_assert!(ctx.followers.is_empty(), "followers imply a leader");
            break 'serve;
        }
        match store.case_base() {
            Some(case_base) => {
                {
                    let requests: Vec<&rqfa_core::Request> =
                        pending.iter().map(|(_, j)| &j.request).collect();
                    ctx.engine
                        .retrieve_batch_into(case_base, &requests, &mut ctx.results);
                }
                let generation = case_base.generation();
                for result in ctx.results.iter().flatten() {
                    ctx.deltas.add_ops(&result.ops);
                }
                // Followers first (they read the leaders' results), counted
                // as cache hits — the coalesced "1 miss + N−1 hits" account.
                for (leader, job) in ctx.followers.drain(..) {
                    match &ctx.results[leader] {
                        Ok(retrieval) => {
                            trace.record(&job, EventKind::CacheHit, 1);
                            finish(
                                job,
                                retrieval.clone(),
                                true,
                                now,
                                &trace,
                                &mut ctx.deltas,
                                metrics,
                            );
                        }
                        Err(error) => {
                            // A failed leader fails its followers identically;
                            // the follower's probe-that-never-was counts as a
                            // miss so per-class cache counters keep summing to
                            // the served total.
                            let deltas = ctx.deltas.class(job.class);
                            deltas.cache_misses += 1;
                            deltas.failed += 1;
                            trace.record(&job, EventKind::Failed, 0);
                            let waited_us = micros_between(job.enqueued_at, now);
                            job.reply(Outcome::Failed(error.clone()), waited_us, metrics);
                        }
                    }
                }
                for ((fingerprint, job), result) in pending.into_iter().zip(ctx.results.drain(..)) {
                    match result {
                        Ok(retrieval) => {
                            trace.record(&job, EventKind::Scored, retrieval.evaluated as u64);
                            ctx.cache.insert(fingerprint, generation, &retrieval);
                            finish(job, retrieval, false, now, &trace, &mut ctx.deltas, metrics);
                        }
                        Err(error) => {
                            ctx.deltas.class(job.class).failed += 1;
                            trace.record(&job, EventKind::Failed, 0);
                            let waited_us = micros_between(job.enqueued_at, now);
                            job.reply(Outcome::Failed(error), waited_us, metrics);
                        }
                    }
                }
            }
            None => {
                // Empty shard: no type routes here, so the type is unknown.
                let mut fail = |job: Job, count_miss: bool| {
                    let deltas = ctx.deltas.class(job.class);
                    if count_miss {
                        deltas.cache_misses += 1;
                    }
                    deltas.failed += 1;
                    trace.record(&job, EventKind::Failed, 0);
                    let type_id = job.request.type_id();
                    let waited_us = micros_between(job.enqueued_at, now);
                    job.reply(
                        Outcome::Failed(CoreError::UnknownType { type_id }),
                        waited_us,
                        metrics,
                    );
                };
                for (_, job) in ctx.followers.drain(..) {
                    fail(job, true);
                }
                for (_, job) in pending {
                    fail(job, false);
                }
            }
        }
    }
    // One commit per batch: a concurrent snapshot sees either none or all
    // of this batch's outcome counters (the snapshot-consistency
    // invariant the observability suite samples under load).
    metrics.commit(&ctx.deltas);
    ctx.deltas.clear();
}

/// Completes one job with a retrieval result. Latency and deadline
/// misses are judged against the batch's `now` stamp.
fn finish(
    job: Job,
    retrieval: rqfa_core::Retrieval<rqfa_fixed::Q15>,
    cached: bool,
    now: Instant,
    trace: &BatchTrace<'_>,
    deltas: &mut BatchDeltas,
    metrics: &ServiceMetrics,
) {
    let class = job.class;
    let latency_us = micros_between(job.enqueued_at, now);
    // Served, but late? CRITICAL is never shed, so an expired deadline
    // surfaces here as a miss instead.
    if job.deadline.is_some_and(|d| now > d) {
        deltas.class(class).missed_deadline += 1;
    }
    let outcome = match retrieval.best {
        Some(best) => {
            deltas.class(class).completed += 1;
            if cached {
                deltas.class(class).cache_hits += 1;
            }
            trace.record(&job, EventKind::Replied, u64::from(cached));
            Outcome::Allocated {
                best,
                evaluated: retrieval.evaluated,
                cached,
            }
        }
        // Unreachable for a validated case base; reported honestly anyway.
        None => {
            deltas.class(class).failed += 1;
            trace.record(&job, EventKind::Failed, 0);
            Outcome::Failed(CoreError::UnknownType {
                type_id: job.request.type_id(),
            })
        }
    };
    job.reply(outcome, latency_us, metrics);
}

/// Drives the worker's batch-processing path synchronously, without
/// worker threads or wall-clock dependence: the caller decides exactly
/// which jobs form one dispatch batch, which makes coalescing and cache
/// accounting deterministic and assertable. Construct jobs with
/// [`crate::testkit::job`].
///
/// Not part of the stable API — test support only.
#[doc(hidden)]
pub struct BatchHarness {
    store: ShardStore,
    metrics: Arc<ServiceMetrics>,
    recorder: Option<Arc<FlightRecorder>>,
    ctx: WorkerContext,
}

impl BatchHarness {
    /// A harness over an ephemeral copy of `case_base`, with the cache
    /// configured from `config` (capacity / policy / admission) and the
    /// clock / flight recorder taken from the same config.
    pub fn new(case_base: &CaseBase, config: &ServiceConfig) -> BatchHarness {
        let recorder = (config.trace_capacity > 0)
            .then(|| Arc::new(FlightRecorder::new(config.trace_capacity)));
        let epoch = config.clock.now();
        BatchHarness {
            store: ShardStore::Ephemeral(case_base.clone()),
            metrics: Arc::new(ServiceMetrics::default()),
            recorder: recorder.clone(),
            ctx: WorkerContext::new(RetrievalCache::with_policy(
                config.cache_capacity,
                config.cache_policy,
                config.cache_admission,
            ))
            .with_kernel(config.kernel_path)
            .with_telemetry(Arc::clone(&config.clock), recorder, epoch),
        }
    }

    /// Drains the harness's flight recorder (empty when tracing is off).
    pub fn drain_trace(&self) -> TraceDump {
        match &self.recorder {
            Some(recorder) => recorder.drain(),
            None => TraceDump::default(),
        }
    }

    /// Processes `batch` exactly as one worker dispatch round would.
    pub fn run_batch(&mut self, batch: Vec<Job>) {
        process_batch(batch, &self.store, &self.metrics, &mut self.ctx);
    }

    /// Applies a mutation to the underlying store (bumps the generation,
    /// so the next batch invalidates the cache and recompiles the plane).
    pub fn apply(&mut self, mutation: &CaseMutation) -> Result<CaseMutation, ServiceError> {
        self.store.apply(mutation)
    }

    /// Metrics accumulated by the processed batches.
    pub fn metrics(&self) -> crate::MetricsSnapshot {
        self.metrics.snapshot()
    }

    /// The result cache's counter set.
    pub fn cache_stats(&self) -> rqfa_cache::CacheStats {
        self.ctx.cache.cache_stats()
    }

    /// Live result-cache entries.
    pub fn cache_len(&self) -> usize {
        self.ctx.cache.len()
    }

    /// Plane (re)compilations performed by the worker's engine.
    pub fn engine_recompiles(&self) -> u64 {
        self.ctx.engine.recompiles()
    }

    /// Scratch-arena growth events of the worker's engine.
    pub fn scratch_grows(&self) -> u64 {
        self.ctx.engine.scratch_grows()
    }
}

impl Job {
    /// Sends the reply and records the latency sample. Shed replies stay
    /// out of the histogram — a near-zero "latency" for dropped work
    /// would drown the p50/p99 of the traffic actually served. A send
    /// error means the caller dropped its ticket — the result is simply
    /// discarded.
    pub(crate) fn reply(self, outcome: Outcome, latency_us: u64, metrics: &ServiceMetrics) {
        if !outcome.is_shed() {
            metrics.class(self.class).latency.record(latency_us);
        }
        let _ = self.reply_tx.send(Reply {
            id: self.id,
            class: self.class,
            outcome,
            latency_us,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rqfa_core::paper;

    #[test]
    fn partition_covers_every_type_exactly_once() {
        let cb = paper::table1_case_base();
        for shards in 1..=4 {
            let slices = partition(&cb, shards);
            assert_eq!(slices.len(), shards);
            let total: usize = slices
                .iter()
                .flatten()
                .map(CaseBase::type_count)
                .sum();
            assert_eq!(total, cb.type_count());
            for slice in slices.iter().flatten() {
                for ty in slice.function_types() {
                    assert_eq!(
                        slice.function_types().len(),
                        slice.type_count(),
                    );
                    // Every type landed on its routed shard.
                    let original = cb.function_type(ty.id()).unwrap();
                    assert_eq!(original, ty);
                }
            }
        }
    }

    #[test]
    fn routing_is_stable_and_in_range() {
        for raw in 1..50u16 {
            let id = TypeId::new(raw).unwrap();
            for shards in 1..=8 {
                let s = route(id, shards);
                assert!(s < shards);
                assert_eq!(s, route(id, shards));
            }
        }
    }

    #[test]
    fn single_shard_partition_is_the_whole_case_base() {
        let cb = paper::table1_case_base();
        let slices = partition(&cb, 1);
        assert_eq!(slices[0].as_ref().unwrap(), &cb);
    }
}
