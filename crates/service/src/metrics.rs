//! Service metrics: per-class counters and latency histograms.
//!
//! Built on the shared [`rqfa_telemetry`] primitives (the same ones
//! `rqfa_rsoc::metrics` uses): relaxed atomic counters plus the
//! power-of-two [`LatencyHistogram`], read without any per-request
//! allocation on the hot path.
//!
//! ## Snapshot consistency
//!
//! The worker-side outcome counters — `completed`, `failed`,
//! `cache_hits`, `cache_misses`, `cache_stale`, `shed_deadline`,
//! `missed_deadline`, and the kernel [`OpCounts`] — are not incremented
//! one by one. Each worker accumulates a batch's deltas locally
//! (`BatchDeltas`) and commits them in one critical section
//! (`ServiceMetrics::commit`); `ServiceMetrics::snapshot` takes the
//! same gate. A snapshot therefore always sees whole batches: the cache
//! accounting identity `cache_hits + cache_misses == completed + failed`
//! holds at **every** snapshot point, not only after a drained shutdown
//! (the observability suite samples it under live load). Front-end
//! counters (`submitted`, `shed_queue_full`, `promoted`) and the latency
//! histogram are written outside the gate — they are not part of the
//! identity and must not serialize the submit path.

use core::fmt;
use core::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use rqfa_core::{OpCounts, QosClass};
use rqfa_telemetry::{ratio, Gauge, MetricSource, Sample};

/// The shared power-of-two latency histogram (µs). Bucket 0 holds
/// exactly 0 µs and reports 0 — not 1 — as its quantile upper bound.
pub use rqfa_telemetry::Histogram as LatencyHistogram;

/// Atomic counters for one QoS class.
#[derive(Debug, Default)]
pub struct ClassMetrics {
    /// Requests submitted in this class.
    pub submitted: AtomicU64,
    /// Requests answered with an allocation.
    pub completed: AtomicU64,
    /// Requests refused at admission because the queue was full.
    pub shed_queue_full: AtomicU64,
    /// Requests dropped at dispatch because their deadline budget expired.
    pub shed_deadline: AtomicU64,
    /// Requests refused at admission because the measured service rate
    /// predicted their deadline could not be met even if queued
    /// (predictive shedding; see `ServiceConfig::predictive_shed`).
    pub shed_predicted: AtomicU64,
    /// Completions served from the retrieval result cache.
    pub cache_hits: AtomicU64,
    /// Dispatched requests the cache could not answer (cold, stale, or
    /// insufficient coverage). Every dispatched request probes the cache
    /// exactly once, so `cache_hits + cache_misses == completed + failed`
    /// at every (gate-consistent) snapshot.
    pub cache_misses: AtomicU64,
    /// The subset of `cache_misses` that invalidated a stale entry
    /// (generation mismatch) — stale results are *never* served.
    pub cache_stale: AtomicU64,
    /// Requests that failed retrieval (e.g. unknown function type).
    pub failed: AtomicU64,
    /// Dispatches where deadline urgency promoted this class's lane head
    /// ahead of the weighted round-robin order.
    pub promoted: AtomicU64,
    /// Arbiter grants: every batch slot drawn from this class's lane,
    /// whatever the [`ArbiterMode`](crate::ArbiterMode). The measured
    /// *served share* — what FAIR_SHARE regulates — is this class's
    /// picks over the total across classes
    /// ([`ClassSnapshot::served_share`]).
    pub picks: AtomicU64,
    /// Requests that completed *after* their effective deadline (served,
    /// but late — the p99-vs-budget signal the EDF scheduler minimizes).
    pub missed_deadline: AtomicU64,
    /// End-to-end latency (submit → reply) histogram of *served* traffic
    /// (completed and failed requests; shed requests are excluded so
    /// their near-zero turnaround cannot mask the p50/p99 of real work).
    pub latency: LatencyHistogram,
}

/// One batch's worth of per-class outcome deltas, accumulated locally by
/// a worker and committed atomically (see the module docs).
#[derive(Debug, Default, Clone, Copy)]
pub(crate) struct ClassDeltas {
    pub completed: u64,
    pub shed_deadline: u64,
    pub cache_hits: u64,
    pub cache_misses: u64,
    pub cache_stale: u64,
    pub failed: u64,
    pub missed_deadline: u64,
}

/// Everything one dispatched batch changes about the outcome counters.
#[derive(Debug, Default)]
pub(crate) struct BatchDeltas {
    pub classes: [ClassDeltas; QosClass::COUNT],
    pub ops: OpCounts,
}

impl BatchDeltas {
    pub(crate) fn class(&mut self, class: QosClass) -> &mut ClassDeltas {
        &mut self.classes[class.index()]
    }

    pub(crate) fn clear(&mut self) {
        *self = BatchDeltas::default();
    }

    /// Accumulates one retrieval's kernel effort into the batch total.
    pub(crate) fn add_ops(&mut self, ops: &OpCounts) {
        self.ops.search_steps += ops.search_steps;
        self.ops.distances += ops.distances;
        self.ops.multiplies += ops.multiplies;
        self.ops.additions += ops.additions;
        self.ops.comparisons += ops.comparisons;
    }
}

/// Kernel operation counters aggregated across every dispatched batch.
#[derive(Debug, Default)]
pub struct OpsMetrics {
    /// Attribute-list words visited while searching.
    pub search_steps: AtomicU64,
    /// Absolute-difference computations.
    pub distances: AtomicU64,
    /// Multiplications.
    pub multiplies: AtomicU64,
    /// Additions/subtractions.
    pub additions: AtomicU64,
    /// Best-score comparisons.
    pub comparisons: AtomicU64,
}

impl OpsMetrics {
    fn add(&self, ops: &OpCounts) {
        self.search_steps.fetch_add(ops.search_steps, Ordering::Relaxed);
        self.distances.fetch_add(ops.distances, Ordering::Relaxed);
        self.multiplies.fetch_add(ops.multiplies, Ordering::Relaxed);
        self.additions.fetch_add(ops.additions, Ordering::Relaxed);
        self.comparisons.fetch_add(ops.comparisons, Ordering::Relaxed);
    }

    fn snapshot(&self) -> OpCounts {
        OpCounts {
            search_steps: self.search_steps.load(Ordering::Relaxed),
            distances: self.distances.load(Ordering::Relaxed),
            multiplies: self.multiplies.load(Ordering::Relaxed),
            additions: self.additions.load(Ordering::Relaxed),
            comparisons: self.comparisons.load(Ordering::Relaxed),
        }
    }
}

/// Shared metrics for a whole service (all shards write here).
#[derive(Debug, Default)]
pub struct ServiceMetrics {
    /// One counter block per QoS class, indexed by [`QosClass::index`].
    pub classes: [ClassMetrics; QosClass::COUNT],
    /// Batches dispatched by shard workers.
    pub batches: AtomicU64,
    /// Requests dispatched inside those batches.
    pub batched_requests: AtomicU64,
    /// Kernel effort aggregated over every scored batch.
    pub ops: OpsMetrics,
    /// The urgency margin (µs) the scheduler last arbitrated with —
    /// fixed in WRR, measured (2 × EWMA batch service time) under
    /// DYNAMIC_PRIORITY. Last-writer-wins across shards.
    pub sched_margin_us: Gauge,
    /// The batch-commit gate (see the module docs).
    gate: Mutex<()>,
}

impl ServiceMetrics {
    /// The counter block of one class.
    pub fn class(&self, class: QosClass) -> &ClassMetrics {
        &self.classes[class.index()]
    }

    /// Commits one batch's outcome deltas in a single critical section,
    /// so no snapshot can observe a half-applied batch.
    pub(crate) fn commit(&self, deltas: &BatchDeltas) {
        let _gate = self.gate.lock().expect("metrics gate poisoned");
        for (class, d) in QosClass::ALL.into_iter().zip(deltas.classes) {
            let m = self.class(class);
            m.completed.fetch_add(d.completed, Ordering::Relaxed);
            m.shed_deadline.fetch_add(d.shed_deadline, Ordering::Relaxed);
            m.cache_hits.fetch_add(d.cache_hits, Ordering::Relaxed);
            m.cache_misses.fetch_add(d.cache_misses, Ordering::Relaxed);
            m.cache_stale.fetch_add(d.cache_stale, Ordering::Relaxed);
            m.failed.fetch_add(d.failed, Ordering::Relaxed);
            m.missed_deadline.fetch_add(d.missed_deadline, Ordering::Relaxed);
        }
        self.ops.add(&deltas.ops);
    }

    /// Immutable snapshot for reporting, taken under the commit gate so
    /// it never observes a torn batch.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let _gate = self.gate.lock().expect("metrics gate poisoned");
        let classes = QosClass::ALL.map(|class| {
            let m = self.class(class);
            ClassSnapshot {
                class,
                submitted: m.submitted.load(Ordering::Relaxed),
                completed: m.completed.load(Ordering::Relaxed),
                shed_queue_full: m.shed_queue_full.load(Ordering::Relaxed),
                shed_deadline: m.shed_deadline.load(Ordering::Relaxed),
                shed_predicted: m.shed_predicted.load(Ordering::Relaxed),
                cache_hits: m.cache_hits.load(Ordering::Relaxed),
                cache_misses: m.cache_misses.load(Ordering::Relaxed),
                cache_stale: m.cache_stale.load(Ordering::Relaxed),
                failed: m.failed.load(Ordering::Relaxed),
                promoted: m.promoted.load(Ordering::Relaxed),
                picks: m.picks.load(Ordering::Relaxed),
                missed_deadline: m.missed_deadline.load(Ordering::Relaxed),
                p50_us: m.latency.quantile(0.50),
                p99_us: m.latency.quantile(0.99),
            }
        });
        MetricsSnapshot {
            classes,
            batches: self.batches.load(Ordering::Relaxed),
            batched_requests: self.batched_requests.load(Ordering::Relaxed),
            ops: self.ops.snapshot(),
            sched_margin_us: self.sched_margin_us.get(),
        }
    }
}

impl MetricSource for ServiceMetrics {
    fn collect(&self, out: &mut Vec<Sample>) {
        self.snapshot().collect(out);
    }
}

/// Point-in-time counters of one class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClassSnapshot {
    /// The class these counters describe.
    pub class: QosClass,
    /// Requests submitted.
    pub submitted: u64,
    /// Requests answered with an allocation.
    pub completed: u64,
    /// Requests shed at admission (queue full).
    pub shed_queue_full: u64,
    /// Requests shed at dispatch (deadline budget expired).
    pub shed_deadline: u64,
    /// Requests shed at admission by deadline prediction.
    pub shed_predicted: u64,
    /// Completions served from cache.
    pub cache_hits: u64,
    /// Dispatched requests the cache missed (cold, stale, or uncovered).
    pub cache_misses: u64,
    /// Misses that invalidated a stale entry (generation mismatch).
    pub cache_stale: u64,
    /// Failed retrievals.
    pub failed: u64,
    /// Dispatches promoted by deadline urgency.
    pub promoted: u64,
    /// Arbiter grants: batch slots drawn from this class's lane.
    pub picks: u64,
    /// Requests served after their effective deadline expired.
    pub missed_deadline: u64,
    /// Median end-to-end latency (bucket upper bound), µs.
    pub p50_us: u64,
    /// 99th-percentile end-to-end latency (bucket upper bound), µs.
    pub p99_us: u64,
}

impl ClassSnapshot {
    /// Total requests shed, for any reason.
    pub fn shed(&self) -> u64 {
        self.shed_queue_full + self.shed_deadline + self.shed_predicted
    }

    /// Cache hit rate against probes (`cache_hits / cache_lookups()`),
    /// in `[0, 1]`. Failed retrievals probe the cache too, so this stays
    /// honest when a class's misses mostly fail (hits-over-completions
    /// would read 100% for a class that almost never hit).
    pub fn hit_rate(&self) -> f64 {
        ratio(self.cache_hits, self.cache_lookups())
    }

    /// Cache probes this class issued (each dispatched request probes
    /// exactly once): `cache_hits + cache_misses`.
    pub fn cache_lookups(&self) -> u64 {
        self.cache_hits + self.cache_misses
    }

    /// This class's measured share of all arbiter grants, in `[0, 1]`
    /// (`picks / total_picks`) — the quantity FAIR_SHARE regulates
    /// toward `weight / Σ weights`.
    pub fn served_share(&self, total_picks: u64) -> f64 {
        ratio(self.picks, total_picks)
    }
}

/// Point-in-time counters of the whole service.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Per-class counters, most urgent first.
    pub classes: [ClassSnapshot; QosClass::COUNT],
    /// Batches dispatched.
    pub batches: u64,
    /// Requests dispatched inside batches.
    pub batched_requests: u64,
    /// Kernel effort aggregated over every scored batch.
    pub ops: OpCounts,
    /// The scheduler's urgency margin at snapshot time, µs (see
    /// [`ServiceMetrics::sched_margin_us`]).
    pub sched_margin_us: u64,
}

impl MetricsSnapshot {
    /// The snapshot of one class.
    pub fn class(&self, class: QosClass) -> &ClassSnapshot {
        &self.classes[class.index()]
    }

    /// Total completions across classes.
    pub fn completed(&self) -> u64 {
        self.classes.iter().map(|c| c.completed).sum()
    }

    /// Total sheds across classes.
    pub fn shed(&self) -> u64 {
        self.classes.iter().map(ClassSnapshot::shed).sum()
    }

    /// Mean batch occupancy (requests per dispatched batch).
    pub fn mean_batch_len(&self) -> f64 {
        ratio(self.batched_requests, self.batches)
    }

    /// Total arbiter grants across classes.
    pub fn picks(&self) -> u64 {
        self.classes.iter().map(|c| c.picks).sum()
    }

    /// Flattens the snapshot into registry samples: per-class counters
    /// under `<class>/`, service-wide batch and kernel-effort counters at
    /// the top level. These are exactly the names the `service_trace`
    /// trajectory (`BENCH_9.json`) publishes.
    pub fn collect(&self, out: &mut Vec<Sample>) {
        let total_picks = self.picks();
        for c in &self.classes {
            let class = c.class.to_string();
            out.push(Sample::count(format!("{class}/submitted"), c.submitted));
            out.push(Sample::count(format!("{class}/completed"), c.completed));
            out.push(Sample::count(format!("{class}/shed_queue_full"), c.shed_queue_full));
            out.push(Sample::count(format!("{class}/shed_deadline"), c.shed_deadline));
            out.push(Sample::count(format!("{class}/shed_predicted"), c.shed_predicted));
            out.push(Sample::count(format!("{class}/cache_hits"), c.cache_hits));
            out.push(Sample::count(format!("{class}/cache_misses"), c.cache_misses));
            out.push(Sample::count(format!("{class}/cache_stale"), c.cache_stale));
            out.push(Sample::count(format!("{class}/failed"), c.failed));
            out.push(Sample::count(format!("{class}/promoted"), c.promoted));
            out.push(Sample::count(format!("{class}/picks"), c.picks));
            out.push(Sample::ratio(
                format!("{class}/served_share"),
                c.served_share(total_picks),
            ));
            out.push(Sample::count(format!("{class}/missed_deadline"), c.missed_deadline));
            out.push(Sample::ratio(format!("{class}/hit_rate"), c.hit_rate()));
            out.push(Sample::us(format!("{class}/p50"), c.p50_us));
            out.push(Sample::us(format!("{class}/p99"), c.p99_us));
        }
        out.push(Sample::count("batches", self.batches));
        out.push(Sample::count("batched_requests", self.batched_requests));
        out.push(Sample::new("mean_batch_len", "ratio", self.mean_batch_len()));
        out.push(Sample::us("sched/margin_us", self.sched_margin_us));
        out.push(Sample::count("ops/search_steps", self.ops.search_steps));
        out.push(Sample::count("ops/distances", self.ops.distances));
        out.push(Sample::count("ops/multiplies", self.ops.multiplies));
        out.push(Sample::count("ops/additions", self.ops.additions));
        out.push(Sample::count("ops/comparisons", self.ops.comparisons));
    }
}

impl fmt::Display for MetricsSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:<9} {:>9} {:>9} {:>6} {:>9} {:>7} {:>6} {:>6} {:>6} {:>9} {:>9}",
            "class", "submitted", "completed", "shed", "hits", "hit %", "stale", "promo", "miss",
            "p50 µs", "p99 µs"
        )?;
        for c in &self.classes {
            writeln!(
                f,
                "{:<9} {:>9} {:>9} {:>6} {:>9} {:>6.1}% {:>6} {:>6} {:>6} {:>9} {:>9}",
                c.class.to_string(),
                c.submitted,
                c.completed,
                c.shed(),
                c.cache_hits,
                c.hit_rate() * 100.0,
                c.cache_stale,
                c.promoted,
                c.missed_deadline,
                c.p50_us,
                c.p99_us,
            )?;
        }
        writeln!(
            f,
            "batches: {} (mean occupancy {:.1}, kernel ops {})",
            self.batches,
            self.mean_batch_len(),
            self.ops.arithmetic(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_quantiles_bracket_observations() {
        let h = LatencyHistogram::default();
        for us in [1u64, 2, 3, 100, 100, 100, 100, 100, 100, 5000] {
            h.record(us);
        }
        assert_eq!(h.count(), 10);
        let p50 = h.quantile(0.5);
        assert!((64..=128).contains(&p50), "p50 {p50}");
        let p99 = h.quantile(0.99);
        assert!(p99 >= 4096, "p99 {p99}");
        assert_eq!(LatencyHistogram::default().quantile(0.5), 0);
    }

    #[test]
    fn zero_latency_quantile_reports_zero() {
        // Bucket 0 holds exactly 0 µs; its quantile upper bound must be
        // 0, not 1 (the historical off-by-one this pins).
        let h = LatencyHistogram::default();
        h.record(0);
        h.record(0);
        h.record(0);
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.quantile(0.99), 0);
    }

    #[test]
    fn snapshot_aggregates() {
        let m = ServiceMetrics::default();
        m.class(QosClass::Low).submitted.fetch_add(4, Ordering::Relaxed);
        m.class(QosClass::Low).shed_queue_full.fetch_add(2, Ordering::Relaxed);
        let mut deltas = BatchDeltas::default();
        deltas.class(QosClass::Low).completed = 2;
        deltas.class(QosClass::Low).cache_hits = 1;
        deltas.class(QosClass::Low).cache_misses = 1;
        deltas.ops.distances = 7;
        m.commit(&deltas);
        let snap = m.snapshot();
        assert_eq!(snap.class(QosClass::Low).shed(), 2);
        assert!((snap.class(QosClass::Low).hit_rate() - 0.5).abs() < 1e-12);
        assert_eq!(snap.completed(), 2);
        assert_eq!(snap.shed(), 2);
        assert_eq!(snap.ops.distances, 7);
        let text = snap.to_string();
        assert!(text.contains("CRITICAL") && text.contains("LOW"));
    }

    #[test]
    fn snapshot_collects_registry_samples() {
        let m = ServiceMetrics::default();
        let mut deltas = BatchDeltas::default();
        deltas.class(QosClass::High).completed = 3;
        deltas.class(QosClass::High).cache_misses = 3;
        m.commit(&deltas);
        let mut samples = Vec::new();
        MetricSource::collect(&m, &mut samples);
        let completed = samples.iter().find(|s| s.name == "HIGH/completed").unwrap();
        assert_eq!(completed.value, 3.0);
        assert!(samples.iter().any(|s| s.name == "batches"));
        assert!(samples.iter().any(|s| s.name == "ops/distances"));
    }
}
