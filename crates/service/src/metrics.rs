//! Service metrics: per-class counters and latency histograms.
//!
//! Follows the `rqfa_rsoc::metrics` idiom — plain counters, derived rates,
//! an exhaustive `Display` — but is shared mutably between shard workers
//! and observers, so everything is a relaxed atomic. Latencies go into
//! power-of-two bucket histograms from which p50/p99 are read without any
//! per-request allocation on the hot path.

use core::fmt;
use core::sync::atomic::{AtomicU64, Ordering};

use rqfa_core::QosClass;

/// Number of power-of-two latency buckets (bucket `i` holds latencies of
/// bit length `i`, i.e. `[2^(i-1), 2^i)` µs; bucket 0 holds exactly 0).
const BUCKETS: usize = 32;

/// Lock-free power-of-two latency histogram (microseconds).
#[derive(Debug, Default)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; BUCKETS],
}

impl LatencyHistogram {
    /// Records one latency observation.
    pub fn record(&self, latency_us: u64) {
        let bucket = (64 - latency_us.leading_zeros() as usize).min(BUCKETS - 1);
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// Upper bound (µs) of the bucket containing quantile `q` in `[0, 1]`,
    /// or 0 with no observations. An upper bound keeps the estimate
    /// conservative: the true quantile is never above the reported value's
    /// bucket ceiling.
    pub fn quantile_us(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        #[allow(clippy::cast_precision_loss, clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let rank = ((total as f64) * q.clamp(0.0, 1.0)).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, bucket) in self.buckets.iter().enumerate() {
            seen += bucket.load(Ordering::Relaxed);
            if seen >= rank {
                return if i == 0 { 1 } else { 1u64 << i };
            }
        }
        1u64 << (BUCKETS - 1)
    }
}

/// Atomic counters for one QoS class.
#[derive(Debug, Default)]
pub struct ClassMetrics {
    /// Requests submitted in this class.
    pub submitted: AtomicU64,
    /// Requests answered with an allocation.
    pub completed: AtomicU64,
    /// Requests refused at admission because the queue was full.
    pub shed_queue_full: AtomicU64,
    /// Requests dropped at dispatch because their deadline budget expired.
    pub shed_deadline: AtomicU64,
    /// Completions served from the retrieval result cache.
    pub cache_hits: AtomicU64,
    /// Dispatched requests the cache could not answer (cold, stale, or
    /// insufficient coverage). Every dispatched request probes the cache
    /// exactly once, so `cache_hits + cache_misses == completed + failed`
    /// after a drained shutdown.
    pub cache_misses: AtomicU64,
    /// The subset of `cache_misses` that invalidated a stale entry
    /// (generation mismatch) — stale results are *never* served.
    pub cache_stale: AtomicU64,
    /// Requests that failed retrieval (e.g. unknown function type).
    pub failed: AtomicU64,
    /// Dispatches where deadline urgency promoted this class's lane head
    /// ahead of the weighted round-robin order.
    pub promoted: AtomicU64,
    /// Requests that completed *after* their effective deadline (served,
    /// but late — the p99-vs-budget signal the EDF scheduler minimizes).
    pub missed_deadline: AtomicU64,
    /// End-to-end latency (submit → reply) histogram of *served* traffic
    /// (completed and failed requests; shed requests are excluded so
    /// their near-zero turnaround cannot mask the p50/p99 of real work).
    pub latency: LatencyHistogram,
}

/// Shared metrics for a whole service (all shards write here).
#[derive(Debug, Default)]
pub struct ServiceMetrics {
    /// One counter block per QoS class, indexed by [`QosClass::index`].
    pub classes: [ClassMetrics; QosClass::COUNT],
    /// Batches dispatched by shard workers.
    pub batches: AtomicU64,
    /// Requests dispatched inside those batches.
    pub batched_requests: AtomicU64,
}

impl ServiceMetrics {
    /// The counter block of one class.
    pub fn class(&self, class: QosClass) -> &ClassMetrics {
        &self.classes[class.index()]
    }

    /// Immutable snapshot for reporting.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let classes = QosClass::ALL.map(|class| {
            let m = self.class(class);
            ClassSnapshot {
                class,
                submitted: m.submitted.load(Ordering::Relaxed),
                completed: m.completed.load(Ordering::Relaxed),
                shed_queue_full: m.shed_queue_full.load(Ordering::Relaxed),
                shed_deadline: m.shed_deadline.load(Ordering::Relaxed),
                cache_hits: m.cache_hits.load(Ordering::Relaxed),
                cache_misses: m.cache_misses.load(Ordering::Relaxed),
                cache_stale: m.cache_stale.load(Ordering::Relaxed),
                failed: m.failed.load(Ordering::Relaxed),
                promoted: m.promoted.load(Ordering::Relaxed),
                missed_deadline: m.missed_deadline.load(Ordering::Relaxed),
                p50_us: m.latency.quantile_us(0.50),
                p99_us: m.latency.quantile_us(0.99),
            }
        });
        MetricsSnapshot {
            classes,
            batches: self.batches.load(Ordering::Relaxed),
            batched_requests: self.batched_requests.load(Ordering::Relaxed),
        }
    }
}

/// Point-in-time counters of one class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClassSnapshot {
    /// The class these counters describe.
    pub class: QosClass,
    /// Requests submitted.
    pub submitted: u64,
    /// Requests answered with an allocation.
    pub completed: u64,
    /// Requests shed at admission (queue full).
    pub shed_queue_full: u64,
    /// Requests shed at dispatch (deadline budget expired).
    pub shed_deadline: u64,
    /// Completions served from cache.
    pub cache_hits: u64,
    /// Dispatched requests the cache missed (cold, stale, or uncovered).
    pub cache_misses: u64,
    /// Misses that invalidated a stale entry (generation mismatch).
    pub cache_stale: u64,
    /// Failed retrievals.
    pub failed: u64,
    /// Dispatches promoted by deadline urgency.
    pub promoted: u64,
    /// Requests served after their effective deadline expired.
    pub missed_deadline: u64,
    /// Median end-to-end latency (bucket upper bound), µs.
    pub p50_us: u64,
    /// 99th-percentile end-to-end latency (bucket upper bound), µs.
    pub p99_us: u64,
}

impl ClassSnapshot {
    /// Total requests shed, for any reason.
    pub fn shed(&self) -> u64 {
        self.shed_queue_full + self.shed_deadline
    }

    /// Cache hit rate against probes (`cache_hits / cache_lookups()`),
    /// in `[0, 1]`. Failed retrievals probe the cache too, so this stays
    /// honest when a class's misses mostly fail (hits-over-completions
    /// would read 100% for a class that almost never hit).
    pub fn hit_rate(&self) -> f64 {
        ratio(self.cache_hits, self.cache_lookups())
    }

    /// Cache probes this class issued (each dispatched request probes
    /// exactly once): `cache_hits + cache_misses`.
    pub fn cache_lookups(&self) -> u64 {
        self.cache_hits + self.cache_misses
    }
}

/// Point-in-time counters of the whole service.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MetricsSnapshot {
    /// Per-class counters, most urgent first.
    pub classes: [ClassSnapshot; QosClass::COUNT],
    /// Batches dispatched.
    pub batches: u64,
    /// Requests dispatched inside batches.
    pub batched_requests: u64,
}

impl MetricsSnapshot {
    /// The snapshot of one class.
    pub fn class(&self, class: QosClass) -> &ClassSnapshot {
        &self.classes[class.index()]
    }

    /// Total completions across classes.
    pub fn completed(&self) -> u64 {
        self.classes.iter().map(|c| c.completed).sum()
    }

    /// Total sheds across classes.
    pub fn shed(&self) -> u64 {
        self.classes.iter().map(ClassSnapshot::shed).sum()
    }

    /// Mean batch occupancy (requests per dispatched batch).
    pub fn mean_batch_len(&self) -> f64 {
        ratio(self.batched_requests, self.batches)
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        #[allow(clippy::cast_precision_loss)]
        {
            num as f64 / den as f64
        }
    }
}

impl fmt::Display for MetricsSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:<9} {:>9} {:>9} {:>6} {:>9} {:>7} {:>6} {:>6} {:>6} {:>9} {:>9}",
            "class", "submitted", "completed", "shed", "hits", "hit %", "stale", "promo", "miss",
            "p50 µs", "p99 µs"
        )?;
        for c in &self.classes {
            writeln!(
                f,
                "{:<9} {:>9} {:>9} {:>6} {:>9} {:>6.1}% {:>6} {:>6} {:>6} {:>9} {:>9}",
                c.class.to_string(),
                c.submitted,
                c.completed,
                c.shed(),
                c.cache_hits,
                c.hit_rate() * 100.0,
                c.cache_stale,
                c.promoted,
                c.missed_deadline,
                c.p50_us,
                c.p99_us,
            )?;
        }
        writeln!(
            f,
            "batches: {} (mean occupancy {:.1})",
            self.batches,
            self.mean_batch_len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_quantiles_bracket_observations() {
        let h = LatencyHistogram::default();
        for us in [1u64, 2, 3, 100, 100, 100, 100, 100, 100, 5000] {
            h.record(us);
        }
        assert_eq!(h.count(), 10);
        let p50 = h.quantile_us(0.5);
        assert!((64..=128).contains(&p50), "p50 {p50}");
        let p99 = h.quantile_us(0.99);
        assert!(p99 >= 4096, "p99 {p99}");
        assert_eq!(LatencyHistogram::default().quantile_us(0.5), 0);
    }

    #[test]
    fn snapshot_aggregates() {
        let m = ServiceMetrics::default();
        m.class(QosClass::Low).submitted.fetch_add(4, Ordering::Relaxed);
        m.class(QosClass::Low).completed.fetch_add(2, Ordering::Relaxed);
        m.class(QosClass::Low).cache_hits.fetch_add(1, Ordering::Relaxed);
        m.class(QosClass::Low).cache_misses.fetch_add(1, Ordering::Relaxed);
        m.class(QosClass::Low).shed_queue_full.fetch_add(2, Ordering::Relaxed);
        let snap = m.snapshot();
        assert_eq!(snap.class(QosClass::Low).shed(), 2);
        assert!((snap.class(QosClass::Low).hit_rate() - 0.5).abs() < 1e-12);
        assert_eq!(snap.completed(), 2);
        assert_eq!(snap.shed(), 2);
        let text = snap.to_string();
        assert!(text.contains("CRITICAL") && text.contains("LOW"));
    }
}
