//! Pluggable eviction policies.
//!
//! A policy is pure bookkeeping: it never stores values, only decides
//! *which key dies next*. [`GenCache`](crate::GenCache) calls the hooks on
//! every resident-set change and asks [`EvictionPolicy::victim`] when it
//! needs room. All three built-ins keep their order in `BTreeMap`s keyed
//! by a monotone sequence number, so every operation is `O(log n)` and the
//! victim choice is a pure function of the operation history — two caches
//! fed the same operations evict identically, which is what the workspace
//! differential harness (`tests/cache_differential.rs`) leans on.
//!
//! | Policy | order | on hit | victim |
//! |--------|-------|--------|--------|
//! | [`Fifo`] | insertion | nothing (overwrites keep the original age) | oldest insertion |
//! | [`Lru`] | last access | re-age to newest | least recently used |
//! | [`TwoQ`] | probation/protected split | probation → protected (demoting the protected LRU when over the protected share) | probation LRU, else protected LRU |

use std::collections::{BTreeMap, HashMap};

/// Eviction bookkeeping driven by [`GenCache`](crate::GenCache).
///
/// Implementations must uphold one contract: the tracked key set always
/// equals the cache's resident key set (every `on_insert` is eventually
/// paired with an `on_remove` or a `victim` return), and `victim` returns
/// `None` only when nothing is tracked.
pub trait EvictionPolicy {
    /// A new key became resident.
    fn on_insert(&mut self, key: u64);
    /// A resident key was read with a valid stamp.
    fn on_hit(&mut self, key: u64);
    /// A resident key's value was overwritten in place. Defaults to
    /// [`EvictionPolicy::on_hit`] (a write is a use); FIFO overrides it to
    /// do nothing so overwrites keep the original insertion age — the
    /// exact-compat baseline behaviour.
    fn on_update(&mut self, key: u64) {
        self.on_hit(key);
    }
    /// A resident key was removed (stale drop or explicit removal).
    fn on_remove(&mut self, key: u64);
    /// Picks the next eviction victim and forgets it. `None` iff empty.
    fn victim(&mut self) -> Option<u64>;
    /// Forgets everything.
    fn clear(&mut self);
    /// Number of keys tracked (must mirror the cache's resident count).
    fn tracked(&self) -> usize;
}

/// One age-ordered key set: the shared bookkeeping of [`Fifo`] and
/// [`Lru`] (they differ only in *when* a key is re-aged).
#[derive(Debug, Clone, Default)]
struct SeqQueue {
    seq: u64,
    ages: HashMap<u64, u64>,
    queue: BTreeMap<u64, u64>,
}

impl SeqQueue {
    fn push(&mut self, key: u64) {
        self.seq += 1;
        self.ages.insert(key, self.seq);
        self.queue.insert(self.seq, key);
    }

    fn touch(&mut self, key: u64) {
        if let Some(age) = self.ages.get(&key).copied() {
            self.queue.remove(&age);
            self.push(key);
        }
    }

    fn remove(&mut self, key: u64) {
        if let Some(age) = self.ages.remove(&key) {
            self.queue.remove(&age);
        }
    }

    fn pop_oldest(&mut self) -> Option<u64> {
        let (_, key) = self.queue.pop_first()?;
        self.ages.remove(&key);
        Some(key)
    }

    fn clear(&mut self) {
        self.ages.clear();
        self.queue.clear();
    }

    fn len(&self) -> usize {
        self.ages.len()
    }
}

/// First-in-first-out: victims in insertion order, hits change nothing.
#[derive(Debug, Clone, Default)]
pub struct Fifo {
    order: SeqQueue,
}

impl Fifo {
    /// An empty FIFO order.
    pub fn new() -> Fifo {
        Fifo::default()
    }
}

impl EvictionPolicy for Fifo {
    fn on_insert(&mut self, key: u64) {
        self.order.push(key);
    }

    fn on_hit(&mut self, _key: u64) {}

    fn on_update(&mut self, _key: u64) {}

    fn on_remove(&mut self, key: u64) {
        self.order.remove(key);
    }

    fn victim(&mut self) -> Option<u64> {
        self.order.pop_oldest()
    }

    fn clear(&mut self) {
        self.order.clear();
    }

    fn tracked(&self) -> usize {
        self.order.len()
    }
}

/// Least-recently-used: every hit (and overwrite) re-ages the key.
#[derive(Debug, Clone, Default)]
pub struct Lru {
    order: SeqQueue,
}

impl Lru {
    /// An empty LRU order.
    pub fn new() -> Lru {
        Lru::default()
    }
}

impl EvictionPolicy for Lru {
    fn on_insert(&mut self, key: u64) {
        self.order.push(key);
    }

    fn on_hit(&mut self, key: u64) {
        self.order.touch(key);
    }

    fn on_remove(&mut self, key: u64) {
        self.order.remove(key);
    }

    fn victim(&mut self) -> Option<u64> {
        self.order.pop_oldest()
    }

    fn clear(&mut self) {
        self.order.clear();
    }

    fn tracked(&self) -> usize {
        self.order.len()
    }
}

/// Which 2Q segment a key lives in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Tier {
    Probation,
    Protected,
}

/// Two-queue (probation/protected) policy — a segmented LRU.
///
/// New keys enter *probation*; a hit promotes a probationer into the
/// *protected* segment (capped at ¾ of the cache capacity — overflow
/// demotes the protected LRU back to the probation MRU end). Victims come
/// from probation first, so a burst of one-hit wonders can only churn the
/// probation quarter while the re-referenced working set stays protected —
/// the scan resistance FIFO and plain LRU lack under zipf-skewed traffic.
#[derive(Debug, Clone)]
pub struct TwoQ {
    protected_cap: usize,
    seq: u64,
    probation: BTreeMap<u64, u64>,
    protected: BTreeMap<u64, u64>,
    tiers: HashMap<u64, (u64, Tier)>,
}

impl TwoQ {
    /// A 2Q order for a cache of `capacity` entries (the protected
    /// segment gets ¾ of it; with capacity ≤ 1 the policy degrades to
    /// FIFO because nothing fits in protected).
    pub fn new(capacity: usize) -> TwoQ {
        TwoQ {
            protected_cap: capacity.saturating_mul(3) / 4,
            seq: 0,
            probation: BTreeMap::new(),
            protected: BTreeMap::new(),
            tiers: HashMap::new(),
        }
    }

    /// The protected-segment bound this instance enforces.
    pub fn protected_capacity(&self) -> usize {
        self.protected_cap
    }

    fn promote(&mut self, key: u64) {
        let Some(&(age, tier)) = self.tiers.get(&key) else {
            return;
        };
        match tier {
            Tier::Probation => {
                self.probation.remove(&age);
                self.seq += 1;
                self.protected.insert(self.seq, key);
                self.tiers.insert(key, (self.seq, Tier::Protected));
                // Over the protected share: the protected LRU goes back on
                // probation (as its freshest entry, so it still outlives
                // the one-hit wonders queued behind it).
                while self.protected.len() > self.protected_cap {
                    let Some((_, demoted)) = self.protected.pop_first() else {
                        break;
                    };
                    self.seq += 1;
                    self.probation.insert(self.seq, demoted);
                    self.tiers.insert(demoted, (self.seq, Tier::Probation));
                }
            }
            Tier::Protected => {
                self.protected.remove(&age);
                self.seq += 1;
                self.protected.insert(self.seq, key);
                self.tiers.insert(key, (self.seq, Tier::Protected));
            }
        }
    }
}

impl EvictionPolicy for TwoQ {
    fn on_insert(&mut self, key: u64) {
        self.seq += 1;
        self.probation.insert(self.seq, key);
        self.tiers.insert(key, (self.seq, Tier::Probation));
    }

    fn on_hit(&mut self, key: u64) {
        self.promote(key);
    }

    fn on_remove(&mut self, key: u64) {
        if let Some((age, tier)) = self.tiers.remove(&key) {
            match tier {
                Tier::Probation => self.probation.remove(&age),
                Tier::Protected => self.protected.remove(&age),
            };
        }
    }

    fn victim(&mut self) -> Option<u64> {
        let (_, key) = self
            .probation
            .pop_first()
            .or_else(|| self.protected.pop_first())?;
        self.tiers.remove(&key);
        Some(key)
    }

    fn clear(&mut self) {
        self.probation.clear();
        self.protected.clear();
        self.tiers.clear();
    }

    fn tracked(&self) -> usize {
        self.tiers.len()
    }
}

/// The runtime-selectable policy knob (what `ServiceConfig` threads down
/// to each shard's cache).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CachePolicy {
    /// Insertion-order eviction — the exact-compat baseline.
    #[default]
    Fifo,
    /// Least-recently-used.
    Lru,
    /// Probation/protected segmented LRU ([`TwoQ`]).
    TwoQ,
}

impl CachePolicy {
    /// Every policy, for sweeps and differential suites.
    pub const ALL: [CachePolicy; 3] = [CachePolicy::Fifo, CachePolicy::Lru, CachePolicy::TwoQ];

    /// Builds the type-erased bookkeeping for a cache of `capacity`.
    pub fn build(self, capacity: usize) -> AnyPolicy {
        match self {
            CachePolicy::Fifo => AnyPolicy::Fifo(Fifo::new()),
            CachePolicy::Lru => AnyPolicy::Lru(Lru::new()),
            CachePolicy::TwoQ => AnyPolicy::TwoQ(TwoQ::new(capacity)),
        }
    }
}

impl core::fmt::Display for CachePolicy {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(match self {
            CachePolicy::Fifo => "fifo",
            CachePolicy::Lru => "lru",
            CachePolicy::TwoQ => "2q",
        })
    }
}

/// A [`CachePolicy`] materialized as one enum-dispatched policy, so caches
/// selected at runtime stay `Clone` and allocation-free on dispatch.
#[derive(Debug, Clone)]
pub enum AnyPolicy {
    /// FIFO bookkeeping.
    Fifo(Fifo),
    /// LRU bookkeeping.
    Lru(Lru),
    /// 2Q bookkeeping.
    TwoQ(TwoQ),
}

macro_rules! dispatch {
    ($self:ident, $p:ident => $body:expr) => {
        match $self {
            AnyPolicy::Fifo($p) => $body,
            AnyPolicy::Lru($p) => $body,
            AnyPolicy::TwoQ($p) => $body,
        }
    };
}

impl EvictionPolicy for AnyPolicy {
    fn on_insert(&mut self, key: u64) {
        dispatch!(self, p => p.on_insert(key));
    }

    fn on_hit(&mut self, key: u64) {
        dispatch!(self, p => p.on_hit(key));
    }

    fn on_update(&mut self, key: u64) {
        dispatch!(self, p => p.on_update(key));
    }

    fn on_remove(&mut self, key: u64) {
        dispatch!(self, p => p.on_remove(key));
    }

    fn victim(&mut self) -> Option<u64> {
        dispatch!(self, p => p.victim())
    }

    fn clear(&mut self) {
        dispatch!(self, p => p.clear());
    }

    fn tracked(&self) -> usize {
        dispatch!(self, p => p.tracked())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_victims_in_insertion_order_despite_hits() {
        let mut p = Fifo::new();
        for key in [1, 2, 3] {
            p.on_insert(key);
        }
        p.on_hit(1);
        p.on_update(1);
        assert_eq!(p.victim(), Some(1), "FIFO ignores hits and overwrites");
        assert_eq!(p.victim(), Some(2));
        assert_eq!(p.tracked(), 1);
    }

    #[test]
    fn lru_victims_least_recent_first() {
        let mut p = Lru::new();
        for key in [1, 2, 3] {
            p.on_insert(key);
        }
        p.on_hit(1);
        assert_eq!(p.victim(), Some(2), "1 was re-aged by the hit");
        p.on_update(3);
        assert_eq!(p.victim(), Some(1), "overwrites also re-age");
        assert_eq!(p.victim(), Some(3));
        assert_eq!(p.victim(), None);
    }

    #[test]
    fn two_q_protects_re_referenced_keys_from_scans() {
        // Capacity 8 → protected share 6. The hot pair is promoted, then
        // a scan of cold keys churns probation only.
        let mut p = TwoQ::new(8);
        p.on_insert(100);
        p.on_insert(200);
        p.on_hit(100);
        p.on_hit(200);
        for cold in 0..6 {
            p.on_insert(cold);
        }
        for _ in 0..6 {
            let v = p.victim().unwrap();
            assert!(v < 6, "scan keys evict first, got {v}");
        }
        // Only the protected pair is left.
        assert_eq!(p.tracked(), 2);
        assert!(matches!(p.victim(), Some(100 | 200)));
    }

    #[test]
    fn two_q_demotes_protected_overflow_back_to_probation() {
        // Capacity 4 → protected share 3. Promote four keys: the first
        // promoted (now the protected LRU) must fall back to probation
        // and become the next victim after the empty-probation check.
        let mut p = TwoQ::new(4);
        for key in [1, 2, 3, 4] {
            p.on_insert(key);
        }
        for key in [1, 2, 3, 4] {
            p.on_hit(key);
        }
        assert_eq!(p.victim(), Some(1), "demoted protected LRU dies first");
        assert_eq!(p.victim(), Some(2), "then the protected LRU");
    }

    #[test]
    fn two_q_tiny_capacity_degrades_to_fifo() {
        let mut p = TwoQ::new(1);
        assert_eq!(p.protected_capacity(), 0);
        p.on_insert(7);
        p.on_hit(7); // promoted then immediately demoted
        p.on_insert(8);
        assert_eq!(p.victim(), Some(7));
        assert_eq!(p.victim(), Some(8));
    }

    #[test]
    fn removal_forgets_keys_in_every_policy() {
        for policy in CachePolicy::ALL {
            let mut p = policy.build(8);
            p.on_insert(1);
            p.on_insert(2);
            p.on_hit(2);
            p.on_remove(2);
            assert_eq!(p.tracked(), 1, "{policy}");
            assert_eq!(p.victim(), Some(1), "{policy}");
            assert_eq!(p.victim(), None, "{policy}");
            p.on_insert(3);
            p.clear();
            assert_eq!(p.tracked(), 0, "{policy}");
        }
    }
}
