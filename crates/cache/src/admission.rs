//! One-hit-wonder admission: the doorkeeper in front of the resident set.
//!
//! Under skewed traffic most distinct fingerprints are seen exactly once;
//! caching them evicts keys that *would* have hit again. The filter makes
//! a key earn residence: the first sighting is only remembered, the second
//! is admitted. It is a direct-mapped table of fingerprints (no counters,
//! no hashing chains), so the memory bound is fixed and the behaviour is a
//! pure function of the sighting sequence — a slot collision forgets the
//! previous tenant, which at worst delays that key's admission by one
//! round trip (and is reproduced bit-exactly by the differential model).

/// Direct-mapped seen-once filter over request fingerprints.
#[derive(Debug, Clone)]
pub struct AdmissionFilter {
    slots: Vec<u64>,
    mask: u64,
}

/// SplitMix64 finalizer: spreads fingerprints over the slot table so
/// clustered fingerprints do not share slots.
fn mix(key: u64) -> u64 {
    let mut z = key.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl AdmissionFilter {
    /// A filter remembering on the order of `tracked` recent first
    /// sightings (rounded up to a power of two, clamped to
    /// `[16, 2^20]` slots).
    pub fn new(tracked: usize) -> AdmissionFilter {
        let slots = tracked.clamp(16, 1 << 20).next_power_of_two();
        AdmissionFilter {
            slots: vec![0; slots],
            mask: (slots - 1) as u64,
        }
    }

    /// Whether `key` has earned admission. A first sighting records the
    /// key and answers `false`; any later sighting (while its slot
    /// survives) answers `true`. The all-zero fingerprint is
    /// indistinguishable from an empty slot and is therefore always
    /// admitted — fingerprints are hashes, so this costs nothing real.
    pub fn admit(&mut self, key: u64) -> bool {
        #[allow(clippy::cast_possible_truncation)]
        let index = (mix(key) & self.mask) as usize;
        if self.slots[index] == key {
            true
        } else {
            self.slots[index] = key;
            false
        }
    }

    /// Number of slots (the memory bound).
    pub fn slot_count(&self) -> usize {
        self.slots.len()
    }

    /// Forgets every sighting.
    pub fn clear(&mut self) {
        self.slots.fill(0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn second_sighting_admits() {
        let mut f = AdmissionFilter::new(64);
        assert!(!f.admit(42));
        assert!(f.admit(42));
        assert!(f.admit(42), "admission is sticky while the slot lives");
    }

    #[test]
    fn one_hit_wonders_stay_out() {
        let mut f = AdmissionFilter::new(1 << 10);
        let admitted = (1..=500u64).filter(|&k| f.admit(k * 0x9E39)).count();
        assert!(
            admitted <= 5,
            "single-sighting keys should almost never be admitted, got {admitted}"
        );
    }

    #[test]
    fn sizing_is_clamped_and_padded() {
        assert_eq!(AdmissionFilter::new(0).slot_count(), 16);
        assert_eq!(AdmissionFilter::new(100).slot_count(), 128);
        assert_eq!(AdmissionFilter::new(usize::MAX).slot_count(), 1 << 20);
    }

    #[test]
    fn clear_forgets_sightings() {
        let mut f = AdmissionFilter::new(64);
        assert!(!f.admit(7));
        f.clear();
        assert!(!f.admit(7), "cleared filters start from scratch");
    }
}
