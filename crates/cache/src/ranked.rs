//! Cross-request n-best subsumption.
//!
//! A ranked retrieval result answers more than the query that produced
//! it: the top-*j* of a top-*k* list **is** the top-*j* list whenever
//! `j ≤ k` (ranking sorts then truncates, so smaller requests are exact
//! prefixes), and a list that ranked *every* evaluated candidate answers
//! any *j* at all. Storing one [`RankedEntry`] per fingerprint therefore
//! lets a cached n-best result serve later best-of (`j = 1`) and smaller
//! n-best lookups bit-identically to a recompute — without the cache
//! knowing anything about scores or engines (the element type is fully
//! generic).
//!
//! The subsumption argument only holds for *unfiltered* rankings: a
//! threshold-filtered list is not prefix-closed (elements drop out at
//! arbitrary ranks), so facades must not feed filtered results in.

/// A cached ranking: the top-`requested` of `evaluated` candidates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RankedEntry<T> {
    ranked: Vec<T>,
    requested: usize,
    evaluated: usize,
}

impl<T> RankedEntry<T> {
    /// Wraps the top-`requested` ranking of `evaluated` candidates.
    /// `ranked` must be the unfiltered prefix, i.e.
    /// `ranked.len() == min(requested, evaluated)`.
    pub fn new(ranked: Vec<T>, requested: usize, evaluated: usize) -> RankedEntry<T> {
        debug_assert_eq!(
            ranked.len(),
            requested.min(evaluated),
            "ranked list must be the unfiltered top-requested prefix"
        );
        RankedEntry {
            ranked,
            requested,
            evaluated,
        }
    }

    /// Whether every evaluated candidate made the list (a complete
    /// ranking answers any request size).
    pub fn is_complete(&self) -> bool {
        self.requested >= self.evaluated
    }

    /// Whether this entry can answer a top-`n` request exactly.
    pub fn covers(&self, n: usize) -> bool {
        n <= self.requested || self.is_complete()
    }

    /// The top-`n` prefix. Only exact when [`RankedEntry::covers`]`(n)`.
    pub fn prefix(&self, n: usize) -> &[T] {
        &self.ranked[..self.ranked.len().min(n)]
    }

    /// The single best candidate (a best-of lookup is `prefix(1)`).
    pub fn best(&self) -> Option<&T> {
        self.ranked.first()
    }

    /// The full stored ranking.
    pub fn ranked(&self) -> &[T] {
        &self.ranked
    }

    /// The request size this entry was computed for.
    pub fn requested(&self) -> usize {
        self.requested
    }

    /// How many candidates the producing scan evaluated.
    pub fn evaluated(&self) -> usize {
        self.evaluated
    }

    /// Totally-ordered coverage, for keep-the-wider-entry merges: a
    /// complete ranking beats any truncated one; among truncated ones the
    /// larger `requested` wins.
    pub fn coverage(&self) -> usize {
        if self.is_complete() {
            usize::MAX
        } else {
            self.requested
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truncated_entry_covers_smaller_requests_only() {
        let e = RankedEntry::new(vec![10, 20, 30], 3, 9);
        assert!(e.covers(1) && e.covers(3));
        assert!(!e.covers(4));
        assert_eq!(e.prefix(2), &[10, 20]);
        assert_eq!(e.best(), Some(&10));
        assert_eq!(e.coverage(), 3);
    }

    #[test]
    fn complete_entry_covers_everything() {
        let e = RankedEntry::new(vec![1, 2], 5, 2);
        assert!(e.is_complete());
        assert!(e.covers(100));
        assert_eq!(e.prefix(100), &[1, 2]);
        assert_eq!(e.coverage(), usize::MAX);
    }

    #[test]
    fn empty_ranking_of_nothing_is_complete() {
        let e: RankedEntry<u32> = RankedEntry::new(vec![], 1, 0);
        assert!(e.is_complete());
        assert!(e.covers(3));
        assert_eq!(e.best(), None);
    }
}
