//! # rqfa-cache — one generation-invalidated result cache
//!
//! The paper's §3 *bypass tokens* are a fingerprint-keyed result cache:
//! remember what a retrieval answered, reuse it while the case base is
//! unchanged. Two subsystems of this workspace grew that idea
//! independently — `rqfa_core::TokenCache` and
//! `rqfa_service::cache::RetrievalCache` — and both are now thin typed
//! facades over this crate, so invalidation and eviction semantics cannot
//! diverge again.
//!
//! The pieces, each usable on its own:
//!
//! * [`GenCache`] — the store: keyed by a `u64` fingerprint, stamped with
//!   a generic *generation* (`G: Copy + Eq`, instantiated with
//!   `rqfa_core::Generation` by both facades). A lookup hits only when the
//!   stamp matches; a mismatch is a *stale* miss that drops the entry on
//!   the spot, so the recompute that follows re-inserts it with a fresh
//!   age (the historical FIFO cache kept the old age — see
//!   `docs/caching.md` for why that was a bug).
//! * [`EvictionPolicy`] — pluggable eviction bookkeeping, with
//!   [`Fifo`] (the exact-compat baseline), [`Lru`], and [`TwoQ`]
//!   (probation/protected split) built in, and the [`CachePolicy`] knob to
//!   select one at runtime.
//! * [`AdmissionFilter`] — a one-hit-wonder doorkeeper: a key must be
//!   sighted twice before it is cached at all (the first sighting is
//!   only remembered, even when the cache has free room).
//! * [`RankedEntry`] — cross-request n-best subsumption: a cached top-*k*
//!   ranking answers later best-of and top-*j* (`j ≤ k`) lookups exactly.
//!
//! Everything is deterministic — no clocks, no randomness — so a
//! brute-force model can (and does, in the workspace test
//! `tests/cache_differential.rs`) replay arbitrary operation traces and
//! demand bit-identical observable behaviour from every policy.
//!
//! ```
//! use rqfa_cache::{CachePolicy, GenCache};
//!
//! let mut cache: GenCache<&str, u64> = GenCache::new(2, CachePolicy::Lru);
//! cache.insert(1, 0, "one");
//! cache.insert(2, 0, "two");
//! assert_eq!(cache.lookup(1, 0), Some(&"one"));
//! cache.insert(3, 0, "three");           // capacity 2: LRU evicts key 2
//! assert_eq!(cache.lookup(2, 0), None);
//! assert_eq!(cache.lookup(1, 1), None);  // generation moved on: stale
//! assert_eq!(cache.stats().stale, 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod admission;
mod policy;
mod ranked;

pub use admission::AdmissionFilter;
pub use policy::{AnyPolicy, CachePolicy, EvictionPolicy, Fifo, Lru, TwoQ};
pub use ranked::RankedEntry;

use std::collections::HashMap;

/// Cumulative observable counters of one [`GenCache`].
///
/// Invariants (asserted by the differential harness for every policy):
/// `hits + misses == lookups`, and `stale + uncovered <= misses` (both
/// are miss subcategories).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served (hit or miss).
    pub lookups: u64,
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups not answered (absent, stale, or insufficient coverage).
    pub misses: u64,
    /// Misses caused by a generation mismatch (entry dropped on the spot).
    pub stale: u64,
    /// Misses where the entry was fresh but failed the caller's coverage
    /// predicate (e.g. a top-5 lookup over a cached top-3).
    pub uncovered: u64,
    /// Stores accepted (fresh inserts and in-place overwrites).
    pub insertions: u64,
    /// Stores bounced by the admission filter (first-sighting keys).
    pub rejected: u64,
    /// Entries displaced by the eviction policy to make room.
    pub evictions: u64,
}

impl CacheStats {
    /// Hit rate in `[0, 1]`; 0 with no lookups.
    pub fn hit_rate(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            #[allow(clippy::cast_precision_loss)]
            {
                self.hits as f64 / self.lookups as f64
            }
        }
    }
}

/// One resident entry: the value plus the generation it was computed at.
#[derive(Debug, Clone)]
struct Slot<V, G> {
    stamp: G,
    value: V,
}

/// Fingerprint-keyed, generation-invalidated, policy-evicted store.
///
/// `V` is the cached value, `G` the generation stamp (any `Copy + Eq`
/// type — the workspace uses `rqfa_core::Generation`), `P` the eviction
/// bookkeeping (defaults to the runtime-selected [`AnyPolicy`]).
///
/// Semantics, normative for every facade (see `docs/caching.md`):
///
/// * a lookup hits iff the key is resident **and** its stamp equals the
///   lookup stamp (and the optional coverage predicate holds);
/// * a stale entry is removed at detection, so its eventual re-insert is
///   a *fresh* insert with a fresh age under every policy;
/// * an insert over a resident key overwrites in place — FIFO keeps the
///   original insertion age, LRU/2Q treat the write as a use;
/// * capacity 0 disables storage entirely (lookups still count);
/// * the admission filter only gates keys that are not resident.
#[derive(Debug, Clone)]
pub struct GenCache<V, G, P = AnyPolicy>
where
    G: Copy + Eq,
    P: EvictionPolicy,
{
    capacity: usize,
    map: HashMap<u64, Slot<V, G>>,
    policy: P,
    admission: Option<AdmissionFilter>,
    stats: CacheStats,
}

impl<V, G: Copy + Eq> GenCache<V, G, AnyPolicy> {
    /// A cache of at most `capacity` entries under the given policy
    /// (0 disables caching), without admission filtering.
    pub fn new(capacity: usize, policy: CachePolicy) -> GenCache<V, G, AnyPolicy> {
        GenCache::with_eviction(capacity, policy.build(capacity))
    }
}

impl<V, G: Copy + Eq, P: EvictionPolicy> GenCache<V, G, P> {
    /// A cache over caller-supplied eviction bookkeeping (the pluggable
    /// entry point; `P` may be a custom [`EvictionPolicy`]).
    pub fn with_eviction(capacity: usize, policy: P) -> GenCache<V, G, P> {
        GenCache {
            capacity,
            map: HashMap::with_capacity(capacity.min(1 << 16)),
            policy,
            admission: None,
            stats: CacheStats::default(),
        }
    }

    /// Adds (or removes) the one-hit-wonder admission filter, sized to
    /// this cache's capacity.
    #[must_use]
    pub fn with_admission(mut self, enabled: bool) -> GenCache<V, G, P> {
        self.admission = enabled.then(|| AdmissionFilter::new(self.capacity.saturating_mul(4)));
        self
    }

    /// Looks the key up at `stamp`. A generation mismatch counts as a
    /// stale miss and drops the entry.
    pub fn lookup(&mut self, key: u64, stamp: G) -> Option<&V> {
        self.lookup_if(key, stamp, |_| true)
    }

    /// Like [`GenCache::lookup`], but a fresh entry additionally has to
    /// satisfy `covers` — a failing predicate is an *uncovered* miss that
    /// leaves the entry resident (it still answers smaller requests).
    pub fn lookup_if(
        &mut self,
        key: u64,
        stamp: G,
        covers: impl FnOnce(&V) -> bool,
    ) -> Option<&V> {
        // Split borrows (and go through the entry API) so the hot hit
        // path probes the map exactly once.
        let GenCache {
            map,
            policy,
            stats,
            ..
        } = self;
        stats.lookups += 1;
        match map.entry(key) {
            std::collections::hash_map::Entry::Occupied(slot) => {
                if slot.get().stamp == stamp {
                    if covers(&slot.get().value) {
                        stats.hits += 1;
                        policy.on_hit(key);
                        Some(&slot.into_mut().value)
                    } else {
                        stats.misses += 1;
                        stats.uncovered += 1;
                        None
                    }
                } else {
                    // Invalidated by a mutation. Generations only grow, so
                    // the entry can never hit again — drop it now, which
                    // also re-ages the recompute that follows (the refresh
                    // enters as a brand-new insert under every policy).
                    stats.misses += 1;
                    stats.stale += 1;
                    slot.remove();
                    policy.on_remove(key);
                    None
                }
            }
            std::collections::hash_map::Entry::Vacant(_) => {
                stats.misses += 1;
                None
            }
        }
    }

    /// The resident value at `stamp` without touching statistics or
    /// recency (for merge decisions before an insert).
    pub fn peek(&self, key: u64, stamp: G) -> Option<&V> {
        self.map
            .get(&key)
            .filter(|slot| slot.stamp == stamp)
            .map(|slot| &slot.value)
    }

    /// Stores `value` computed at `stamp`. Overwrites in place when the
    /// key is resident (whatever its old stamp); otherwise the key passes
    /// admission (if configured), the policy evicts down to capacity, and
    /// the entry enters fresh.
    pub fn insert(&mut self, key: u64, stamp: G, value: V) {
        if self.capacity == 0 {
            return;
        }
        if let Some(slot) = self.map.get_mut(&key) {
            slot.stamp = stamp;
            slot.value = value;
            self.stats.insertions += 1;
            self.policy.on_update(key);
            self.debug_check();
            return;
        }
        if let Some(filter) = &mut self.admission {
            if !filter.admit(key) {
                self.stats.rejected += 1;
                return;
            }
        }
        while self.map.len() >= self.capacity {
            let Some(victim) = self.policy.victim() else {
                break;
            };
            self.map.remove(&victim);
            self.stats.evictions += 1;
        }
        self.map.insert(key, Slot { stamp, value });
        self.stats.insertions += 1;
        self.policy.on_insert(key);
        self.debug_check();
    }

    /// Records a *sighting* of `key` with the admission filter without
    /// storing anything — the doorkeeper learns the key repeated.
    ///
    /// A batching caller that **coalesces** duplicate lookups (several
    /// requests for one fingerprint served by a single computation)
    /// should call this once per coalesced duplicate: the repeats are
    /// real evidence the key is not a one-hit wonder, and without the
    /// note the filter would see only the single insert that follows and
    /// bounce it. No-op without an admission filter.
    pub fn note_sighting(&mut self, key: u64) {
        if let Some(filter) = &mut self.admission {
            let _ = filter.admit(key);
        }
    }

    /// Drops one key (e.g. a targeted invalidation), returning its value.
    pub fn remove(&mut self, key: u64) -> Option<V> {
        let slot = self.map.remove(&key)?;
        self.policy.on_remove(key);
        self.debug_check();
        Some(slot.value)
    }

    /// Drops every entry (statistics survive; the admission filter
    /// forgets its sightings).
    pub fn clear(&mut self) {
        self.map.clear();
        self.policy.clear();
        if let Some(filter) = &mut self.admission {
            filter.clear();
        }
    }

    /// Live entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The configured capacity bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Cumulative counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// The policy bookkeeping (e.g. to inspect a custom policy).
    pub fn policy(&self) -> &P {
        &self.policy
    }

    /// Resident set and policy bookkeeping must never drift apart.
    fn debug_check(&self) {
        debug_assert_eq!(
            self.map.len(),
            self.policy.tracked(),
            "policy bookkeeping desynced from the resident set"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache(capacity: usize, policy: CachePolicy) -> GenCache<u32, u64> {
        GenCache::new(capacity, policy)
    }

    #[test]
    fn hit_requires_matching_stamp_and_stale_drops() {
        for policy in CachePolicy::ALL {
            let mut c = cache(8, policy);
            c.insert(42, 0, 1);
            assert_eq!(c.lookup(42, 0), Some(&1), "{policy}");
            assert_eq!(c.lookup(42, 1), None, "{policy}");
            assert!(c.is_empty(), "{policy}: stale entries are dropped");
            let s = c.stats();
            assert_eq!((s.hits, s.misses, s.stale), (1, 1, 1), "{policy}");
            assert_eq!(s.lookups, s.hits + s.misses, "{policy}");
        }
    }

    #[test]
    fn stale_refresh_re_ages_the_entry() {
        // Regression for the historical FIFO cache: a refreshed entry
        // kept its original insertion age and could be evicted as the
        // oldest resident right after being recomputed. Unified
        // semantics: the stale drop makes the refresh a fresh insert.
        let mut c = cache(2, CachePolicy::Fifo);
        c.insert(1, 0, 10);
        c.insert(2, 0, 20);
        assert_eq!(c.lookup(1, 1), None, "stale");
        c.insert(1, 1, 11); // refresh: now the *newest* entry
        c.insert(3, 1, 30); // evicts 2 (the oldest), not the refreshed 1
        assert_eq!(c.lookup(1, 1), Some(&11));
        assert_eq!(c.lookup(2, 1), None);
        assert_eq!(c.lookup(3, 1), Some(&30));
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn zero_capacity_disables_storage_but_counts_lookups() {
        let mut c = cache(0, CachePolicy::Lru);
        c.insert(1, 0, 1);
        assert!(c.is_empty());
        assert_eq!(c.lookup(1, 0), None);
        let s = c.stats();
        assert_eq!((s.lookups, s.misses, s.insertions), (1, 1, 0));
    }

    #[test]
    fn admission_keeps_one_hit_wonders_out() {
        let mut c = cache(4, CachePolicy::TwoQ).with_admission(true);
        c.insert(1, 0, 1);
        assert!(c.is_empty(), "first sighting is only remembered");
        assert_eq!(c.stats().rejected, 1);
        c.insert(1, 0, 1);
        assert_eq!(c.len(), 1, "second sighting is admitted");
        // Resident keys bypass the filter entirely.
        c.insert(1, 1, 2);
        assert_eq!(c.lookup(1, 1), Some(&2));
    }

    #[test]
    fn admission_remembers_across_invalidation() {
        // A stale drop removes the entry but not its doorkeeper slot, so
        // the recompute after a mutation is admitted immediately — the
        // filter punishes one-hit wonders, not generation bumps.
        let mut c = cache(4, CachePolicy::Lru).with_admission(true);
        c.insert(7, 0, 1);
        c.insert(7, 0, 1);
        assert_eq!(c.len(), 1);
        assert_eq!(c.lookup(7, 1), None, "stale drop");
        c.insert(7, 1, 2);
        assert_eq!(c.lookup(7, 1), Some(&2), "readmitted without a bounce");
    }

    #[test]
    fn noted_sighting_earns_admission() {
        // A coalesced within-batch duplicate is a sighting: after one
        // note, the single insert that follows must be admitted.
        let mut c = cache(4, CachePolicy::Lru).with_admission(true);
        c.note_sighting(9);
        c.insert(9, 0, 1);
        assert_eq!(c.lookup(9, 0), Some(&1), "noted key admitted first insert");
        assert_eq!(c.stats().rejected, 0);
        // Without a filter the note is a no-op.
        let mut plain = cache(4, CachePolicy::Lru);
        plain.note_sighting(9);
        plain.insert(9, 0, 1);
        assert_eq!(plain.lookup(9, 0), Some(&1));
    }

    #[test]
    fn uncovered_miss_keeps_the_entry() {
        let mut c = cache(4, CachePolicy::Lru);
        c.insert(5, 0, 3);
        assert_eq!(c.lookup_if(5, 0, |&v| v > 10), None);
        let s = c.stats();
        assert_eq!((s.misses, s.uncovered, s.stale), (1, 1, 0));
        assert_eq!(c.len(), 1, "uncovered misses leave the entry resident");
        assert_eq!(c.lookup_if(5, 0, |&v| v > 1), Some(&3));
    }

    #[test]
    fn peek_and_remove_do_not_touch_lookup_stats() {
        let mut c = cache(4, CachePolicy::Fifo);
        c.insert(1, 0, 9);
        assert_eq!(c.peek(1, 0), Some(&9));
        assert_eq!(c.peek(1, 1), None);
        assert_eq!(c.remove(1), Some(9));
        assert_eq!(c.remove(1), None);
        assert_eq!(c.stats().lookups, 0);
    }

    #[test]
    fn eviction_respects_capacity_for_every_policy() {
        for policy in CachePolicy::ALL {
            let mut c = cache(3, policy);
            for key in 0..10 {
                c.insert(key, 0, u32::try_from(key).unwrap());
                assert!(c.len() <= 3, "{policy}");
            }
            assert_eq!(c.len(), 3, "{policy}");
            assert_eq!(c.stats().evictions, 7, "{policy}");
        }
    }

    #[test]
    fn clear_resets_entries_but_not_stats() {
        let mut c = cache(4, CachePolicy::TwoQ).with_admission(true);
        c.insert(1, 0, 1);
        c.insert(1, 0, 1);
        c.lookup(1, 0);
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.stats().hits, 1);
        c.insert(1, 0, 1);
        assert!(c.is_empty(), "admission filter was cleared too");
    }
}
