//! Property tests: the soft-core retrieval routine is bit-exact with the
//! fixed-point reference engine over random scenarios, and the assembler's
//! binary round trip holds for arbitrary generated programs.

use proptest::prelude::*;

use rqfa_core::{
    AttrBinding, AttrDecl, AttrId, BoundsTable, CaseBase, ExecutionTarget, FixedEngine,
    FunctionType, ImplId, ImplVariant, Request, TypeId,
};
use rqfa_memlist::{encode_case_base, encode_request};

use crate::{run_retrieval, CpuCostModel, Instr};

#[derive(Debug, Clone)]
struct Scenario {
    case_base: CaseBase,
    request: Request,
}

fn scenario() -> impl Strategy<Value = Scenario> {
    (1usize..=5, 1usize..=3).prop_flat_map(|(k, t)| {
        let variants = proptest::collection::vec(
            proptest::collection::vec(proptest::option::of(0u16..=50), k),
            1..=5,
        );
        let types = proptest::collection::vec(variants, t);
        let req = proptest::collection::vec(proptest::option::of(0u16..=50), k);
        let req_type = 1u16..=(t as u16);
        (types, req, req_type).prop_filter_map("nonempty request", move |(spec, req, rt)| {
            let decls: Vec<AttrDecl> = (1..=k as u16)
                .map(|x| AttrDecl::new(AttrId::new(x).unwrap(), format!("a{x}"), 0, 50).unwrap())
                .collect();
            let bounds = BoundsTable::from_decls(decls).unwrap();
            let types: Vec<FunctionType> = spec
                .iter()
                .enumerate()
                .map(|(ti, vars)| {
                    let vs: Vec<ImplVariant> = vars
                        .iter()
                        .enumerate()
                        .map(|(vi, attrs)| {
                            let bindings: Vec<AttrBinding> = attrs
                                .iter()
                                .enumerate()
                                .filter_map(|(ai, v)| {
                                    v.map(|value| {
                                        AttrBinding::new(
                                            AttrId::new((ai + 1) as u16).unwrap(),
                                            value,
                                        )
                                    })
                                })
                                .collect();
                            ImplVariant::new(
                                ImplId::new((vi + 1) as u16).unwrap(),
                                ExecutionTarget::GpProcessor,
                                bindings,
                            )
                            .unwrap()
                        })
                        .collect();
                    FunctionType::new(TypeId::new((ti + 1) as u16).unwrap(), format!("t{ti}"), vs)
                        .unwrap()
                })
                .collect();
            let case_base = CaseBase::new(bounds, types).unwrap();
            let mut builder = Request::builder(TypeId::new(rt).unwrap());
            let mut any = false;
            for (i, v) in req.iter().enumerate() {
                if let Some(value) = v {
                    builder = builder.constraint(AttrId::new((i + 1) as u16).unwrap(), *value);
                    any = true;
                }
            }
            if !any {
                return None;
            }
            Some(Scenario {
                case_base,
                request: builder.build().unwrap(),
            })
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Bit-exactness of the software routine against the reference engine.
    #[test]
    fn software_matches_fixed_engine(s in scenario()) {
        let reference = FixedEngine::new()
            .retrieve(&s.case_base, &s.request)
            .unwrap()
            .best
            .unwrap();
        let cb = encode_case_base(&s.case_base).unwrap();
        let req = encode_request(&s.request).unwrap();
        let sw = run_retrieval(&cb, &req, CpuCostModel::default()).unwrap();
        let (id, sim) = sw.best.unwrap();
        prop_assert_eq!(id, reference.impl_id.raw());
        prop_assert_eq!(sim, reference.similarity);
    }

    /// Software cycles are deterministic for a given scenario.
    #[test]
    fn software_cycles_deterministic(s in scenario()) {
        let cb = encode_case_base(&s.case_base).unwrap();
        let req = encode_request(&s.request).unwrap();
        let a = run_retrieval(&cb, &req, CpuCostModel::default()).unwrap();
        let b = run_retrieval(&cb, &req, CpuCostModel::default()).unwrap();
        prop_assert_eq!(a.stats.cycles, b.stats.cycles);
        prop_assert_eq!(a.best, b.best);
    }

    /// Instruction encode/decode is a bijection on generated instructions.
    #[test]
    fn isa_roundtrip(
        op in 0usize..12,
        rd in 0u8..32,
        ra in 0u8..32,
        rb in 0u8..32,
        imm in any::<i16>(),
        disp in -1024i16..=1023,
    ) {
        let instr = match op {
            0 => Instr::Add(rd, ra, rb),
            1 => Instr::Sub(rd, ra, rb),
            2 => Instr::Mul(rd, ra, rb),
            3 => Instr::Addi(rd, ra, imm),
            4 => Instr::Lhu(rd, ra, imm),
            5 => Instr::Sh(rd, ra, imm),
            6 => Instr::Beq(ra, rb, disp),
            7 => Instr::Blt(ra, rb, disp),
            8 => Instr::Ori(rd, ra, imm as u16),
            9 => Instr::Lui(rd, imm as u16),
            10 => Instr::Slli(rd, ra, (imm as u8) & 31),
            _ => Instr::J(imm as u16),
        };
        prop_assert_eq!(Instr::decode(instr.encode()).unwrap(), instr);
    }
}
