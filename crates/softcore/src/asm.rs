//! Two-pass assembler for the sc32 ISA.
//!
//! Syntax, one statement per line:
//!
//! ```text
//! ; full-line comment (also after statements)
//! label:
//!     addi  r1, r0, 5       ; ALU immediate
//!     lhu   r2, r1, 0       ; load halfword from [r1+0]
//!     beq   r2, r0, done    ; branch to label
//!     li    r3, 0x10000     ; pseudo: expands to lui/ori as needed
//!     j     label
//! done:
//!     halt
//! ```
//!
//! Pseudo-instructions: `li rd, imm32`, `mv rd, ra`, `nop`, `b label`.
//! Labels resolve to instruction indices; branches use pc-relative 11-bit
//! displacements, jumps use absolute 16-bit indices.

use std::collections::HashMap;

use crate::error::{AsmError, AsmErrorKind};
use crate::isa::{Instr, Reg};

/// An assembled program: decoded instructions plus the binary words.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Program {
    instrs: Vec<Instr>,
    labels: HashMap<String, u32>,
}

impl Program {
    /// The decoded instruction stream.
    pub fn instrs(&self) -> &[Instr] {
        &self.instrs
    }

    /// Binary machine words (what the paper calls "opcode").
    pub fn words(&self) -> Vec<u32> {
        self.instrs.iter().map(|i| i.encode()).collect()
    }

    /// Code size in bytes (fixed 32-bit instruction words).
    pub fn code_bytes(&self) -> usize {
        self.instrs.len() * 4
    }

    /// Resolved address (instruction index) of a label.
    pub fn label(&self, name: &str) -> Option<u32> {
        self.labels.get(name).copied()
    }

    /// Renders the machine words as Verilog `$readmemh` text (32-bit
    /// words) — the instruction-memory initialization file of an FPGA
    /// flow.
    pub fn to_memh(&self, title: &str) -> String {
        use core::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(out, "// {title}");
        let _ = writeln!(out, "// {} words x 32 bit", self.instrs.len());
        let _ = writeln!(out, "@0000");
        for word in self.words() {
            let _ = writeln!(out, "{word:08x}");
        }
        out
    }

    /// Disassembly listing with addresses.
    pub fn disassemble(&self) -> String {
        use core::fmt::Write;
        let mut out = String::new();
        let mut by_addr: Vec<(&String, &u32)> = self.labels.iter().collect();
        by_addr.sort_by_key(|(_, &a)| a);
        let mut label_iter = by_addr.into_iter().peekable();
        for (i, instr) in self.instrs.iter().enumerate() {
            while let Some((name, &addr)) = label_iter.peek() {
                if addr as usize == i {
                    let _ = writeln!(out, "{name}:");
                    label_iter.next();
                } else {
                    break;
                }
            }
            let _ = writeln!(out, "  {i:04}: {instr}");
        }
        out
    }
}

/// One parsed statement before label resolution.
enum Stmt {
    /// Fully resolved instruction.
    Ready(Instr),
    /// Branch with pending label: `(mnemonic, ra, rb, label)`.
    Branch(&'static str, Reg, Reg, String),
    /// Jump with pending label.
    Jump(String),
    /// Jump-and-link with pending label.
    JumpAndLink(Reg, String),
}

/// Assembles sc32 source text into a [`Program`].
///
/// # Errors
///
/// [`AsmError`] with the 1-based source line of the first problem.
///
/// ```
/// use rqfa_softcore::assemble;
///
/// let program = assemble("
///     li   r1, 10
///     li   r2, 0
/// loop:
///     add  r2, r2, r1
///     addi r1, r1, -1
///     bgt  r1, r0, loop
///     halt
/// ")?;
/// assert_eq!(program.label("loop"), Some(2));
/// # Ok::<(), rqfa_softcore::AsmError>(())
/// ```
pub fn assemble(source: &str) -> Result<Program, AsmError> {
    let mut stmts: Vec<(usize, Stmt)> = Vec::new();
    let mut labels: HashMap<String, u32> = HashMap::new();

    // Pass 1: parse, expand pseudos, record label addresses.
    for (lineno, raw_line) in source.lines().enumerate() {
        let line_number = lineno + 1;
        let mut line = raw_line;
        if let Some(pos) = line.find([';', '#']) {
            line = &line[..pos];
        }
        let mut rest = line.trim();
        // Leading labels (possibly several on one line).
        while let Some(colon) = rest.find(':') {
            let (head, tail) = rest.split_at(colon);
            let name = head.trim();
            if name.is_empty() || !is_ident(name) {
                return Err(AsmError {
                    line: line_number,
                    kind: AsmErrorKind::BadOperand(format!("bad label \"{name}\"")),
                });
            }
            if labels.insert(name.to_string(), stmts.len() as u32).is_some() {
                return Err(AsmError {
                    line: line_number,
                    kind: AsmErrorKind::DuplicateLabel(name.to_string()),
                });
            }
            rest = tail[1..].trim();
        }
        if rest.is_empty() {
            continue;
        }
        for stmt in parse_statement(rest, line_number)? {
            stmts.push((line_number, stmt));
        }
    }

    // Pass 2: resolve labels.
    let mut instrs = Vec::with_capacity(stmts.len());
    for (idx, (line, stmt)) in stmts.iter().enumerate() {
        let instr = match stmt {
            Stmt::Ready(i) => *i,
            Stmt::Branch(mnemonic, ra, rb, label) => {
                let target = *labels.get(label).ok_or_else(|| AsmError {
                    line: *line,
                    kind: AsmErrorKind::UnknownLabel(label.clone()),
                })?;
                let disp = i64::from(target) - (idx as i64 + 1);
                if disp < i64::from(Instr::MIN_BRANCH_DISP)
                    || disp > i64::from(Instr::MAX_BRANCH_DISP)
                {
                    return Err(AsmError {
                        line: *line,
                        kind: AsmErrorKind::BranchTooFar(label.clone()),
                    });
                }
                #[allow(clippy::cast_possible_truncation)]
                let disp = disp as i16;
                match *mnemonic {
                    "beq" => Instr::Beq(*ra, *rb, disp),
                    "bne" => Instr::Bne(*ra, *rb, disp),
                    "blt" => Instr::Blt(*ra, *rb, disp),
                    "bge" => Instr::Bge(*ra, *rb, disp),
                    "ble" => Instr::Ble(*ra, *rb, disp),
                    "bgt" => Instr::Bgt(*ra, *rb, disp),
                    _ => unreachable!("parse_statement only emits known branches"),
                }
            }
            Stmt::Jump(label) | Stmt::JumpAndLink(_, label) => {
                let target = *labels.get(label).ok_or_else(|| AsmError {
                    line: *line,
                    kind: AsmErrorKind::UnknownLabel(label.clone()),
                })?;
                let target = u16::try_from(target).map_err(|_| AsmError {
                    line: *line,
                    kind: AsmErrorKind::BranchTooFar(label.clone()),
                })?;
                match stmt {
                    Stmt::Jump(_) => Instr::J(target),
                    Stmt::JumpAndLink(rd, _) => Instr::Jal(*rd, target),
                    Stmt::Ready(_) | Stmt::Branch(..) => unreachable!("outer match arm"),
                }
            }
        };
        instrs.push(instr);
    }
    Ok(Program { instrs, labels })
}

fn is_ident(s: &str) -> bool {
    !s.is_empty()
        && s.chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_')
        && !s.starts_with(|c: char| c.is_ascii_digit())
}

fn parse_reg(token: &str, line: usize) -> Result<Reg, AsmError> {
    let bad = || AsmError {
        line,
        kind: AsmErrorKind::BadRegister(token.to_string()),
    };
    let digits = token.strip_prefix(['r', 'R']).ok_or_else(bad)?;
    let n: u8 = digits.parse().map_err(|_| bad())?;
    if n > 31 {
        return Err(bad());
    }
    Ok(n)
}

fn parse_imm(token: &str, line: usize) -> Result<i64, AsmError> {
    let bad = |_| AsmError {
        line,
        kind: AsmErrorKind::BadOperand(format!("bad immediate \"{token}\"")),
    };
    let (neg, body) = match token.strip_prefix('-') {
        Some(rest) => (true, rest),
        None => (false, token),
    };
    let value = if let Some(hex) = body.strip_prefix("0x").or_else(|| body.strip_prefix("0X")) {
        i64::from_str_radix(hex, 16).map_err(bad)?
    } else {
        body.parse::<i64>().map_err(bad)?
    };
    Ok(if neg { -value } else { value })
}

fn imm_i16(v: i64, line: usize) -> Result<i16, AsmError> {
    i16::try_from(v).map_err(|_| AsmError {
        line,
        kind: AsmErrorKind::ImmOutOfRange(v),
    })
}

fn imm_u16(v: i64, line: usize) -> Result<u16, AsmError> {
    u16::try_from(v).map_err(|_| AsmError {
        line,
        kind: AsmErrorKind::ImmOutOfRange(v),
    })
}

fn imm_shamt(v: i64, line: usize) -> Result<u8, AsmError> {
    if (0..=31).contains(&v) {
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        Ok(v as u8)
    } else {
        Err(AsmError {
            line,
            kind: AsmErrorKind::ImmOutOfRange(v),
        })
    }
}

#[allow(clippy::too_many_lines)]
fn parse_statement(text: &str, line: usize) -> Result<Vec<Stmt>, AsmError> {
    let (mnemonic, operand_text) = match text.split_once(char::is_whitespace) {
        Some((m, rest)) => (m, rest.trim()),
        None => (text, ""),
    };
    let mnemonic = mnemonic.to_ascii_lowercase();
    let ops: Vec<&str> = if operand_text.is_empty() {
        Vec::new()
    } else {
        operand_text.split(',').map(str::trim).collect()
    };
    let expect = |n: usize| -> Result<(), AsmError> {
        if ops.len() == n {
            Ok(())
        } else {
            Err(AsmError {
                line,
                kind: AsmErrorKind::BadOperand(format!(
                    "{mnemonic} expects {n} operands, got {}",
                    ops.len()
                )),
            })
        }
    };

    let stmt = match mnemonic.as_str() {
        // R-type.
        "add" | "sub" | "mul" | "and" | "or" | "xor" => {
            expect(3)?;
            let d = parse_reg(ops[0], line)?;
            let a = parse_reg(ops[1], line)?;
            let b = parse_reg(ops[2], line)?;
            Stmt::Ready(match mnemonic.as_str() {
                "add" => Instr::Add(d, a, b),
                "sub" => Instr::Sub(d, a, b),
                "mul" => Instr::Mul(d, a, b),
                "and" => Instr::And(d, a, b),
                "or" => Instr::Or(d, a, b),
                _ => Instr::Xor(d, a, b),
            })
        }
        // I-type ALU.
        "addi" => {
            expect(3)?;
            Stmt::Ready(Instr::Addi(
                parse_reg(ops[0], line)?,
                parse_reg(ops[1], line)?,
                imm_i16(parse_imm(ops[2], line)?, line)?,
            ))
        }
        "andi" | "ori" => {
            expect(3)?;
            let d = parse_reg(ops[0], line)?;
            let a = parse_reg(ops[1], line)?;
            let imm = imm_u16(parse_imm(ops[2], line)?, line)?;
            Stmt::Ready(if mnemonic == "andi" {
                Instr::Andi(d, a, imm)
            } else {
                Instr::Ori(d, a, imm)
            })
        }
        "lui" => {
            expect(2)?;
            Stmt::Ready(Instr::Lui(
                parse_reg(ops[0], line)?,
                imm_u16(parse_imm(ops[1], line)?, line)?,
            ))
        }
        "slli" | "srli" | "srai" => {
            expect(3)?;
            let d = parse_reg(ops[0], line)?;
            let a = parse_reg(ops[1], line)?;
            let sh = imm_shamt(parse_imm(ops[2], line)?, line)?;
            Stmt::Ready(match mnemonic.as_str() {
                "slli" => Instr::Slli(d, a, sh),
                "srli" => Instr::Srli(d, a, sh),
                _ => Instr::Srai(d, a, sh),
            })
        }
        // Memory.
        "lw" | "lhu" | "sw" | "sh" => {
            expect(3)?;
            let d = parse_reg(ops[0], line)?;
            let a = parse_reg(ops[1], line)?;
            let off = imm_i16(parse_imm(ops[2], line)?, line)?;
            Stmt::Ready(match mnemonic.as_str() {
                "lw" => Instr::Lw(d, a, off),
                "lhu" => Instr::Lhu(d, a, off),
                "sw" => Instr::Sw(d, a, off),
                _ => Instr::Sh(d, a, off),
            })
        }
        // Branches (label target).
        "beq" | "bne" | "blt" | "bge" | "ble" | "bgt" => {
            expect(3)?;
            let a = parse_reg(ops[0], line)?;
            let b = parse_reg(ops[1], line)?;
            let label = ops[2].to_string();
            if !is_ident(&label) {
                return Err(AsmError {
                    line,
                    kind: AsmErrorKind::BadOperand(format!("bad branch target \"{label}\"")),
                });
            }
            let m: &'static str = match mnemonic.as_str() {
                "beq" => "beq",
                "bne" => "bne",
                "blt" => "blt",
                "bge" => "bge",
                "ble" => "ble",
                _ => "bgt",
            };
            Stmt::Branch(m, a, b, label)
        }
        // Jumps.
        "j" | "b" => {
            expect(1)?;
            Stmt::Jump(ops[0].to_string())
        }
        "jal" => {
            expect(2)?;
            Stmt::JumpAndLink(parse_reg(ops[0], line)?, ops[1].to_string())
        }
        "jr" => {
            expect(1)?;
            Stmt::Ready(Instr::Jr(parse_reg(ops[0], line)?))
        }
        "halt" => {
            expect(0)?;
            Stmt::Ready(Instr::Halt)
        }
        // Pseudo-instructions.
        "nop" => {
            expect(0)?;
            Stmt::Ready(Instr::Add(0, 0, 0))
        }
        "mv" => {
            expect(2)?;
            Stmt::Ready(Instr::Add(
                parse_reg(ops[0], line)?,
                parse_reg(ops[1], line)?,
                0,
            ))
        }
        "li" => {
            expect(2)?;
            let d = parse_reg(ops[0], line)?;
            let v = parse_imm(ops[1], line)?;
            if !(-(1 << 31)..(1i64 << 32)).contains(&v) {
                return Err(AsmError {
                    line,
                    kind: AsmErrorKind::ImmOutOfRange(v),
                });
            }
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            let bits = v as u32;
            let lo = (bits & 0xFFFF) as u16;
            let hi = (bits >> 16) as u16;
            return Ok(if hi == 0 {
                vec![Stmt::Ready(Instr::Ori(d, 0, lo))]
            } else if lo == 0 {
                vec![Stmt::Ready(Instr::Lui(d, hi))]
            } else {
                vec![
                    Stmt::Ready(Instr::Lui(d, hi)),
                    Stmt::Ready(Instr::Ori(d, d, lo)),
                ]
            });
        }
        other => {
            return Err(AsmError {
                line,
                kind: AsmErrorKind::UnknownMnemonic(other.to_string()),
            })
        }
    };
    Ok(vec![stmt])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assembles_simple_loop() {
        let p = assemble(
            "
            li   r1, 3
            li   r2, 0
        loop:
            add  r2, r2, r1
            addi r1, r1, -1
            bgt  r1, r0, loop
            halt
            ",
        )
        .unwrap();
        assert_eq!(p.instrs().len(), 6);
        assert_eq!(p.label("loop"), Some(2));
        // bgt displacement: from instr 4 (+1 = 5) back to 2 → −3.
        assert_eq!(p.instrs()[4], Instr::Bgt(1, 0, -3));
    }

    #[test]
    fn li_expansion_sizes() {
        let p = assemble("li r1, 0xFFFF").unwrap();
        assert_eq!(p.instrs(), &[Instr::Ori(1, 0, 0xFFFF)]);
        let p = assemble("li r1, 0x10000").unwrap();
        assert_eq!(p.instrs(), &[Instr::Lui(1, 1)]);
        let p = assemble("li r1, 0x12345").unwrap();
        assert_eq!(p.instrs(), &[Instr::Lui(1, 1), Instr::Ori(1, 1, 0x2345)]);
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let p = assemble("; header\n\n   # another\n halt ; trailing\n").unwrap();
        assert_eq!(p.instrs(), &[Instr::Halt]);
    }

    #[test]
    fn duplicate_label_rejected() {
        let err = assemble("x:\nx:\n halt").unwrap_err();
        assert!(matches!(err.kind, AsmErrorKind::DuplicateLabel(_)));
        assert_eq!(err.line, 2);
    }

    #[test]
    fn unknown_label_rejected() {
        let err = assemble("j nowhere").unwrap_err();
        assert!(matches!(err.kind, AsmErrorKind::UnknownLabel(_)));
    }

    #[test]
    fn unknown_mnemonic_rejected() {
        let err = assemble("frobnicate r1, r2").unwrap_err();
        assert!(matches!(err.kind, AsmErrorKind::UnknownMnemonic(_)));
    }

    #[test]
    fn bad_register_rejected() {
        let err = assemble("add r1, r2, r32").unwrap_err();
        assert!(matches!(err.kind, AsmErrorKind::BadRegister(_)));
        let err = assemble("add r1, r2, x3").unwrap_err();
        assert!(matches!(err.kind, AsmErrorKind::BadRegister(_)));
    }

    #[test]
    fn imm_range_checked() {
        let err = assemble("addi r1, r0, 40000").unwrap_err();
        assert!(matches!(err.kind, AsmErrorKind::ImmOutOfRange(_)));
        assert!(assemble("addi r1, r0, -32768").is_ok());
        let err = assemble("slli r1, r0, 32").unwrap_err();
        assert!(matches!(err.kind, AsmErrorKind::ImmOutOfRange(_)));
    }

    #[test]
    fn pseudo_instructions() {
        let p = assemble("nop\nmv r3, r4\nb end\nend: halt").unwrap();
        assert_eq!(p.instrs()[0], Instr::Add(0, 0, 0));
        assert_eq!(p.instrs()[1], Instr::Add(3, 4, 0));
        assert_eq!(p.instrs()[2], Instr::J(3));
    }

    #[test]
    fn disassembly_lists_labels() {
        let p = assemble("start: addi r1, r0, 1\n j start").unwrap();
        let listing = p.disassemble();
        assert!(listing.contains("start:"));
        assert!(listing.contains("addi"));
    }

    #[test]
    fn memh_export_contains_all_words() {
        let p = assemble("addi r1, r0, 7\n halt").unwrap();
        let text = p.to_memh("demo");
        assert!(text.starts_with("// demo"));
        for word in p.words() {
            assert!(text.contains(&format!("{word:08x}")));
        }
        assert_eq!(text.lines().filter(|l| !l.starts_with(['/', '@'])).count(), 2);
    }

    #[test]
    fn binary_words_roundtrip() {
        let p = assemble("addi r1, r0, 7\n lhu r2, r1, 4\n halt").unwrap();
        for (w, i) in p.words().iter().zip(p.instrs()) {
            assert_eq!(Instr::decode(*w).unwrap(), *i);
        }
        assert_eq!(p.code_bytes(), 12);
    }
}
