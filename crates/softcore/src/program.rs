//! The CBR retrieval routine in sc32 assembly — the software side of the
//! paper's HW/SW comparison (§4.2: "Apart from the hardware implementation
//! we also mapped the retrieval algorithm into a C program running on a
//! Xilinx MicroBlaze soft-processor at 66 MHz").
//!
//! The routine implements exactly the fig. 6 algorithm over the canonical
//! memory images of [`rqfa_memlist`], with the same arithmetic as the
//! 16-bit datapath: `s_i = 0x8000 − sat(d · recip)`,
//! `acc += (s_i·w_i) >> 15`, strict-greater best update. Results are
//! therefore **bit-exact** with [`rqfa_core::FixedEngine`] and
//! `rqfa-hwsim` — only the cycle count differs, which is the entire point
//! of experiment E4.

use std::sync::OnceLock;

use crate::asm::{assemble, Program};

/// Byte address where the case-base image is loaded.
pub const CB_BASE: u32 = 0x0001_0000;
/// Byte address where the request image is loaded.
pub const REQ_BASE: u32 = 0x0006_0000;
/// Byte address of the 8-byte result block:
/// `+0` best id, `+2` best similarity, `+4` valid flag, `+6` fault code.
pub const RESULT_BASE: u32 = 0x0000_0100;
/// Data-memory size in bytes.
pub const MEM_SIZE: usize = 0x0008_0000;

/// Fault code: requested function type absent from the type directory.
pub const FAULT_TYPE_NOT_FOUND: u16 = 1;
/// Fault code: a request attribute has no supplemental entry.
pub const FAULT_SUPPLEMENTAL_MISS: u16 = 2;

/// The retrieval routine source (sc32 assembly).
pub const RETRIEVAL_SOURCE: &str = r"
; ---------------------------------------------------------------
; most-similar retrieval (Ullmann et al., fig. 6) for sc32
;
; register allocation:
;   r2  CB base           r3  REQ base         r28 result base
;   r4  tree base (byte)  r5  suppl base       r6  requested type
;   r7  type cursor       r8  impl cursor      r25 current impl id
;   r10 request cursor    r11 suppl cursor     r12 attr cursor
;   r13 accumulator       r14 best similarity  r15 best id
;   r16 best-valid flag   r17 attr id          r18 request value
;   r19 weight            r20 reciprocal       r21 case value
;   r22 local similarity  r23 0x8000           r24 0xFFFF (END)
;   r1  scratch
; ---------------------------------------------------------------
init:
    li   r2, 0x10000        ; CB_BASE
    li   r3, 0x60000        ; REQ_BASE
    li   r28, 0x100         ; RESULT_BASE
    li   r23, 0x8000        ; UQ1.15 one
    li   r24, 0xFFFF        ; list terminator
    lhu  r1, r2, 0          ; supplemental pointer (word address)
    slli r1, r1, 1
    add  r5, r2, r1         ; supplemental base (byte address)
    lhu  r1, r2, 2          ; tree pointer
    slli r1, r1, 1
    add  r4, r2, r1         ; type directory base
    lhu  r6, r3, 0          ; requested type id
    mv   r7, r4

type_loop:                  ; level-0 search
    lhu  r1, r7, 0
    beq  r1, r24, fault_type
    beq  r1, r6, type_found
    addi r7, r7, 4          ; next (id, ptr) block
    j    type_loop
type_found:
    lhu  r1, r7, 2          ; implementation-list pointer
    slli r1, r1, 1
    add  r8, r2, r1
    li   r16, 0             ; best registers cleared
    li   r14, 0
    li   r15, 0

impl_loop:                  ; level-1 walk
    lhu  r25, r8, 0         ; implementation id
    beq  r25, r24, deliver
    lhu  r1, r8, 2          ; attribute-list pointer
    slli r1, r1, 1
    add  r12, r2, r1        ; attr cursor (resumable, par. 4.1)
    mv   r11, r5            ; suppl cursor (resumable)
    addi r10, r3, 2         ; request cursor (skip type word)
    li   r13, 0             ; accumulator = 0

attr_loop:                  ; request-attribute walk
    lhu  r17, r10, 0        ; attribute id
    beq  r17, r24, impl_done
    lhu  r18, r10, 2        ; requested value
    lhu  r19, r10, 4        ; weight (UQ1.15)

suppl_loop:                 ; find reciprocal 1/(1+d_max)
    lhu  r1, r11, 0
    blt  r17, r1, fault_suppl ; overshoot or END: no entry
    beq  r1, r17, suppl_found
    addi r11, r11, 8        ; next 4-word block
    j    suppl_loop
suppl_found:
    lhu  r20, r11, 6        ; reciprocal word
    addi r11, r11, 8

search_loop:                ; find attribute in implementation list
    lhu  r1, r12, 0
    beq  r1, r24, attr_next ; END: missing attribute, s_i = 0
    beq  r1, r17, attr_found
    blt  r17, r1, attr_next ; passed it: missing, cursor stays
    addi r12, r12, 4
    j    search_loop
attr_found:
    lhu  r21, r12, 2        ; case value
    addi r12, r12, 4
    sub  r1, r18, r21       ; d = |request - case|
    bge  r1, r0, abs_done
    sub  r1, r21, r18
abs_done:
    mul  r1, r1, r20        ; d * recip  (integer x UQ1.15 = UQ1.15)
    ble  r1, r23, no_sat
    mv   r1, r23            ; saturate at 1.0
no_sat:
    sub  r22, r23, r1       ; s_i = 1.0 - sat(d * recip)
    mul  r1, r22, r19       ; s_i * w_i
    srli r1, r1, 15         ; truncate back to UQ1.15
    add  r13, r13, r1       ; accumulate

attr_next:
    addi r10, r10, 6        ; next request block
    j    attr_loop

impl_done:
    ble  r13, r23, acc_ok   ; saturate the accumulator
    mv   r13, r23
acc_ok:
    beq  r16, r0, best_update ; first implementation always loads
    ble  r13, r14, best_keep  ; strict greater-than update only
best_update:
    mv   r14, r13
    mv   r15, r25
    li   r16, 1
best_keep:
    addi r8, r8, 4          ; next implementation block
    j    impl_loop

deliver:
    sh   r15, r28, 0        ; best id
    sh   r14, r28, 2        ; best similarity
    sh   r16, r28, 4        ; valid flag
    li   r1, 0
    sh   r1, r28, 6         ; fault = 0
    halt
fault_type:
    li   r1, 1
    sh   r1, r28, 6
    halt
fault_suppl:
    li   r1, 2
    sh   r1, r28, 6
    halt
";

/// The retrieval routine in *compiler-style* code: locals live in a stack
/// frame and are reloaded every loop iteration, and the similarity term is
/// computed by a called helper — the code shape a MicroBlaze C compiler at
/// moderate optimization emits for the paper's 1984-byte C program. Same
/// algorithm, same bit-exact results, realistically worse schedule.
///
/// Experiment E4 reports the HW/SW ratio against **both** routines:
/// [`RETRIEVAL_SOURCE`] is the software lower bound (hand-tuned assembly),
/// this one reproduces the paper's compiled-C baseline.
pub const RETRIEVAL_SOURCE_COMPILED: &str = r"
; ---------------------------------------------------------------
; most-similar retrieval, compiler-style code generation:
;   * locals in a stack frame at r29, reloaded/spilled per iteration
;   * similarity term computed by a called subroutine (sim_term)
; frame layout (byte offsets from r29):
;   0 impl_cursor    4 suppl_cursor   8 attr_cursor   12 req_cursor
;  16 accumulator   20 best_sim      24 best_id       28 best_valid
;  32 impl_id       36 attr_id       40 req_value     44 weight
;  48 recip         52 saved r31     56 suppl_base    60 tree_base
; ---------------------------------------------------------------
init:
    li   r29, 0x200         ; frame pointer
    li   r2, 0x10000        ; CB_BASE
    li   r3, 0x60000        ; REQ_BASE
    li   r28, 0x100         ; RESULT_BASE
    li   r23, 0x8000
    li   r24, 0xFFFF
    lhu  r1, r2, 0
    slli r1, r1, 1
    add  r1, r2, r1
    sw   r1, r29, 56        ; suppl_base
    lhu  r1, r2, 2
    slli r1, r1, 1
    add  r1, r2, r1
    sw   r1, r29, 60        ; tree_base
    lhu  r6, r3, 0          ; requested type id
    lw   r7, r29, 60
type_loop:
    lhu  r1, r7, 0
    beq  r1, r24, fault_type
    beq  r1, r6, type_found
    addi r7, r7, 4
    j    type_loop
type_found:
    lhu  r1, r7, 2
    slli r1, r1, 1
    add  r1, r2, r1
    sw   r1, r29, 0         ; impl_cursor
    sw   r0, r29, 20        ; best_sim = 0
    sw   r0, r29, 24        ; best_id = 0
    sw   r0, r29, 28        ; best_valid = 0
impl_loop:
    lw   r8, r29, 0         ; reload impl cursor
    lhu  r25, r8, 0
    beq  r25, r24, deliver
    sw   r25, r29, 32       ; spill impl id
    lhu  r1, r8, 2
    slli r1, r1, 1
    add  r1, r2, r1
    sw   r1, r29, 8         ; attr_cursor
    lw   r1, r29, 56
    sw   r1, r29, 4         ; suppl_cursor = suppl_base
    addi r1, r3, 2
    sw   r1, r29, 12        ; req_cursor
    sw   r0, r29, 16        ; acc = 0
attr_loop:
    lw   r10, r29, 12       ; reload request cursor
    lhu  r17, r10, 0
    beq  r17, r24, impl_done
    sw   r17, r29, 36
    lhu  r18, r10, 2
    sw   r18, r29, 40
    lhu  r19, r10, 4
    sw   r19, r29, 44
suppl_loop:
    lw   r11, r29, 4        ; reload suppl cursor
    lhu  r1, r11, 0
    blt  r17, r1, fault_suppl
    beq  r1, r17, suppl_found
    addi r11, r11, 8
    sw   r11, r29, 4
    j    suppl_loop
suppl_found:
    lhu  r20, r11, 6
    addi r11, r11, 8
    sw   r11, r29, 4
    sw   r20, r29, 48       ; spill recip
search_loop:
    lw   r12, r29, 8        ; reload attr cursor
    lhu  r1, r12, 0
    beq  r1, r24, attr_next
    beq  r1, r17, attr_found
    blt  r17, r1, attr_next
    addi r12, r12, 4
    sw   r12, r29, 8
    j    search_loop
attr_found:
    lhu  r21, r12, 2
    addi r12, r12, 4
    sw   r12, r29, 8
    lw   r5, r29, 40        ; marshal arguments
    mv   r10, r21
    lw   r7, r29, 48
    lw   r9, r29, 44
    sw   r31, r29, 52       ; save link register
    jal  r31, sim_term
    lw   r31, r29, 52
    lw   r1, r29, 16        ; acc += term
    add  r1, r1, r10
    sw   r1, r29, 16
attr_next:
    lw   r10, r29, 12
    addi r10, r10, 6
    sw   r10, r29, 12
    j    attr_loop
impl_done:
    lw   r13, r29, 16
    ble  r13, r23, acc_ok
    mv   r13, r23
acc_ok:
    lw   r1, r29, 28        ; best_valid
    beq  r1, r0, best_update
    lw   r14, r29, 20
    ble  r13, r14, best_keep
best_update:
    sw   r13, r29, 20
    lw   r25, r29, 32
    sw   r25, r29, 24
    li   r1, 1
    sw   r1, r29, 28
best_keep:
    lw   r8, r29, 0
    addi r8, r8, 4
    sw   r8, r29, 0
    j    impl_loop
deliver:
    lw   r15, r29, 24
    sh   r15, r28, 0
    lw   r14, r29, 20
    sh   r14, r28, 2
    lw   r16, r29, 28
    sh   r16, r28, 4
    li   r1, 0
    sh   r1, r28, 6
    halt
fault_type:
    li   r1, 1
    sh   r1, r28, 6
    halt
fault_suppl:
    li   r1, 2
    sh   r1, r28, 6
    halt

; u16 sim_term(r5 = request value, r10 = case value, r7 = recip, r9 = weight)
; returns the weighted term in r10; clobbers r1.
sim_term:
    sub  r1, r5, r10
    bge  r1, r0, st_abs
    sub  r1, r10, r5
st_abs:
    mul  r1, r1, r7
    ble  r1, r23, st_nosat
    mv   r1, r23
st_nosat:
    sub  r1, r23, r1
    mul  r1, r1, r9
    srli r10, r1, 15
    jr   r31
";

/// Which software baseline to run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum ProgramKind {
    /// Hand-tuned assembly ([`RETRIEVAL_SOURCE`]) — software lower bound.
    HandOptimized,
    /// Compiler-style code ([`RETRIEVAL_SOURCE_COMPILED`]) — models the
    /// paper's compiled-C baseline.
    #[default]
    CompilerStyle,
}

/// The assembled retrieval routine (assembled once, cached).
///
/// # Panics
///
/// Never in practice: the embedded source is covered by unit tests; a
/// build that cannot assemble it is broken.
pub fn retrieval_program() -> &'static Program {
    static PROGRAM: OnceLock<Program> = OnceLock::new();
    PROGRAM.get_or_init(|| assemble(RETRIEVAL_SOURCE).expect("embedded retrieval routine"))
}

/// The assembled compiler-style routine (assembled once, cached).
///
/// # Panics
///
/// Never in practice (see [`retrieval_program`]).
pub fn retrieval_program_compiled() -> &'static Program {
    static PROGRAM: OnceLock<Program> = OnceLock::new();
    PROGRAM
        .get_or_init(|| assemble(RETRIEVAL_SOURCE_COMPILED).expect("embedded compiled routine"))
}

/// Resolves a [`ProgramKind`] to its assembled program.
pub fn program_for(kind: ProgramKind) -> &'static Program {
    match kind {
        ProgramKind::HandOptimized => retrieval_program(),
        ProgramKind::CompilerStyle => retrieval_program_compiled(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn program_assembles() {
        let p = retrieval_program();
        assert!(p.instrs().len() > 60, "substantial routine");
        assert!(p.label("impl_loop").is_some());
        assert!(p.label("deliver").is_some());
        // Paper comparison metric: our hand-written routine is well below
        // the MicroBlaze C build's 1984 bytes.
        assert!(p.code_bytes() < 1984);
    }

    #[test]
    fn disassembly_contains_key_blocks() {
        let listing = retrieval_program().disassemble();
        for label in ["type_loop", "suppl_loop", "search_loop", "attr_found"] {
            assert!(listing.contains(label), "missing {label}");
        }
    }
}
