//! Error types of the soft-core toolchain and simulator.

use core::fmt;

/// Errors produced by the two-pass assembler, with source line numbers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based source line.
    pub line: usize,
    /// What went wrong.
    pub kind: AsmErrorKind,
}

/// Assembly error categories.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum AsmErrorKind {
    /// Mnemonic not part of the sc32 ISA.
    UnknownMnemonic(String),
    /// Wrong operand count or malformed operand.
    BadOperand(String),
    /// Register name outside `r0..r31`.
    BadRegister(String),
    /// Immediate does not fit its field.
    ImmOutOfRange(i64),
    /// Label defined twice.
    DuplicateLabel(String),
    /// Branch/jump target never defined.
    UnknownLabel(String),
    /// Branch displacement too far for the 16-bit field.
    BranchTooFar(String),
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: ", self.line)?;
        match &self.kind {
            AsmErrorKind::UnknownMnemonic(m) => write!(f, "unknown mnemonic \"{m}\""),
            AsmErrorKind::BadOperand(s) => write!(f, "bad operand: {s}"),
            AsmErrorKind::BadRegister(s) => write!(f, "bad register \"{s}\""),
            AsmErrorKind::ImmOutOfRange(v) => write!(f, "immediate {v} out of range"),
            AsmErrorKind::DuplicateLabel(l) => write!(f, "duplicate label \"{l}\""),
            AsmErrorKind::UnknownLabel(l) => write!(f, "unknown label \"{l}\""),
            AsmErrorKind::BranchTooFar(l) => write!(f, "branch to \"{l}\" exceeds 16-bit range"),
        }
    }
}

impl std::error::Error for AsmError {}

/// Run-time faults of the simulated processor.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CpuError {
    /// The program counter left the instruction memory.
    PcOutOfRange {
        /// The faulting pc (instruction index).
        pc: u32,
    },
    /// A data access touched an unmapped address.
    MemFault {
        /// The faulting byte address.
        addr: u32,
    },
    /// A halfword/word access was not naturally aligned.
    Unaligned {
        /// The faulting byte address.
        addr: u32,
    },
    /// The instruction budget was exhausted (runaway program).
    InstructionLimit {
        /// Instructions executed when the limit fired.
        executed: u64,
    },
    /// A word could not be decoded into an instruction.
    BadInstruction {
        /// The raw 32-bit word.
        word: u32,
    },
    /// The retrieval program flagged a data-dependent failure (e.g. the
    /// requested type is absent from the case base) by writing a nonzero
    /// code to the result block.
    ProgramFault {
        /// The program-defined fault code.
        code: u16,
    },
}

impl fmt::Display for CpuError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CpuError::PcOutOfRange { pc } => write!(f, "pc {pc:#010x} outside instruction memory"),
            CpuError::MemFault { addr } => write!(f, "data access fault at {addr:#010x}"),
            CpuError::Unaligned { addr } => write!(f, "unaligned access at {addr:#010x}"),
            CpuError::InstructionLimit { executed } => {
                write!(f, "instruction limit reached after {executed} instructions")
            }
            CpuError::BadInstruction { word } => {
                write!(f, "cannot decode instruction word {word:#010x}")
            }
            CpuError::ProgramFault { code } => {
                write!(f, "retrieval program reported fault code {code}")
            }
        }
    }
}

impl std::error::Error for CpuError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let e = AsmError {
            line: 12,
            kind: AsmErrorKind::UnknownLabel("loop".into()),
        };
        assert!(e.to_string().contains("line 12") && e.to_string().contains("loop"));
        let c = CpuError::MemFault { addr: 0x100 };
        assert!(c.to_string().contains("0x00000100"));
    }

    #[test]
    fn errors_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<AsmError>();
        assert_send_sync::<CpuError>();
    }
}
