//! End-to-end software retrieval: load images, run the routine, read back
//! the result block.

use rqfa_fixed::Q15;
use rqfa_memlist::{CaseBaseImage, RequestImage};

use crate::cost::CpuCostModel;
use crate::cpu::{Cpu, RunStats};
use crate::error::CpuError;
use crate::mem::DataMemory;
use crate::program::{
    program_for, ProgramKind, CB_BASE, FAULT_SUPPLEMENTAL_MISS, FAULT_TYPE_NOT_FOUND, MEM_SIZE,
    REQ_BASE, RESULT_BASE,
};

/// Result of one software retrieval run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SoftRetrieval {
    /// Best `(impl id, similarity)`, or `None` if the implementation list
    /// was empty (valid flag clear).
    pub best: Option<(u16, Q15)>,
    /// Execution statistics (cycles, instructions, memory traffic).
    pub stats: RunStats,
    /// Code size in bytes (paper analog: 1984 bytes of MicroBlaze opcode).
    pub code_bytes: usize,
    /// Data footprint in bytes: both images plus the result block (paper
    /// analog: 1208 bytes of variables).
    pub data_bytes: usize,
}

/// Runs the sc32 retrieval routine over encoded memory images.
///
/// Bit-exact with [`rqfa_core::FixedEngine`] and `rqfa-hwsim`; the cycle
/// count is the software side of the paper's 8.5× comparison.
///
/// # Errors
///
/// * [`CpuError::ProgramFault`] with [`FAULT_TYPE_NOT_FOUND`] /
///   [`FAULT_SUPPLEMENTAL_MISS`] for data-dependent failures;
/// * [`CpuError::MemFault`] if an image does not fit its window;
/// * other [`CpuError`] values for genuine simulator faults.
///
/// ```
/// use rqfa_core::paper;
/// use rqfa_memlist::{encode_case_base, encode_request};
/// use rqfa_softcore::{run_retrieval, CpuCostModel};
///
/// let cb = encode_case_base(&paper::table1_case_base())?;
/// let request = encode_request(&paper::table1_request()?)?;
/// let result = run_retrieval(&cb, &request, CpuCostModel::default())?;
/// assert_eq!(result.best.unwrap().0, 2); // the DSP wins Table 1
/// println!("software retrieval: {} cycles", result.stats.cycles);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn run_retrieval(
    case_base: &CaseBaseImage,
    request: &RequestImage,
    cost: CpuCostModel,
) -> Result<SoftRetrieval, CpuError> {
    run_retrieval_with(case_base, request, cost, ProgramKind::HandOptimized)
}

/// Like [`run_retrieval`], selecting the software baseline explicitly:
/// [`ProgramKind::HandOptimized`] is the lower bound,
/// [`ProgramKind::CompilerStyle`] models the paper's compiled-C program.
///
/// # Errors
///
/// As [`run_retrieval`].
pub fn run_retrieval_with(
    case_base: &CaseBaseImage,
    request: &RequestImage,
    cost: CpuCostModel,
    kind: ProgramKind,
) -> Result<SoftRetrieval, CpuError> {
    let program = program_for(kind);
    let mut mem = DataMemory::new(MEM_SIZE);
    mem.load_words(CB_BASE, case_base.image().words())?;
    mem.load_words(REQ_BASE, request.image().words())?;
    let mut cpu = Cpu::new(program.instrs().to_vec(), mem, cost);
    // Budget: generous multiple of the total image size; the routine is
    // linear in it (§4.1), so hitting this means a malformed image.
    let budget = 800 + 400 * (case_base.image().len() as u64 + request.image().len() as u64);
    let stats = cpu.run(budget)?;

    let fault = cpu.mem().peek16(RESULT_BASE + 6)?;
    if fault == FAULT_TYPE_NOT_FOUND || fault == FAULT_SUPPLEMENTAL_MISS {
        return Err(CpuError::ProgramFault { code: fault });
    }
    let valid = cpu.mem().peek16(RESULT_BASE + 4)?;
    let best = if valid != 0 {
        let id = cpu.mem().peek16(RESULT_BASE)?;
        let sim = Q15::saturating_from_raw(cpu.mem().peek16(RESULT_BASE + 2)?);
        Some((id, sim))
    } else {
        None
    };
    Ok(SoftRetrieval {
        best,
        stats,
        code_bytes: program.code_bytes(),
        data_bytes: case_base.image().bytes() + request.image().bytes() + 8,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rqfa_core::{paper, FixedEngine, Request, TypeId};
    use rqfa_memlist::{encode_case_base, encode_request};

    fn images() -> (CaseBaseImage, RequestImage) {
        (
            encode_case_base(&paper::table1_case_base()).unwrap(),
            encode_request(&paper::table1_request().unwrap()).unwrap(),
        )
    }

    #[test]
    fn table1_bit_exact_with_fixed_engine() {
        let (cb, req) = images();
        let sw = run_retrieval(&cb, &req, CpuCostModel::default()).unwrap();
        let (id, sim) = sw.best.unwrap();
        let reference = FixedEngine::new()
            .retrieve(&paper::table1_case_base(), &paper::table1_request().unwrap())
            .unwrap()
            .best
            .unwrap();
        assert_eq!(id, reference.impl_id.raw());
        assert_eq!(sim, reference.similarity, "bit-exact");
        assert!(sw.stats.cycles > 200, "software takes many cycles");
    }

    #[test]
    fn type_not_found_reports_program_fault() {
        let (cb, _) = images();
        let req = encode_request(
            &Request::builder(TypeId::new(77).unwrap())
                .constraint(paper::ATTR_BITWIDTH, 8)
                .build()
                .unwrap(),
        )
        .unwrap();
        assert!(matches!(
            run_retrieval(&cb, &req, CpuCostModel::default()),
            Err(CpuError::ProgramFault {
                code: FAULT_TYPE_NOT_FOUND
            })
        ));
    }

    #[test]
    fn supplemental_miss_reports_program_fault() {
        let (cb, _) = images();
        let req = encode_request(
            &Request::builder(paper::FIR_EQUALIZER)
                .constraint(rqfa_core::AttrId::new(13).unwrap(), 1)
                .build()
                .unwrap(),
        )
        .unwrap();
        assert!(matches!(
            run_retrieval(&cb, &req, CpuCostModel::default()),
            Err(CpuError::ProgramFault {
                code: FAULT_SUPPLEMENTAL_MISS
            })
        ));
    }

    #[test]
    fn footprints_are_reported() {
        let (cb, req) = images();
        let sw = run_retrieval(&cb, &req, CpuCostModel::default()).unwrap();
        assert_eq!(
            sw.code_bytes,
            crate::program::retrieval_program().code_bytes()
        );
        assert_eq!(sw.data_bytes, cb.image().bytes() + req.image().bytes() + 8);
    }

    #[test]
    fn compiler_style_is_bit_exact_and_slower() {
        let (cb, req) = images();
        let tight = run_retrieval_with(&cb, &req, CpuCostModel::default(), ProgramKind::HandOptimized)
            .unwrap();
        let compiled =
            run_retrieval_with(&cb, &req, CpuCostModel::default(), ProgramKind::CompilerStyle)
                .unwrap();
        assert_eq!(tight.best, compiled.best, "same algorithm, same result");
        assert!(
            compiled.stats.cycles > tight.stats.cycles * 3 / 2,
            "compiler-style must be substantially slower: {} vs {}",
            compiled.stats.cycles,
            tight.stats.cycles
        );
        assert!(compiled.code_bytes > tight.code_bytes);
    }

    #[test]
    fn cost_model_scales_cycles() {
        let (cb, req) = images();
        let fast = run_retrieval(&cb, &req, CpuCostModel::ideal()).unwrap();
        let default = run_retrieval(&cb, &req, CpuCostModel::default()).unwrap();
        let slow = run_retrieval(&cb, &req, CpuCostModel::conservative()).unwrap();
        assert!(fast.stats.cycles < default.stats.cycles);
        assert!(default.stats.cycles < slow.stats.cycles);
        assert_eq!(fast.best, slow.best, "cost model must not change results");
    }
}
