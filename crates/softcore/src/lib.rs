//! # rqfa-softcore — MicroBlaze-class soft-core simulator + toolchain
//!
//! The software baseline of Ullmann et al. (DATE 2004): the paper mapped
//! the retrieval algorithm into C on a Xilinx MicroBlaze soft-processor at
//! 66 MHz and found the FPGA retrieval unit ~8.5× faster at equal clock.
//! This crate rebuilds that baseline from scratch:
//!
//! * [`Instr`] — the **sc32** ISA, a 32-register in-order RISC with fixed
//!   32-bit instruction words (encode/decode round trip included);
//! * [`assemble`] — a two-pass assembler with labels and pseudo-instructions;
//! * [`Cpu`] — the cycle-accounted simulator ([`CpuCostModel`]: 3-stage
//!   pipeline, 2-cycle block-RAM loads, 3-cycle multiplies and taken
//!   branches);
//! * [`RETRIEVAL_SOURCE`] — the fig. 6 retrieval routine in sc32 assembly,
//!   operating on the same memory images as the hardware unit;
//! * [`run_retrieval`] — end-to-end: load images, execute, read results.
//!
//! Results are bit-exact with [`rqfa_core::FixedEngine`] and `rqfa-hwsim`;
//! only cycle counts differ (experiment E4).
//!
//! ```
//! use rqfa_core::paper;
//! use rqfa_memlist::{encode_case_base, encode_request};
//! use rqfa_softcore::{run_retrieval, CpuCostModel};
//!
//! let cb = encode_case_base(&paper::table1_case_base())?;
//! let request = encode_request(&paper::table1_request()?)?;
//! let sw = run_retrieval(&cb, &request, CpuCostModel::default())?;
//! assert_eq!(sw.best.unwrap().0, 2);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod asm;
mod cost;
mod cpu;
mod error;
mod isa;
mod loader;
mod mem;
mod program;

pub use asm::{assemble, Program};
pub use cost::CpuCostModel;
pub use cpu::{Cpu, RunStats};
pub use error::{AsmError, AsmErrorKind, CpuError};
pub use isa::{Instr, Reg};
pub use loader::{run_retrieval, SoftRetrieval};
pub use mem::DataMemory;
pub use loader::run_retrieval_with;
pub use program::{
    program_for, retrieval_program, retrieval_program_compiled, ProgramKind, CB_BASE,
    FAULT_SUPPLEMENTAL_MISS, FAULT_TYPE_NOT_FOUND, MEM_SIZE, REQ_BASE, RESULT_BASE,
    RETRIEVAL_SOURCE, RETRIEVAL_SOURCE_COMPILED,
};

#[cfg(all(test, feature = "proptests"))]
mod proptests;
