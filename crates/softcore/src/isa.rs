//! The **sc32** instruction set — a MicroBlaze-class 32-bit in-order RISC.
//!
//! The paper's software baseline runs C code on a Xilinx MicroBlaze
//! soft-core at 66 MHz. sc32 is a clean-room stand-in with the same
//! character: 32 general-purpose registers (`r0` hard-wired to zero),
//! fixed 32-bit instruction words, single-issue 3-stage pipeline, one
//! load/store port to on-chip block RAM. The subset below is exactly what
//! the retrieval routine needs; encodings are documented for the binary
//! round trip (assembler → words → loader → decoder).
//!
//! | Format | Layout (MSB→LSB)                         | Used by |
//! |--------|-------------------------------------------|---------|
//! | R      | `op[6] rd[5] ra[5] rb[5] 0[11]`           | ALU reg-reg |
//! | I      | `op[6] rd[5] ra[5] imm16`                 | ALU imm, loads/stores |
//! | B      | `op[6] 0[5] ra[5] rb[5] disp11`           | compare-branches (±1024 instrs) |
//! | J      | `op[6] rd[5] 0[5] imm16`                  | jumps |

use core::fmt;

use crate::error::CpuError;

/// A register index `r0..r31`; `r0` always reads zero.
pub type Reg = u8;

/// One decoded sc32 instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum Instr {
    /// `rd = ra + rb`
    Add(Reg, Reg, Reg),
    /// `rd = ra - rb`
    Sub(Reg, Reg, Reg),
    /// `rd = ra * rb` (low 32 bits)
    Mul(Reg, Reg, Reg),
    /// `rd = ra & rb`
    And(Reg, Reg, Reg),
    /// `rd = ra | rb`
    Or(Reg, Reg, Reg),
    /// `rd = ra ^ rb`
    Xor(Reg, Reg, Reg),
    /// `rd = ra + sext(imm16)`
    Addi(Reg, Reg, i16),
    /// `rd = ra & zext(imm16)`
    Andi(Reg, Reg, u16),
    /// `rd = ra | zext(imm16)`
    Ori(Reg, Reg, u16),
    /// `rd = imm16 << 16`
    Lui(Reg, u16),
    /// `rd = ra << shamt`
    Slli(Reg, Reg, u8),
    /// `rd = ra >> shamt` (logical)
    Srli(Reg, Reg, u8),
    /// `rd = sext32(ra >> shamt)` (arithmetic)
    Srai(Reg, Reg, u8),
    /// `rd = mem32[ra + sext(imm16)]`
    Lw(Reg, Reg, i16),
    /// `rd = zext(mem16[ra + sext(imm16)])`
    Lhu(Reg, Reg, i16),
    /// `mem32[ra + sext(imm16)] = rd`
    Sw(Reg, Reg, i16),
    /// `mem16[ra + sext(imm16)] = rd[15:0]`
    Sh(Reg, Reg, i16),
    /// branch if `ra == rb` (pc-relative displacement in instructions)
    Beq(Reg, Reg, i16),
    /// branch if `ra != rb`
    Bne(Reg, Reg, i16),
    /// branch if `ra < rb` (signed)
    Blt(Reg, Reg, i16),
    /// branch if `ra >= rb` (signed)
    Bge(Reg, Reg, i16),
    /// branch if `ra <= rb` (signed)
    Ble(Reg, Reg, i16),
    /// branch if `ra > rb` (signed)
    Bgt(Reg, Reg, i16),
    /// absolute jump to instruction index `imm16`
    J(u16),
    /// `rd = pc + 1`, jump to `imm16`
    Jal(Reg, u16),
    /// jump to instruction index in `ra`
    Jr(Reg),
    /// stop execution
    Halt,
}

const OP_ADD: u32 = 0x01;
const OP_SUB: u32 = 0x02;
const OP_MUL: u32 = 0x03;
const OP_AND: u32 = 0x04;
const OP_OR: u32 = 0x05;
const OP_XOR: u32 = 0x06;
const OP_ADDI: u32 = 0x08;
const OP_ANDI: u32 = 0x09;
const OP_ORI: u32 = 0x0A;
const OP_LUI: u32 = 0x0B;
const OP_SLLI: u32 = 0x0C;
const OP_SRLI: u32 = 0x0D;
const OP_SRAI: u32 = 0x0E;
const OP_LW: u32 = 0x10;
const OP_LHU: u32 = 0x11;
const OP_SW: u32 = 0x12;
const OP_SH: u32 = 0x13;
const OP_BEQ: u32 = 0x18;
const OP_BNE: u32 = 0x19;
const OP_BLT: u32 = 0x1A;
const OP_BGE: u32 = 0x1B;
const OP_BLE: u32 = 0x1C;
const OP_BGT: u32 = 0x1D;
const OP_J: u32 = 0x20;
const OP_JAL: u32 = 0x21;
const OP_JR: u32 = 0x22;
const OP_HALT: u32 = 0x3F;

#[allow(clippy::cast_sign_loss)]
fn enc_r(op: u32, rd: Reg, ra: Reg, rb: Reg) -> u32 {
    (op << 26) | (u32::from(rd) << 21) | (u32::from(ra) << 16) | (u32::from(rb) << 11)
}

#[allow(clippy::cast_sign_loss)]
fn enc_i(op: u32, rd: Reg, ra: Reg, imm: u16) -> u32 {
    (op << 26) | (u32::from(rd) << 21) | (u32::from(ra) << 16) | u32::from(imm)
}

/// Branch displacement field: 11 bits, two's complement.
#[allow(clippy::cast_sign_loss)]
fn enc_b(op: u32, ra: Reg, rb: Reg, disp: i16) -> u32 {
    let d = (disp as u16) & 0x07FF;
    (op << 26) | (u32::from(ra) << 16) | (u32::from(rb) << 11) | u32::from(d)
}

fn dec_b_disp(word: u32) -> i16 {
    let d = (word & 0x07FF) as u16;
    // Sign-extend 11 bits.
    if d & 0x0400 != 0 {
        (d | 0xF800) as i16
    } else {
        d as i16
    }
}

impl Instr {
    /// Maximum branch displacement in instructions (11-bit field).
    pub const MAX_BRANCH_DISP: i32 = 1023;
    /// Minimum branch displacement in instructions.
    pub const MIN_BRANCH_DISP: i32 = -1024;

    /// Encodes the instruction into its 32-bit word.
    #[allow(clippy::cast_sign_loss)]
    pub fn encode(self) -> u32 {
        match self {
            Instr::Add(d, a, b) => enc_r(OP_ADD, d, a, b),
            Instr::Sub(d, a, b) => enc_r(OP_SUB, d, a, b),
            Instr::Mul(d, a, b) => enc_r(OP_MUL, d, a, b),
            Instr::And(d, a, b) => enc_r(OP_AND, d, a, b),
            Instr::Or(d, a, b) => enc_r(OP_OR, d, a, b),
            Instr::Xor(d, a, b) => enc_r(OP_XOR, d, a, b),
            Instr::Addi(d, a, imm) => enc_i(OP_ADDI, d, a, imm as u16),
            Instr::Andi(d, a, imm) => enc_i(OP_ANDI, d, a, imm),
            Instr::Ori(d, a, imm) => enc_i(OP_ORI, d, a, imm),
            Instr::Lui(d, imm) => enc_i(OP_LUI, d, 0, imm),
            Instr::Slli(d, a, sh) => enc_i(OP_SLLI, d, a, u16::from(sh)),
            Instr::Srli(d, a, sh) => enc_i(OP_SRLI, d, a, u16::from(sh)),
            Instr::Srai(d, a, sh) => enc_i(OP_SRAI, d, a, u16::from(sh)),
            Instr::Lw(d, a, off) => enc_i(OP_LW, d, a, off as u16),
            Instr::Lhu(d, a, off) => enc_i(OP_LHU, d, a, off as u16),
            Instr::Sw(d, a, off) => enc_i(OP_SW, d, a, off as u16),
            Instr::Sh(d, a, off) => enc_i(OP_SH, d, a, off as u16),
            Instr::Beq(a, b, disp) => enc_b(OP_BEQ, a, b, disp),
            Instr::Bne(a, b, disp) => enc_b(OP_BNE, a, b, disp),
            Instr::Blt(a, b, disp) => enc_b(OP_BLT, a, b, disp),
            Instr::Bge(a, b, disp) => enc_b(OP_BGE, a, b, disp),
            Instr::Ble(a, b, disp) => enc_b(OP_BLE, a, b, disp),
            Instr::Bgt(a, b, disp) => enc_b(OP_BGT, a, b, disp),
            Instr::J(target) => enc_i(OP_J, 0, 0, target),
            Instr::Jal(d, target) => enc_i(OP_JAL, d, 0, target),
            Instr::Jr(a) => enc_r(OP_JR, 0, a, 0),
            Instr::Halt => OP_HALT << 26,
        }
    }

    /// Decodes a 32-bit word.
    ///
    /// # Errors
    ///
    /// [`CpuError::BadInstruction`] for unknown opcodes.
    #[allow(clippy::cast_possible_truncation)]
    pub fn decode(word: u32) -> Result<Instr, CpuError> {
        let op = word >> 26;
        let rd = ((word >> 21) & 0x1F) as Reg;
        let ra = ((word >> 16) & 0x1F) as Reg;
        let rb = ((word >> 11) & 0x1F) as Reg;
        let imm = (word & 0xFFFF) as u16;
        let shamt = (word & 0x1F) as u8;
        Ok(match op {
            OP_ADD => Instr::Add(rd, ra, rb),
            OP_SUB => Instr::Sub(rd, ra, rb),
            OP_MUL => Instr::Mul(rd, ra, rb),
            OP_AND => Instr::And(rd, ra, rb),
            OP_OR => Instr::Or(rd, ra, rb),
            OP_XOR => Instr::Xor(rd, ra, rb),
            OP_ADDI => Instr::Addi(rd, ra, imm as i16),
            OP_ANDI => Instr::Andi(rd, ra, imm),
            OP_ORI => Instr::Ori(rd, ra, imm),
            OP_LUI => Instr::Lui(rd, imm),
            OP_SLLI => Instr::Slli(rd, ra, shamt),
            OP_SRLI => Instr::Srli(rd, ra, shamt),
            OP_SRAI => Instr::Srai(rd, ra, shamt),
            OP_LW => Instr::Lw(rd, ra, imm as i16),
            OP_LHU => Instr::Lhu(rd, ra, imm as i16),
            OP_SW => Instr::Sw(rd, ra, imm as i16),
            OP_SH => Instr::Sh(rd, ra, imm as i16),
            OP_BEQ => Instr::Beq(ra, rb, dec_b_disp(word)),
            OP_BNE => Instr::Bne(ra, rb, dec_b_disp(word)),
            OP_BLT => Instr::Blt(ra, rb, dec_b_disp(word)),
            OP_BGE => Instr::Bge(ra, rb, dec_b_disp(word)),
            OP_BLE => Instr::Ble(ra, rb, dec_b_disp(word)),
            OP_BGT => Instr::Bgt(ra, rb, dec_b_disp(word)),
            OP_J => Instr::J(imm),
            OP_JAL => Instr::Jal(rd, imm),
            OP_JR => Instr::Jr(ra),
            OP_HALT => Instr::Halt,
            _ => return Err(CpuError::BadInstruction { word }),
        })
    }

    /// Whether this is a control-transfer instruction.
    pub fn is_branch(&self) -> bool {
        matches!(
            self,
            Instr::Beq(..)
                | Instr::Bne(..)
                | Instr::Blt(..)
                | Instr::Bge(..)
                | Instr::Ble(..)
                | Instr::Bgt(..)
                | Instr::J(_)
                | Instr::Jal(..)
                | Instr::Jr(_)
        )
    }
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Instr::Add(d, a, b) => write!(f, "add   r{d}, r{a}, r{b}"),
            Instr::Sub(d, a, b) => write!(f, "sub   r{d}, r{a}, r{b}"),
            Instr::Mul(d, a, b) => write!(f, "mul   r{d}, r{a}, r{b}"),
            Instr::And(d, a, b) => write!(f, "and   r{d}, r{a}, r{b}"),
            Instr::Or(d, a, b) => write!(f, "or    r{d}, r{a}, r{b}"),
            Instr::Xor(d, a, b) => write!(f, "xor   r{d}, r{a}, r{b}"),
            Instr::Addi(d, a, i) => write!(f, "addi  r{d}, r{a}, {i}"),
            Instr::Andi(d, a, i) => write!(f, "andi  r{d}, r{a}, {i:#x}"),
            Instr::Ori(d, a, i) => write!(f, "ori   r{d}, r{a}, {i:#x}"),
            Instr::Lui(d, i) => write!(f, "lui   r{d}, {i:#x}"),
            Instr::Slli(d, a, s) => write!(f, "slli  r{d}, r{a}, {s}"),
            Instr::Srli(d, a, s) => write!(f, "srli  r{d}, r{a}, {s}"),
            Instr::Srai(d, a, s) => write!(f, "srai  r{d}, r{a}, {s}"),
            Instr::Lw(d, a, o) => write!(f, "lw    r{d}, r{a}, {o}"),
            Instr::Lhu(d, a, o) => write!(f, "lhu   r{d}, r{a}, {o}"),
            Instr::Sw(d, a, o) => write!(f, "sw    r{d}, r{a}, {o}"),
            Instr::Sh(d, a, o) => write!(f, "sh    r{d}, r{a}, {o}"),
            Instr::Beq(a, b, t) => write!(f, "beq   r{a}, r{b}, {t:+}"),
            Instr::Bne(a, b, t) => write!(f, "bne   r{a}, r{b}, {t:+}"),
            Instr::Blt(a, b, t) => write!(f, "blt   r{a}, r{b}, {t:+}"),
            Instr::Bge(a, b, t) => write!(f, "bge   r{a}, r{b}, {t:+}"),
            Instr::Ble(a, b, t) => write!(f, "ble   r{a}, r{b}, {t:+}"),
            Instr::Bgt(a, b, t) => write!(f, "bgt   r{a}, r{b}, {t:+}"),
            Instr::J(t) => write!(f, "j     {t}"),
            Instr::Jal(d, t) => write!(f, "jal   r{d}, {t}"),
            Instr::Jr(a) => write!(f, "jr    r{a}"),
            Instr::Halt => write!(f, "halt"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_samples() -> Vec<Instr> {
        vec![
            Instr::Add(1, 2, 3),
            Instr::Sub(31, 30, 29),
            Instr::Mul(4, 5, 6),
            Instr::And(7, 8, 9),
            Instr::Or(10, 11, 12),
            Instr::Xor(13, 14, 15),
            Instr::Addi(1, 2, -5),
            Instr::Addi(1, 2, 32767),
            Instr::Andi(3, 4, 0xFFFF),
            Instr::Ori(5, 6, 0x8000),
            Instr::Lui(7, 0xDEAD),
            Instr::Slli(8, 9, 31),
            Instr::Srli(10, 11, 15),
            Instr::Srai(12, 13, 1),
            Instr::Lw(14, 15, -4),
            Instr::Lhu(16, 17, 6),
            Instr::Sw(18, 19, 100),
            Instr::Sh(20, 21, -2),
            Instr::Beq(1, 2, -1024),
            Instr::Bne(3, 4, 1023),
            Instr::Blt(5, 6, -1),
            Instr::Bge(7, 8, 0),
            Instr::Ble(9, 10, 7),
            Instr::Bgt(11, 12, -7),
            Instr::J(0xBEEF),
            Instr::Jal(31, 0x1234),
            Instr::Jr(31),
            Instr::Halt,
        ]
    }

    #[test]
    fn encode_decode_roundtrip() {
        for instr in all_samples() {
            let word = instr.encode();
            let back = Instr::decode(word).unwrap();
            assert_eq!(instr, back, "word {word:#010x}");
        }
    }

    #[test]
    fn bad_opcode_rejected() {
        assert!(matches!(
            Instr::decode(0x3E << 26),
            Err(CpuError::BadInstruction { .. })
        ));
    }

    #[test]
    fn branch_displacement_sign_extension() {
        let w = Instr::Beq(0, 0, -1).encode();
        assert_eq!(Instr::decode(w).unwrap(), Instr::Beq(0, 0, -1));
        let w = Instr::Beq(0, 0, -1024).encode();
        assert_eq!(Instr::decode(w).unwrap(), Instr::Beq(0, 0, -1024));
    }

    #[test]
    fn branch_classification() {
        assert!(Instr::J(0).is_branch());
        assert!(Instr::Beq(0, 0, 0).is_branch());
        assert!(!Instr::Add(0, 0, 0).is_branch());
        assert!(!Instr::Halt.is_branch());
    }

    #[test]
    fn display_is_readable() {
        assert_eq!(Instr::Add(1, 2, 3).to_string(), "add   r1, r2, r3");
        assert!(Instr::Beq(1, 2, -4).to_string().contains("-4"));
    }
}
