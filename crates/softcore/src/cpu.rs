//! The sc32 processor simulator: single-issue, in-order, cycle-accounted
//! per [`CpuCostModel`].

use crate::cost::CpuCostModel;
use crate::error::CpuError;
use crate::isa::Instr;
use crate::mem::DataMemory;

/// Execution statistics of one program run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RunStats {
    /// Total simulated cycles.
    pub cycles: u64,
    /// Instructions retired.
    pub retired: u64,
    /// Data loads performed.
    pub loads: u64,
    /// Data stores performed.
    pub stores: u64,
    /// Taken control transfers.
    pub taken_branches: u64,
}

impl RunStats {
    /// Cycles per instruction.
    pub fn cpi(&self) -> f64 {
        if self.retired == 0 {
            return 0.0;
        }
        #[allow(clippy::cast_precision_loss)]
        {
            self.cycles as f64 / self.retired as f64
        }
    }
}

/// The simulated processor.
#[derive(Debug, Clone)]
pub struct Cpu {
    regs: [u32; 32],
    pc: u32,
    program: Vec<Instr>,
    mem: DataMemory,
    cost: CpuCostModel,
    stats: RunStats,
    halted: bool,
}

impl Cpu {
    /// Creates a processor with a program, data memory and cost model.
    pub fn new(program: Vec<Instr>, mem: DataMemory, cost: CpuCostModel) -> Cpu {
        Cpu {
            regs: [0; 32],
            pc: 0,
            program,
            mem,
            cost,
            stats: RunStats::default(),
            halted: false,
        }
    }

    /// Reads a register (`r0` is always zero).
    pub fn reg(&self, index: u8) -> u32 {
        if index == 0 {
            0
        } else {
            self.regs[usize::from(index)]
        }
    }

    fn write_reg(&mut self, index: u8, value: u32) {
        if index != 0 {
            self.regs[usize::from(index)] = value;
        }
    }

    /// The data memory (for result inspection).
    pub fn mem(&self) -> &DataMemory {
        &self.mem
    }

    /// Mutable access to the data memory (for loading images).
    pub fn mem_mut(&mut self) -> &mut DataMemory {
        &mut self.mem
    }

    /// Whether the program has executed `halt`.
    pub fn is_halted(&self) -> bool {
        self.halted
    }

    /// Statistics so far.
    pub fn stats(&self) -> RunStats {
        self.stats
    }

    /// Executes one instruction. Returns `false` once halted.
    ///
    /// # Errors
    ///
    /// [`CpuError`] on fetch/decode/memory faults.
    #[allow(clippy::too_many_lines, clippy::cast_sign_loss)]
    pub fn step(&mut self) -> Result<bool, CpuError> {
        if self.halted {
            return Ok(false);
        }
        let instr = *self
            .program
            .get(self.pc as usize)
            .ok_or(CpuError::PcOutOfRange { pc: self.pc })?;
        let mut next_pc = self.pc + 1;
        let mut taken = false;

        let sext = i64::from;
        match instr {
            Instr::Add(d, a, b) => {
                let v = self.reg(a).wrapping_add(self.reg(b));
                self.write_reg(d, v);
            }
            Instr::Sub(d, a, b) => {
                let v = self.reg(a).wrapping_sub(self.reg(b));
                self.write_reg(d, v);
            }
            Instr::Mul(d, a, b) => {
                let v = self.reg(a).wrapping_mul(self.reg(b));
                self.write_reg(d, v);
            }
            Instr::And(d, a, b) => self.write_reg(d, self.reg(a) & self.reg(b)),
            Instr::Or(d, a, b) => self.write_reg(d, self.reg(a) | self.reg(b)),
            Instr::Xor(d, a, b) => self.write_reg(d, self.reg(a) ^ self.reg(b)),
            Instr::Addi(d, a, imm) => {
                let v = self.reg(a).wrapping_add(imm as u32);
                self.write_reg(d, v);
            }
            Instr::Andi(d, a, imm) => self.write_reg(d, self.reg(a) & u32::from(imm)),
            Instr::Ori(d, a, imm) => self.write_reg(d, self.reg(a) | u32::from(imm)),
            Instr::Lui(d, imm) => self.write_reg(d, u32::from(imm) << 16),
            Instr::Slli(d, a, sh) => self.write_reg(d, self.reg(a) << sh),
            Instr::Srli(d, a, sh) => self.write_reg(d, self.reg(a) >> sh),
            Instr::Srai(d, a, sh) => {
                #[allow(clippy::cast_possible_wrap)]
                let v = (self.reg(a) as i32) >> sh;
                self.write_reg(d, v as u32);
            }
            Instr::Lw(d, a, off) => {
                let addr = self.reg(a).wrapping_add(off as u32);
                let v = self.mem.lw(addr)?;
                self.write_reg(d, v);
                self.stats.loads += 1;
            }
            Instr::Lhu(d, a, off) => {
                let addr = self.reg(a).wrapping_add(off as u32);
                let v = self.mem.lhu(addr)?;
                self.write_reg(d, u32::from(v));
                self.stats.loads += 1;
            }
            Instr::Sw(d, a, off) => {
                let addr = self.reg(a).wrapping_add(off as u32);
                self.mem.sw(addr, self.reg(d))?;
                self.stats.stores += 1;
            }
            Instr::Sh(d, a, off) => {
                let addr = self.reg(a).wrapping_add(off as u32);
                #[allow(clippy::cast_possible_truncation)]
                self.mem.sh(addr, self.reg(d) as u16)?;
                self.stats.stores += 1;
            }
            Instr::Beq(a, b, disp) => {
                taken = self.reg(a) == self.reg(b);
                if taken {
                    next_pc = branch_target(self.pc, disp);
                }
            }
            Instr::Bne(a, b, disp) => {
                taken = self.reg(a) != self.reg(b);
                if taken {
                    next_pc = branch_target(self.pc, disp);
                }
            }
            Instr::Blt(a, b, disp) => {
                taken = sext(self.reg(a) as i32) < sext(self.reg(b) as i32);
                if taken {
                    next_pc = branch_target(self.pc, disp);
                }
            }
            Instr::Bge(a, b, disp) => {
                taken = sext(self.reg(a) as i32) >= sext(self.reg(b) as i32);
                if taken {
                    next_pc = branch_target(self.pc, disp);
                }
            }
            Instr::Ble(a, b, disp) => {
                taken = sext(self.reg(a) as i32) <= sext(self.reg(b) as i32);
                if taken {
                    next_pc = branch_target(self.pc, disp);
                }
            }
            Instr::Bgt(a, b, disp) => {
                taken = sext(self.reg(a) as i32) > sext(self.reg(b) as i32);
                if taken {
                    next_pc = branch_target(self.pc, disp);
                }
            }
            Instr::J(target) => {
                taken = true;
                next_pc = u32::from(target);
            }
            Instr::Jal(d, target) => {
                taken = true;
                self.write_reg(d, self.pc + 1);
                next_pc = u32::from(target);
            }
            Instr::Jr(a) => {
                taken = true;
                next_pc = self.reg(a);
            }
            Instr::Halt => {
                self.halted = true;
            }
        }

        self.stats.retired += 1;
        self.stats.cycles += self.cost.cycles_for(&instr, taken);
        if taken {
            self.stats.taken_branches += 1;
        }
        self.pc = next_pc;
        Ok(!self.halted)
    }

    /// Runs until `halt` or the instruction budget is exhausted.
    ///
    /// # Errors
    ///
    /// Any [`CpuError`]; [`CpuError::InstructionLimit`] for runaways.
    pub fn run(&mut self, max_instrs: u64) -> Result<RunStats, CpuError> {
        let start = self.stats.retired;
        while self.step()? {
            if self.stats.retired - start >= max_instrs {
                return Err(CpuError::InstructionLimit {
                    executed: self.stats.retired - start,
                });
            }
        }
        Ok(self.stats)
    }
}

#[allow(clippy::cast_sign_loss)]
fn branch_target(pc: u32, disp: i16) -> u32 {
    pc.wrapping_add(1).wrapping_add(disp as u32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;

    fn run_program(src: &str) -> Cpu {
        let program = assemble(src).unwrap();
        let mut cpu = Cpu::new(program.instrs().to_vec(), DataMemory::new(4096), CpuCostModel::default());
        cpu.run(100_000).unwrap();
        cpu
    }

    #[test]
    fn arithmetic_loop_sums() {
        let cpu = run_program(
            "
            li   r1, 10
            li   r2, 0
        loop:
            add  r2, r2, r1
            addi r1, r1, -1
            bgt  r1, r0, loop
            halt
            ",
        );
        assert_eq!(cpu.reg(2), 55);
        assert!(cpu.is_halted());
    }

    #[test]
    fn r0_is_hardwired_zero() {
        let cpu = run_program("addi r0, r0, 42\n halt");
        assert_eq!(cpu.reg(0), 0);
    }

    #[test]
    fn memory_roundtrip_through_program() {
        let cpu = run_program(
            "
            li  r1, 0x100
            li  r2, 0xBEEF
            sh  r2, r1, 0
            lhu r3, r1, 0
            halt
            ",
        );
        assert_eq!(cpu.reg(3), 0xBEEF);
    }

    #[test]
    fn signed_comparisons() {
        let cpu = run_program(
            "
            li   r1, 5
            addi r2, r0, -3     ; r2 = -3
            li   r10, 0
            blt  r2, r1, neg_less
            j    end
        neg_less:
            li   r10, 1
        end:
            halt
            ",
        );
        assert_eq!(cpu.reg(10), 1, "-3 < 5 signed");
    }

    #[test]
    fn mul_and_shift() {
        let cpu = run_program(
            "
            li   r1, 1000
            li   r2, 3000
            mul  r3, r1, r2      ; 3_000_000
            srli r4, r3, 15
            halt
            ",
        );
        assert_eq!(cpu.reg(3), 3_000_000);
        assert_eq!(cpu.reg(4), 3_000_000 >> 15);
    }

    #[test]
    fn cycle_accounting_follows_cost_model() {
        let program = assemble("add r1, r0, r0\n lhu r2, r0, 0\n halt").unwrap();
        let mut cpu = Cpu::new(
            program.instrs().to_vec(),
            DataMemory::new(64),
            CpuCostModel::default(),
        );
        cpu.run(10).unwrap();
        // add(1) + lhu(2) + halt(1) = 4 cycles, 3 instructions.
        assert_eq!(cpu.stats().cycles, 4);
        assert_eq!(cpu.stats().retired, 3);
        assert!((cpu.stats().cpi() - 4.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn taken_branches_cost_more() {
        // Same instruction count; one program takes the branch.
        let not_taken = assemble("beq r1, r2, skip\n skip: halt").unwrap();
        let mut cpu1 = Cpu::new(
            not_taken.instrs().to_vec(),
            DataMemory::new(16),
            CpuCostModel::default(),
        );
        // r1 == r2 == 0 → taken (both registers zero!). Make them differ.
        let differs = assemble("li r1, 1\n beq r1, r0, skip\n skip: halt").unwrap();
        let mut cpu2 = Cpu::new(
            differs.instrs().to_vec(),
            DataMemory::new(16),
            CpuCostModel::default(),
        );
        cpu1.run(10).unwrap();
        cpu2.run(10).unwrap();
        assert_eq!(cpu1.stats().taken_branches, 1);
        assert_eq!(cpu2.stats().taken_branches, 0);
    }

    #[test]
    fn runaway_program_hits_limit() {
        let program = assemble("loop: j loop").unwrap();
        let mut cpu = Cpu::new(
            program.instrs().to_vec(),
            DataMemory::new(16),
            CpuCostModel::default(),
        );
        assert!(matches!(
            cpu.run(1000),
            Err(CpuError::InstructionLimit { .. })
        ));
    }

    #[test]
    fn pc_out_of_range_faults() {
        let program = assemble("add r1, r0, r0").unwrap(); // no halt
        let mut cpu = Cpu::new(
            program.instrs().to_vec(),
            DataMemory::new(16),
            CpuCostModel::default(),
        );
        assert!(matches!(cpu.run(10), Err(CpuError::PcOutOfRange { .. })));
    }

    #[test]
    fn jal_links_and_jr_returns() {
        let cpu = run_program(
            "
            li   r1, 0
            jal  r31, sub
            li   r1, 2          ; executed after return
            halt
        sub:
            li   r1, 1
            jr   r31
            ",
        );
        assert_eq!(cpu.reg(1), 2);
    }
}
