//! Cycle-cost model of the soft core.
//!
//! Modeled after a 3-stage area-optimized MicroBlaze on block RAM (the
//! paper's 66 MHz configuration): single-issue in-order, no caches (local
//! memory bus), no branch prediction. The per-class costs below are the
//! documented constants of experiment E4; the `speedup_hw_sw` bench sweeps
//! them to show how the HW/SW ratio depends on the assumption.

use crate::isa::Instr;

/// Cycles per instruction class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CpuCostModel {
    /// Plain ALU operations (add, sub, logic, shifts, lui).
    pub alu: u64,
    /// 32×32 multiply (MicroBlaze: 3 cycles).
    pub mul: u64,
    /// Loads (LMB block RAM: 2 cycles).
    pub load: u64,
    /// Stores (2 cycles on the same bus).
    pub store: u64,
    /// Taken branches / jumps (pipeline flush: 3 cycles).
    pub branch_taken: u64,
    /// Not-taken branches (fall through: 1 cycle).
    pub branch_not_taken: u64,
    /// The final `halt`.
    pub halt: u64,
}

impl Default for CpuCostModel {
    fn default() -> CpuCostModel {
        CpuCostModel {
            alu: 1,
            mul: 3,
            load: 2,
            store: 2,
            branch_taken: 3,
            branch_not_taken: 1,
            halt: 1,
        }
    }
}

impl CpuCostModel {
    /// An optimistic single-cycle machine (every instruction 1 cycle,
    /// taken branches included) — the lower bound of the E4 sweep.
    pub fn ideal() -> CpuCostModel {
        CpuCostModel {
            alu: 1,
            mul: 1,
            load: 1,
            store: 1,
            branch_taken: 1,
            branch_not_taken: 1,
            halt: 1,
        }
    }

    /// A pessimistic deeply-stalled configuration (slow memory, long
    /// flush) — the upper bound of the E4 sweep.
    pub fn conservative() -> CpuCostModel {
        CpuCostModel {
            alu: 1,
            mul: 4,
            load: 3,
            store: 3,
            branch_taken: 4,
            branch_not_taken: 1,
            halt: 1,
        }
    }

    /// Cycles for one executed instruction; branches pass whether they
    /// were taken.
    pub fn cycles_for(&self, instr: &Instr, taken: bool) -> u64 {
        match instr {
            Instr::Mul(..) => self.mul,
            Instr::Lw(..) | Instr::Lhu(..) => self.load,
            Instr::Sw(..) | Instr::Sh(..) => self.store,
            Instr::Beq(..)
            | Instr::Bne(..)
            | Instr::Blt(..)
            | Instr::Bge(..)
            | Instr::Ble(..)
            | Instr::Bgt(..) => {
                if taken {
                    self.branch_taken
                } else {
                    self.branch_not_taken
                }
            }
            Instr::J(_) | Instr::Jal(..) | Instr::Jr(_) => self.branch_taken,
            Instr::Halt => self.halt,
            _ => self.alu,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_costs_match_documentation() {
        let c = CpuCostModel::default();
        assert_eq!(c.cycles_for(&Instr::Add(1, 2, 3), false), 1);
        assert_eq!(c.cycles_for(&Instr::Mul(1, 2, 3), false), 3);
        assert_eq!(c.cycles_for(&Instr::Lhu(1, 2, 0), false), 2);
        assert_eq!(c.cycles_for(&Instr::Sh(1, 2, 0), false), 2);
        assert_eq!(c.cycles_for(&Instr::Beq(1, 2, 0), true), 3);
        assert_eq!(c.cycles_for(&Instr::Beq(1, 2, 0), false), 1);
        assert_eq!(c.cycles_for(&Instr::J(0), true), 3);
        assert_eq!(c.cycles_for(&Instr::Halt, false), 1);
    }

    #[test]
    fn sweep_bounds_are_ordered() {
        let lo = CpuCostModel::ideal();
        let hi = CpuCostModel::conservative();
        for i in [
            Instr::Mul(0, 0, 0),
            Instr::Lhu(0, 0, 0),
            Instr::Beq(0, 0, 0),
        ] {
            assert!(lo.cycles_for(&i, true) <= hi.cycles_for(&i, true));
        }
    }
}
