//! Byte-addressed data memory of the soft core (little-endian, on-chip
//! BRAM via the local memory bus).

use crate::error::CpuError;

/// Linear little-endian data memory with alignment checking.
#[derive(Debug, Clone)]
pub struct DataMemory {
    bytes: Vec<u8>,
    /// Load accesses (for the memory-traffic comparison against hwsim).
    loads: u64,
    /// Store accesses.
    stores: u64,
}

impl DataMemory {
    /// Allocates `size` bytes of zeroed memory.
    pub fn new(size: usize) -> DataMemory {
        DataMemory {
            bytes: vec![0; size],
            loads: 0,
            stores: 0,
        }
    }

    /// Memory size in bytes.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// Whether the memory has zero size.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// Copies 16-bit words into memory starting at `base` (the image
    /// loader: one image word per halfword, little-endian).
    ///
    /// # Errors
    ///
    /// [`CpuError::MemFault`] if the block does not fit.
    pub fn load_words(&mut self, base: u32, words: &[u16]) -> Result<(), CpuError> {
        let start = base as usize;
        let end = start + words.len() * 2;
        if end > self.bytes.len() {
            return Err(CpuError::MemFault { addr: base });
        }
        for (i, w) in words.iter().enumerate() {
            let [lo, hi] = w.to_le_bytes();
            self.bytes[start + 2 * i] = lo;
            self.bytes[start + 2 * i + 1] = hi;
        }
        Ok(())
    }

    fn check(&self, addr: u32, size: u32) -> Result<usize, CpuError> {
        let a = addr as usize;
        if a + size as usize > self.bytes.len() {
            return Err(CpuError::MemFault { addr });
        }
        if !addr.is_multiple_of(size) {
            return Err(CpuError::Unaligned { addr });
        }
        Ok(a)
    }

    /// Loads an unsigned 16-bit halfword.
    ///
    /// # Errors
    ///
    /// [`CpuError::MemFault`] / [`CpuError::Unaligned`].
    pub fn lhu(&mut self, addr: u32) -> Result<u16, CpuError> {
        let a = self.check(addr, 2)?;
        self.loads += 1;
        Ok(u16::from_le_bytes([self.bytes[a], self.bytes[a + 1]]))
    }

    /// Loads a 32-bit word.
    ///
    /// # Errors
    ///
    /// [`CpuError::MemFault`] / [`CpuError::Unaligned`].
    pub fn lw(&mut self, addr: u32) -> Result<u32, CpuError> {
        let a = self.check(addr, 4)?;
        self.loads += 1;
        Ok(u32::from_le_bytes([
            self.bytes[a],
            self.bytes[a + 1],
            self.bytes[a + 2],
            self.bytes[a + 3],
        ]))
    }

    /// Stores a 16-bit halfword.
    ///
    /// # Errors
    ///
    /// [`CpuError::MemFault`] / [`CpuError::Unaligned`].
    pub fn sh(&mut self, addr: u32, value: u16) -> Result<(), CpuError> {
        let a = self.check(addr, 2)?;
        self.stores += 1;
        let [lo, hi] = value.to_le_bytes();
        self.bytes[a] = lo;
        self.bytes[a + 1] = hi;
        Ok(())
    }

    /// Stores a 32-bit word.
    ///
    /// # Errors
    ///
    /// [`CpuError::MemFault`] / [`CpuError::Unaligned`].
    pub fn sw(&mut self, addr: u32, value: u32) -> Result<(), CpuError> {
        let a = self.check(addr, 4)?;
        self.stores += 1;
        self.bytes[a..a + 4].copy_from_slice(&value.to_le_bytes());
        Ok(())
    }

    /// Reads a halfword without counting it as a simulated access
    /// (host-side result inspection).
    ///
    /// # Errors
    ///
    /// [`CpuError::MemFault`] / [`CpuError::Unaligned`].
    pub fn peek16(&self, addr: u32) -> Result<u16, CpuError> {
        let a = self.check(addr, 2)?;
        Ok(u16::from_le_bytes([self.bytes[a], self.bytes[a + 1]]))
    }

    /// Load/store access counters `(loads, stores)`.
    pub fn access_counts(&self) -> (u64, u64) {
        (self.loads, self.stores)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn halfword_roundtrip_little_endian() {
        let mut m = DataMemory::new(64);
        m.sh(10, 0xBEEF).unwrap();
        assert_eq!(m.lhu(10).unwrap(), 0xBEEF);
        // Little-endian byte order.
        assert_eq!(m.peek16(10).unwrap(), 0xBEEF);
    }

    #[test]
    fn word_roundtrip() {
        let mut m = DataMemory::new(64);
        m.sw(8, 0xDEAD_BEEF).unwrap();
        assert_eq!(m.lw(8).unwrap(), 0xDEAD_BEEF);
        assert_eq!(m.lhu(8).unwrap(), 0xBEEF);
        assert_eq!(m.lhu(10).unwrap(), 0xDEAD);
    }

    #[test]
    fn alignment_enforced() {
        let mut m = DataMemory::new(64);
        assert!(matches!(m.lhu(1), Err(CpuError::Unaligned { addr: 1 })));
        assert!(matches!(m.lw(2), Err(CpuError::Unaligned { addr: 2 })));
        assert!(matches!(m.sh(3, 0), Err(CpuError::Unaligned { addr: 3 })));
    }

    #[test]
    fn bounds_enforced() {
        let mut m = DataMemory::new(8);
        assert!(matches!(m.lw(8), Err(CpuError::MemFault { addr: 8 })));
        assert!(m.load_words(6, &[1, 2]).is_err());
        assert!(m.load_words(4, &[1, 2]).is_ok());
    }

    #[test]
    fn image_loader_places_words() {
        let mut m = DataMemory::new(32);
        m.load_words(4, &[0x1111, 0x2222, 0xFFFF]).unwrap();
        assert_eq!(m.lhu(4).unwrap(), 0x1111);
        assert_eq!(m.lhu(6).unwrap(), 0x2222);
        assert_eq!(m.lhu(8).unwrap(), 0xFFFF);
    }

    #[test]
    fn access_counters() {
        let mut m = DataMemory::new(16);
        m.sh(0, 1).unwrap();
        let _ = m.lhu(0).unwrap();
        let _ = m.lhu(0).unwrap();
        assert_eq!(m.access_counts(), (2, 1));
        let _ = m.peek16(0).unwrap(); // peek does not count
        assert_eq!(m.access_counts(), (2, 1));
    }
}
