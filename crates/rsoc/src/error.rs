//! Error type of the run-time system simulator.

use core::fmt;

use rqfa_core::{CoreError, TypeId};

use crate::device::DeviceId;
use crate::task::TaskId;

/// Errors raised by the system simulator.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum RsocError {
    /// Retrieval-layer error bubbled up from the case base.
    Core(CoreError),
    /// A device id was referenced that is not part of the system.
    UnknownDevice {
        /// The id.
        device: DeviceId,
    },
    /// A task id was referenced that does not exist.
    UnknownTask {
        /// The id.
        task: TaskId,
    },
    /// The repository has no configuration data for a variant.
    MissingConfig {
        /// Function type.
        type_id: TypeId,
        /// Implementation id.
        impl_id: rqfa_core::ImplId,
    },
    /// The system was built without any devices.
    NoDevices,
    /// The event queue exceeded its bound — a scenario generated events
    /// faster than the system can retire them.
    EventOverflow {
        /// Queue length when the bound fired.
        queued: usize,
    },
}

impl fmt::Display for RsocError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RsocError::Core(e) => write!(f, "retrieval error: {e}"),
            RsocError::UnknownDevice { device } => write!(f, "unknown device {device}"),
            RsocError::UnknownTask { task } => write!(f, "unknown task {task}"),
            RsocError::MissingConfig { type_id, impl_id } => {
                write!(f, "repository has no configuration for {type_id}/{impl_id}")
            }
            RsocError::NoDevices => write!(f, "system has no execution devices"),
            RsocError::EventOverflow { queued } => {
                write!(f, "event queue overflow ({queued} events)")
            }
        }
    }
}

impl std::error::Error for RsocError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RsocError::Core(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CoreError> for RsocError {
    fn from(e: CoreError) -> RsocError {
        RsocError::Core(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        use std::error::Error;
        let e = RsocError::NoDevices;
        assert!(e.to_string().contains("devices"));
        assert!(e.source().is_none());
        let c = RsocError::from(CoreError::EmptyRequest);
        assert!(c.source().is_some());
    }
}
