//! Power and energy accounting.
//!
//! The paper motivates "intelligent management mechanisms … to gain
//! increases of system-performance and energy/power-efficiency" (§1).
//! The meter integrates static device power plus the dynamic power of
//! running tasks over simulated time, so allocation policies can be
//! compared by the energy they cost.

use crate::time::SimTime;

/// Integrates milliwatts over microseconds into nanojoules
/// (1 mW · 1 µs = 1 nJ).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EnergyMeter {
    last_update: SimTime,
    current_mw: u64,
    total_nj: u64,
}

impl EnergyMeter {
    /// Creates a meter with the always-on static power of the platform.
    pub fn new(static_mw: u64) -> EnergyMeter {
        EnergyMeter {
            last_update: SimTime::ZERO,
            current_mw: static_mw,
            total_nj: 0,
        }
    }

    /// Advances the meter to `now`, integrating at the current draw.
    pub fn advance(&mut self, now: SimTime) {
        let dt = now.since(self.last_update);
        self.total_nj += self.current_mw * dt;
        self.last_update = self.last_update.max(now);
    }

    /// Adds dynamic draw (a task started) — call after [`Self::advance`].
    pub fn add_load(&mut self, mw: u32) {
        self.current_mw += u64::from(mw);
    }

    /// Removes dynamic draw (a task stopped).
    pub fn remove_load(&mut self, mw: u32) {
        self.current_mw = self.current_mw.saturating_sub(u64::from(mw));
    }

    /// Instantaneous draw in milliwatts.
    pub fn current_mw(&self) -> u64 {
        self.current_mw
    }

    /// Accumulated energy in nanojoules.
    pub fn total_nj(&self) -> u64 {
        self.total_nj
    }

    /// Accumulated energy in millijoules.
    pub fn total_mj(&self) -> f64 {
        #[allow(clippy::cast_precision_loss)]
        {
            self.total_nj as f64 / 1.0e6
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integrates_static_power() {
        let mut m = EnergyMeter::new(100);
        m.advance(SimTime::from_us(1000));
        assert_eq!(m.total_nj(), 100_000); // 100 mW × 1000 µs
    }

    #[test]
    fn dynamic_load_changes_slope() {
        let mut m = EnergyMeter::new(100);
        m.advance(SimTime::from_us(100)); // 10_000 nJ
        m.add_load(400);
        m.advance(SimTime::from_us(200)); // +500 mW × 100 µs = 50_000
        m.remove_load(400);
        m.advance(SimTime::from_us(300)); // +100 mW × 100 µs = 10_000
        assert_eq!(m.total_nj(), 70_000);
        assert_eq!(m.current_mw(), 100);
        assert!((m.total_mj() - 0.07).abs() < 1e-12);
    }

    #[test]
    fn time_never_runs_backwards() {
        let mut m = EnergyMeter::new(10);
        m.advance(SimTime::from_us(100));
        m.advance(SimTime::from_us(50)); // ignored
        assert_eq!(m.total_nj(), 1000);
    }
}
