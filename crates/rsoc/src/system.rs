//! The run-time system: allocation manager + event-driven simulation.
//!
//! This is the executable form of the fig. 1 narrative: applications issue
//! QoS-constrained function requests through the Application-API; the
//! function-allocation layer retrieves matching implementation variants
//! (CBR, `rqfa-core`), checks their *feasibility* against current system
//! load through the HW-Layer API, possibly preempts lower-priority tasks,
//! fetches configuration data from the FLASH repository and reconfigures
//! the chosen device. Repeated calls bypass retrieval via tokens (§3);
//! rejected applications may retry with relaxed constraints (§3).

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

use rqfa_core::{
    CaseBase, ExecutionTarget, FixedEngine, Footprint, ImplId, Request, Scored, TokenCache, Q15,
};

use crate::device::{Device, DeviceId};
use crate::error::RsocError;
use crate::metrics::Metrics;
use crate::power::EnergyMeter;
use crate::repository::Repository;
use crate::task::{AppId, Task, TaskId, TaskState};
use crate::time::SimTime;

/// Allocation-manager policy knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AllocPolicy {
    /// How many ranked candidates the feasibility check walks (the §5
    /// n-most-similar extension; `1` = paper's base unit).
    pub n_best: usize,
    /// Reject candidates below this similarity ("it's conceivable to
    /// reject all results below a given threshold similarity", §3).
    pub threshold: Q15,
    /// Allow preempting strictly lower-priority tasks.
    pub allow_preemption: bool,
    /// Bypass-token cache capacity.
    pub bypass_capacity: usize,
    /// Delay before a relaxed retry arrives, µs.
    pub retry_delay_us: u64,
}

impl Default for AllocPolicy {
    fn default() -> AllocPolicy {
        AllocPolicy {
            n_best: 4,
            threshold: Q15::from_f64_saturating(0.35),
            allow_preemption: true,
            bypass_capacity: 64,
            retry_delay_us: 50,
        }
    }
}

/// Why a request was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum RejectReason {
    /// The requested function type is not in the case base.
    UnknownType,
    /// No variant reached the similarity threshold.
    NoSimilarVariant,
    /// Matching variants exist but no device can host any of them.
    NoCapacity,
}

/// The allocation manager's answer to one request.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Decision {
    /// A variant was placed.
    Accepted {
        /// The created task.
        task: TaskId,
        /// The selected variant.
        impl_id: ImplId,
        /// Hosting device.
        device: DeviceId,
        /// Retrieval similarity of the selected variant.
        similarity: Q15,
        /// Ready time (reconfiguration complete).
        ready_at: SimTime,
        /// Whether a lower-ranked variant had to be used (negotiation).
        downgraded: bool,
        /// Tasks preempted to make room.
        preempted: Vec<TaskId>,
        /// Whether retrieval was skipped via a bypass token.
        bypassed: bool,
    },
    /// No placement was possible.
    Rejected {
        /// The reason.
        reason: RejectReason,
        /// Whether a relaxed retry was scheduled.
        retry_scheduled: bool,
    },
}

/// A pending simulation event.
#[derive(Debug, Clone, PartialEq)]
enum SysEvent {
    Arrival(Box<ArrivalSpec>),
    Ready(TaskId),
    Complete(TaskId),
}

/// One application request (possibly a relaxed retry).
#[derive(Debug, Clone, PartialEq)]
pub struct ArrivalSpec {
    /// Issuing application.
    pub app: AppId,
    /// The QoS request.
    pub request: Request,
    /// Scheduling priority (higher preempts lower).
    pub priority: u8,
    /// Task run time once ready, µs.
    pub duration_us: u64,
    /// Relaxed fallback request, submitted automatically on rejection
    /// (the §3 renegotiation).
    pub relaxed: Option<Request>,
}

#[derive(Debug, PartialEq, Eq)]
struct Queued {
    at: SimTime,
    seq: u64,
}

impl Ord for Queued {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

impl PartialOrd for Queued {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Builder for [`System`].
#[derive(Debug)]
pub struct SystemBuilder {
    case_base: CaseBase,
    devices: Vec<Device>,
    repository: Repository,
    policy: AllocPolicy,
}

impl SystemBuilder {
    /// Starts a system around a case base; the repository is indexed from
    /// the case base's footprints automatically.
    pub fn new(case_base: CaseBase) -> SystemBuilder {
        let mut repository = Repository::new(20, 50);
        repository.index_case_base(&case_base);
        SystemBuilder {
            case_base,
            devices: Vec::new(),
            repository,
            policy: AllocPolicy::default(),
        }
    }

    /// Adds an execution device.
    pub fn device(mut self, device: Device) -> SystemBuilder {
        self.devices.push(device);
        self
    }

    /// Replaces the repository transfer model (keeps indexed configs).
    pub fn repository(mut self, setup_us: u64, bytes_per_us: u64) -> SystemBuilder {
        self.repository.setup_us = setup_us;
        self.repository.bytes_per_us = bytes_per_us.max(1);
        self
    }

    /// Replaces the allocation policy.
    pub fn policy(mut self, policy: AllocPolicy) -> SystemBuilder {
        self.policy = policy;
        self
    }

    /// Finalizes the system.
    ///
    /// # Errors
    ///
    /// [`RsocError::NoDevices`] without at least one device.
    pub fn build(self) -> Result<System, RsocError> {
        if self.devices.is_empty() {
            return Err(RsocError::NoDevices);
        }
        let static_mw: u64 = self.devices.iter().map(|d| u64::from(d.static_mw())).sum();
        Ok(System {
            case_base: self.case_base,
            devices: self.devices,
            repository: self.repository,
            policy: self.policy,
            engine: FixedEngine::new(),
            cache: TokenCache::new(self.policy.bypass_capacity),
            clock: SimTime::ZERO,
            queue: BinaryHeap::new(),
            events: HashMap::new(),
            next_seq: 0,
            tasks: HashMap::new(),
            next_task: 0,
            meter: EnergyMeter::new(static_mw),
            metrics: Metrics::default(),
            log: Vec::new(),
        })
    }
}

/// The simulated run-time reconfigurable system.
pub struct System {
    case_base: CaseBase,
    devices: Vec<Device>,
    repository: Repository,
    policy: AllocPolicy,
    engine: FixedEngine,
    cache: TokenCache,
    clock: SimTime,
    queue: BinaryHeap<Reverse<Queued>>,
    events: HashMap<u64, SysEvent>,
    next_seq: u64,
    tasks: HashMap<TaskId, Task>,
    next_task: u32,
    meter: EnergyMeter,
    metrics: Metrics,
    log: Vec<(SimTime, String)>,
}

impl std::fmt::Debug for System {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("System")
            .field("clock", &self.clock)
            .field("devices", &self.devices.len())
            .field("tasks", &self.tasks.len())
            .field("queued", &self.queue.len())
            .finish_non_exhaustive()
    }
}

impl System {
    /// The current simulation time.
    pub fn now(&self) -> SimTime {
        self.clock
    }

    /// Collected metrics (energy is folded in by [`System::run`]).
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// The case base (for learning-layer inspection).
    pub fn case_base(&self) -> &CaseBase {
        &self.case_base
    }

    /// Mutable case base access for the learning layer. Mutations bump the
    /// generation counter, invalidating bypass tokens automatically.
    pub fn case_base_mut(&mut self) -> &mut CaseBase {
        &mut self.case_base
    }

    /// All tasks ever created.
    pub fn tasks(&self) -> impl Iterator<Item = &Task> {
        self.tasks.values()
    }

    /// Looks up a device.
    pub fn device(&self, id: DeviceId) -> Option<&Device> {
        self.devices.iter().find(|d| d.id() == id)
    }

    /// The decision log (time-stamped, human-readable).
    pub fn log(&self) -> &[(SimTime, String)] {
        &self.log
    }

    /// Schedules a function request at `at`.
    pub fn submit(&mut self, at: SimTime, spec: ArrivalSpec) {
        self.push_event(at, SysEvent::Arrival(Box::new(spec)));
    }

    fn push_event(&mut self, at: SimTime, event: SysEvent) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.events.insert(seq, event);
        self.queue.push(Reverse(Queued { at, seq }));
    }

    /// Runs until the event queue drains; returns the final metrics.
    ///
    /// # Errors
    ///
    /// Propagates [`RsocError`]; [`RsocError::EventOverflow`] guards
    /// against runaway retry loops.
    pub fn run(&mut self) -> Result<Metrics, RsocError> {
        while let Some(Reverse(q)) = self.queue.pop() {
            if self.queue.len() > 1_000_000 {
                return Err(RsocError::EventOverflow {
                    queued: self.queue.len(),
                });
            }
            self.clock = self.clock.max(q.at);
            self.meter.advance(self.clock);
            let event = self
                .events
                .remove(&q.seq)
                .expect("event bodies match queue entries");
            match event {
                SysEvent::Arrival(spec) => {
                    let decision = self.handle_request(*spec)?;
                    let line = match &decision {
                        Decision::Accepted {
                            task,
                            impl_id,
                            device,
                            downgraded,
                            bypassed,
                            ..
                        } => format!(
                            "accepted {task} impl {impl_id} on {device}{}{}",
                            if *downgraded { " (downgraded)" } else { "" },
                            if *bypassed { " (bypass)" } else { "" }
                        ),
                        Decision::Rejected {
                            reason,
                            retry_scheduled,
                        } => format!(
                            "rejected ({reason:?}){}",
                            if *retry_scheduled { ", retrying relaxed" } else { "" }
                        ),
                    };
                    self.log.push((self.clock, line));
                }
                SysEvent::Ready(id) => self.handle_ready(id)?,
                SysEvent::Complete(id) => self.handle_complete(id)?,
            }
        }
        self.metrics.energy_nj = self.meter.total_nj();
        Ok(self.metrics)
    }

    fn handle_ready(&mut self, id: TaskId) -> Result<(), RsocError> {
        let task = self
            .tasks
            .get_mut(&id)
            .ok_or(RsocError::UnknownTask { task: id })?;
        if task.state != TaskState::Loading {
            return Ok(()); // preempted while loading
        }
        task.state = TaskState::Running;
        let latency = task.allocation_latency_us();
        self.metrics.total_alloc_latency_us += latency;
        self.metrics.max_alloc_latency_us = self.metrics.max_alloc_latency_us.max(latency);
        self.meter.add_load(task.footprint.dynamic_mw);
        Ok(())
    }

    fn handle_complete(&mut self, id: TaskId) -> Result<(), RsocError> {
        let task = self
            .tasks
            .get_mut(&id)
            .ok_or(RsocError::UnknownTask { task: id })?;
        if !task.holds_resources() {
            return Ok(()); // already preempted
        }
        if task.state == TaskState::Running {
            self.meter.remove_load(task.footprint.dynamic_mw);
        }
        task.state = TaskState::Completed;
        let device = task.device;
        let footprint = task.footprint;
        self.release_on(device, &footprint)?;
        Ok(())
    }

    fn release_on(&mut self, id: DeviceId, footprint: &Footprint) -> Result<(), RsocError> {
        let device = self
            .devices
            .iter_mut()
            .find(|d| d.id() == id)
            .ok_or(RsocError::UnknownDevice { device: id })?;
        device.release(footprint);
        Ok(())
    }

    /// The §2/§3 pipeline: bypass → retrieve → feasibility → (preempt) →
    /// place → (relaxed retry).
    fn handle_request(&mut self, spec: ArrivalSpec) -> Result<Decision, RsocError> {
        self.metrics.requests += 1;

        // Bypass-token shortcut (§3): repeated calls only need an
        // availability check on the previously selected variant. If that
        // variant is currently infeasible, fall through to full retrieval.
        if let Some(token) = self.cache.lookup(&spec.request, &self.case_base) {
            let ty = self.case_base.require_type(token.type_id)?;
            if let Some(variant) = ty.variant(token.impl_id) {
                let candidate = Scored {
                    impl_id: token.impl_id,
                    target: variant.target(),
                    similarity: token.similarity,
                };
                if let Some(decision) = self.try_candidates(&spec, &[candidate], true)? {
                    self.metrics.bypass_hits += 1;
                    return Ok(decision);
                }
            }
        }

        self.metrics.retrievals += 1;
        let candidates = match self.engine.retrieve_n_best_above(
            &self.case_base,
            &spec.request,
            self.policy.n_best,
            self.policy.threshold,
        ) {
            Ok(nbest) => nbest.ranked,
            Err(rqfa_core::CoreError::UnknownType { .. }) => {
                self.metrics.rejected += 1;
                return Ok(Decision::Rejected {
                    reason: RejectReason::UnknownType,
                    retry_scheduled: false,
                });
            }
            Err(e) => return Err(e.into()),
        };

        if candidates.is_empty() {
            return Ok(self.reject(&spec, RejectReason::NoSimilarVariant));
        }
        if let Some(decision) = self.try_candidates(&spec, &candidates, false)? {
            return Ok(decision);
        }
        Ok(self.reject(&spec, RejectReason::NoCapacity))
    }

    /// Walks ranked candidates, placing the first feasible one; `None`
    /// when every candidate is infeasible.
    fn try_candidates(
        &mut self,
        spec: &ArrivalSpec,
        candidates: &[Scored<Q15>],
        bypassed: bool,
    ) -> Result<Option<Decision>, RsocError> {
        for (rank, candidate) in candidates.iter().enumerate() {
            let footprint = {
                let ty = self.case_base.require_type(spec.request.type_id())?;
                match ty.variant(candidate.impl_id) {
                    Some(v) => *v.footprint(),
                    None => continue,
                }
            };
            // Direct placement on any device of the right class.
            let direct = self
                .devices
                .iter()
                .find(|d| d.target() == candidate.target && d.fits(&footprint))
                .map(Device::id);
            let (device, preempted) = if let Some(id) = direct {
                (Some(id), Vec::new())
            } else if self.policy.allow_preemption {
                self.try_preempt(candidate.target, &footprint, spec.priority)?
            } else {
                (None, Vec::new())
            };
            let Some(device_id) = device else { continue };

            match self.place(spec, candidate, footprint, device_id, rank > 0, bypassed, preempted)
            {
                Ok(decision) => return Ok(Some(decision)),
                // A variant without configuration data in the repository is
                // unallocatable — skip it like an infeasible candidate.
                // `place` checks the repository before claiming resources,
                // so nothing needs rolling back (preemption victims stay
                // evicted: the port of record for that decision is the log).
                Err(RsocError::MissingConfig { .. }) => continue,
                Err(e) => return Err(e),
            }
        }
        Ok(None)
    }

    /// Finds a device of `target` class where evicting strictly
    /// lower-priority tasks frees enough room. Performs the eviction and
    /// returns the device and the victims.
    fn try_preempt(
        &mut self,
        target: ExecutionTarget,
        footprint: &Footprint,
        priority: u8,
    ) -> Result<(Option<DeviceId>, Vec<TaskId>), RsocError> {
        let device_ids: Vec<DeviceId> = self
            .devices
            .iter()
            .filter(|d| d.target() == target)
            .map(Device::id)
            .collect();
        for id in device_ids {
            // Victims: lowest priority first, then earliest end.
            let mut victims: Vec<(u8, SimTime, TaskId, Footprint)> = self
                .tasks
                .values()
                .filter(|t| t.device == id && t.holds_resources() && t.priority < priority)
                .map(|t| (t.priority, t.ends_at, t.id, t.footprint))
                .collect();
            victims.sort_by_key(|&(priority, ends, id, _)| (priority, ends, id));
            // Simulate the eviction.
            let device = self
                .devices
                .iter()
                .find(|d| d.id() == id)
                .expect("id from device list");
            let mut free_slices = device.free_slices();
            let mut free_permille = device.free_permille();
            let mut chosen = Vec::new();
            for (_, _, tid, fp) in &victims {
                if free_slices >= footprint.slices && free_permille >= footprint.cpu_permille {
                    break;
                }
                free_slices += fp.slices;
                free_permille += fp.cpu_permille;
                chosen.push(*tid);
            }
            if free_slices >= footprint.slices && free_permille >= footprint.cpu_permille {
                for tid in &chosen {
                    self.preempt(*tid)?;
                }
                return Ok((Some(id), chosen));
            }
        }
        Ok((None, Vec::new()))
    }

    fn preempt(&mut self, id: TaskId) -> Result<(), RsocError> {
        let task = self
            .tasks
            .get_mut(&id)
            .ok_or(RsocError::UnknownTask { task: id })?;
        if task.state == TaskState::Running {
            self.meter.remove_load(task.footprint.dynamic_mw);
        }
        task.state = TaskState::Preempted;
        let device = task.device;
        let footprint = task.footprint;
        self.metrics.preemptions += 1;
        self.release_on(device, &footprint)?;
        Ok(())
    }

    #[allow(clippy::too_many_arguments)]
    fn place(
        &mut self,
        spec: &ArrivalSpec,
        candidate: &Scored<Q15>,
        footprint: Footprint,
        device_id: DeviceId,
        downgraded: bool,
        bypassed: bool,
        preempted: Vec<TaskId>,
    ) -> Result<Decision, RsocError> {
        let config_bytes = self
            .repository
            .config_bytes(spec.request.type_id(), candidate.impl_id)?;
        let load_us = self.repository.load_time_us(config_bytes);
        let now = self.clock;
        let device = self
            .devices
            .iter_mut()
            .find(|d| d.id() == device_id)
            .ok_or(RsocError::UnknownDevice { device: device_id })?;
        device.claim(&footprint);
        let ready_at = device.occupy_config_port(now, load_us);

        let id = TaskId(self.next_task);
        self.next_task += 1;
        let task = Task {
            id,
            app: spec.app,
            type_id: spec.request.type_id(),
            impl_id: candidate.impl_id,
            device: device_id,
            footprint,
            priority: spec.priority,
            state: TaskState::Loading,
            requested_at: now,
            ready_at,
            ends_at: ready_at + spec.duration_us,
        };
        let ends_at = task.ends_at;
        self.tasks.insert(id, task);
        self.push_event(ready_at, SysEvent::Ready(id));
        self.push_event(ends_at, SysEvent::Complete(id));

        self.metrics.accepted += 1;
        self.metrics.reconfigurations += 1;
        self.metrics.reconfig_busy_us += load_us;
        if downgraded && !bypassed {
            self.metrics.downgraded += 1;
        }
        // Remember the working selection for repeated calls (§3).
        self.cache.store(&spec.request, &self.case_base, candidate);

        Ok(Decision::Accepted {
            task: id,
            impl_id: candidate.impl_id,
            device: device_id,
            similarity: candidate.similarity,
            ready_at,
            downgraded,
            preempted,
            bypassed,
        })
    }

    fn reject(&mut self, spec: &ArrivalSpec, reason: RejectReason) -> Decision {
        self.metrics.rejected += 1;
        let retry_scheduled = if let Some(relaxed) = &spec.relaxed {
            // The application retries once with relaxed constraints (§3).
            let retry = ArrivalSpec {
                app: spec.app,
                request: relaxed.clone(),
                priority: spec.priority,
                duration_us: spec.duration_us,
                relaxed: None,
            };
            let at = self.clock + self.policy.retry_delay_us;
            self.push_event(at, SysEvent::Arrival(Box::new(retry)));
            true
        } else {
            false
        };
        Decision::Rejected {
            reason,
            retry_scheduled,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rqfa_core::paper;

    fn base_system() -> System {
        SystemBuilder::new(paper::table1_case_base())
            .device(Device::fpga(DeviceId(0), "fpga0", 2000, 150))
            .device(Device::dsp(DeviceId(1), "dsp0", 1000, 90))
            .device(Device::cpu(DeviceId(2), "cpu0", 1000, 200))
            .build()
            .unwrap()
    }

    fn spec(duration_us: u64, priority: u8) -> ArrivalSpec {
        ArrivalSpec {
            app: AppId(1),
            request: paper::table1_request().unwrap(),
            priority,
            duration_us,
            relaxed: None,
        }
    }

    #[test]
    fn accepts_and_places_on_dsp() {
        let mut sys = base_system();
        sys.submit(SimTime::ZERO, spec(1000, 5));
        let metrics = sys.run().unwrap();
        assert_eq!(metrics.requests, 1);
        assert_eq!(metrics.accepted, 1);
        let task = sys.tasks().next().unwrap();
        assert_eq!(task.impl_id, paper::IMPL_DSP, "Table 1 winner placed");
        assert_eq!(task.device, DeviceId(1));
        assert_eq!(task.state, TaskState::Completed);
        assert!(metrics.energy_nj > 0);
    }

    #[test]
    fn repeated_requests_hit_bypass_tokens() {
        let mut sys = base_system();
        for i in 0..4u64 {
            sys.submit(SimTime::from_ms(i * 10), spec(1000, 5));
        }
        let metrics = sys.run().unwrap();
        assert_eq!(metrics.accepted, 4);
        assert_eq!(metrics.retrievals, 1, "only the first call retrieves");
        assert_eq!(metrics.bypass_hits, 3);
    }

    #[test]
    fn dsp_contention_downgrades_to_fpga() {
        // Two concurrent requests: the DSP fits one task (450 permille x2
        // would exceed 1000? 450*2=900 fits!). Shrink the DSP instead.
        let mut sys = SystemBuilder::new(paper::table1_case_base())
            .device(Device::fpga(DeviceId(0), "fpga0", 2000, 150))
            .device(Device::dsp(DeviceId(1), "dsp0", 500, 90))
            .build()
            .unwrap();
        sys.submit(SimTime::ZERO, spec(10_000, 5));
        sys.submit(SimTime::from_us(1), spec(10_000, 5));
        let metrics = sys.run().unwrap();
        assert_eq!(metrics.accepted, 2);
        assert_eq!(metrics.downgraded, 1, "second call falls back to FPGA");
        let targets: Vec<DeviceId> = sys.tasks().map(|t| t.device).collect();
        assert!(targets.contains(&DeviceId(0)) && targets.contains(&DeviceId(1)));
    }

    #[test]
    fn preemption_frees_room_for_high_priority() {
        // FPGA fits exactly one 850-slice variant; low priority first.
        let mut sys = SystemBuilder::new(paper::table1_case_base())
            .device(Device::fpga(DeviceId(0), "fpga0", 1000, 150))
            .build()
            .unwrap();
        // Request something only the FPGA serves: constrain to surround
        // output so the FPGA variant ranks first and is the only target.
        let request = rqfa_core::Request::builder(paper::FIR_EQUALIZER)
            .constraint(paper::ATTR_OUTPUT, 2)
            .build()
            .unwrap();
        let mk = |priority| ArrivalSpec {
            app: AppId(priority as u16),
            request: request.clone(),
            priority,
            duration_us: 100_000,
            relaxed: None,
        };
        sys.submit(SimTime::ZERO, mk(2));
        sys.submit(SimTime::from_ms(1), mk(9));
        let metrics = sys.run().unwrap();
        assert_eq!(metrics.preemptions, 1);
        assert_eq!(metrics.accepted, 2);
        let preempted = sys
            .tasks()
            .filter(|t| t.state == TaskState::Preempted)
            .count();
        assert_eq!(preempted, 1);
    }

    #[test]
    fn equal_priority_does_not_preempt() {
        let mut sys = SystemBuilder::new(paper::table1_case_base())
            .device(Device::fpga(DeviceId(0), "fpga0", 1000, 150))
            .build()
            .unwrap();
        let request = rqfa_core::Request::builder(paper::FIR_EQUALIZER)
            .constraint(paper::ATTR_OUTPUT, 2)
            .build()
            .unwrap();
        let mk = |priority| ArrivalSpec {
            app: AppId(1),
            request: request.clone(),
            priority,
            duration_us: 100_000,
            relaxed: None,
        };
        sys.submit(SimTime::ZERO, mk(5));
        sys.submit(SimTime::from_ms(1), mk(5));
        let metrics = sys.run().unwrap();
        assert_eq!(metrics.preemptions, 0);
        assert_eq!(metrics.rejected, 1);
    }

    #[test]
    fn rejection_triggers_relaxed_retry() {
        // A request nothing satisfies well (threshold very high), with a
        // relaxed fallback that matches the GP variant exactly.
        let mut sys = SystemBuilder::new(paper::table1_case_base())
            .device(Device::cpu(DeviceId(2), "cpu0", 1000, 200))
            .policy(AllocPolicy {
                threshold: Q15::from_f64_saturating(0.99),
                ..AllocPolicy::default()
            })
            .build()
            .unwrap();
        let strict = rqfa_core::Request::builder(paper::FIR_EQUALIZER)
            .constraint(paper::ATTR_BITWIDTH, 16)
            .constraint(paper::ATTR_RATE, 44)
            .constraint(paper::ATTR_OUTPUT, 1)
            .build()
            .unwrap();
        let relaxed = paper::relaxed_request().unwrap();
        sys.submit(
            SimTime::ZERO,
            ArrivalSpec {
                app: AppId(1),
                request: strict,
                priority: 5,
                duration_us: 1000,
                relaxed: Some(relaxed),
            },
        );
        let metrics = sys.run().unwrap();
        assert_eq!(metrics.requests, 2, "original + relaxed retry");
        assert_eq!(metrics.rejected, 1);
        assert_eq!(metrics.accepted, 1, "relaxed request lands on the CPU");
        let task = sys.tasks().next().unwrap();
        assert_eq!(task.impl_id, paper::IMPL_GP);
    }

    #[test]
    fn unknown_type_rejected_without_retry() {
        let mut sys = base_system();
        let request = rqfa_core::Request::builder(rqfa_core::TypeId::new(99).unwrap())
            .constraint(paper::ATTR_BITWIDTH, 8)
            .build()
            .unwrap();
        sys.submit(
            SimTime::ZERO,
            ArrivalSpec {
                app: AppId(1),
                request,
                priority: 1,
                duration_us: 10,
                relaxed: None,
            },
        );
        let metrics = sys.run().unwrap();
        assert_eq!(metrics.rejected, 1);
        assert_eq!(metrics.accepted, 0);
    }

    #[test]
    fn reconfig_port_serializes_loads() {
        // Two FPGA placements back to back: the second must wait for the
        // port, visible as a larger allocation latency.
        let mut sys = SystemBuilder::new(paper::table1_case_base())
            .device(Device::fpga(DeviceId(0), "fpga0", 4000, 150))
            .build()
            .unwrap();
        let request = rqfa_core::Request::builder(paper::FIR_EQUALIZER)
            .constraint(paper::ATTR_OUTPUT, 2)
            .build()
            .unwrap();
        let mk = || ArrivalSpec {
            app: AppId(1),
            request: request.clone(),
            priority: 5,
            duration_us: 100_000,
            relaxed: None,
        };
        sys.submit(SimTime::ZERO, mk());
        sys.submit(SimTime::ZERO, mk());
        let metrics = sys.run().unwrap();
        assert_eq!(metrics.accepted, 2);
        let mut latencies: Vec<u64> = sys.tasks().map(Task::allocation_latency_us).collect();
        latencies.sort_unstable();
        assert!(latencies[1] >= 2 * latencies[0], "port contention visible");
        assert!(metrics.reconfig_busy_us > 0);
    }

    #[test]
    fn capacity_is_conserved() {
        let mut sys = base_system();
        for i in 0..10u64 {
            sys.submit(SimTime::from_ms(i), spec(500, 3));
        }
        sys.run().unwrap();
        // After the run everything completed: devices fully free again.
        for d in [DeviceId(0), DeviceId(1), DeviceId(2)] {
            let dev = sys.device(d).unwrap();
            assert!(dev.utilization().abs() < 1e-12, "{dev} not drained");
        }
    }

    #[test]
    fn log_records_decisions() {
        let mut sys = base_system();
        sys.submit(SimTime::ZERO, spec(100, 1));
        sys.run().unwrap();
        assert!(!sys.log().is_empty());
        assert!(sys.log()[0].1.contains("accepted"));
    }
}

#[cfg(test)]
mod failure_injection_tests {
    use super::*;
    use rqfa_core::paper;

    /// A variant the repository has no configuration for is skipped like an
    /// infeasible candidate; the next-ranked variant is placed instead.
    #[test]
    fn missing_config_falls_back_to_next_candidate() {
        let case_base = paper::table1_case_base();
        let mut builder = SystemBuilder::new(case_base);
        // Wipe the repository and re-register everything EXCEPT the DSP
        // variant (the Table 1 winner).
        builder.repository = Repository::new(20, 50);
        builder
            .repository
            .insert(paper::FIR_EQUALIZER, paper::IMPL_FPGA, 96 * 1024);
        builder
            .repository
            .insert(paper::FIR_EQUALIZER, paper::IMPL_GP, 2 * 1024);
        let mut sys = builder
            .device(Device::fpga(DeviceId(0), "fpga0", 2000, 150))
            .device(Device::dsp(DeviceId(1), "dsp0", 1000, 90))
            .device(Device::cpu(DeviceId(2), "cpu0", 1000, 200))
            .build()
            .unwrap();
        sys.submit(
            SimTime::ZERO,
            ArrivalSpec {
                app: AppId(1),
                request: paper::table1_request().unwrap(),
                priority: 5,
                duration_us: 1000,
                relaxed: None,
            },
        );
        let metrics = sys.run().unwrap();
        assert_eq!(metrics.accepted, 1);
        let task = sys.tasks().next().unwrap();
        assert_eq!(
            task.impl_id,
            paper::IMPL_FPGA,
            "falls back to the runner-up when the winner has no bitstream"
        );
        // Device accounting still drains to zero.
        assert!(sys.device(DeviceId(1)).unwrap().utilization().abs() < 1e-12);
    }

    /// An empty repository rejects everything but never aborts the run.
    #[test]
    fn empty_repository_rejects_cleanly() {
        let mut builder = SystemBuilder::new(paper::table1_case_base());
        builder.repository = Repository::new(20, 50);
        let mut sys = builder
            .device(Device::dsp(DeviceId(1), "dsp0", 1000, 90))
            .build()
            .unwrap();
        sys.submit(
            SimTime::ZERO,
            ArrivalSpec {
                app: AppId(1),
                request: paper::table1_request().unwrap(),
                priority: 5,
                duration_us: 1000,
                relaxed: None,
            },
        );
        let metrics = sys.run().unwrap();
        assert_eq!(metrics.rejected, 1);
        assert_eq!(metrics.accepted, 0);
    }
}
