//! Hardware/software tasks: one placed implementation variant executing
//! on a device.

use core::fmt;

use rqfa_core::{Footprint, ImplId, TypeId};

use crate::device::DeviceId;
use crate::time::SimTime;

/// Identifies an application (fig. 1: MP3 player, video, automotive ECU,
/// cruise control …).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AppId(pub u16);

impl fmt::Display for AppId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "app{}", self.0)
    }
}

/// Identifies a task instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TaskId(pub u32);

impl fmt::Display for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "task{}", self.0)
    }
}

/// Task life cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TaskState {
    /// Configuration data is being transferred (reconfiguration).
    Loading,
    /// Executing on its device.
    Running,
    /// Preempted by a higher-priority allocation; resources released.
    Preempted,
    /// Finished; resources released.
    Completed,
}

/// One allocated function instance.
#[derive(Debug, Clone, PartialEq)]
pub struct Task {
    /// The task id.
    pub id: TaskId,
    /// Owning application.
    pub app: AppId,
    /// Function type served.
    pub type_id: TypeId,
    /// Selected implementation variant.
    pub impl_id: ImplId,
    /// Device the task is placed on.
    pub device: DeviceId,
    /// Resource claim.
    pub footprint: Footprint,
    /// Scheduling priority (higher wins preemption).
    pub priority: u8,
    /// Life-cycle state.
    pub state: TaskState,
    /// When the allocation was requested.
    pub requested_at: SimTime,
    /// When the task became ready (reconfiguration complete).
    pub ready_at: SimTime,
    /// When the task completes (scenario-provided runtime).
    pub ends_at: SimTime,
}

impl Task {
    /// Allocation latency: request to ready.
    pub fn allocation_latency_us(&self) -> u64 {
        self.ready_at.since(self.requested_at)
    }

    /// Whether the task currently holds device resources.
    pub fn holds_resources(&self) -> bool {
        matches!(self.state, TaskState::Loading | TaskState::Running)
    }
}

impl fmt::Display for Task {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {} {}/{} on {} ({:?})",
            self.id, self.app, self.type_id, self.impl_id, self.device, self.state
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_and_state() {
        let t = Task {
            id: TaskId(1),
            app: AppId(2),
            type_id: TypeId::new(1).unwrap(),
            impl_id: ImplId::new(2).unwrap(),
            device: DeviceId(0),
            footprint: Footprint::none(),
            priority: 5,
            state: TaskState::Loading,
            requested_at: SimTime::from_us(100),
            ready_at: SimTime::from_us(350),
            ends_at: SimTime::from_us(1350),
        };
        assert_eq!(t.allocation_latency_us(), 250);
        assert!(t.holds_resources());
        let done = Task {
            state: TaskState::Completed,
            ..t
        };
        assert!(!done.holds_resources());
        assert!(done.to_string().contains("task1"));
    }
}
