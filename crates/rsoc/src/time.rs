//! Simulation time in microseconds.

use core::fmt;
use core::ops::{Add, AddAssign, Sub};

/// A point in simulated time, in microseconds since simulation start.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SimTime(pub u64);

impl SimTime {
    /// Simulation start.
    pub const ZERO: SimTime = SimTime(0);

    /// Constructs from microseconds.
    pub const fn from_us(us: u64) -> SimTime {
        SimTime(us)
    }

    /// Constructs from milliseconds.
    pub const fn from_ms(ms: u64) -> SimTime {
        SimTime(ms * 1000)
    }

    /// The raw microsecond count.
    pub const fn as_us(self) -> u64 {
        self.0
    }

    /// Saturating difference.
    pub fn since(self, earlier: SimTime) -> u64 {
        self.0.saturating_sub(earlier.0)
    }
}

impl Add<u64> for SimTime {
    type Output = SimTime;

    fn add(self, us: u64) -> SimTime {
        SimTime(self.0 + us)
    }
}

impl AddAssign<u64> for SimTime {
    fn add_assign(&mut self, us: u64) {
        self.0 += us;
    }
}

impl Sub for SimTime {
    type Output = u64;

    fn sub(self, rhs: SimTime) -> u64 {
        self.0.saturating_sub(rhs.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1000 {
            write!(f, "{}.{:03} ms", self.0 / 1000, self.0 % 1000)
        } else {
            write!(f, "{} µs", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let t = SimTime::from_ms(2);
        assert_eq!(t.as_us(), 2000);
        assert_eq!((t + 500).as_us(), 2500);
        assert_eq!(t + 500 - t, 500);
        assert_eq!(SimTime::ZERO.since(t), 0);
        assert_eq!((t + 500).since(t), 500);
    }

    #[test]
    fn display_scales() {
        assert_eq!(SimTime::from_us(7).to_string(), "7 µs");
        assert_eq!(SimTime::from_us(2500).to_string(), "2.500 ms");
    }
}
