//! System-level metrics collected over a simulation run.

use core::fmt;

/// Counters and aggregates of one simulation.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Metrics {
    /// Function requests submitted.
    pub requests: u64,
    /// Requests granted (task placed).
    pub accepted: u64,
    /// Requests rejected outright (no feasible variant).
    pub rejected: u64,
    /// Grants where a lower-ranked variant had to be used (the §3
    /// negotiation: "an alternative implementation can be offered").
    pub downgraded: u64,
    /// Grants that preempted lower-priority tasks.
    pub preemptions: u64,
    /// Requests answered from the bypass-token cache without retrieval.
    pub bypass_hits: u64,
    /// Reconfigurations performed (bitstream/opcode loads).
    pub reconfigurations: u64,
    /// Total time the configuration ports were busy, µs.
    pub reconfig_busy_us: u64,
    /// Total retrieval invocations (cache misses).
    pub retrievals: u64,
    /// Sum of allocation latencies (request → ready), µs.
    pub total_alloc_latency_us: u64,
    /// Maximum allocation latency observed, µs.
    pub max_alloc_latency_us: u64,
    /// Total energy consumed, nanojoules.
    pub energy_nj: u64,
}

impl Metrics {
    /// Acceptance rate in `[0, 1]`.
    pub fn acceptance_rate(&self) -> f64 {
        ratio(self.accepted, self.requests)
    }

    /// Bypass hit rate against all requests.
    pub fn bypass_rate(&self) -> f64 {
        ratio(self.bypass_hits, self.requests)
    }

    /// Mean allocation latency in µs.
    pub fn mean_alloc_latency_us(&self) -> f64 {
        ratio(self.total_alloc_latency_us, self.accepted)
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        #[allow(clippy::cast_precision_loss)]
        {
            num as f64 / den as f64
        }
    }
}

impl fmt::Display for Metrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "requests:          {:>8}", self.requests)?;
        writeln!(
            f,
            "accepted:          {:>8} ({:.1} %)",
            self.accepted,
            self.acceptance_rate() * 100.0
        )?;
        writeln!(f, "rejected:          {:>8}", self.rejected)?;
        writeln!(f, "downgraded:        {:>8}", self.downgraded)?;
        writeln!(f, "preemptions:       {:>8}", self.preemptions)?;
        writeln!(
            f,
            "bypass hits:       {:>8} ({:.1} %)",
            self.bypass_hits,
            self.bypass_rate() * 100.0
        )?;
        writeln!(f, "retrievals:        {:>8}", self.retrievals)?;
        writeln!(f, "reconfigurations:  {:>8}", self.reconfigurations)?;
        writeln!(f, "reconfig busy:     {:>8} µs", self.reconfig_busy_us)?;
        writeln!(
            f,
            "mean alloc latency: {:>7.1} µs (max {} µs)",
            self.mean_alloc_latency_us(),
            self.max_alloc_latency_us
        )?;
        #[allow(clippy::cast_precision_loss)]
        let energy_mj = self.energy_nj as f64 / 1e6;
        writeln!(f, "energy:            {energy_mj:>10.3} mJ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates() {
        let m = Metrics {
            requests: 10,
            accepted: 8,
            bypass_hits: 4,
            total_alloc_latency_us: 1600,
            ..Metrics::default()
        };
        assert!((m.acceptance_rate() - 0.8).abs() < 1e-12);
        assert!((m.bypass_rate() - 0.4).abs() < 1e-12);
        assert!((m.mean_alloc_latency_us() - 200.0).abs() < 1e-12);
        let empty = Metrics::default();
        assert_eq!(empty.acceptance_rate(), 0.0);
    }

    #[test]
    fn display_has_all_rows() {
        let text = Metrics::default().to_string();
        for key in ["requests", "accepted", "preemptions", "energy"] {
            assert!(text.contains(key), "missing {key}");
        }
    }
}
