//! System-level metrics collected over a simulation run.
//!
//! The counter block itself stays a plain `Copy` struct (the simulator
//! is single-threaded and updates it directly), but its rates, its
//! renderer and its registry bridge all come from `rqfa-telemetry`: the
//! rate math is the shared [`ratio`], `Display` renders through the
//! workspace-wide sample table, and [`MetricSource`] lets an operator
//! register a finished run's metrics next to the service's in one
//! [`Registry`](rqfa_telemetry::Registry) snapshot.

use core::fmt;

use rqfa_telemetry::{ratio, write_table, MetricSource, Sample};

/// Counters and aggregates of one simulation.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Metrics {
    /// Function requests submitted.
    pub requests: u64,
    /// Requests granted (task placed).
    pub accepted: u64,
    /// Requests rejected outright (no feasible variant).
    pub rejected: u64,
    /// Grants where a lower-ranked variant had to be used (the §3
    /// negotiation: "an alternative implementation can be offered").
    pub downgraded: u64,
    /// Grants that preempted lower-priority tasks.
    pub preemptions: u64,
    /// Requests answered from the bypass-token cache without retrieval.
    pub bypass_hits: u64,
    /// Reconfigurations performed (bitstream/opcode loads).
    pub reconfigurations: u64,
    /// Total time the configuration ports were busy, µs.
    pub reconfig_busy_us: u64,
    /// Total retrieval invocations (cache misses).
    pub retrievals: u64,
    /// Sum of allocation latencies (request → ready), µs.
    pub total_alloc_latency_us: u64,
    /// Maximum allocation latency observed, µs.
    pub max_alloc_latency_us: u64,
    /// Total energy consumed, nanojoules.
    pub energy_nj: u64,
}

impl Metrics {
    /// Acceptance rate in `[0, 1]`.
    pub fn acceptance_rate(&self) -> f64 {
        ratio(self.accepted, self.requests)
    }

    /// Bypass hit rate against all requests.
    pub fn bypass_rate(&self) -> f64 {
        ratio(self.bypass_hits, self.requests)
    }

    /// Mean allocation latency in µs.
    pub fn mean_alloc_latency_us(&self) -> f64 {
        ratio(self.total_alloc_latency_us, self.accepted)
    }

    /// This run's metrics as registry samples (the same rows `Display`
    /// renders, machine-readable).
    pub fn samples(&self) -> Vec<Sample> {
        #[allow(clippy::cast_precision_loss)]
        let energy_mj = self.energy_nj as f64 / 1e6;
        vec![
            Sample::count("requests", self.requests),
            Sample::count("accepted", self.accepted),
            Sample::ratio("acceptance_rate", self.acceptance_rate()),
            Sample::count("rejected", self.rejected),
            Sample::count("downgraded", self.downgraded),
            Sample::count("preemptions", self.preemptions),
            Sample::count("bypass_hits", self.bypass_hits),
            Sample::ratio("bypass_rate", self.bypass_rate()),
            Sample::count("retrievals", self.retrievals),
            Sample::count("reconfigurations", self.reconfigurations),
            Sample::us("reconfig_busy", self.reconfig_busy_us),
            Sample::new("mean_alloc_latency", "us", self.mean_alloc_latency_us()),
            Sample::us("max_alloc_latency", self.max_alloc_latency_us),
            Sample::new("energy", "mJ", energy_mj),
        ]
    }
}

impl MetricSource for Metrics {
    fn collect(&self, out: &mut Vec<Sample>) {
        out.extend(self.samples());
    }
}

impl fmt::Display for Metrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write_table(f, &self.samples())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates() {
        let m = Metrics {
            requests: 10,
            accepted: 8,
            bypass_hits: 4,
            total_alloc_latency_us: 1600,
            ..Metrics::default()
        };
        assert!((m.acceptance_rate() - 0.8).abs() < 1e-12);
        assert!((m.bypass_rate() - 0.4).abs() < 1e-12);
        assert!((m.mean_alloc_latency_us() - 200.0).abs() < 1e-12);
        let empty = Metrics::default();
        assert_eq!(empty.acceptance_rate(), 0.0);
    }

    #[test]
    fn display_has_all_rows() {
        let text = Metrics::default().to_string();
        for key in ["requests", "accepted", "preemptions", "energy"] {
            assert!(text.contains(key), "missing {key}");
        }
    }

    #[test]
    fn samples_match_the_counters() {
        let m = Metrics {
            requests: 4,
            accepted: 2,
            energy_nj: 3_000_000,
            ..Metrics::default()
        };
        let samples = m.samples();
        let value = |name: &str| samples.iter().find(|s| s.name == name).unwrap().value;
        assert_eq!(value("requests"), 4.0);
        assert_eq!(value("acceptance_rate"), 0.5);
        assert_eq!(value("energy"), 3.0);
    }
}
