//! Execution devices of the multi-device platform (fig. 1): partially
//! reconfigurable FPGAs, DSPs and general-purpose processors, each with a
//! local run-time controller that tracks capacity and (for FPGAs) the
//! exclusive reconfiguration port.

use core::fmt;

use rqfa_core::{ExecutionTarget, Footprint};

use crate::time::SimTime;

/// Identifies one device in the system.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DeviceId(pub u16);

impl fmt::Display for DeviceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "dev{}", self.0)
    }
}

/// Capacity model of one device.
#[derive(Debug, Clone, PartialEq)]
pub struct Device {
    id: DeviceId,
    name: String,
    target: ExecutionTarget,
    /// CLB slices (FPGA fabric); zero for processors.
    slice_capacity: u32,
    /// Compute capacity in 1/1000 of a core (processors/DSPs); zero for
    /// pure fabric.
    cpu_capacity_permille: u32,
    /// Static power draw in milliwatts (always on).
    static_mw: u32,
    slices_used: u32,
    permille_used: u32,
    /// The partial-reconfiguration port is exclusive; busy until this
    /// time. Processors use it to model code loading.
    config_port_busy_until: SimTime,
}

impl Device {
    /// A partially reconfigurable FPGA with `slices` of fabric.
    pub fn fpga(id: DeviceId, name: impl Into<String>, slices: u32, static_mw: u32) -> Device {
        Device {
            id,
            name: name.into(),
            target: ExecutionTarget::Fpga,
            slice_capacity: slices,
            cpu_capacity_permille: 0,
            static_mw,
            slices_used: 0,
            permille_used: 0,
            config_port_busy_until: SimTime::ZERO,
        }
    }

    /// A DSP with a compute budget in permille of one core.
    pub fn dsp(id: DeviceId, name: impl Into<String>, permille: u32, static_mw: u32) -> Device {
        Device {
            id,
            name: name.into(),
            target: ExecutionTarget::Dsp,
            slice_capacity: 0,
            cpu_capacity_permille: permille,
            static_mw,
            slices_used: 0,
            permille_used: 0,
            config_port_busy_until: SimTime::ZERO,
        }
    }

    /// A general-purpose processor.
    pub fn cpu(id: DeviceId, name: impl Into<String>, permille: u32, static_mw: u32) -> Device {
        Device {
            cpu_capacity_permille: permille,
            ..Device::dsp(id, name, permille, static_mw)
        }
        .with_target(ExecutionTarget::GpProcessor)
    }

    fn with_target(mut self, target: ExecutionTarget) -> Device {
        self.target = target;
        self
    }

    /// The device id.
    pub fn id(&self) -> DeviceId {
        self.id
    }

    /// Human-readable name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The execution-target class this device serves.
    pub fn target(&self) -> ExecutionTarget {
        self.target
    }

    /// Static power in milliwatts.
    pub fn static_mw(&self) -> u32 {
        self.static_mw
    }

    /// Free fabric slices.
    pub fn free_slices(&self) -> u32 {
        self.slice_capacity - self.slices_used
    }

    /// Free compute permille.
    pub fn free_permille(&self) -> u32 {
        self.cpu_capacity_permille - self.permille_used
    }

    /// Whether a variant with `footprint` fits right now.
    pub fn fits(&self, footprint: &Footprint) -> bool {
        footprint.slices <= self.free_slices() && footprint.cpu_permille <= self.free_permille()
    }

    /// Claims the resources of `footprint`.
    ///
    /// # Panics
    ///
    /// Debug-asserts that the footprint fits; callers check [`Self::fits`]
    /// first (the allocation manager does).
    pub fn claim(&mut self, footprint: &Footprint) {
        debug_assert!(self.fits(footprint), "claim without feasibility check");
        self.slices_used += footprint.slices.min(self.free_slices());
        self.permille_used += footprint.cpu_permille.min(self.free_permille());
    }

    /// Releases the resources of `footprint`.
    pub fn release(&mut self, footprint: &Footprint) {
        self.slices_used = self.slices_used.saturating_sub(footprint.slices);
        self.permille_used = self.permille_used.saturating_sub(footprint.cpu_permille);
    }

    /// Earliest time the configuration port is free.
    pub fn config_port_free_at(&self, now: SimTime) -> SimTime {
        self.config_port_busy_until.max(now)
    }

    /// Occupies the configuration port for `duration_us` starting at the
    /// earliest free slot ≥ `now`; returns the completion time.
    pub fn occupy_config_port(&mut self, now: SimTime, duration_us: u64) -> SimTime {
        let start = self.config_port_free_at(now);
        self.config_port_busy_until = start + duration_us;
        self.config_port_busy_until
    }

    /// Fabric utilization in `[0, 1]` (FPGA) or compute utilization
    /// (processors).
    pub fn utilization(&self) -> f64 {
        #[allow(clippy::cast_precision_loss)]
        if self.slice_capacity > 0 {
            f64::from(self.slices_used) / f64::from(self.slice_capacity)
        } else if self.cpu_capacity_permille > 0 {
            f64::from(self.permille_used) / f64::from(self.cpu_capacity_permille)
        } else {
            0.0
        }
    }
}

impl fmt::Display for Device {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} \"{}\" ({}) {:.0}% used",
            self.id,
            self.name,
            self.target,
            self.utilization() * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fp(slices: u32, permille: u32) -> Footprint {
        Footprint {
            slices,
            cpu_permille: permille,
            ..Footprint::none()
        }
    }

    #[test]
    fn fpga_capacity_accounting() {
        let mut d = Device::fpga(DeviceId(0), "fpga0", 1000, 150);
        assert!(d.fits(&fp(800, 0)));
        d.claim(&fp(800, 0));
        assert!(!d.fits(&fp(300, 0)));
        assert_eq!(d.free_slices(), 200);
        d.release(&fp(800, 0));
        assert_eq!(d.free_slices(), 1000);
        assert_eq!(d.target(), ExecutionTarget::Fpga);
    }

    #[test]
    fn cpu_capacity_accounting() {
        let mut d = Device::cpu(DeviceId(1), "cpu0", 1000, 200);
        d.claim(&fp(0, 700));
        assert!((d.utilization() - 0.7).abs() < 1e-12);
        assert!(!d.fits(&fp(0, 400)));
        assert!(d.fits(&fp(0, 300)));
        assert_eq!(d.target(), ExecutionTarget::GpProcessor);
    }

    #[test]
    fn config_port_serializes() {
        let mut d = Device::fpga(DeviceId(0), "fpga0", 1000, 150);
        let t1 = d.occupy_config_port(SimTime::from_us(100), 50);
        assert_eq!(t1.as_us(), 150);
        // A second reconfiguration issued at time 120 must wait.
        let t2 = d.occupy_config_port(SimTime::from_us(120), 50);
        assert_eq!(t2.as_us(), 200);
        assert_eq!(d.config_port_free_at(SimTime::ZERO).as_us(), 200);
    }

    #[test]
    fn display_reads_well() {
        let d = Device::dsp(DeviceId(2), "dsp0", 1000, 90);
        let s = d.to_string();
        assert!(s.contains("dsp0") && s.contains("DSP"));
    }
}
