//! On-line case-base learning — the §5 outlook ("dynamic update mechanisms
//! of Case-Base-data structures … enabling for a self-learning system")
//! wired into the run-time system.
//!
//! After a task completes, the local run-time controller reports the QoS
//! attributes the implementation *actually* achieved. The learner feeds
//! them through the CBR revise/retain policy of [`rqfa_core::cycle`]:
//! deviating measurements revise the stored case, novel operating points
//! are retained as new cases. Case-base mutations bump the generation
//! counter, so the allocation manager's bypass tokens invalidate
//! automatically.

use rqfa_core::{
    AttrBinding, CaseBase, CbrCycle, CycleOutcome, ExecutionTarget, Footprint, LearnAction,
    LearnPolicy, Request, Scored, Q15,
};

use crate::error::RsocError;

/// Statistics of the learning layer.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LearnStats {
    /// Feedback reports processed.
    pub reports: u64,
    /// Reports confirming the stored case.
    pub confirmed: u64,
    /// Cases revised in place.
    pub revised: u64,
    /// New cases retained.
    pub retained: u64,
    /// Reports discarded as inconsistent.
    pub discarded: u64,
}

/// The on-line learner.
#[derive(Debug, Clone)]
pub struct Learner {
    cycle: CbrCycle,
    stats: LearnStats,
}

impl Learner {
    /// Creates a learner with the given policy.
    pub fn new(policy: LearnPolicy) -> Learner {
        Learner {
            // The learner never serves retrievals; the tiny cache exists
            // only because CbrCycle owns one.
            cycle: CbrCycle::new(1).with_policy(policy),
            stats: LearnStats::default(),
        }
    }

    /// Processes one feedback report: the request that was served, the
    /// variant the allocation manager selected (with its similarity), and
    /// the measured attribute values.
    ///
    /// # Errors
    ///
    /// Propagates case-base mutation errors.
    #[allow(clippy::too_many_arguments)]
    pub fn feedback(
        &mut self,
        case_base: &mut CaseBase,
        request: &Request,
        selected: Scored<Q15>,
        measured: &[AttrBinding],
        target: ExecutionTarget,
        footprint: Footprint,
    ) -> Result<LearnAction, RsocError> {
        let outcome = CycleOutcome {
            suggestion: selected,
            bypassed: false,
        };
        let action = self
            .cycle
            .learn(case_base, request, &outcome, measured, target, footprint)?;
        self.stats.reports += 1;
        match action {
            LearnAction::Confirmed => self.stats.confirmed += 1,
            LearnAction::Revised { .. } => self.stats.revised += 1,
            LearnAction::Retained { .. } => self.stats.retained += 1,
            LearnAction::Discarded => self.stats.discarded += 1,
            // `LearnAction` is #[non_exhaustive]; future variants count as
            // processed reports only.
            _ => {}
        }
        Ok(action)
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> LearnStats {
        self.stats
    }
}

impl Default for Learner {
    fn default() -> Learner {
        Learner::new(LearnPolicy::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rqfa_core::{paper, FixedEngine};

    #[test]
    fn retained_case_improves_next_retrieval() {
        let mut cb = paper::table1_case_base();
        let mut learner = Learner::default();
        let engine = FixedEngine::new();

        // An odd operating point: 12-bit mono at 30 kS/s.
        let request = rqfa_core::Request::builder(paper::FIR_EQUALIZER)
            .constraint(paper::ATTR_BITWIDTH, 12)
            .constraint(paper::ATTR_OUTPUT, 0)
            .constraint(paper::ATTR_RATE, 30)
            .build()
            .unwrap();
        let first = engine.retrieve(&cb, &request).unwrap().best.unwrap();
        assert!(first.similarity < Q15::ONE);

        let measured = vec![
            AttrBinding::new(paper::ATTR_BITWIDTH, 12),
            AttrBinding::new(paper::ATTR_OUTPUT, 0),
            AttrBinding::new(paper::ATTR_RATE, 30),
        ];
        let action = learner
            .feedback(
                &mut cb,
                &request,
                first,
                &measured,
                ExecutionTarget::Fpga,
                Footprint::none(),
            )
            .unwrap();
        assert!(matches!(action, LearnAction::Retained { .. }));
        assert_eq!(learner.stats().retained, 1);

        let second = engine.retrieve(&cb, &request).unwrap().best.unwrap();
        assert_eq!(second.similarity, Q15::ONE, "learned case is exact now");
    }

    #[test]
    fn generation_bump_invalidates_tokens() {
        let mut cb = paper::table1_case_base();
        let g0 = cb.generation();
        let mut learner = Learner::default();
        let request = rqfa_core::Request::builder(paper::FIR_EQUALIZER)
            .constraint(paper::ATTR_BITWIDTH, 10)
            .build()
            .unwrap();
        let first = FixedEngine::new().retrieve(&cb, &request).unwrap().best.unwrap();
        learner
            .feedback(
                &mut cb,
                &request,
                first,
                &[AttrBinding::new(paper::ATTR_BITWIDTH, 10)],
                ExecutionTarget::Dsp,
                Footprint::none(),
            )
            .unwrap();
        assert!(cb.generation() > g0);
    }
}
