//! The opcode/bitstream repository (fig. 1: "Opcode/Bitstream-Repository
//! (FLASH)").
//!
//! Every allocatable implementation variant has configuration data —
//! a partial bitstream for FPGA variants, opcode for processor/DSP
//! variants — stored in FLASH. Loading it onto the device takes time
//! proportional to its size, which is the dominant part of a run-time
//! reconfiguration and feeds the allocation manager's `ready_at` estimate.

use std::collections::HashMap;

use rqfa_core::{CaseBase, ImplId, TypeId};

use crate::error::RsocError;

/// FLASH repository with a simple bandwidth/latency transfer model.
#[derive(Debug, Clone, PartialEq)]
pub struct Repository {
    /// Transfer setup latency in microseconds (FLASH wake + addressing).
    pub setup_us: u64,
    /// Sustained bandwidth in bytes per microsecond (= MB/s).
    pub bytes_per_us: u64,
    configs: HashMap<(TypeId, ImplId), u32>,
}

impl Repository {
    /// Creates an empty repository with a transfer model.
    ///
    /// A bandwidth of `50` bytes/µs ≈ 50 MB/s is typical for the parallel
    /// FLASH + ICAP path of a Virtex-II era platform.
    pub fn new(setup_us: u64, bytes_per_us: u64) -> Repository {
        Repository {
            setup_us,
            bytes_per_us: bytes_per_us.max(1),
            configs: HashMap::new(),
        }
    }

    /// Registers configuration data for every variant of a case base,
    /// using each variant's footprint (`config_bytes`).
    pub fn index_case_base(&mut self, case_base: &CaseBase) {
        for ty in case_base.function_types() {
            for variant in ty.variants() {
                self.configs
                    .insert((ty.id(), variant.id()), variant.footprint().config_bytes());
            }
        }
    }

    /// Registers one configuration payload explicitly.
    pub fn insert(&mut self, type_id: TypeId, impl_id: ImplId, bytes: u32) {
        self.configs.insert((type_id, impl_id), bytes);
    }

    /// Size of the stored configuration payload.
    ///
    /// # Errors
    ///
    /// [`RsocError::MissingConfig`] when the variant is not indexed.
    pub fn config_bytes(&self, type_id: TypeId, impl_id: ImplId) -> Result<u32, RsocError> {
        self.configs
            .get(&(type_id, impl_id))
            .copied()
            .ok_or(RsocError::MissingConfig { type_id, impl_id })
    }

    /// Transfer time for a payload of `bytes`.
    pub fn load_time_us(&self, bytes: u32) -> u64 {
        self.setup_us + u64::from(bytes) / self.bytes_per_us
    }

    /// Number of indexed configurations.
    pub fn len(&self) -> usize {
        self.configs.len()
    }

    /// Whether the repository is empty.
    pub fn is_empty(&self) -> bool {
        self.configs.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rqfa_core::paper;

    #[test]
    fn indexes_case_base_footprints() {
        let mut repo = Repository::new(10, 50);
        repo.index_case_base(&paper::table1_case_base());
        assert_eq!(repo.len(), 5);
        let fpga_bytes = repo
            .config_bytes(paper::FIR_EQUALIZER, paper::IMPL_FPGA)
            .unwrap();
        assert_eq!(fpga_bytes, 96 * 1024);
        assert!(!repo.is_empty());
    }

    #[test]
    fn missing_config_errors() {
        let repo = Repository::new(10, 50);
        assert!(matches!(
            repo.config_bytes(paper::FIR_EQUALIZER, paper::IMPL_FPGA),
            Err(RsocError::MissingConfig { .. })
        ));
    }

    #[test]
    fn load_time_scales_with_size() {
        let repo = Repository::new(10, 50);
        assert_eq!(repo.load_time_us(0), 10);
        assert_eq!(repo.load_time_us(5000), 10 + 100);
        // Bandwidth is clamped to at least 1 byte/µs.
        let slow = Repository::new(0, 0);
        assert_eq!(slow.load_time_us(100), 100);
    }
}
