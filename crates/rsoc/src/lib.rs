//! # rqfa-rsoc — run-time reconfigurable system simulator
//!
//! The system environment of fig. 1 of Ullmann et al. (DATE 2004):
//! applications running on a multi-device platform (partially
//! reconfigurable FPGAs, DSPs, general-purpose processors) request
//! QoS-constrained functions; the **function-allocation management** layer
//! retrieves suitable implementation variants (CBR, [`rqfa_core`]), checks
//! feasibility against current system load, preempts lower-priority tasks
//! when allowed, loads configuration data from the FLASH repository and
//! reconfigures devices — with bypass tokens for repeated calls and
//! relaxed-constraint retries after rejection (§3).
//!
//! ```
//! use rqfa_core::paper;
//! use rqfa_rsoc::{ArrivalSpec, AppId, Device, DeviceId, SimTime, SystemBuilder};
//!
//! let mut system = SystemBuilder::new(paper::table1_case_base())
//!     .device(Device::fpga(DeviceId(0), "fpga0", 2000, 150))
//!     .device(Device::dsp(DeviceId(1), "dsp0", 1000, 90))
//!     .build()?;
//! system.submit(SimTime::ZERO, ArrivalSpec {
//!     app: AppId(1),
//!     request: paper::table1_request()?,
//!     priority: 5,
//!     duration_us: 1_000,
//!     relaxed: None,
//! });
//! let metrics = system.run()?;
//! assert_eq!(metrics.accepted, 1);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod device;
mod error;
mod learning;
mod metrics;
mod power;
mod repository;
mod system;
mod task;
mod time;

pub use device::{Device, DeviceId};
pub use error::RsocError;
pub use learning::{LearnStats, Learner};
pub use metrics::Metrics;
pub use power::EnergyMeter;
pub use repository::Repository;
pub use system::{AllocPolicy, ArrivalSpec, Decision, RejectReason, System, SystemBuilder};
pub use task::{AppId, Task, TaskId, TaskState};
pub use time::SimTime;

#[cfg(all(test, feature = "proptests"))]
mod proptests;
