//! Property tests: system invariants under random request streams.

use proptest::prelude::*;

use rqfa_core::{paper, Request};

use crate::{AllocPolicy, AppId, ArrivalSpec, Device, DeviceId, SimTime, SystemBuilder, TaskState};

fn arb_request() -> impl Strategy<Value = Request> {
    (8u16..=16, 0u16..=2, 8u16..=44).prop_map(|(bw, out, rate)| {
        Request::builder(paper::FIR_EQUALIZER)
            .constraint(paper::ATTR_BITWIDTH, bw)
            .constraint(paper::ATTR_OUTPUT, out)
            .constraint(paper::ATTR_RATE, rate)
            .build()
            .unwrap()
    })
}

fn arb_stream() -> impl Strategy<Value = Vec<(u64, u8, u64, Request)>> {
    proptest::collection::vec(
        (0u64..50_000, 0u8..10, 100u64..20_000, arb_request()),
        1..24,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every request resolves (accepted + rejected = requests), devices
    /// drain completely, energy is positive and capacity never goes
    /// negative (claim() debug-asserts internally).
    #[test]
    fn conservation_invariants(stream in arb_stream(), preempt in any::<bool>()) {
        let mut sys = SystemBuilder::new(paper::table1_case_base())
            .device(Device::fpga(DeviceId(0), "fpga0", 1700, 150))
            .device(Device::dsp(DeviceId(1), "dsp0", 900, 90))
            .device(Device::cpu(DeviceId(2), "cpu0", 1000, 200))
            .policy(AllocPolicy { allow_preemption: preempt, ..AllocPolicy::default() })
            .build()
            .unwrap();
        let n = stream.len() as u64;
        for (at, priority, duration, request) in stream {
            sys.submit(SimTime::from_us(at), ArrivalSpec {
                app: AppId(u16::from(priority)),
                request,
                priority,
                duration_us: duration,
                relaxed: None,
            });
        }
        let metrics = sys.run().unwrap();
        prop_assert_eq!(metrics.requests, n);
        prop_assert_eq!(metrics.accepted + metrics.rejected, metrics.requests);
        prop_assert!(metrics.energy_nj > 0);
        for d in [DeviceId(0), DeviceId(1), DeviceId(2)] {
            prop_assert!(sys.device(d).unwrap().utilization().abs() < 1e-12);
        }
        // Every task ended terminally.
        for task in sys.tasks() {
            prop_assert!(matches!(task.state, TaskState::Completed | TaskState::Preempted));
        }
    }

    /// Preemption never evicts an equal-or-higher-priority task.
    #[test]
    fn preemption_respects_priority(stream in arb_stream()) {
        let mut sys = SystemBuilder::new(paper::table1_case_base())
            .device(Device::fpga(DeviceId(0), "fpga0", 900, 150))
            .device(Device::dsp(DeviceId(1), "dsp0", 500, 90))
            .build()
            .unwrap();
        for (at, priority, duration, request) in &stream {
            sys.submit(SimTime::from_us(*at), ArrivalSpec {
                app: AppId(0),
                request: request.clone(),
                priority: *priority,
                duration_us: *duration,
                relaxed: None,
            });
        }
        sys.run().unwrap();
        // Reconstruct: for every preempted task there was a later, strictly
        // higher-priority task on the same device.
        for victim in sys.tasks().filter(|t| t.state == TaskState::Preempted) {
            let exists = sys.tasks().any(|t| {
                t.device == victim.device
                    && t.priority > victim.priority
                    && t.requested_at >= victim.requested_at
            });
            prop_assert!(exists, "preempted {} without a higher-priority cause", victim.id);
        }
    }

    /// Identical request streams produce identical metrics (determinism).
    #[test]
    fn runs_are_deterministic(stream in arb_stream()) {
        let run = |s: &[(u64, u8, u64, Request)]| {
            let mut sys = SystemBuilder::new(paper::table1_case_base())
                .device(Device::fpga(DeviceId(0), "fpga0", 1700, 150))
                .device(Device::dsp(DeviceId(1), "dsp0", 900, 90))
                .build()
                .unwrap();
            for (at, priority, duration, request) in s {
                sys.submit(SimTime::from_us(*at), ArrivalSpec {
                    app: AppId(0),
                    request: request.clone(),
                    priority: *priority,
                    duration_us: *duration,
                    relaxed: None,
                });
            }
            sys.run().unwrap()
        };
        prop_assert_eq!(run(&stream), run(&stream));
    }
}
