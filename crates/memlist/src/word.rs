//! Raw word-level memory images.
//!
//! Every data structure of the retrieval unit lives in linearly organized
//! RAM blocks of 16-bit words (§4.1: "These lists can be easily mapped on
//! linear organized RAM-blocks if all list elements use the same word
//! length per entry"). [`MemImage`] models one such block with
//! bounds-checked reads — the BRAM simulator in `rqfa-hwsim` wraps it with
//! port/latency semantics, the soft-core maps it into its data address
//! space.

use core::fmt;

use crate::error::MemError;

/// The reserved list-terminator word (`Listen Ende` in fig. 4/5).
pub const END_MARKER: u16 = 0xFFFF;

/// A linear block of 16-bit words with 16-bit word addressing.
///
/// ```
/// use rqfa_memlist::{MemImage, END_MARKER};
///
/// let image = MemImage::from_words(vec![1, 2, END_MARKER])?;
/// assert_eq!(image.read(1)?, 2);
/// assert_eq!(image.len(), 3);
/// assert!(image.read(3).is_err());
/// # Ok::<(), rqfa_memlist::MemError>(())
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MemImage {
    words: Vec<u16>,
}

impl MemImage {
    /// Wraps a word vector as an image.
    ///
    /// # Errors
    ///
    /// [`MemError::ImageTooLarge`] if more than `0xFFFF` words are given
    /// (word addresses are 16-bit, and `0xFFFF` doubles as terminator, so
    /// the largest addressable image is 65535 words).
    pub fn from_words(words: Vec<u16>) -> Result<MemImage, MemError> {
        if words.len() > usize::from(u16::MAX) {
            return Err(MemError::ImageTooLarge { words: words.len() });
        }
        Ok(MemImage { words })
    }

    /// Reads the word at `addr`.
    ///
    /// # Errors
    ///
    /// [`MemError::OutOfRange`] outside the image.
    pub fn read(&self, addr: u16) -> Result<u16, MemError> {
        self.words
            .get(usize::from(addr))
            .copied()
            .ok_or(MemError::OutOfRange {
                addr,
                len: self.words.len(),
            })
    }

    /// Reads two consecutive words in one access — the 32-bit wide-port
    /// fetch of the paper's compaction outlook ("loading IDs and values as
    /// blocks within one step").
    ///
    /// # Errors
    ///
    /// [`MemError::OutOfRange`] if either word lies outside the image.
    pub fn read_pair(&self, addr: u16) -> Result<(u16, u16), MemError> {
        Ok((self.read(addr)?, self.read(addr.wrapping_add(1))?))
    }

    /// Number of words.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// Whether the image holds no words.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Size in bytes (2 bytes per word) — the unit of Table 3.
    pub fn bytes(&self) -> usize {
        self.words.len() * 2
    }

    /// The underlying words.
    pub fn words(&self) -> &[u16] {
        &self.words
    }

    /// Consumes the image, returning the word vector.
    pub fn into_words(self) -> Vec<u16> {
        self.words
    }

    /// Walks a terminated list region starting at `start`, returning the
    /// addresses span `[start, terminator]` (inclusive of the terminator).
    ///
    /// # Errors
    ///
    /// [`MemError::UnterminatedList`] if no terminator is found.
    pub fn list_span(&self, start: u16) -> Result<core::ops::RangeInclusive<u16>, MemError> {
        let mut addr = start;
        loop {
            match self.read(addr) {
                Ok(END_MARKER) => return Ok(start..=addr),
                Ok(_) => {
                    addr = addr
                        .checked_add(1)
                        .ok_or(MemError::UnterminatedList { start })?;
                }
                Err(_) => return Err(MemError::UnterminatedList { start }),
            }
        }
    }
}

impl fmt::Display for MemImage {
    /// Hex dump, eight words per line.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, chunk) in self.words.chunks(8).enumerate() {
            write!(f, "{:04x}:", i * 8)?;
            for w in chunk {
                write!(f, " {w:04x}")?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

impl TryFrom<Vec<u16>> for MemImage {
    type Error = MemError;

    fn try_from(words: Vec<u16>) -> Result<MemImage, MemError> {
        MemImage::from_words(words)
    }
}

/// Named sections of a built image: `(name, word range)` in build order.
pub type SectionMap = Vec<(String, core::ops::Range<usize>)>;

/// Incrementally builds an image, tracking section boundaries for the
/// memory-consumption report (Table 3).
#[derive(Debug, Clone, Default)]
pub struct ImageBuilder {
    words: Vec<u16>,
    sections: Vec<(String, core::ops::Range<usize>)>,
}

impl ImageBuilder {
    /// Creates an empty builder.
    pub fn new() -> ImageBuilder {
        ImageBuilder::default()
    }

    /// Current write position (the address the next word will get).
    ///
    /// # Panics
    ///
    /// Never panics; the length is checked on [`ImageBuilder::finish`].
    pub fn cursor(&self) -> u16 {
        debug_assert!(self.words.len() <= usize::from(u16::MAX));
        self.words.len() as u16
    }

    /// Appends one word.
    pub fn push(&mut self, word: u16) -> &mut ImageBuilder {
        self.words.push(word);
        self
    }

    /// Appends a terminator word.
    pub fn terminate(&mut self) -> &mut ImageBuilder {
        self.words.push(END_MARKER);
        self
    }

    /// Overwrites a previously pushed word (pointer back-patching).
    ///
    /// # Panics
    ///
    /// Panics if `addr` has not been written yet — back-patching an
    /// unwritten address is a builder logic error, not input-dependent.
    pub fn patch(&mut self, addr: u16, word: u16) -> &mut ImageBuilder {
        self.words[usize::from(addr)] = word;
        self
    }

    /// Marks the section from `from` to the current cursor with a name.
    pub fn section(&mut self, name: impl Into<String>, from: u16) -> &mut ImageBuilder {
        self.sections
            .push((name.into(), usize::from(from)..self.words.len()));
        self
    }

    /// Finishes the image and returns it with its section map.
    ///
    /// # Errors
    ///
    /// [`MemError::ImageTooLarge`] if the image outgrew the address space.
    pub fn finish(self) -> Result<(MemImage, SectionMap), MemError> {
        Ok((MemImage::from_words(self.words)?, self.sections))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_and_bounds() {
        let img = MemImage::from_words(vec![10, 20, 30]).unwrap();
        assert_eq!(img.read(0).unwrap(), 10);
        assert_eq!(img.read(2).unwrap(), 30);
        assert!(matches!(img.read(3), Err(MemError::OutOfRange { .. })));
        assert_eq!(img.bytes(), 6);
        assert!(!img.is_empty());
    }

    #[test]
    fn read_pair_fetches_two_words() {
        let img = MemImage::from_words(vec![1, 2, 3]).unwrap();
        assert_eq!(img.read_pair(1).unwrap(), (2, 3));
        assert!(img.read_pair(2).is_err());
    }

    #[test]
    fn list_span_finds_terminator() {
        let img = MemImage::from_words(vec![1, 2, END_MARKER, 4]).unwrap();
        assert_eq!(img.list_span(0).unwrap(), 0..=2);
        assert_eq!(img.list_span(2).unwrap(), 2..=2);
        assert!(matches!(
            img.list_span(3),
            Err(MemError::UnterminatedList { start: 3 })
        ));
    }

    #[test]
    fn builder_patches_pointers() {
        let mut b = ImageBuilder::new();
        b.push(0); // placeholder pointer
        let start = b.cursor();
        b.push(42).terminate();
        b.patch(0, start);
        b.section("list", start);
        let (img, sections) = b.finish().unwrap();
        assert_eq!(img.read(0).unwrap(), 1);
        assert_eq!(img.read(1).unwrap(), 42);
        assert_eq!(sections[0].0, "list");
        assert_eq!(sections[0].1, 1..3);
    }

    #[test]
    fn oversize_image_rejected() {
        let words = vec![0u16; usize::from(u16::MAX) + 1];
        assert!(matches!(
            MemImage::from_words(words),
            Err(MemError::ImageTooLarge { .. })
        ));
    }

    #[test]
    fn hex_dump_formats() {
        let img = MemImage::from_words(vec![0xDEAD, 0xBEEF]).unwrap();
        let dump = img.to_string();
        assert!(dump.contains("dead") && dump.contains("beef"));
    }
}
