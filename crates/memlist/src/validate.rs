//! Structural validation of untrusted memory images.
//!
//! A run-time system that loads case-base images from a FLASH repository
//! (fig. 1) must not feed malformed words into the retrieval unit: a
//! dangling pointer would make the FSM scan arbitrary memory. The validator
//! checks every invariant the hardware relies on:
//!
//! 1. header pointers resolve into the image;
//! 2. every list is `0xFFFF`-terminated;
//! 3. ids ascend strictly within each list (the resumable-search invariant);
//! 4. reciprocal and weight words are valid UQ1.15 values;
//! 5. reciprocals are consistent with their bounds
//!    (`recip == round(32768/(1+upper−lower))`);
//! 6. every attribute used in the tree or request has a supplemental entry
//!    and its value lies inside the declared bounds;
//! 7. request weights sum to exactly `1.0`.

use rqfa_fixed::{recip_plus_one, Q15};

use crate::decode::{decode_supplemental, SupplementalEntry};
use crate::error::MemError;
use crate::layout::{CaseBaseImage, RequestImage};
use crate::word::{MemImage, END_MARKER};

/// Statistics gathered while validating a case-base image.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ValidationSummary {
    /// Function types found.
    pub types: usize,
    /// Implementation variants found.
    pub variants: usize,
    /// Attribute bindings found.
    pub bindings: usize,
    /// Supplemental entries found.
    pub supplemental: usize,
    /// Total words inspected (upper bound of reachable image).
    pub words: usize,
}

fn check_ascending(prev: &mut Option<u16>, id: u16, at: u16) -> Result<(), MemError> {
    if let Some(p) = *prev {
        if id <= p {
            return Err(MemError::UnsortedList { at, prev: p, next: id });
        }
    }
    *prev = Some(id);
    Ok(())
}

fn check_id(raw: u16, at: u16) -> Result<(), MemError> {
    if raw == END_MARKER {
        Err(MemError::InvalidId { at, raw })
    } else {
        Ok(())
    }
}

fn check_q15(raw: u16, at: u16) -> Result<Q15, MemError> {
    Q15::new(raw).map_err(|_| MemError::BadQ15 { at, raw })
}

/// Validates a case-base image; returns a summary on success.
///
/// # Errors
///
/// The first violated invariant, as a structural [`MemError`].
///
/// ```
/// use rqfa_core::paper;
/// use rqfa_memlist::{encode_case_base, validate_case_base};
///
/// let image = encode_case_base(&paper::table1_case_base())?;
/// let summary = validate_case_base(&image)?;
/// assert_eq!(summary.types, 2);
/// assert_eq!(summary.variants, 5);
/// # Ok::<(), rqfa_memlist::MemError>(())
/// ```
pub fn validate_case_base(image: &CaseBaseImage) -> Result<ValidationSummary, MemError> {
    let words = image.image();
    let mut summary = ValidationSummary {
        words: words.len(),
        ..ValidationSummary::default()
    };

    // Supplemental list: structure, ordering, reciprocal consistency.
    let supplemental = decode_supplemental(image)?;
    let suppl_base = image.supplemental_base()?;
    let mut prev = None;
    for (i, entry) in supplemental.iter().enumerate() {
        let at = suppl_base + (i as u16) * 4;
        check_id(entry.attr, at)?;
        check_ascending(&mut prev, entry.attr, at)?;
        if entry.lower > entry.upper {
            return Err(MemError::UnsortedList {
                at: at + 1,
                prev: entry.lower,
                next: entry.upper,
            });
        }
        let recip = check_q15(entry.recip, at + 3)?;
        let expect = recip_plus_one(entry.upper - entry.lower);
        if recip != expect {
            return Err(MemError::BadQ15 {
                at: at + 3,
                raw: entry.recip,
            });
        }
    }
    summary.supplemental = supplemental.len();

    let lookup = |attr: u16| -> Option<&SupplementalEntry> {
        supplemental.iter().find(|e| e.attr == attr)
    };

    // Type directory.
    let tree_base = image.tree_base()?;
    let mut addr = tree_base;
    let mut prev_type = None;
    loop {
        let id = words.read(addr)?;
        if id == END_MARKER {
            break;
        }
        check_id(id, addr)?;
        check_ascending(&mut prev_type, id, addr)?;
        summary.types += 1;
        let impl_ptr = words
            .read(addr + 1)
            .map_err(|_| MemError::TruncatedBlock { at: addr })?;
        if usize::from(impl_ptr) >= words.len() {
            return Err(MemError::DanglingPointer {
                at: addr + 1,
                target: impl_ptr,
            });
        }
        // Implementation list of this type.
        let mut impl_addr = impl_ptr;
        let mut prev_impl = None;
        loop {
            let impl_id = words.read(impl_addr)?;
            if impl_id == END_MARKER {
                break;
            }
            check_id(impl_id, impl_addr)?;
            check_ascending(&mut prev_impl, impl_id, impl_addr)?;
            summary.variants += 1;
            let attr_ptr = words
                .read(impl_addr + 1)
                .map_err(|_| MemError::TruncatedBlock { at: impl_addr })?;
            if usize::from(attr_ptr) >= words.len() {
                return Err(MemError::DanglingPointer {
                    at: impl_addr + 1,
                    target: attr_ptr,
                });
            }
            // Attribute list of this variant.
            let mut attr_addr = attr_ptr;
            let mut prev_attr = None;
            loop {
                let attr = words.read(attr_addr)?;
                if attr == END_MARKER {
                    break;
                }
                check_id(attr, attr_addr)?;
                check_ascending(&mut prev_attr, attr, attr_addr)?;
                let value = words
                    .read(attr_addr + 1)
                    .map_err(|_| MemError::TruncatedBlock { at: attr_addr })?;
                let entry =
                    lookup(attr).ok_or(MemError::MissingSupplemental { attr })?;
                if !(entry.lower..=entry.upper).contains(&value) {
                    return Err(MemError::Core(rqfa_core::CoreError::ValueOutOfBounds {
                        attr: rqfa_core::AttrId::new(attr).map_err(MemError::Core)?,
                        value,
                        lower: entry.lower,
                        upper: entry.upper,
                    }));
                }
                summary.bindings += 1;
                attr_addr = attr_addr
                    .checked_add(2)
                    .ok_or(MemError::UnterminatedList { start: attr_ptr })?;
            }
            impl_addr = impl_addr
                .checked_add(2)
                .ok_or(MemError::UnterminatedList { start: impl_ptr })?;
        }
        addr = addr
            .checked_add(2)
            .ok_or(MemError::UnterminatedList { start: tree_base })?;
    }
    Ok(summary)
}

/// Validates a request image against a (validated) case-base image.
///
/// Checks structure, ascending attribute ids, UQ1.15 weights summing to
/// exactly `1.0`, and that every constrained attribute has a supplemental
/// entry in `case_base`.
///
/// # Errors
///
/// The first violated invariant.
pub fn validate_request(
    request: &RequestImage,
    case_base: &CaseBaseImage,
) -> Result<usize, MemError> {
    let supplemental = decode_supplemental(case_base)?;
    let words = request.image();
    check_id(request.type_id()?, 0)?;
    let mut addr: u16 = 1;
    let mut prev = None;
    let mut weight_sum: u32 = 0;
    let mut count = 0usize;
    loop {
        let attr = words.read(addr)?;
        if attr == END_MARKER {
            break;
        }
        check_id(attr, addr)?;
        check_ascending(&mut prev, attr, addr)?;
        let _value = words
            .read(addr + 1)
            .map_err(|_| MemError::TruncatedBlock { at: addr })?;
        let weight = words
            .read(addr + 2)
            .map_err(|_| MemError::TruncatedBlock { at: addr })?;
        check_q15(weight, addr + 2)?;
        weight_sum += u32::from(weight);
        if !supplemental.iter().any(|e| e.attr == attr) {
            return Err(MemError::MissingSupplemental { attr });
        }
        count += 1;
        addr = addr
            .checked_add(3)
            .ok_or(MemError::UnterminatedList { start: 1 })?;
    }
    if weight_sum != u32::from(Q15::ONE.raw()) {
        return Err(MemError::BadQ15 {
            at: 0,
            raw: weight_sum.min(u32::from(u16::MAX)) as u16,
        });
    }
    Ok(count)
}

/// Validates that a raw word image is a structurally sound case base —
/// convenience wrapper for repository loading.
///
/// # Errors
///
/// As [`validate_case_base`].
pub fn validate_raw(words: Vec<u16>) -> Result<CaseBaseImage, MemError> {
    let image = CaseBaseImage::from_image(MemImage::from_words(words)?);
    validate_case_base(&image)?;
    Ok(image)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::{encode_case_base, encode_request};
    use rqfa_core::paper;

    fn good_image() -> CaseBaseImage {
        encode_case_base(&paper::table1_case_base()).unwrap()
    }

    #[test]
    fn valid_image_passes() {
        let summary = validate_case_base(&good_image()).unwrap();
        assert_eq!(summary.types, 2);
        assert_eq!(summary.variants, 5);
        assert_eq!(summary.supplemental, 4);
        assert_eq!(summary.bindings, 4 * 3 + 3 * 2); // 3 FIR variants × 4 attrs + 2 FFT × 3
    }

    #[test]
    fn request_against_case_base_passes() {
        let req = encode_request(&paper::table1_request().unwrap()).unwrap();
        let n = validate_request(&req, &good_image()).unwrap();
        assert_eq!(n, 3);
    }

    #[test]
    fn corrupted_pointer_is_caught() {
        let image = good_image();
        let mut words = image.image().words().to_vec();
        let tree = image.tree_base().unwrap();
        words[usize::from(tree) + 1] = 0xFF00; // implausible pointer
        let broken = CaseBaseImage::from_image(MemImage::from_words(words).unwrap());
        assert!(matches!(
            validate_case_base(&broken),
            Err(MemError::DanglingPointer { .. }) | Err(MemError::OutOfRange { .. })
        ));
    }

    #[test]
    fn unsorted_attr_list_is_caught() {
        let image = good_image();
        let mut words = image.image().words().to_vec();
        // Swap the first two attribute blocks of the first attr list.
        let attr_section = image
            .sections()
            .iter()
            .find(|s| s.name == "attr-lists")
            .unwrap();
        let base = attr_section.range.start;
        words.swap(base, base + 2);
        words.swap(base + 1, base + 3);
        let broken = CaseBaseImage::from_image(MemImage::from_words(words).unwrap());
        assert!(matches!(
            validate_case_base(&broken),
            Err(MemError::UnsortedList { .. })
        ));
    }

    #[test]
    fn inconsistent_recip_is_caught() {
        let image = good_image();
        let mut words = image.image().words().to_vec();
        let suppl = usize::from(image.supplemental_base().unwrap());
        words[suppl + 3] = words[suppl + 3].wrapping_add(5); // break recip
        let broken = CaseBaseImage::from_image(MemImage::from_words(words).unwrap());
        assert!(matches!(
            validate_case_base(&broken),
            Err(MemError::BadQ15 { .. })
        ));
    }

    #[test]
    fn missing_supplemental_is_caught() {
        let image = good_image();
        let mut words = image.image().words().to_vec();
        let suppl = usize::from(image.supplemental_base().unwrap());
        // Truncate the supplemental list to one entry (attr 1).
        words[suppl + 4] = END_MARKER;
        let broken = CaseBaseImage::from_image(MemImage::from_words(words).unwrap());
        // Attribute 2/3/4 of the variants now lack entries. Either the
        // terminator cut mid-structure (unsorted/missing) — both acceptable.
        assert!(validate_case_base(&broken).is_err());
    }

    #[test]
    fn bad_weight_sum_is_caught() {
        let req = encode_request(&paper::table1_request().unwrap()).unwrap();
        let mut words = req.image().words().to_vec();
        words[3] = words[3].wrapping_sub(1); // weight off by one ulp
        let broken = RequestImage::from_image(MemImage::from_words(words).unwrap());
        assert!(matches!(
            validate_request(&broken, &good_image()),
            Err(MemError::BadQ15 { .. })
        ));
    }

    #[test]
    fn validate_raw_roundtrip() {
        let image = good_image();
        let ok = validate_raw(image.image().words().to_vec()).unwrap();
        assert_eq!(ok.image().len(), image.image().len());
        assert!(validate_raw(vec![50, 60, END_MARKER]).is_err());
    }
}
