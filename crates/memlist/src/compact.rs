//! Compacted attribute-block representation — the §5 outlook:
//! "a rather compacted attribute block representation could be used for
//! loading IDs and values as blocks within one step speeding everything up
//! at least by factor 2."
//!
//! Two complementary mechanisms realize that idea; both are modelled here
//! and measured in experiment E9:
//!
//! 1. **Packed entries** ([`pack_attr`]): id and value share one 16-bit
//!    word (6-bit id, 10-bit value), halving attribute-list length — and
//!    thus halving the words the FSM must fetch while scanning. Applicable
//!    when ids < 63 and values < 1024.
//! 2. **Wide fetches** ([`crate::MemImage::read_pair`]): a 32-bit BRAM port
//!    reads `(id, value)` of the classic layout in one cycle. Always
//!    applicable; needs double-width memory.
//!
//! The packed encoding keeps the surrounding tree structure (header,
//! supplemental list, pointer lists) identical to the canonical layout;
//! only level-2 attribute lists change, marked by a distinct image type so
//! the two cannot be confused.

use rqfa_core::CaseBase;

use crate::error::MemError;
use crate::layout::Section;
use crate::word::{ImageBuilder, MemImage, END_MARKER};

/// Number of value bits in a packed attribute word.
pub const VALUE_BITS: u16 = 10;
/// Maximum representable attribute id (6 id bits, `0b111111` reserved for
/// the terminator's id field).
pub const MAX_PACKED_ID: u16 = 62;
/// Maximum representable value.
pub const MAX_PACKED_VALUE: u16 = (1 << VALUE_BITS) - 1;

/// Packs an attribute id and value into one word: `id << 10 | value`.
///
/// # Errors
///
/// [`MemError::CompactOverflow`] if `attr > 62` or `value > 1023`.
///
/// ```
/// use rqfa_memlist::compact::{pack_attr, unpack_attr};
///
/// let word = pack_attr(4, 44)?;
/// assert_eq!(unpack_attr(word), (4, 44));
/// # Ok::<(), rqfa_memlist::MemError>(())
/// ```
pub fn pack_attr(attr: u16, value: u16) -> Result<u16, MemError> {
    if attr > MAX_PACKED_ID || value > MAX_PACKED_VALUE {
        return Err(MemError::CompactOverflow { attr, value });
    }
    Ok((attr << VALUE_BITS) | value)
}

/// Unpacks a packed attribute word into `(id, value)`.
pub fn unpack_attr(word: u16) -> (u16, u16) {
    (word >> VALUE_BITS, word & MAX_PACKED_VALUE)
}

/// A case-base image in the compact (packed attribute list) encoding.
#[derive(Debug, Clone, PartialEq)]
pub struct CompactCaseBaseImage {
    image: MemImage,
    sections: Vec<Section>,
}

impl CompactCaseBaseImage {
    /// The raw words.
    pub fn image(&self) -> &MemImage {
        &self.image
    }

    /// Section map.
    pub fn sections(&self) -> &[Section] {
        &self.sections
    }

    /// Base address of the supplemental list.
    ///
    /// # Errors
    ///
    /// [`MemError::OutOfRange`] if the image lacks the header.
    pub fn supplemental_base(&self) -> Result<u16, MemError> {
        self.image.read(crate::layout::SUPPL_PTR_ADDR)
    }

    /// Base address of the type directory.
    ///
    /// # Errors
    ///
    /// [`MemError::OutOfRange`] if the image lacks the header.
    pub fn tree_base(&self) -> Result<u16, MemError> {
        self.image.read(crate::layout::TREE_PTR_ADDR)
    }
}

/// Encodes a case base with packed attribute lists.
///
/// # Errors
///
/// [`MemError::CompactOverflow`] when any attribute id exceeds 62 or value
/// exceeds 1023; [`MemError::ImageTooLarge`] if the image overflows.
pub fn encode_compact_case_base(case_base: &CaseBase) -> Result<CompactCaseBaseImage, MemError> {
    let mut b = ImageBuilder::new();
    b.push(0).push(0);
    b.section("header", 0);

    let suppl_base = b.cursor();
    for decl in case_base.bounds().iter() {
        let entry = case_base
            .bounds()
            .entry(decl.id())
            .expect("iterating declared attributes");
        b.push(decl.id().raw())
            .push(entry.lower)
            .push(entry.upper)
            .push(entry.recip.raw());
    }
    b.terminate();
    b.section("supplemental", suppl_base);

    let tree_base = b.cursor();
    let mut type_slots = Vec::new();
    for ty in case_base.function_types() {
        b.push(ty.id().raw());
        type_slots.push(b.cursor());
        b.push(0);
    }
    b.terminate();
    b.section("type-directory", tree_base);

    let impl_base = b.cursor();
    let mut attr_slots = Vec::new();
    for (ty, slot) in case_base.function_types().iter().zip(type_slots) {
        b.patch(slot, b.cursor());
        for variant in ty.variants() {
            b.push(variant.id().raw());
            attr_slots.push(b.cursor());
            b.push(0);
        }
        b.terminate();
    }
    b.section("impl-lists", impl_base);

    let attr_base = b.cursor();
    let mut slot_iter = attr_slots.into_iter();
    for ty in case_base.function_types() {
        for variant in ty.variants() {
            let slot = slot_iter.next().expect("one slot per variant");
            b.patch(slot, b.cursor());
            for binding in variant.attrs() {
                b.push(pack_attr(binding.attr.raw(), binding.value)?);
            }
            b.terminate();
        }
    }
    b.section("attr-lists", attr_base);

    b.patch(0, suppl_base);
    b.patch(1, tree_base);
    let (image, sections) = b.finish()?;
    Ok(CompactCaseBaseImage {
        image,
        sections: sections
            .into_iter()
            .map(|(name, range)| Section { name, range })
            .collect(),
    })
}

/// Checks whether a case base is representable in the compact encoding.
pub fn is_compactible(case_base: &CaseBase) -> bool {
    case_base.function_types().iter().all(|ty| {
        ty.variants().iter().all(|v| {
            v.attrs()
                .iter()
                .all(|b| b.attr.raw() <= MAX_PACKED_ID && b.value <= MAX_PACKED_VALUE)
        })
    })
}

/// Decodes the packed attribute list at `base`, returning `(attr, value)`
/// pairs.
///
/// # Errors
///
/// Structural errors for unterminated lists.
pub fn decode_compact_attr_list(
    image: &MemImage,
    base: u16,
) -> Result<Vec<(u16, u16)>, MemError> {
    let mut out = Vec::new();
    let mut addr = base;
    loop {
        let word = image.read(addr)?;
        if word == END_MARKER {
            return Ok(out);
        }
        out.push(unpack_attr(word));
        addr = addr
            .checked_add(1)
            .ok_or(MemError::UnterminatedList { start: base })?;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rqfa_core::paper;

    #[test]
    fn pack_roundtrip() {
        for (a, v) in [(0u16, 0u16), (62, 1023), (4, 44), (1, 16)] {
            let w = pack_attr(a, v).unwrap();
            assert_eq!(unpack_attr(w), (a, v));
        }
    }

    #[test]
    fn pack_rejects_overflow() {
        assert!(matches!(
            pack_attr(63, 0),
            Err(MemError::CompactOverflow { .. })
        ));
        assert!(matches!(
            pack_attr(0, 1024),
            Err(MemError::CompactOverflow { .. })
        ));
    }

    #[test]
    fn terminator_never_collides_with_packed_entries() {
        // 0xFFFF unpacks to id 63, which pack_attr refuses — so no valid
        // entry can alias the terminator.
        assert_eq!(unpack_attr(END_MARKER).0, 63);
        assert!(pack_attr(63, 1023).is_err());
    }

    #[test]
    fn compact_image_is_smaller() {
        let cb = paper::table1_case_base();
        assert!(is_compactible(&cb));
        let classic = crate::encode::encode_case_base(&cb).unwrap();
        let compact = encode_compact_case_base(&cb).unwrap();
        let classic_attr = classic
            .sections()
            .iter()
            .find(|s| s.name == "attr-lists")
            .unwrap()
            .words();
        let compact_attr = compact
            .sections()
            .iter()
            .find(|s| s.name == "attr-lists")
            .unwrap()
            .words();
        // (2k + 1) vs (k + 1) words per list: close to 2× for large k.
        assert!(compact_attr < classic_attr);
        assert!(compact.image().len() < classic.image().len());
    }

    #[test]
    fn compact_attr_lists_decode() {
        let cb = paper::table1_case_base();
        let compact = encode_compact_case_base(&cb).unwrap();
        let tree = compact.tree_base().unwrap();
        let impl_ptr = compact.image().read(tree + 1).unwrap();
        let attr_ptr = compact.image().read(impl_ptr + 1).unwrap();
        let attrs = decode_compact_attr_list(compact.image(), attr_ptr).unwrap();
        assert_eq!(attrs, vec![(1, 16), (2, 0), (3, 2), (4, 44)]);
    }

    #[test]
    fn incompactible_case_base_detected() {
        use rqfa_core::{
            AttrBinding, AttrDecl, AttrId, BoundsTable, CaseBase, ExecutionTarget, FunctionType,
            ImplId, ImplVariant, TypeId,
        };
        let bounds = BoundsTable::from_decls(vec![
            AttrDecl::new(AttrId::new(1).unwrap(), "big", 0, 5000).unwrap(),
        ])
        .unwrap();
        let v = ImplVariant::new(
            ImplId::new(1).unwrap(),
            ExecutionTarget::Fpga,
            vec![AttrBinding::new(AttrId::new(1).unwrap(), 4000)],
        )
        .unwrap();
        let cb = CaseBase::new(
            bounds,
            vec![FunctionType::new(TypeId::new(1).unwrap(), "t", vec![v]).unwrap()],
        )
        .unwrap();
        assert!(!is_compactible(&cb));
        assert!(encode_compact_case_base(&cb).is_err());
    }
}
