//! # rqfa-memlist — 16-bit word memory images of the case base
//!
//! The hardware retrieval unit of Ullmann et al. (DATE 2004) stores all of
//! its data structures as linear lists of 16-bit words in block RAM
//! (§4.1, figs. 4–5): the *request list*, the *attribute supplemental
//! list* (design bounds + pre-computed reciprocals) and the three-level
//! *implementation tree*. This crate is the serialization layer between
//! the semantic structures of [`rqfa_core`] and those raw words:
//!
//! * [`encode_case_base`] / [`encode_request`] — the design-time tool flow
//!   (the paper generated these images with Matlab scripts);
//! * [`decode_case_base`] / [`decode_request`] — the inverse, for loading
//!   images from a repository;
//! * [`validate_case_base`] / [`validate_request`] — structural validation
//!   of untrusted images (terminators, sorted ids, pointer closure, UQ1.15
//!   sanity, reciprocal consistency);
//! * [`compact`] — the packed attribute-block encoding of the §5 outlook
//!   (≥2× scan-speed claim, measured in experiment E9);
//! * [`MemoryReport`] and the `predicted_*` functions — the Table 3
//!   memory-consumption accounting.
//!
//! ```
//! use rqfa_core::paper;
//! use rqfa_memlist::{encode_case_base, encode_request, validate_case_base};
//!
//! let image = encode_case_base(&paper::table1_case_base())?;
//! let summary = validate_case_base(&image)?;
//! assert_eq!(summary.variants, 5);
//! let request = encode_request(&paper::table1_request()?)?;
//! assert_eq!(request.image().bytes(), 22); // 11 words
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod compact;
mod decode;
mod encode;
mod error;
pub mod layout;
mod memh;
mod report;
mod validate;
mod word;

pub use compact::{encode_compact_case_base, is_compactible, CompactCaseBaseImage};
pub use decode::{decode_case_base, decode_request, decode_supplemental, SupplementalEntry};
pub use encode::{encode_case_base, encode_request};
pub use error::MemError;
pub use layout::{CaseBaseImage, RequestImage, Section};
pub use memh::{from_memh, to_memh};
pub use report::{
    predicted_compact_words, predicted_request_words, predicted_words, MemoryReport,
};
pub use validate::{validate_case_base, validate_raw, validate_request, ValidationSummary};
pub use word::{ImageBuilder, MemImage, SectionMap, END_MARKER};

#[cfg(all(test, feature = "proptests"))]
mod proptests;
