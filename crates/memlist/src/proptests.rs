//! Property tests: encode/decode round trips and validator soundness over
//! randomly generated case bases.

use proptest::prelude::*;

use rqfa_core::{
    AttrBinding, AttrDecl, AttrId, BoundsTable, CaseBase, ExecutionTarget, FunctionType, ImplId,
    ImplVariant, Request, TypeId,
};

use crate::{
    decode_case_base, decode_request, encode_case_base, encode_request, validate_case_base,
    validate_request,
};

fn arb_case_base() -> impl Strategy<Value = CaseBase> {
    // k attrs, t types, each with 1..=4 variants holding a random attr subset.
    (1usize..=5, 1usize..=4).prop_flat_map(|(k, t)| {
        let variants_per_type = proptest::collection::vec(
            proptest::collection::vec(
                proptest::collection::vec(proptest::option::of(0u16..=50), k),
                1..=4,
            ),
            t,
        );
        variants_per_type.prop_map(move |spec| {
            let decls: Vec<AttrDecl> = (1..=k as u16)
                .map(|x| AttrDecl::new(AttrId::new(x).unwrap(), format!("a{x}"), 0, 50).unwrap())
                .collect();
            let bounds = BoundsTable::from_decls(decls).unwrap();
            let types: Vec<FunctionType> = spec
                .iter()
                .enumerate()
                .map(|(ti, variants)| {
                    let vars: Vec<ImplVariant> = variants
                        .iter()
                        .enumerate()
                        .map(|(vi, attrs)| {
                            let bindings: Vec<AttrBinding> = attrs
                                .iter()
                                .enumerate()
                                .filter_map(|(ai, v)| {
                                    v.map(|value| {
                                        AttrBinding::new(
                                            AttrId::new((ai + 1) as u16).unwrap(),
                                            value,
                                        )
                                    })
                                })
                                .collect();
                            ImplVariant::new(
                                ImplId::new((vi + 1) as u16).unwrap(),
                                ExecutionTarget::Fpga,
                                bindings,
                            )
                            .unwrap()
                        })
                        .collect();
                    FunctionType::new(TypeId::new((ti + 1) as u16).unwrap(), format!("t{ti}"), vars)
                        .unwrap()
                })
                .collect();
            CaseBase::new(bounds, types).unwrap()
        })
    })
}

fn arb_request() -> impl Strategy<Value = Request> {
    (1usize..=5).prop_flat_map(|k| {
        let values = proptest::collection::vec(proptest::option::of((0u16..=50, 1u32..=9)), k);
        values.prop_filter_map("nonempty", move |vals| {
            let mut builder = Request::builder(TypeId::new(1).unwrap());
            let mut any = false;
            for (i, v) in vals.iter().enumerate() {
                if let Some((value, w)) = v {
                    builder = builder.weighted_constraint(
                        AttrId::new((i + 1) as u16).unwrap(),
                        *value,
                        f64::from(*w),
                    );
                    any = true;
                }
            }
            if any {
                Some(builder.build().unwrap())
            } else {
                None
            }
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn case_base_roundtrip(cb in arb_case_base()) {
        let image = encode_case_base(&cb).unwrap();
        let decoded = decode_case_base(&image).unwrap();
        prop_assert_eq!(decoded.type_count(), cb.type_count());
        prop_assert_eq!(decoded.variant_count(), cb.variant_count());
        for (orig, back) in cb.function_types().iter().zip(decoded.function_types()) {
            prop_assert_eq!(orig.id(), back.id());
            for (v1, v2) in orig.variants().iter().zip(back.variants()) {
                prop_assert_eq!(v1.id(), v2.id());
                prop_assert_eq!(v1.attrs(), v2.attrs());
            }
        }
    }

    #[test]
    fn encoded_case_base_validates(cb in arb_case_base()) {
        let image = encode_case_base(&cb).unwrap();
        let summary = validate_case_base(&image).unwrap();
        prop_assert_eq!(summary.types, cb.type_count());
        prop_assert_eq!(summary.variants, cb.variant_count());
    }

    #[test]
    fn request_roundtrip(request in arb_request()) {
        let image = encode_request(&request).unwrap();
        let decoded = decode_request(&image).unwrap();
        prop_assert_eq!(request.fingerprint(), decoded.fingerprint());
    }

    #[test]
    fn encoded_request_validates(cb in arb_case_base(), request in arb_request()) {
        // Only meaningful when every constrained attribute is declared in
        // this particular case base (both are drawn independently).
        prop_assume!(request
            .constraints()
            .iter()
            .all(|c| usize::from(c.attr.raw()) <= cb.bounds().len()));
        let cb_image = encode_case_base(&cb).unwrap();
        let req_image = encode_request(&request).unwrap();
        let n = validate_request(&req_image, &cb_image).unwrap();
        prop_assert_eq!(n, request.constraints().len());
    }

    /// Requests constraining undeclared attributes are rejected.
    #[test]
    fn foreign_attr_request_rejected(cb in arb_case_base()) {
        let foreign = Request::builder(TypeId::new(1).unwrap())
            .constraint(AttrId::new(999).unwrap(), 1)
            .build()
            .unwrap();
        let cb_image = encode_case_base(&cb).unwrap();
        let req_image = encode_request(&foreign).unwrap();
        prop_assert!(validate_request(&req_image, &cb_image).is_err());
    }

    /// Single-word corruption of an id or pointer word is either caught by
    /// the validator or leaves a still-decodable image (never a panic).
    #[test]
    fn corruption_never_panics(cb in arb_case_base(), pos in 0usize..4096, bits in 1u16..=u16::MAX) {
        let image = encode_case_base(&cb).unwrap();
        let mut words = image.image().words().to_vec();
        let idx = pos % words.len();
        words[idx] ^= bits;
        if let Ok(img) = crate::MemImage::from_words(words) {
            let corrupted = crate::CaseBaseImage::from_image(img);
            // Must not panic; outcome may be Ok (benign flip) or Err.
            let _ = validate_case_base(&corrupted);
            let _ = decode_case_base(&corrupted);
        }
    }
}
