//! Verilog `$readmemh` interchange for memory images.
//!
//! The paper's tool flow exported the generated data structures "so that
//! they can be easily used for testing purposes in Stateflow, VHDL and C"
//! (§4.2). The standard way to initialize block RAM content in an HDL
//! simulation or synthesis flow is a `$readmemh` file: one hexadecimal
//! word per line, `//` comments, optional `@addr` address records. This
//! module writes and parses that format for 16-bit word images.

use crate::error::MemError;
use crate::word::MemImage;

/// Renders an image as `$readmemh` text: a header comment, then one 4-digit
/// hex word per line with an `@0000` origin record.
///
/// ```
/// use rqfa_memlist::{to_memh, MemImage};
///
/// let image = MemImage::from_words(vec![0x0001, 0xBEEF, 0xFFFF])?;
/// let text = to_memh(&image, "request list");
/// assert!(text.contains("beef"));
/// assert!(text.starts_with("// request list"));
/// # Ok::<(), rqfa_memlist::MemError>(())
/// ```
pub fn to_memh(image: &MemImage, title: &str) -> String {
    use core::fmt::Write;
    let mut out = String::with_capacity(image.len() * 6 + 64);
    let _ = writeln!(out, "// {title}");
    let _ = writeln!(out, "// {} words x 16 bit", image.len());
    let _ = writeln!(out, "@0000");
    for word in image.words() {
        let _ = writeln!(out, "{word:04x}");
    }
    out
}

/// Parses `$readmemh` text back into an image.
///
/// Supports `//` line comments, blank lines and `@addr` records (gaps are
/// zero-filled, as `$readmemh` leaves unwritten words at their previous
/// value — zero for a fresh image).
///
/// # Errors
///
/// * [`MemError::InvalidId`] for malformed hex tokens (address `0xFFFF`
///   in the error marks a token, not a location);
/// * [`MemError::ImageTooLarge`] if content exceeds the address space.
pub fn from_memh(text: &str) -> Result<MemImage, MemError> {
    let mut words: Vec<u16> = Vec::new();
    let mut cursor: usize = 0;
    for raw_line in text.lines() {
        let line = match raw_line.find("//") {
            Some(pos) => &raw_line[..pos],
            None => raw_line,
        };
        for token in line.split_whitespace() {
            if let Some(addr_hex) = token.strip_prefix('@') {
                let addr = usize::from_str_radix(addr_hex, 16)
                    .map_err(|_| MemError::InvalidId { at: 0xFFFF, raw: 0 })?;
                if addr > usize::from(u16::MAX) {
                    return Err(MemError::ImageTooLarge { words: addr });
                }
                cursor = addr;
                continue;
            }
            let word = u16::from_str_radix(token, 16)
                .map_err(|_| MemError::InvalidId { at: 0xFFFF, raw: 0 })?;
            if cursor >= words.len() {
                words.resize(cursor + 1, 0);
            }
            words[cursor] = word;
            cursor += 1;
        }
    }
    MemImage::from_words(words)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::encode_case_base;
    use rqfa_core::paper;

    #[test]
    fn roundtrip_case_base_image() {
        let image = encode_case_base(&paper::table1_case_base()).unwrap();
        let text = to_memh(image.image(), "table1 case base");
        let back = from_memh(&text).unwrap();
        assert_eq!(back.words(), image.image().words());
    }

    #[test]
    fn parses_comments_and_address_records() {
        let text = "// header\n@0002\nbeef // trailing\n\n@0000\n1234 5678\n";
        let img = from_memh(text).unwrap();
        assert_eq!(img.words(), &[0x1234, 0x5678, 0xBEEF]);
    }

    #[test]
    fn rejects_bad_tokens() {
        assert!(from_memh("xyz").is_err());
        assert!(from_memh("@zz").is_err());
        assert!(from_memh("12345").is_err(), "more than 16 bits");
    }

    #[test]
    fn address_gap_zero_fills() {
        let img = from_memh("@0003\nffff").unwrap();
        assert_eq!(img.words(), &[0, 0, 0, 0xFFFF]);
    }

    #[test]
    fn header_mentions_title_and_size() {
        let image = MemImage::from_words(vec![1, 2]).unwrap();
        let text = to_memh(&image, "demo");
        assert!(text.contains("// demo"));
        assert!(text.contains("2 words"));
    }
}
