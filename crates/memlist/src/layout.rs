//! Image layouts: where the lists of figs. 4–5 live inside the RAM blocks.
//!
//! The hardware retrieval unit uses two memories (fig. 7): **CB-MEM** holds
//! the case base (supplemental list + implementation tree), **Req-MEM**
//! holds one request. This module defines the canonical layout:
//!
//! ```text
//! CB-MEM                                Req-MEM
//! ┌──────────────────────────────┐      ┌─────────────────────────────┐
//! │ 0: ptr → supplemental list   │      │ 0: function type id         │
//! │ 1: ptr → type directory      │      │ 1: attr id   ┐              │
//! │ supplemental list:           │      │ 2: value     │ per          │
//! │   (id, lower, upper, recip)* │      │ 3: weight    ┘ constraint   │
//! │   0xFFFF                     │      │ …  (presorted by attr id)   │
//! │ type directory (level 0):    │      │ n: 0xFFFF                   │
//! │   (type id, ptr)* 0xFFFF     │      └─────────────────────────────┘
//! │ impl lists (level 1):        │
//! │   (impl id, ptr)* 0xFFFF     │
//! │ attribute lists (level 2):   │
//! │   (attr id, value)* 0xFFFF   │
//! └──────────────────────────────┘
//! ```
//!
//! All lists are presorted by ascending id; `0xFFFF` terminates each list.

use crate::error::MemError;
use crate::word::MemImage;

/// Word address of the pointer to the supplemental list in CB-MEM.
pub const SUPPL_PTR_ADDR: u16 = 0;
/// Word address of the pointer to the type directory in CB-MEM.
pub const TREE_PTR_ADDR: u16 = 1;
/// Number of header words in CB-MEM.
pub const HEADER_WORDS: u16 = 2;
/// Words per supplemental-list block: `(id, lower, upper, recip)`.
pub const SUPPL_BLOCK_WORDS: u16 = 4;
/// Words per request constraint block: `(id, value, weight)`.
pub const REQ_BLOCK_WORDS: u16 = 3;

/// A named section of an image, for memory accounting (Table 3).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Section {
    /// Section name (e.g. `"attr-lists"`).
    pub name: String,
    /// Word-address range.
    pub range: core::ops::Range<usize>,
}

impl Section {
    /// Section length in words.
    pub fn words(&self) -> usize {
        self.range.len()
    }

    /// Section length in bytes.
    pub fn bytes(&self) -> usize {
        self.range.len() * 2
    }
}

/// An encoded case base (CB-MEM content) with its section map.
#[derive(Debug, Clone, PartialEq)]
pub struct CaseBaseImage {
    image: MemImage,
    sections: Vec<Section>,
}

impl CaseBaseImage {
    pub(crate) fn from_parts(
        image: MemImage,
        sections: Vec<(String, core::ops::Range<usize>)>,
    ) -> CaseBaseImage {
        CaseBaseImage {
            image,
            sections: sections
                .into_iter()
                .map(|(name, range)| Section { name, range })
                .collect(),
        }
    }

    /// Wraps a raw image without section information (e.g. loaded from a
    /// repository). Run [`crate::validate::validate_case_base`] before
    /// trusting it.
    pub fn from_image(image: MemImage) -> CaseBaseImage {
        CaseBaseImage {
            image,
            sections: Vec::new(),
        }
    }

    /// The raw words.
    pub fn image(&self) -> &MemImage {
        &self.image
    }

    /// Section map (empty for images wrapped via [`Self::from_image`]).
    pub fn sections(&self) -> &[Section] {
        &self.sections
    }

    /// Base address of the supplemental list.
    ///
    /// # Errors
    ///
    /// [`MemError::OutOfRange`] if the image lacks the header.
    pub fn supplemental_base(&self) -> Result<u16, MemError> {
        self.image.read(SUPPL_PTR_ADDR)
    }

    /// Base address of the type directory (implementation-tree level 0).
    ///
    /// # Errors
    ///
    /// [`MemError::OutOfRange`] if the image lacks the header.
    pub fn tree_base(&self) -> Result<u16, MemError> {
        self.image.read(TREE_PTR_ADDR)
    }
}

/// An encoded request (Req-MEM content).
#[derive(Debug, Clone, PartialEq)]
pub struct RequestImage {
    image: MemImage,
}

impl RequestImage {
    pub(crate) fn from_image_unchecked(image: MemImage) -> RequestImage {
        RequestImage { image }
    }

    /// Wraps a raw image. Run [`crate::validate::validate_request`] before
    /// trusting it.
    pub fn from_image(image: MemImage) -> RequestImage {
        RequestImage { image }
    }

    /// Wraps raw words (e.g. a request arriving off the wire — the word
    /// format doubles as the RPC payload encoding). Only the image-size
    /// bound is checked here; structural trust comes from
    /// [`crate::decode::decode_request`] rebuilding the request through
    /// the validating [`rqfa_core::Request`] builder, or from
    /// [`crate::validate::validate_request`].
    ///
    /// # Errors
    ///
    /// [`MemError::ImageTooLarge`] past the 16-bit address space.
    pub fn from_words(words: Vec<u16>) -> Result<RequestImage, MemError> {
        Ok(RequestImage {
            image: MemImage::from_words(words)?,
        })
    }

    /// The raw words.
    pub fn image(&self) -> &MemImage {
        &self.image
    }

    /// The requested function type id (word 0).
    ///
    /// # Errors
    ///
    /// [`MemError::OutOfRange`] on an empty image.
    pub fn type_id(&self) -> Result<u16, MemError> {
        self.image.read(0)
    }

    /// Number of constraint blocks (derived from image length).
    pub fn constraint_count(&self) -> usize {
        // 1 type word + 3k + 1 terminator.
        self.image.len().saturating_sub(2) / usize::from(REQ_BLOCK_WORDS)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::word::END_MARKER;

    #[test]
    fn header_pointers_resolve() {
        let img = MemImage::from_words(vec![2, 3, END_MARKER, END_MARKER]).unwrap();
        let cb = CaseBaseImage::from_image(img);
        assert_eq!(cb.supplemental_base().unwrap(), 2);
        assert_eq!(cb.tree_base().unwrap(), 3);
        assert!(cb.sections().is_empty());
    }

    #[test]
    fn request_accessors() {
        let img = MemImage::from_words(vec![7, 1, 16, 0x4000, 4, 40, 0x4000, END_MARKER]).unwrap();
        let req = RequestImage::from_image(img);
        assert_eq!(req.type_id().unwrap(), 7);
        assert_eq!(req.constraint_count(), 2);
    }

    #[test]
    fn section_arithmetic() {
        let s = Section {
            name: "x".into(),
            range: 4..10,
        };
        assert_eq!(s.words(), 6);
        assert_eq!(s.bytes(), 12);
    }
}
