//! Error type for memory-image encoding, decoding and validation.

use core::fmt;

/// Errors raised while building or parsing 16-bit word memory images.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum MemError {
    /// The encoded image would exceed the 16-bit word address space.
    ImageTooLarge {
        /// Number of words required.
        words: usize,
    },
    /// A read touched an address outside the image.
    OutOfRange {
        /// The offending word address.
        addr: u16,
        /// Image length in words.
        len: usize,
    },
    /// A list ran past the end of the image without an `0xFFFF` terminator.
    UnterminatedList {
        /// Start address of the list.
        start: u16,
    },
    /// A reference pointer left the image or pointed at a non-list location.
    DanglingPointer {
        /// Address of the pointer word.
        at: u16,
        /// The pointer value.
        target: u16,
    },
    /// List entries were not strictly ascending by id.
    UnsortedList {
        /// Address of the violating entry.
        at: u16,
        /// Previous id.
        prev: u16,
        /// Current (non-ascending) id.
        next: u16,
    },
    /// A weight or reciprocal word was not a valid UQ1.15 value.
    BadQ15 {
        /// Address of the word.
        at: u16,
        /// The raw word.
        raw: u16,
    },
    /// An attribute referenced by the tree or request has no supplemental
    /// entry.
    MissingSupplemental {
        /// The attribute id.
        attr: u16,
    },
    /// The image ended in the middle of a fixed-size block.
    TruncatedBlock {
        /// Start address of the block.
        at: u16,
    },
    /// An id word used the reserved terminator value where an id was
    /// expected, or violated compact-encoding field limits.
    InvalidId {
        /// Address of the word.
        at: u16,
        /// The raw word.
        raw: u16,
    },
    /// A value does not fit the compact encoding's field widths.
    CompactOverflow {
        /// The attribute id (must be < 64).
        attr: u16,
        /// The value (must be < 1024).
        value: u16,
    },
    /// A semantic error surfaced while rebuilding core structures.
    Core(rqfa_core::CoreError),
}

impl fmt::Display for MemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemError::ImageTooLarge { words } => {
                write!(f, "image needs {words} words, exceeding the 65535-word address space")
            }
            MemError::OutOfRange { addr, len } => {
                write!(f, "read at word address {addr:#06x} outside image of {len} words")
            }
            MemError::UnterminatedList { start } => {
                write!(f, "list starting at {start:#06x} is missing its 0xffff terminator")
            }
            MemError::DanglingPointer { at, target } => {
                write!(f, "pointer at {at:#06x} references invalid address {target:#06x}")
            }
            MemError::UnsortedList { at, prev, next } => write!(
                f,
                "list entry at {at:#06x} breaks ascending id order ({prev} then {next})"
            ),
            MemError::BadQ15 { at, raw } => {
                write!(f, "word {raw:#06x} at {at:#06x} is not a valid UQ1.15 value")
            }
            MemError::MissingSupplemental { attr } => {
                write!(f, "attribute {attr} has no supplemental bounds entry")
            }
            MemError::TruncatedBlock { at } => {
                write!(f, "fixed-size block at {at:#06x} is truncated")
            }
            MemError::InvalidId { at, raw } => {
                write!(f, "word {raw:#06x} at {at:#06x} is not a valid identifier")
            }
            MemError::CompactOverflow { attr, value } => write!(
                f,
                "attribute {attr}={value} does not fit the compact encoding (id < 64, value < 1024)"
            ),
            MemError::Core(e) => write!(f, "semantic error: {e}"),
        }
    }
}

impl std::error::Error for MemError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MemError::Core(e) => Some(e),
            _ => None,
        }
    }
}

impl From<rqfa_core::CoreError> for MemError {
    fn from(e: rqfa_core::CoreError) -> MemError {
        MemError::Core(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = MemError::DanglingPointer { at: 4, target: 9999 };
        assert!(e.to_string().contains("0x0004"));
        let e = MemError::Core(rqfa_core::CoreError::EmptyRequest);
        assert!(e.to_string().contains("semantic"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<MemError>();
    }
}
