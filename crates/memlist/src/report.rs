//! Memory-consumption accounting — Table 3 of the paper.
//!
//! The paper budgets (16-bit words, pointers included):
//!
//! ```text
//! Types of basic functions in total:   15
//! Implementations per function type:   10
//! Attributes per Implementation:       10
//! Different types of attributes:       10
//! Attributes per Request:              10 (worst case)
//! Memory consumption of request:       64 Bytes
//! Memory consumption of case-base:     4.5 kB
//! ```
//!
//! Our canonical encoding reproduces the request figure exactly; for the
//! case base it derives the size from first principles so the paper's
//! "about 4.5 kB" can be compared against an explicit breakdown (the
//! stated layout actually needs ~7 kB with 2-word attribute entries — the
//! compact single-word encoding lands at ~4.2 kB, suggesting the authors
//! budgeted a packed representation; see EXPERIMENTS.md).

use core::fmt;

use crate::compact::CompactCaseBaseImage;
use crate::layout::CaseBaseImage;

/// Size report for one encoded case base.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemoryReport {
    /// `(section name, words)` pairs in layout order.
    pub sections: Vec<(String, usize)>,
    /// Total image size in words.
    pub total_words: usize,
}

impl MemoryReport {
    /// Builds a report from a canonical image.
    pub fn of(image: &CaseBaseImage) -> MemoryReport {
        MemoryReport {
            sections: image
                .sections()
                .iter()
                .map(|s| (s.name.clone(), s.words()))
                .collect(),
            total_words: image.image().len(),
        }
    }

    /// Builds a report from a compact image.
    pub fn of_compact(image: &CompactCaseBaseImage) -> MemoryReport {
        MemoryReport {
            sections: image
                .sections()
                .iter()
                .map(|s| (s.name.clone(), s.words()))
                .collect(),
            total_words: image.image().len(),
        }
    }

    /// Total size in bytes.
    pub fn total_bytes(&self) -> usize {
        self.total_words * 2
    }

    /// Total size in binary kilobytes, as the paper reports it.
    pub fn total_kib(&self) -> f64 {
        #[allow(clippy::cast_precision_loss)]
        {
            self.total_bytes() as f64 / 1024.0
        }
    }
}

impl fmt::Display for MemoryReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{:<16} {:>8} {:>8}", "section", "words", "bytes")?;
        for (name, words) in &self.sections {
            writeln!(f, "{:<16} {:>8} {:>8}", name, words, words * 2)?;
        }
        writeln!(
            f,
            "{:<16} {:>8} {:>8}  ({:.2} kB)",
            "total",
            self.total_words,
            self.total_bytes(),
            self.total_kib()
        )
    }
}

/// Closed-form word count of the canonical encoding for a regular case base
/// shape: `t` types × `i` implementations × `a` attributes each, with `k`
/// distinct attribute types.
///
/// ```
/// use rqfa_memlist::predicted_words;
///
/// // Table 3 shape: 15 × 10 × 10 with 10 attribute types.
/// let words = predicted_words(15, 10, 10, 10);
/// assert_eq!(words, 2 + 41 + 31 + 15 * 21 + 150 * 21);
/// ```
pub fn predicted_words(t: usize, i: usize, a: usize, k: usize) -> usize {
    let header = 2;
    let supplemental = 4 * k + 1;
    let type_dir = 2 * t + 1;
    let impl_lists = t * (2 * i + 1);
    let attr_lists = t * i * (2 * a + 1);
    header + supplemental + type_dir + impl_lists + attr_lists
}

/// Closed-form word count of the compact encoding for the same shape.
pub fn predicted_compact_words(t: usize, i: usize, a: usize, k: usize) -> usize {
    let header = 2;
    let supplemental = 4 * k + 1;
    let type_dir = 2 * t + 1;
    let impl_lists = t * (2 * i + 1);
    let attr_lists = t * i * (a + 1);
    header + supplemental + type_dir + impl_lists + attr_lists
}

/// Closed-form word count of a request with `a` constraints (fig. 4 left):
/// `1 + 3a + 1`.
///
/// ```
/// use rqfa_memlist::predicted_request_words;
///
/// // Table 3: 10-attribute request = 32 words = 64 bytes.
/// assert_eq!(predicted_request_words(10) * 2, 64);
/// ```
pub fn predicted_request_words(a: usize) -> usize {
    2 + 3 * a
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compact::encode_compact_case_base;
    use crate::encode::encode_case_base;
    use rqfa_core::paper;

    #[test]
    fn report_matches_encoded_sizes() {
        let cb = paper::table1_case_base();
        let image = encode_case_base(&cb).unwrap();
        let report = MemoryReport::of(&image);
        assert_eq!(report.total_words, image.image().len());
        assert_eq!(report.total_bytes(), image.image().bytes());
        let shown = report.to_string();
        assert!(shown.contains("attr-lists"));
        assert!(shown.contains("total"));
    }

    #[test]
    fn prediction_matches_generated_shape() {
        // Build a uniform 3 × 4 × 5 case base with 5 attribute types and
        // compare against the closed form.
        use rqfa_core::{
            AttrBinding, AttrDecl, AttrId, BoundsTable, CaseBase, ExecutionTarget, FunctionType,
            ImplId, ImplVariant, TypeId,
        };
        let (t, i, a, k) = (3usize, 4usize, 5usize, 5usize);
        let bounds = BoundsTable::from_decls(
            (1..=k as u16)
                .map(|x| AttrDecl::new(AttrId::new(x).unwrap(), format!("a{x}"), 0, 100).unwrap())
                .collect::<Vec<_>>(),
        )
        .unwrap();
        let types: Vec<FunctionType> = (1..=t as u16)
            .map(|ti| {
                let variants: Vec<ImplVariant> = (1..=i as u16)
                    .map(|vi| {
                        let attrs: Vec<AttrBinding> = (1..=a as u16)
                            .map(|ai| AttrBinding::new(AttrId::new(ai).unwrap(), 50))
                            .collect();
                        ImplVariant::new(ImplId::new(vi).unwrap(), ExecutionTarget::Fpga, attrs)
                            .unwrap()
                    })
                    .collect();
                FunctionType::new(TypeId::new(ti).unwrap(), format!("t{ti}"), variants).unwrap()
            })
            .collect();
        let cb = CaseBase::new(bounds, types).unwrap();

        let classic = encode_case_base(&cb).unwrap();
        assert_eq!(classic.image().len(), predicted_words(t, i, a, k));
        let compact = encode_compact_case_base(&cb).unwrap();
        assert_eq!(compact.image().len(), predicted_compact_words(t, i, a, k));
    }

    #[test]
    fn table3_shape_sizes() {
        // Our canonical encoding of the paper's 15×10×10 shape.
        let words = predicted_words(15, 10, 10, 10);
        assert_eq!(words, 3539);
        let bytes = words * 2;
        assert!((7000..8000).contains(&bytes), "canonical ≈ 7.5 kB: {bytes}");
        // The compact encoding approaches the paper's 4.5 kB.
        let compact_bytes = predicted_compact_words(15, 10, 10, 10) * 2;
        assert!(
            (4000..5000).contains(&compact_bytes),
            "compact ≈ 4.3 kB: {compact_bytes}"
        );
    }
}
