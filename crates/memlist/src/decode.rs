//! Decoding memory images back into core structures.
//!
//! The image stores only retrieval-relevant data: ids, values, bounds,
//! reciprocals and weights. Execution targets, human-readable names and
//! resource footprints are *not* part of the hardware's memory layout —
//! decoding reconstructs semantically equivalent [`CaseBase`]/[`Request`]
//! values with default targets and generated names. Retrieval results over
//! a decoded case base are bit-identical to the original (round-trip
//! property tested in `tests/` at the workspace root).

use rqfa_core::{
    AttrBinding, AttrDecl, AttrId, BoundsTable, CaseBase, FunctionType, ImplId, ImplVariant,
    Request, TypeId,
};

use crate::error::MemError;
use crate::layout::{CaseBaseImage, RequestImage, SUPPL_BLOCK_WORDS};
use crate::word::{MemImage, END_MARKER};

/// One parsed supplemental-list entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SupplementalEntry {
    /// Attribute id.
    pub attr: u16,
    /// Lower design bound.
    pub lower: u16,
    /// Upper design bound.
    pub upper: u16,
    /// Raw UQ1.15 reciprocal `1/(1+d_max)`.
    pub recip: u16,
}

/// Parses the supplemental list of a case-base image.
///
/// # Errors
///
/// Structural errors ([`MemError::UnterminatedList`],
/// [`MemError::TruncatedBlock`], [`MemError::OutOfRange`]).
pub fn decode_supplemental(image: &CaseBaseImage) -> Result<Vec<SupplementalEntry>, MemError> {
    let words = image.image();
    let base = image.supplemental_base()?;
    let mut entries = Vec::new();
    let mut addr = base;
    loop {
        let first = words.read(addr)?;
        if first == END_MARKER {
            return Ok(entries);
        }
        let lower = words
            .read(addr + 1)
            .map_err(|_| MemError::TruncatedBlock { at: addr })?;
        let upper = words
            .read(addr + 2)
            .map_err(|_| MemError::TruncatedBlock { at: addr })?;
        let recip = words
            .read(addr + 3)
            .map_err(|_| MemError::TruncatedBlock { at: addr })?;
        entries.push(SupplementalEntry {
            attr: first,
            lower,
            upper,
            recip,
        });
        addr = addr
            .checked_add(SUPPL_BLOCK_WORDS)
            .ok_or(MemError::UnterminatedList { start: base })?;
    }
}

/// Walks a `(id, pointer)`-entry list, returning the pairs.
fn decode_pointer_list(words: &MemImage, base: u16) -> Result<Vec<(u16, u16)>, MemError> {
    let mut out = Vec::new();
    let mut addr = base;
    loop {
        let id = words.read(addr)?;
        if id == END_MARKER {
            return Ok(out);
        }
        let ptr = words
            .read(addr + 1)
            .map_err(|_| MemError::TruncatedBlock { at: addr })?;
        out.push((id, ptr));
        addr = addr
            .checked_add(2)
            .ok_or(MemError::UnterminatedList { start: base })?;
    }
}

/// Walks an `(attr, value)`-entry list.
fn decode_attr_list(words: &MemImage, base: u16) -> Result<Vec<(u16, u16)>, MemError> {
    let mut out = Vec::new();
    let mut addr = base;
    loop {
        let id = words.read(addr)?;
        if id == END_MARKER {
            return Ok(out);
        }
        let value = words
            .read(addr + 1)
            .map_err(|_| MemError::TruncatedBlock { at: addr })?;
        out.push((id, value));
        addr = addr
            .checked_add(2)
            .ok_or(MemError::UnterminatedList { start: base })?;
    }
}

/// Rebuilds a [`CaseBase`] from an image.
///
/// Execution targets default to [`rqfa_core::ExecutionTarget::GpProcessor`]
/// and names are generated (`"type-<id>"`); see the module docs.
///
/// # Errors
///
/// Structural errors for malformed images, [`MemError::Core`] if the data
/// violates case-base invariants (unsorted lists surface here too).
pub fn decode_case_base(image: &CaseBaseImage) -> Result<CaseBase, MemError> {
    let words = image.image();
    let supplemental = decode_supplemental(image)?;
    let mut decls = Vec::with_capacity(supplemental.len());
    for entry in &supplemental {
        let id = AttrId::new(entry.attr).map_err(MemError::Core)?;
        decls.push(
            AttrDecl::new(id, format!("attr-{}", entry.attr), entry.lower, entry.upper)
                .map_err(MemError::Core)?,
        );
    }
    let bounds = BoundsTable::from_decls(decls).map_err(MemError::Core)?;

    let tree_base = image.tree_base()?;
    let mut types = Vec::new();
    for (type_raw, impl_ptr) in decode_pointer_list(words, tree_base)? {
        let type_id = TypeId::new(type_raw).map_err(MemError::Core)?;
        let mut variants = Vec::new();
        for (impl_raw, attr_ptr) in decode_pointer_list(words, impl_ptr)? {
            let impl_id = ImplId::new(impl_raw).map_err(MemError::Core)?;
            let mut bindings = Vec::new();
            for (attr_raw, value) in decode_attr_list(words, attr_ptr)? {
                let attr = AttrId::new(attr_raw).map_err(MemError::Core)?;
                bindings.push(AttrBinding::new(attr, value));
            }
            variants.push(
                ImplVariant::new(impl_id, rqfa_core::ExecutionTarget::GpProcessor, bindings)
                    .map_err(MemError::Core)?,
            );
        }
        types.push(
            FunctionType::new(type_id, format!("type-{type_raw}"), variants)
                .map_err(MemError::Core)?,
        );
    }
    CaseBase::new(bounds, types).map_err(MemError::Core)
}

/// Rebuilds a [`Request`] from a Req-MEM image.
///
/// The UQ1.15 weights of the image become the request's relative weights;
/// because valid images carry weights summing to exactly `0x8000`, the
/// rebuilt request quantizes back to the identical weight words
/// (fingerprint-stable round trip).
///
/// # Errors
///
/// Structural errors for malformed images, [`MemError::Core`] for semantic
/// violations (duplicate attributes, zero weights).
pub fn decode_request(image: &RequestImage) -> Result<Request, MemError> {
    let words = image.image();
    let type_id = TypeId::new(image.type_id()?).map_err(MemError::Core)?;
    let mut builder = Request::builder(type_id);
    let mut addr: u16 = 1;
    loop {
        let first = words.read(addr)?;
        if first == END_MARKER {
            break;
        }
        let value = words
            .read(addr + 1)
            .map_err(|_| MemError::TruncatedBlock { at: addr })?;
        let weight = words
            .read(addr + 2)
            .map_err(|_| MemError::TruncatedBlock { at: addr })?;
        let attr = AttrId::new(first).map_err(MemError::Core)?;
        builder = builder.weighted_constraint(attr, value, f64::from(weight));
        addr = addr
            .checked_add(3)
            .ok_or(MemError::UnterminatedList { start: 1 })?;
    }
    builder.build().map_err(MemError::Core)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::{encode_case_base, encode_request};
    use rqfa_core::{paper, FixedEngine};

    #[test]
    fn case_base_roundtrip_preserves_retrieval() {
        let original = paper::table1_case_base();
        let image = encode_case_base(&original).unwrap();
        let decoded = decode_case_base(&image).unwrap();
        assert_eq!(decoded.type_count(), original.type_count());
        assert_eq!(decoded.variant_count(), original.variant_count());
        let request = paper::table1_request().unwrap();
        let engine = FixedEngine::new();
        let a = engine.retrieve(&original, &request).unwrap().best.unwrap();
        let b = engine.retrieve(&decoded, &request).unwrap().best.unwrap();
        assert_eq!(a.impl_id, b.impl_id);
        assert_eq!(a.similarity, b.similarity);
    }

    #[test]
    fn request_roundtrip_is_fingerprint_stable() {
        let original = paper::table1_request().unwrap();
        let image = encode_request(&original).unwrap();
        let decoded = decode_request(&image).unwrap();
        assert_eq!(original.fingerprint(), decoded.fingerprint());
        for (a, b) in original.constraints().iter().zip(decoded.constraints()) {
            assert_eq!(a.attr, b.attr);
            assert_eq!(a.value, b.value);
            assert_eq!(a.weight_q15, b.weight_q15);
        }
    }

    #[test]
    fn supplemental_entries_match_bounds() {
        let cb = paper::table1_case_base();
        let image = encode_case_base(&cb).unwrap();
        let entries = decode_supplemental(&image).unwrap();
        assert_eq!(entries.len(), 4);
        let rate = entries.iter().find(|e| e.attr == 4).unwrap();
        assert_eq!((rate.lower, rate.upper), (8, 44));
        let expect = rqfa_fixed::recip_plus_one(36).raw();
        assert_eq!(rate.recip, expect);
    }

    #[test]
    fn truncated_image_errors() {
        let cb = paper::table1_case_base();
        let image = encode_case_base(&cb).unwrap();
        let mut words = image.image().words().to_vec();
        words.truncate(words.len() - 3); // chop the tail of the last list
        let broken = CaseBaseImage::from_image(MemImage::from_words(words).unwrap());
        assert!(decode_case_base(&broken).is_err());
    }

    #[test]
    fn garbage_pointer_errors() {
        let words = vec![2, 9999, END_MARKER];
        let broken = CaseBaseImage::from_image(MemImage::from_words(words).unwrap());
        assert!(decode_case_base(&broken).is_err());
    }
}
