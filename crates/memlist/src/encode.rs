//! Encoding core structures into memory images (the design-time tool flow:
//! "We developed some tools in Matlab for creating and exporting all needed
//! data structures (implementation-tree, request list etc.)", §4.2).

use rqfa_core::{CaseBase, Request};

use crate::error::MemError;
use crate::layout::{CaseBaseImage, RequestImage, HEADER_WORDS};
use crate::word::ImageBuilder;

/// Encodes a validated [`CaseBase`] into the canonical CB-MEM image.
///
/// Layout: header (2 pointer words), supplemental list, type directory,
/// implementation lists, attribute lists — all lists presorted by id and
/// `0xFFFF`-terminated (see [`crate::layout`]).
///
/// # Errors
///
/// [`MemError::ImageTooLarge`] if the case base does not fit the 16-bit
/// word address space.
///
/// ```
/// use rqfa_core::paper;
/// use rqfa_memlist::encode_case_base;
///
/// let image = encode_case_base(&paper::table1_case_base())?;
/// // Header + supplemental (4 attrs × 4 + 1) + tree.
/// assert!(image.image().len() > 20);
/// assert_eq!(image.supplemental_base()?, 2);
/// # Ok::<(), rqfa_memlist::MemError>(())
/// ```
pub fn encode_case_base(case_base: &CaseBase) -> Result<CaseBaseImage, MemError> {
    let mut b = ImageBuilder::new();
    // Header placeholders.
    b.push(0).push(0);
    b.section("header", 0);

    // Supplemental list: (attr id, lower, upper, recip)* END.
    let suppl_base = b.cursor();
    for decl in case_base.bounds().iter() {
        let entry = case_base
            .bounds()
            .entry(decl.id())
            .expect("iterating declared attributes");
        b.push(decl.id().raw())
            .push(entry.lower)
            .push(entry.upper)
            .push(entry.recip.raw());
    }
    b.terminate();
    b.section("supplemental", suppl_base);

    // Type directory with placeholder pointers.
    let tree_base = b.cursor();
    let mut type_ptr_slots = Vec::with_capacity(case_base.type_count());
    for ty in case_base.function_types() {
        b.push(ty.id().raw());
        type_ptr_slots.push(b.cursor());
        b.push(0);
    }
    b.terminate();
    b.section("type-directory", tree_base);

    // Implementation lists, one per type, with placeholder attr pointers.
    let impl_base = b.cursor();
    let mut attr_ptr_slots: Vec<u16> = Vec::with_capacity(case_base.variant_count());
    for (ty, ptr_slot) in case_base.function_types().iter().zip(type_ptr_slots) {
        b.patch(ptr_slot, b.cursor());
        for variant in ty.variants() {
            b.push(variant.id().raw());
            attr_ptr_slots.push(b.cursor());
            b.push(0);
        }
        b.terminate();
    }
    b.section("impl-lists", impl_base);

    // Attribute lists, one per variant.
    let attr_base = b.cursor();
    let mut slot_iter = attr_ptr_slots.into_iter();
    for ty in case_base.function_types() {
        for variant in ty.variants() {
            let slot = slot_iter.next().expect("one slot per variant");
            b.patch(slot, b.cursor());
            for binding in variant.attrs() {
                b.push(binding.attr.raw()).push(binding.value);
            }
            b.terminate();
        }
    }
    b.section("attr-lists", attr_base);

    // Patch header.
    b.patch(0, suppl_base);
    b.patch(1, tree_base);

    let (image, sections) = b.finish()?;
    debug_assert!(image.len() >= usize::from(HEADER_WORDS));
    Ok(CaseBaseImage::from_parts(image, sections))
}

/// Encodes a [`Request`] into the Req-MEM image:
/// `[type id, (attr id, value, weight)*, 0xFFFF]` (fig. 4, left).
///
/// # Errors
///
/// [`MemError::ImageTooLarge`] for absurdly large requests (> ~21k
/// constraints).
///
/// ```
/// use rqfa_core::paper;
/// use rqfa_memlist::encode_request;
///
/// let image = encode_request(&paper::table1_request()?)?;
/// // 1 type word + 3 constraints × 3 words + terminator = 11 words.
/// assert_eq!(image.image().len(), 11);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn encode_request(request: &Request) -> Result<RequestImage, MemError> {
    let mut b = ImageBuilder::new();
    b.push(request.type_id().raw());
    for c in request.constraints() {
        b.push(c.attr.raw()).push(c.value).push(c.weight_q15.raw());
    }
    b.terminate();
    let (image, _) = b.finish()?;
    Ok(RequestImage::from_image_unchecked(image))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::word::END_MARKER;
    use rqfa_core::paper;

    #[test]
    fn table1_case_base_layout() {
        let cb = paper::table1_case_base();
        let img = encode_case_base(&cb).unwrap();
        let words = img.image();
        // Header.
        let suppl = img.supplemental_base().unwrap();
        let tree = img.tree_base().unwrap();
        assert_eq!(suppl, 2);
        // Supplemental: 4 attrs × 4 words + END = 17 words → tree at 19.
        assert_eq!(tree, 19);
        // Supplemental first block: attr 1, bounds [8,16].
        assert_eq!(words.read(suppl).unwrap(), 1);
        assert_eq!(words.read(suppl + 1).unwrap(), 8);
        assert_eq!(words.read(suppl + 2).unwrap(), 16);
        // Type directory: (1, ptr) (2, ptr) END.
        assert_eq!(words.read(tree).unwrap(), 1);
        assert_eq!(words.read(tree + 2).unwrap(), 2);
        assert_eq!(words.read(tree + 4).unwrap(), END_MARKER);
        // First type's impl list: ids 1, 2, 3.
        let impl_list = words.read(tree + 1).unwrap();
        assert_eq!(words.read(impl_list).unwrap(), 1);
        assert_eq!(words.read(impl_list + 2).unwrap(), 2);
        assert_eq!(words.read(impl_list + 4).unwrap(), 3);
        assert_eq!(words.read(impl_list + 6).unwrap(), END_MARKER);
        // FPGA variant attribute list: (1,16)(2,0)(3,2)(4,44) END.
        let attrs = words.read(impl_list + 1).unwrap();
        let expect = [1u16, 16, 2, 0, 3, 2, 4, 44, END_MARKER];
        for (i, want) in expect.iter().enumerate() {
            assert_eq!(words.read(attrs + i as u16).unwrap(), *want, "word {i}");
        }
    }

    #[test]
    fn sections_cover_entire_image() {
        let img = encode_case_base(&paper::table1_case_base()).unwrap();
        let total: usize = img.sections().iter().map(crate::layout::Section::words).sum();
        assert_eq!(total, img.image().len());
        let names: Vec<&str> = img.sections().iter().map(|s| s.name.as_str()).collect();
        assert_eq!(
            names,
            ["header", "supplemental", "type-directory", "impl-lists", "attr-lists"]
        );
    }

    #[test]
    fn request_image_matches_paper_size() {
        // Table 3: 10-attribute request = 64 bytes.
        let mut builder = rqfa_core::Request::builder(rqfa_core::TypeId::new(1).unwrap());
        let cb = paper::dense_case_base(10);
        for i in 1..=10u16 {
            builder = builder.constraint(rqfa_core::AttrId::new(i).unwrap(), 5);
        }
        let request = builder.build().unwrap();
        let image = encode_request(&request).unwrap();
        assert_eq!(image.image().bytes(), 64, "Table 3: request = 64 bytes");
        let _ = &cb;
    }

    #[test]
    fn request_words_in_order() {
        let request = paper::table1_request().unwrap();
        let image = encode_request(&request).unwrap();
        let w = image.image();
        assert_eq!(w.read(0).unwrap(), 1); // type
        assert_eq!(w.read(1).unwrap(), 1); // attr 1
        assert_eq!(w.read(2).unwrap(), 16); // value
        assert_eq!(w.read(4).unwrap(), 3); // attr 3
        assert_eq!(w.read(7).unwrap(), 4); // attr 4
        assert_eq!(w.read(10).unwrap(), END_MARKER);
        // Weights sum to exactly 1.0.
        let sum = u32::from(w.read(3).unwrap()) + u32::from(w.read(6).unwrap())
            + u32::from(w.read(9).unwrap());
        assert_eq!(sum, 0x8000);
    }
}
