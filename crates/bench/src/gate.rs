//! The perf-trajectory regression gate.
//!
//! CI re-runs `service_trace` against the committed `BENCH_<pr>.json`
//! baseline and feeds both reports through [`compare`]. The policy is
//! unit-aware, because the trajectory mixes two kinds of numbers:
//!
//! * **Wall-clock throughput** — units *explicitly declared* in
//!   [`GateConfig::wall_clock_units`] (e.g. the `req_per_sec` sweeps of
//!   `service_throughput`): noisy on shared CI hosts, so the gate only
//!   enforces a *loose floor* — fresh must stay at or above
//!   [`GateConfig::loose_floor`] × baseline. Improvements always pass.
//! * **Everything else** (`us` quantiles, `count`s, `ratio`s — and the
//!   deterministic-simulation throughput `sim_req_per_sec`, which carries
//!   no timer noise by construction): a *tight band*. Fresh must lie
//!   within [`GateConfig::tight_ratio`] of baseline in both directions,
//!   so a 2× p99 regression fails and a silent 2× "improvement" (usually
//!   a broken workload, not a miracle) fails too.
//!
//! Classification is deterministic-unless-declared: a metric is held to
//! the tight band unless its unit appears verbatim in the wall-clock
//! list. (The gate used to sniff a `*_per_sec` unit suffix with a
//! hardcoded `sim_req_per_sec` exemption, which silently granted any
//! future deterministic `*_per_sec` metric the loose floor.)
//!
//! The metric *sets* must match exactly: a metric that disappears — or a
//! new one smuggled in without refreshing the baseline — fails the gate,
//! so the trajectory can only be changed deliberately, by committing a
//! new `BENCH_<pr>.json`.

use crate::json::BenchReport;

/// Absolute slack added to every band edge so exact-zero and
/// bit-identical comparisons never fail on representation noise.
const EPS: f64 = 1e-9;

/// Tolerance bands of the regression gate.
#[derive(Debug, Clone, Copy)]
pub struct GateConfig {
    /// Two-sided band for deterministic metrics: fresh must satisfy
    /// `fresh <= base * tight_ratio` and `fresh * tight_ratio >= base`.
    pub tight_ratio: f64,
    /// One-sided floor for wall-clock throughput: fresh must satisfy
    /// `fresh >= base * loose_floor`.
    pub loose_floor: f64,
    /// The explicit allowlist of units measured against the wall clock
    /// (and therefore gated by the loose floor only). Every other unit —
    /// whatever it is named — is treated as deterministic and held to
    /// the tight band; notably `sim_req_per_sec`, the replayed
    /// simulation throughput, is *not* in this list.
    pub wall_clock_units: &'static [&'static str],
}

/// Units the default configuration treats as wall-clock throughput: the
/// timer-measured rates of `service_throughput` (`req_per_sec`,
/// `mut_per_sec`) and `persist_throughput` (`replays_per_sec`,
/// `frames_per_sec`).
pub const WALL_CLOCK_UNITS: &[&str] = &[
    "req_per_sec",
    "mut_per_sec",
    "replays_per_sec",
    "frames_per_sec",
];

impl Default for GateConfig {
    fn default() -> GateConfig {
        GateConfig {
            tight_ratio: 1.25,
            loose_floor: 0.4,
            wall_clock_units: WALL_CLOCK_UNITS,
        }
    }
}

/// The outcome of one baseline-vs-fresh comparison.
#[derive(Debug, Clone, Default)]
pub struct GateReport {
    /// Metrics compared (present in both reports).
    pub checked: usize,
    /// One human-readable line per violation; empty means the gate passes.
    pub failures: Vec<String>,
}

impl GateReport {
    /// Whether the fresh report is within tolerance of the baseline.
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Whether `unit` is declared wall-clock throughput (loose floor) as
/// opposed to a deterministic metric (tight band). Explicit membership,
/// not a name heuristic: an undeclared unit is deterministic by default,
/// so a new `*_per_sec` metric cannot silently dodge the tight band.
fn is_wall_clock_throughput(config: &GateConfig, unit: &str) -> bool {
    config.wall_clock_units.contains(&unit)
}

/// Compares `fresh` against `baseline` under `config`. See the module
/// docs for the policy. Never panics; all violations are reported as
/// [`GateReport::failures`].
pub fn compare(baseline: &BenchReport, fresh: &BenchReport, config: &GateConfig) -> GateReport {
    let mut report = GateReport::default();
    if baseline.bench != fresh.bench {
        report.failures.push(format!(
            "bench name changed: baseline {:?}, fresh {:?}",
            baseline.bench, fresh.bench
        ));
    }
    for base in &baseline.results {
        let Some(new) = fresh.results.iter().find(|m| m.name == base.name) else {
            report
                .failures
                .push(format!("metric {:?} missing from the fresh report", base.name));
            continue;
        };
        report.checked += 1;
        if new.unit != base.unit {
            report.failures.push(format!(
                "metric {:?} changed unit: baseline {:?}, fresh {:?}",
                base.name, base.unit, new.unit
            ));
            continue;
        }
        if is_wall_clock_throughput(config, &base.unit) {
            let floor = base.value * config.loose_floor - EPS;
            if new.value < floor {
                report.failures.push(format!(
                    "{}: throughput regressed below the {:.0}% floor \
                     (baseline {:.1} {}, fresh {:.1})",
                    base.name,
                    config.loose_floor * 100.0,
                    base.value,
                    base.unit,
                    new.value
                ));
            }
        } else {
            let too_high = new.value > base.value * config.tight_ratio + EPS;
            let too_low = new.value * config.tight_ratio < base.value - EPS;
            if too_high || too_low {
                report.failures.push(format!(
                    "{}: outside the ±{:.0}% band (baseline {} {}, fresh {})",
                    base.name,
                    (config.tight_ratio - 1.0) * 100.0,
                    base.value,
                    base.unit,
                    new.value
                ));
            }
        }
    }
    for new in &fresh.results {
        if baseline.metric(&new.name).is_none() {
            report.failures.push(format!(
                "metric {:?} is new — refresh the committed baseline to admit it",
                new.name
            ));
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn baseline() -> BenchReport {
        let mut r = BenchReport::new("service_trace");
        r.push("load_100/HIGH/p99", "us", 12_000.0);
        r.push("load_100/HIGH/missed_deadline", "count", 40.0);
        r.push("load_100/HIGH/hit_rate", "ratio", 0.31);
        r.push("load_100/sim_req_per_sec", "sim_req_per_sec", 61_000.0);
        r.push("closed_loop/shards_2", "req_per_sec", 50_000.0);
        r.push("zero/metric", "count", 0.0);
        r
    }

    #[test]
    fn identical_reports_pass() {
        let base = baseline();
        let report = compare(&base, &base.clone(), &GateConfig::default());
        assert!(report.passed(), "{:?}", report.failures);
        assert_eq!(report.checked, base.results.len());
    }

    #[test]
    fn doubled_p99_fails_the_gate() {
        // The injected-regression negative test: a 2× p99 must be caught.
        let base = baseline();
        let mut fresh = base.clone();
        fresh.results[0].value = 24_000.0;
        let report = compare(&base, &fresh, &GateConfig::default());
        assert!(!report.passed());
        assert!(
            report.failures[0].contains("load_100/HIGH/p99"),
            "{:?}",
            report.failures
        );
    }

    #[test]
    fn tight_band_is_two_sided() {
        // A metric collapsing to half its baseline is just as suspicious.
        let base = baseline();
        let mut fresh = base.clone();
        fresh.results[1].value = 10.0;
        assert!(!compare(&base, &fresh, &GateConfig::default()).passed());
    }

    #[test]
    fn wall_clock_throughput_gets_the_loose_floor_only() {
        let base = baseline();
        // Half the throughput (above the 0.4 floor): noise, passes.
        let mut fresh = base.clone();
        fresh.results[4].value = 25_000.0;
        assert!(compare(&base, &fresh, &GateConfig::default()).passed());
        // Triple the throughput: improvements always pass.
        fresh.results[4].value = 150_000.0;
        assert!(compare(&base, &fresh, &GateConfig::default()).passed());
        // Below the floor: a real regression.
        fresh.results[4].value = 15_000.0;
        assert!(!compare(&base, &fresh, &GateConfig::default()).passed());
    }

    #[test]
    fn simulated_throughput_stays_tight() {
        let base = baseline();
        let mut fresh = base.clone();
        fresh.results[3].value = 30_000.0; // sim halved: deterministic, fails
        assert!(!compare(&base, &fresh, &GateConfig::default()).passed());
    }

    #[test]
    fn undeclared_per_sec_unit_stays_on_the_tight_band() {
        // Negative test for the retired suffix heuristic: a metric whose
        // unit merely *looks* like throughput (`*_per_sec`) but is not in
        // the declared wall-clock list must be held to the tight band —
        // halving it fails instead of slipping under the loose floor.
        let mut base = baseline();
        base.push("load_100/evictions_per_sec", "eviction_per_sec", 800.0);
        let mut fresh = base.clone();
        let index = fresh.results.len() - 1;
        fresh.results[index].value = 400.0;
        let report = compare(&base, &fresh, &GateConfig::default());
        assert!(
            !report.passed(),
            "an undeclared *_per_sec unit must not get the loose floor"
        );
        assert!(
            report.failures[0].contains("evictions_per_sec"),
            "{:?}",
            report.failures
        );
    }

    #[test]
    fn declared_wall_clock_units_are_exactly_the_loose_set() {
        // The declaration is explicit and closed: exactly these units
        // ride the loose floor, everything else is deterministic.
        let config = GateConfig::default();
        for unit in WALL_CLOCK_UNITS {
            assert!(is_wall_clock_throughput(&config, unit));
        }
        assert!(!is_wall_clock_throughput(&config, "sim_req_per_sec"));
        assert!(!is_wall_clock_throughput(&config, "eviction_per_sec"));
        assert!(!is_wall_clock_throughput(&config, "us"));
    }

    #[test]
    fn zero_to_zero_passes_and_zero_to_nonzero_fails() {
        let base = baseline();
        assert!(compare(&base, &base.clone(), &GateConfig::default()).passed());
        let mut fresh = base.clone();
        fresh.results[5].value = 3.0;
        assert!(!compare(&base, &fresh, &GateConfig::default()).passed());
    }

    #[test]
    fn metric_set_mismatches_fail_both_ways() {
        let base = baseline();
        let mut missing = base.clone();
        missing.results.pop();
        assert!(!compare(&base, &missing, &GateConfig::default()).passed());
        let mut extra = base.clone();
        extra.push("sneaky/new", "count", 1.0);
        assert!(!compare(&base, &extra, &GateConfig::default()).passed());
    }

    #[test]
    fn unit_changes_fail() {
        let base = baseline();
        let mut fresh = base.clone();
        fresh.results[0].unit = "ns".into();
        assert!(!compare(&base, &fresh, &GateConfig::default()).passed());
    }
}
