//! Experiment E3 — regenerates **Table 3** (case-base memory consumption)
//! from the real encoders.
//!
//! `cargo run -p rqfa-bench --bin table3_memory`

use rqfa_memlist::{
    encode_case_base, encode_compact_case_base, encode_request, MemoryReport,
};
use rqfa_workloads::{CaseGen, RequestGen};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("Table 3. Case-base memory consumption\n");
    println!("shape (paper): 15 function types × 10 implementations × 10 attributes");
    println!("               10 distinct attribute types, 10-attribute request\n");

    let case_base = CaseGen::paper_shape().seed(1).build();
    let request = RequestGen::new(&case_base)
        .seed(1)
        .count(1)
        .drop_fraction(0.0)
        .generate()
        .remove(0);

    let req_image = encode_request(&request)?;
    println!(
        "memory consumption of request:    {:>6} bytes   (paper: 64 bytes)",
        req_image.image().bytes()
    );

    let classic = encode_case_base(&case_base)?;
    let classic_report = MemoryReport::of(&classic);
    println!(
        "case base, canonical encoding:    {:>6} bytes ≈ {:.2} kB   (paper: ~4.5 kB)",
        classic_report.total_bytes(),
        classic_report.total_kib()
    );
    let compact = encode_compact_case_base(&case_base)?;
    let compact_report = MemoryReport::of_compact(&compact);
    println!(
        "case base, compact encoding:      {:>6} bytes ≈ {:.2} kB",
        compact_report.total_bytes(),
        compact_report.total_kib()
    );

    println!("\nsection breakdown (canonical):\n{classic_report}");
    println!("section breakdown (compact):\n{compact_report}");
    println!(
        "note: the paper's stated layout (2 words per attribute entry + \n\
         terminators) needs ~6.9 kB; the ~4.5 kB figure matches the packed\n\
         single-word attribute encoding the §5 outlook describes. See\n\
         EXPERIMENTS.md E3 for the discrepancy analysis."
    );
    Ok(())
}
