//! Experiment E5 — the §4.2 accuracy claim: "our tests showed that this
//! bitwidth [16 bit] is sufficient even for fixed point calculations
//! without seriously losing accuracy. We have been able to show that we
//! get the same retrieval results in high precision floating point Matlab
//! simulation as we get from VHDL simulation." Winner-agreement rate and
//! worst-case similarity error of the fixed-point path.
//!
//! `cargo run -p rqfa-bench --bin fixed_vs_float`

use rqfa_bench::workload;
use rqfa_core::{FixedEngine, FloatEngine};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("E5. Fixed-point (UQ1.15) vs float retrieval\n");
    println!(
        "{:<18} {:>10} {:>14} {:>14}",
        "shape", "agreement", "max |ΔS|", "mean |ΔS|"
    );
    for &(label, t, i, a, k) in rqfa_bench::SHAPES {
        let (case_base, requests) = workload(t, i, a, k, 25);
        let float = FloatEngine::new();
        let fixed = FixedEngine::new();
        let mut agree = 0usize;
        let mut max_err: f64 = 0.0;
        let mut sum_err: f64 = 0.0;
        let mut count = 0usize;
        for request in &requests {
            let (f_scores, _) = float.score_all(&case_base, request)?;
            let (q_scores, _) = fixed.score_all(&case_base, request)?;
            for (f, q) in f_scores.iter().zip(&q_scores) {
                let err = (f.similarity - q.similarity.to_f64()).abs();
                max_err = max_err.max(err);
                sum_err += err;
                count += 1;
            }
            let fb = float.retrieve(&case_base, request)?.best.unwrap();
            let qb = fixed.retrieve(&case_base, request)?.best.unwrap();
            if fb.impl_id == qb.impl_id {
                agree += 1;
            }
        }
        println!(
            "{label:<18} {:>7}/{:<3} {:>14.6} {:>14.6}",
            agree,
            requests.len(),
            max_err,
            sum_err / count as f64
        );
    }
    println!(
        "\nthe dominant error source is the rounded reciprocal (error up to\n\
         d_max * half-ulp ≈ 0.4 % for value spans near 500), plus one\n\
         truncation per multiply; winners agree except at exact ties —\n\
         the paper's bit-width-sufficiency claim holds."
    );
    Ok(())
}
