//! Experiment E4 — the §4.2 performance comparison: "our hardware version
//! is at 66 MHz about 8.5 times faster than the software solution", plus a
//! sensitivity sweep over the CPU cost model and the program style.
//!
//! `cargo run -p rqfa-bench --bin speedup_hw_sw`

use rqfa_bench::{workload, SHAPES};
use rqfa_hwsim::{RetrievalUnit, UnitConfig};
use rqfa_memlist::{encode_case_base, encode_request};
use rqfa_softcore::{run_retrieval_with, CpuCostModel, ProgramKind};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("E4. Hardware vs software retrieval (cycles per retrieval)");
    println!("paper: ~8.5× (MicroBlaze C, 1984 B code), same clock\n");

    println!(
        "{:<18} {:>9} {:>11} {:>8} {:>11} {:>8}",
        "shape", "HW cyc", "SW asm cyc", "×", "SW C cyc", "×"
    );
    for &(label, t, i, a, k) in SHAPES {
        let (case_base, requests) = workload(t, i, a, k, 10);
        let cb_img = encode_case_base(&case_base)?;
        let mut unit = RetrievalUnit::new(&cb_img, UnitConfig::default())?;
        let mut hw_total = 0u64;
        let mut asm_total = 0u64;
        let mut c_total = 0u64;
        for request in &requests {
            let req_img = encode_request(request)?;
            let hw = unit.retrieve(&req_img)?;
            hw_total += hw.cycles;
            let asm = run_retrieval_with(
                &cb_img,
                &req_img,
                CpuCostModel::default(),
                ProgramKind::HandOptimized,
            )?;
            asm_total += asm.stats.cycles;
            let c = run_retrieval_with(
                &cb_img,
                &req_img,
                CpuCostModel::default(),
                ProgramKind::CompilerStyle,
            )?;
            c_total += c.stats.cycles;
            assert_eq!(hw.best, asm.best);
            assert_eq!(hw.best, c.best);
        }
        let n = requests.len() as u64;
        println!(
            "{:<18} {:>9} {:>11} {:>8.1} {:>11} {:>8.1}",
            label,
            hw_total / n,
            asm_total / n,
            asm_total as f64 / hw_total as f64,
            c_total / n,
            c_total as f64 / hw_total as f64
        );
    }

    println!("\nsensitivity: CPU cost model (paper shape, compiler-style)");
    println!("{:<16} {:>11} {:>8}", "model", "SW cyc", "×HW");
    let (case_base, requests) = workload(15, 10, 10, 10, 10);
    let cb_img = encode_case_base(&case_base)?;
    let mut unit = RetrievalUnit::new(&cb_img, UnitConfig::default())?;
    let mut hw_total = 0u64;
    let mut req_images = Vec::new();
    for request in &requests {
        let req_img = encode_request(request)?;
        hw_total += unit.retrieve(&req_img)?.cycles;
        req_images.push(req_img);
    }
    for (name, model) in [
        ("ideal", CpuCostModel::ideal()),
        ("microblaze", CpuCostModel::default()),
        ("conservative", CpuCostModel::conservative()),
    ] {
        let mut sw_total = 0u64;
        for req_img in &req_images {
            sw_total +=
                run_retrieval_with(&cb_img, req_img, model, ProgramKind::CompilerStyle)?
                    .stats
                    .cycles;
        }
        println!(
            "{:<16} {:>11} {:>8.1}",
            name,
            sw_total / requests.len() as u64,
            sw_total as f64 / hw_total as f64
        );
    }

    // Footprint comparison (paper: 1984 B opcode + 1208 B variables).
    let asm = run_retrieval_with(
        &cb_img,
        &req_images[0],
        CpuCostModel::default(),
        ProgramKind::HandOptimized,
    )?;
    let c = run_retrieval_with(
        &cb_img,
        &req_images[0],
        CpuCostModel::default(),
        ProgramKind::CompilerStyle,
    )?;
    println!("\nsoftware footprints (paper: 1984 B opcode, 1208 B variables):");
    println!("  hand-optimized: {} B code", asm.code_bytes);
    println!("  compiler-style: {} B code", c.code_bytes);
    Ok(())
}
