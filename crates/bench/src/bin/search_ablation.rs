//! Experiment E12 — the §4.1 sorted-list optimization: "it is possible to
//! continue searching from the current position instead of doing a
//! repeated search from the top of the local list. As a consequence the
//! effort for searching becomes linear." Resumable cursor vs restart-from-
//! top baseline.
//!
//! `cargo run -p rqfa-bench --bin search_ablation`

use rqfa_bench::workload;
use rqfa_hwsim::{RetrievalUnit, UnitConfig};
use rqfa_memlist::{encode_case_base, encode_request};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("E12. Resumable vs restart-from-top attribute search\n");
    println!(
        "{:>6} {:>12} {:>12} {:>9}",
        "attrs", "resume cyc", "naive cyc", "saving"
    );
    for attrs in [2u16, 4, 8, 16, 32] {
        let (case_base, requests) = workload(4, 8, attrs, attrs.max(4), 8);
        let cb_img = encode_case_base(&case_base)?;
        let mut fast = RetrievalUnit::new(&cb_img, UnitConfig::default())?;
        let mut slow = RetrievalUnit::new(
            &cb_img,
            UnitConfig {
                resume: false,
                ..UnitConfig::default()
            },
        )?;
        let (mut cf, mut cs) = (0u64, 0u64);
        for request in &requests {
            let req = encode_request(request)?;
            let a = fast.retrieve(&req)?;
            let b = slow.retrieve(&req)?;
            assert_eq!(a.best, b.best, "optimization must not change results");
            cf += a.cycles;
            cs += b.cycles;
        }
        println!(
            "{attrs:>6} {:>12} {:>12} {:>8.1}%",
            cf / 8,
            cs / 8,
            100.0 * (1.0 - cf as f64 / cs as f64)
        );
    }
    println!(
        "\nthe saving grows with the attribute count: restart-from-top is\n\
         quadratic in the list length, the resumable cursor is linear (§4.1)."
    );
    Ok(())
}
