//! Experiment E16 — the distributed trajectory: a two-node loopback
//! cluster (real [`rqfa_service::remote::NodeServer`]s behind real TCP,
//! driven through a [`rqfa_service::remote::ClusterClient`]) replaying a
//! deterministic request + learning-mutation mix under a frozen
//! `ManualClock`, then surviving a scripted **node kill with automatic
//! supervised failover**: the leader of shard 0 is shut down, its lease
//! decays in the [`rqfa_net::FailureDetector`], and the
//! [`rqfa_service::remote::Supervisor`] promotes a replicated standby
//! under a bumped fencing epoch — after which the cluster serves the
//! second half of the trajectory as if nothing happened.
//!
//! The whole cluster run executes **twice** — fresh nodes, fresh
//! connections, fresh failover — and the two reply streams, transport
//! counters, promotion records and per-shard generations are asserted
//! bit-identical before anything is written: on a clean loopback the
//! distribution layer (failover included, since the clock is manual)
//! adds no nondeterminism. Every published metric is a deterministic
//! count, so the CI gate holds its tight band on all of them.
//!
//! `cargo run --release -p rqfa-bench --bin distributed_trace [-- --json <path>]`
//!
//! With `--json BENCH_<pr>.json` this emits the committed artifact;
//! `bench_gate` compares a fresh run against it.

use std::net::TcpListener;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use rqfa_bench::json::BenchReport;
use rqfa_core::placement::{NodeId, NodeMap};
use rqfa_core::{CaseBase, QosClass};
use rqfa_net::{connect_loopback, FailureDetector, Follower, FrameConn, RetryPolicy};
use rqfa_service::remote::{
    replicate_shard, serve_follower, ClusterClient, NodeServer, RemoteShard, Supervisor,
    SupervisorEvent,
};
use rqfa_service::{shard, AllocationService, Outcome, Reply, ServiceConfig, ServiceError};
use rqfa_telemetry::{ManualClock, SharedClock};
use rqfa_workloads::{CaseGen, MutationGen, RequestGen};

const NODES: usize = 2;
const REQUESTS: usize = 600;
const HEALED_REQUESTS: usize = 200;
const OUTAGE_PROBES: usize = 4;
const MUTATE_EVERY: usize = 10;
/// The failure detector's lease, in virtual (manual-clock) µs.
const LEASE_US: u64 = 50_000;
const DOWN_MISSES: u64 = 2;

/// Everything one cluster run produces that determinism must cover.
#[derive(Debug, PartialEq)]
struct RunReport {
    replies: Vec<Reply>,
    generations: Vec<u64>,
    /// Per node: (frames sent, frames received, bytes sent, bytes
    /// received, retries) — snapshotted before the kill, so the
    /// healthy-phase transport is clean by construction.
    transport: Vec<(u64, u64, u64, u64, u64)>,
    /// Replies observed while node 0 was dead and unreplaced.
    outage: Vec<Reply>,
    /// Supervisor promotions (node id, epoch) across the run.
    promotions: Vec<(u16, u64)>,
    /// The cluster epoch after the heal.
    epoch: u64,
}

fn policy() -> RetryPolicy {
    RetryPolicy {
        attempts: 2,
        base_backoff: Duration::from_millis(1),
        jitter_seed: 0,
    }
}

const TIMEOUT: Duration = Duration::from_millis(300);

#[allow(clippy::too_many_lines)]
fn run_once(base: &CaseBase, run: usize) -> RunReport {
    // Node 0 is durable (replication streams its WAL); one scratch dir
    // per run keeps the two determinism runs fully independent.
    let dir = std::env::temp_dir().join(format!(
        "rqfa-dist-trace-{}-run{run}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let manual = Arc::new(ManualClock::new());
    let clock: SharedClock = Arc::clone(&manual) as SharedClock;
    let config = ServiceConfig::default()
        .with_shards(1)
        .with_cache_capacity(0)
        .with_queue_capacity(4096)
        .with_snapshot_every(0)
        .with_clock(Arc::clone(&clock));
    let placement = NodeMap::new(
        (0..NODES)
            .map(|n| Some(NodeId::new(u16::try_from(n).expect("small cluster"))))
            .collect(),
    );
    let client = Arc::new(ClusterClient::new(Box::new(placement), None));
    let mut servers: Vec<Option<NodeServer>> = Vec::new();
    let mut services = Vec::new();
    let mut stats = Vec::new();
    for (n, slice) in shard::partition(base, NODES).into_iter().enumerate() {
        let slice = slice.expect("this workload populates every shard");
        let service = if n == 0 {
            Arc::new(
                AllocationService::durable_create(&slice, &dir, &config)
                    .expect("valid durable node config"),
            )
        } else {
            Arc::new(AllocationService::new(&slice, &config).expect("valid node config"))
        };
        let server = NodeServer::spawn(Arc::clone(&service)).expect("loopback bind");
        let remote = RemoteShard::tcp(server.addr(), TIMEOUT, policy());
        stats.push(remote.stats());
        client.set_node(NodeId::new(u16::try_from(n).expect("small cluster")), remote);
        services.push(service);
        servers.push(Some(server));
    }

    // Phase 1: the healthy trajectory.
    let requests = RequestGen::new(base).seed(0xE16).count(REQUESTS).generate();
    let mut mutations = MutationGen::new(base, 0xE16 ^ 0xA5A5);
    let mut replies = Vec::with_capacity(REQUESTS + HEALED_REQUESTS);
    let mut generations = vec![0u64; NODES];
    let mut mutate = |client: &ClusterClient, generations: &mut Vec<u64>| {
        let mutation = mutations.next_mutation();
        let owner = shard::route(mutation.type_id(), NODES);
        let generation = client
            .apply_mutation(&mutation)
            .expect("clean loopback applies every mutation");
        generations[owner] = generation.raw();
    };
    for (i, request) in requests.into_iter().enumerate() {
        let class = QosClass::ALL[i % QosClass::ALL.len()];
        replies.push(client.submit(request, class));
        if i % MUTATE_EVERY == MUTATE_EVERY - 1 {
            mutate(&client, &mut generations);
        }
    }
    let transport = stats
        .iter()
        .map(|s| {
            (
                s.frames_sent.load(Ordering::Relaxed),
                s.frames_received.load(Ordering::Relaxed),
                s.bytes_sent.load(Ordering::Relaxed),
                s.bytes_received.load(Ordering::Relaxed),
                s.retries.load(Ordering::Relaxed),
            )
        })
        .collect();

    // Phase 2: supervised failover. Replicate node 0 into an
    // up-to-date standby, kill the leader, and let the lease decay
    // drive an automatic fenced promotion.
    let detector = Arc::new(FailureDetector::new(Arc::clone(&clock), LEASE_US, DOWN_MISSES));
    let mut supervisor = Supervisor::new(Arc::clone(&client), Arc::clone(&detector));
    assert!(
        supervisor
            .tick()
            .iter()
            .all(|e| matches!(e, SupervisorEvent::Beat { .. })),
        "the healthy cluster beats"
    );

    let listener = TcpListener::bind("127.0.0.1:0").expect("bind follower");
    let addr = listener.local_addr().expect("follower addr");
    let session = thread::spawn(move || {
        let (stream, _) = listener.accept().expect("accept replication stream");
        let mut conn = FrameConn::new(stream);
        let mut follower = Follower::new();
        serve_follower(&mut conn, &mut follower).expect("clean stream end");
        follower
    });
    {
        let mut conn = FrameConn::new(
            connect_loopback(addr, Duration::from_secs(2)).expect("leader connects"),
        );
        replicate_shard(&services[0], 0, &mut conn, 16).expect("replication round");
    }
    let follower = session.join().expect("follower session");
    assert_eq!(follower.generation(), Some(services[0].shard_generation(0)));

    let promoted: Arc<std::sync::Mutex<Vec<NodeServer>>> =
        Arc::new(std::sync::Mutex::new(Vec::new()));
    let mut standby = Some(follower);
    let standby_clock = Arc::clone(&clock);
    let standby_servers = Arc::clone(&promoted);
    let standby_config = config.clone();
    supervisor.register_standby(
        NodeId::new(0),
        Box::new(move |epoch| {
            let follower = standby
                .take()
                .ok_or_else(|| ServiceError::Remote("standby already consumed".into()))?;
            let replica = follower
                .promote()
                .map_err(|error| ServiceError::Remote(error.to_string()))?;
            let service = Arc::new(AllocationService::new(
                &replica,
                &standby_config.clone().with_clock(Arc::clone(&standby_clock)),
            )?);
            let server = NodeServer::spawn_fenced(service, epoch)?;
            let remote = RemoteShard::tcp(server.addr(), TIMEOUT, policy());
            standby_servers
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .push(server);
            Ok(remote)
        }),
    );

    // Kill. One missed lease: suspicion only, no promotion.
    if let Some(server) = servers[0].take() {
        server.shutdown();
    }
    manual.advance_us(LEASE_US);
    let mut promotions: Vec<(u16, u64)> = Vec::new();
    let sweep = |supervisor: &mut Supervisor, promotions: &mut Vec<(u16, u64)>| {
        for event in supervisor.tick() {
            if let SupervisorEvent::Promoted { node, epoch } = event {
                promotions.push((node.raw(), epoch));
            }
        }
    };
    sweep(&mut supervisor, &mut promotions);
    assert!(promotions.is_empty(), "no promotion inside the lease bound");

    // The outage window: the dead shard degrades into bounded
    // unavailability, the live shard keeps answering.
    let outage: Vec<Reply> = RequestGen::new(base)
        .seed(0xE16 + 1)
        .count(OUTAGE_PROBES)
        .generate()
        .into_iter()
        .enumerate()
        .map(|(i, request)| client.submit(request, QosClass::ALL[i % QosClass::ALL.len()]))
        .collect();

    // Second missed lease: the verdict decays to Down and the
    // supervisor promotes the standby under epoch 2.
    manual.advance_us(LEASE_US);
    sweep(&mut supervisor, &mut promotions);
    assert_eq!(promotions, vec![(0, 2)], "exactly one promotion, at epoch 2");

    // Phase 3: the healed trajectory — learning traffic included.
    let requests = RequestGen::new(base)
        .seed(0xE17)
        .count(HEALED_REQUESTS)
        .generate();
    for (i, request) in requests.into_iter().enumerate() {
        let class = QosClass::ALL[i % QosClass::ALL.len()];
        replies.push(client.submit(request, class));
        if i % MUTATE_EVERY == MUTATE_EVERY - 1 {
            mutate(&client, &mut generations);
        }
    }
    let epoch = client.epoch();

    for server in servers.into_iter().flatten() {
        server.shutdown();
    }
    for server in promoted
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .drain(..)
    {
        server.shutdown();
    }
    drop(services);
    let _ = std::fs::remove_dir_all(&dir);
    RunReport {
        replies,
        generations,
        transport,
        outage,
        promotions,
        epoch,
    }
}

#[allow(clippy::cast_precision_loss)]
fn main() {
    let json_path = rqfa_bench::json_path_from_args();
    let mut report = BenchReport::new("distributed_trace");
    println!(
        "E16. Deterministic two-node cluster trajectory with supervised failover \
         (TCP loopback, manual clock)\n"
    );
    let base = CaseGen::new(16, 8, 5, 8).seed(0xE16).build();
    println!(
        "cluster: {NODES} nodes × 1 shard, cache off, frozen clock; \
         workload: {REQUESTS} + {HEALED_REQUESTS} requests + 1 mutation per {MUTATE_EVERY}; \
         node 0 killed and auto-healed mid-run (lease {LEASE_US} µs × {DOWN_MISSES})"
    );

    let first = run_once(&base, 1);
    let second = run_once(&base, 2);
    assert_eq!(first, second, "the cluster replay must be deterministic");
    println!(
        "replayed twice: reply streams, generations, transport counters, \
         outage window and promotions identical\n"
    );

    let mut completed = [0u64; QosClass::COUNT];
    let mut evaluated = 0u64;
    for reply in &first.replies {
        if let Outcome::Allocated {
            evaluated: n,
            cached,
            ..
        } = &reply.outcome
        {
            assert!(!cached, "caching is pinned off for determinism");
            completed[reply.class.index()] += 1;
            evaluated += *n as u64;
        }
    }
    for class in QosClass::ALL {
        println!("  {class}: {} completed", completed[class.index()]);
        report.push(
            format!("{class}/completed"),
            "count",
            completed[class.index()] as f64,
        );
    }
    report.push("evaluated_total", "count", evaluated as f64);
    println!("  variants evaluated: {evaluated}");
    for (n, (sent, received, bytes_out, bytes_in, retries)) in
        first.transport.iter().enumerate()
    {
        assert_eq!(*retries, 0, "a clean loopback never retries");
        println!(
            "  node {n}: {sent} frames out ({bytes_out} B), \
             {received} frames in ({bytes_in} B), generation {}",
            first.generations[n]
        );
        report.push(format!("node{n}/frames_sent"), "count", *sent as f64);
        report.push(format!("node{n}/frames_received"), "count", *received as f64);
        report.push(format!("node{n}/bytes_sent"), "count", *bytes_out as f64);
        report.push(format!("node{n}/bytes_received"), "count", *bytes_in as f64);
        report.push(
            format!("node{n}/generation"),
            "count",
            first.generations[n] as f64,
        );
    }

    // The failover segment: every outage reply is either a completion
    // on the live shard or a *bounded* unavailability on the dead one.
    let unavailable = first
        .outage
        .iter()
        .filter(|r| matches!(r.outcome, Outcome::Unavailable { .. }))
        .count() as u64;
    let survived = first.outage.len() as u64 - unavailable;
    for reply in &first.outage {
        assert!(
            matches!(
                reply.outcome,
                Outcome::Allocated { .. } | Outcome::Unavailable { .. }
            ),
            "outage replies complete or fail boundedly: {:?}",
            reply.outcome
        );
    }
    println!(
        "  outage window: {survived} completed on the live shard, \
         {unavailable} bounded-unavailable on the dead one"
    );
    println!(
        "  failover: {} promotion(s), cluster epoch {}",
        first.promotions.len(),
        first.epoch
    );
    report.push("outage/completed", "count", survived as f64);
    report.push("outage/unavailable", "count", unavailable as f64);
    report.push("failover/promotions", "count", first.promotions.len() as f64);
    report.push("failover/epoch", "count", first.epoch as f64);

    if let Some(path) = json_path {
        report
            .write_validated(&path)
            .expect("bench report must validate against rqfa-bench/v1");
        println!("\njson report: {} (schema valid)", path.display());
    }
}
