//! Experiment E16 — the distributed trajectory: a two-node loopback
//! cluster (real [`rqfa_service::remote::NodeServer`]s behind real TCP,
//! driven through a [`rqfa_service::remote::ClusterClient`]) replaying a
//! deterministic request + learning-mutation mix under a frozen
//! `ManualClock`.
//!
//! The whole cluster run executes **twice** — fresh nodes, fresh
//! connections — and the two reply streams, transport counters and
//! per-shard generations are asserted bit-identical before anything is
//! written: on a clean loopback the distribution layer adds no
//! nondeterminism (per-request coalescing, caching and wall-clock
//! latencies are all pinned off or frozen). Every published metric is a
//! deterministic count, so the CI gate holds its tight band on all of
//! them.
//!
//! `cargo run --release -p rqfa-bench --bin distributed_trace [-- --json <path>]`
//!
//! With `--json BENCH_<pr>.json` this emits the committed artifact;
//! `bench_gate` compares a fresh run against it.

use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

use rqfa_bench::json::BenchReport;
use rqfa_core::placement::{NodeId, NodeMap};
use rqfa_core::{CaseBase, QosClass};
use rqfa_net::RetryPolicy;
use rqfa_service::remote::{ClusterClient, NodeServer, RemoteShard};
use rqfa_service::{shard, AllocationService, Outcome, Reply, ServiceConfig};
use rqfa_telemetry::{ManualClock, SharedClock};
use rqfa_workloads::{CaseGen, MutationGen, RequestGen};

const NODES: usize = 2;
const REQUESTS: usize = 600;
const MUTATE_EVERY: usize = 10;

/// Everything one cluster run produces that determinism must cover.
#[derive(Debug, PartialEq)]
struct RunReport {
    replies: Vec<Reply>,
    generations: Vec<u64>,
    /// Per node: (frames sent, frames received, bytes sent, bytes
    /// received, retries).
    transport: Vec<(u64, u64, u64, u64, u64)>,
}

fn run_once(base: &CaseBase) -> RunReport {
    let clock: SharedClock = Arc::new(ManualClock::new());
    let config = ServiceConfig::default()
        .with_shards(1)
        .with_cache_capacity(0)
        .with_queue_capacity(4096)
        .with_clock(Arc::clone(&clock));
    let placement = NodeMap::new(
        (0..NODES)
            .map(|n| Some(NodeId::new(u16::try_from(n).expect("small cluster"))))
            .collect(),
    );
    let mut client = ClusterClient::new(Box::new(placement), None);
    let mut servers = Vec::new();
    let mut stats = Vec::new();
    for (n, slice) in shard::partition(base, NODES).into_iter().enumerate() {
        let slice = slice.expect("this workload populates every shard");
        let service =
            Arc::new(AllocationService::new(&slice, &config).expect("valid node config"));
        let server = NodeServer::spawn(service).expect("loopback bind");
        let remote = RemoteShard::tcp(
            server.addr(),
            Duration::from_millis(500),
            RetryPolicy::loopback(),
        );
        stats.push(remote.stats());
        client.set_node(NodeId::new(u16::try_from(n).expect("small cluster")), remote);
        servers.push(server);
    }

    let requests = RequestGen::new(base).seed(0xE16).count(REQUESTS).generate();
    let mut mutations = MutationGen::new(base, 0xE16 ^ 0xA5A5);
    let mut replies = Vec::with_capacity(REQUESTS);
    let mut generations = vec![0u64; NODES];
    for (i, request) in requests.into_iter().enumerate() {
        let class = QosClass::ALL[i % QosClass::ALL.len()];
        replies.push(client.submit(request, class));
        if i % MUTATE_EVERY == MUTATE_EVERY - 1 {
            let mutation = mutations.next_mutation();
            let owner = shard::route(mutation.type_id(), NODES);
            let generation = client
                .apply_mutation(&mutation)
                .expect("clean loopback applies every mutation");
            generations[owner] = generation.raw();
        }
    }
    let transport = stats
        .iter()
        .map(|s| {
            (
                s.frames_sent.load(Ordering::Relaxed),
                s.frames_received.load(Ordering::Relaxed),
                s.bytes_sent.load(Ordering::Relaxed),
                s.bytes_received.load(Ordering::Relaxed),
                s.retries.load(Ordering::Relaxed),
            )
        })
        .collect();
    for server in servers {
        server.shutdown();
    }
    RunReport {
        replies,
        generations,
        transport,
    }
}

#[allow(clippy::cast_precision_loss)]
fn main() {
    let json_path = rqfa_bench::json_path_from_args();
    let mut report = BenchReport::new("distributed_trace");
    println!("E16. Deterministic two-node cluster trajectory (TCP loopback, manual clock)\n");
    let base = CaseGen::new(16, 8, 5, 8).seed(0xE16).build();
    println!(
        "cluster: {NODES} nodes × 1 shard, cache off, frozen clock; \
         workload: {REQUESTS} requests + 1 mutation per {MUTATE_EVERY}"
    );

    let first = run_once(&base);
    let second = run_once(&base);
    assert_eq!(first, second, "the cluster replay must be deterministic");
    println!("replayed twice: reply streams, generations and transport counters identical\n");

    let mut completed = [0u64; QosClass::COUNT];
    let mut evaluated = 0u64;
    for reply in &first.replies {
        if let Outcome::Allocated {
            evaluated: n,
            cached,
            ..
        } = &reply.outcome
        {
            assert!(!cached, "caching is pinned off for determinism");
            completed[reply.class.index()] += 1;
            evaluated += *n as u64;
        }
    }
    for class in QosClass::ALL {
        println!(
            "  {class}: {} completed",
            completed[class.index()]
        );
        report.push(
            format!("{class}/completed"),
            "count",
            completed[class.index()] as f64,
        );
    }
    report.push("evaluated_total", "count", evaluated as f64);
    println!("  variants evaluated: {evaluated}");
    for (n, (sent, received, bytes_out, bytes_in, retries)) in
        first.transport.iter().enumerate()
    {
        assert_eq!(*retries, 0, "a clean loopback never retries");
        println!(
            "  node {n}: {sent} frames out ({bytes_out} B), \
             {received} frames in ({bytes_in} B), generation {}",
            first.generations[n]
        );
        report.push(format!("node{n}/frames_sent"), "count", *sent as f64);
        report.push(format!("node{n}/frames_received"), "count", *received as f64);
        report.push(format!("node{n}/bytes_sent"), "count", *bytes_out as f64);
        report.push(format!("node{n}/bytes_received"), "count", *bytes_in as f64);
        report.push(
            format!("node{n}/generation"),
            "count",
            first.generations[n] as f64,
        );
    }

    if let Some(path) = json_path {
        report
            .write_validated(&path)
            .expect("bench report must validate against rqfa-bench/v1");
        println!("\njson report: {} (schema valid)", path.display());
    }
}
