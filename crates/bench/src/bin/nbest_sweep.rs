//! Experiment E8 — the §5 n-most-similar extension: retrieval cost of the
//! n-best register bank in hardware and software, and its payoff for the
//! allocation manager (feasibility fallbacks without re-retrieval).
//!
//! `cargo run -p rqfa-bench --bin nbest_sweep`

use rqfa_bench::workload;
use rqfa_core::FixedEngine;
use rqfa_hwsim::{RetrievalUnit, UnitConfig};
use rqfa_memlist::{encode_case_base, encode_request};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("E8. n-most-similar retrieval (§5 outlook)\n");
    let (case_base, requests) = workload(15, 10, 10, 10, 8);
    let cb_img = encode_case_base(&case_base)?;

    println!(
        "{:>4} {:>12} {:>14} {:>12}",
        "n", "hw cycles", "hw cmp ops", "sw rank len"
    );
    for n in [1usize, 2, 4, 8] {
        let mut unit = RetrievalUnit::new(
            &cb_img,
            UnitConfig {
                n_best: n,
                ..UnitConfig::default()
            },
        )?;
        let mut cycles = 0u64;
        let mut cmps = 0u64;
        let mut sw_len = 0usize;
        for request in &requests {
            let req = encode_request(request)?;
            let hw = unit.retrieve(&req)?;
            cycles += hw.cycles;
            cmps += hw.datapath.cmp_ops;
            let sw = FixedEngine::new().retrieve_n_best(&case_base, request, n)?;
            sw_len += sw.ranked.len();
            // Cross-check the full ranked list.
            for ((hid, hsim), s) in hw.ranked.iter().zip(&sw.ranked) {
                assert_eq!(*hid, s.impl_id.raw());
                assert_eq!(*hsim, s.similarity);
            }
        }
        let n_req = requests.len() as u64;
        println!(
            "{n:>4} {:>12} {:>14} {:>12}",
            cycles / n_req,
            cmps / n_req,
            sw_len / requests.len()
        );
    }
    println!(
        "\nthe register bank costs a handful of comparator activations per\n\
         implementation — the scan cycles dominate, so n-best retrieval is\n\
         nearly free in hardware (matching the paper's motivation for it)."
    );
    Ok(())
}
