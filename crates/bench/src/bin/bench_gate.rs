//! The CI perf-regression gate over `rqfa-bench/v1` reports.
//!
//! Two modes:
//!
//! * `bench_gate <baseline.json> <fresh.json>` — compares a fresh bench
//!   run against a committed baseline under the unit-aware tolerance
//!   policy of `rqfa_bench::gate` (tight ±25% band for deterministic
//!   metrics, a 0.4× floor for wall-clock throughput). Exit 1 on any
//!   violation, with one line per failing metric.
//! * `bench_gate --validate <file.json>...` — schema-validates each file
//!   (the committed `BENCH_*.json` trajectory) without comparing. Exit 1
//!   on the first malformed file.

use std::process::ExitCode;

use rqfa_bench::gate::{compare, GateConfig};
use rqfa_bench::json::validate_report;

fn load(path: &str) -> Result<rqfa_bench::json::BenchReport, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    validate_report(&text).map_err(|e| format!("{path}: {e}"))
}

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  bench_gate <baseline.json> <fresh.json>\n  bench_gate --validate <file.json>..."
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.split_first() {
        Some((flag, files)) if flag == "--validate" => {
            if files.is_empty() {
                return usage();
            }
            for path in files {
                match load(path) {
                    Ok(report) => println!(
                        "ok: {path} ({}, {} metrics)",
                        report.bench,
                        report.results.len()
                    ),
                    Err(e) => {
                        eprintln!("INVALID: {e}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            ExitCode::SUCCESS
        }
        Some((baseline_path, [fresh_path])) => {
            let (baseline, fresh) = match (load(baseline_path), load(fresh_path)) {
                (Ok(b), Ok(f)) => (b, f),
                (b, f) => {
                    for e in [b.err(), f.err()].into_iter().flatten() {
                        eprintln!("INVALID: {e}");
                    }
                    return ExitCode::FAILURE;
                }
            };
            let verdict = compare(&baseline, &fresh, &GateConfig::default());
            if verdict.passed() {
                println!(
                    "gate passed: {} metrics within tolerance ({baseline_path} vs {fresh_path})",
                    verdict.checked
                );
                ExitCode::SUCCESS
            } else {
                eprintln!(
                    "gate FAILED: {} violation(s), {} metrics checked",
                    verdict.failures.len(),
                    verdict.checked
                );
                for failure in &verdict.failures {
                    eprintln!("  {failure}");
                }
                ExitCode::FAILURE
            }
        }
        _ => usage(),
    }
}
