//! Experiment E10 — the §2.2 design decision: "[the Mahalanobis] method is
//! very effective concerning the results but the computational efforts
//! would be too large so we decided to apply Manhattan distance metrics."
//! Measures both sides: ranking agreement and arithmetic cost.
//!
//! `cargo run -p rqfa-bench --bin mahalanobis_ablation [-- --json <path>]`
//!
//! With `--json <path>` the per-shape agreement and cost ratios (both
//! deterministic) are emitted as an `rqfa-bench/v1` report.

use rqfa_bench::json::BenchReport;
use rqfa_bench::workload;
use rqfa_core::{FloatEngine, MahalanobisEngine};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let json_path = rqfa_bench::json_path_from_args();
    let mut report = BenchReport::new("mahalanobis_ablation");
    println!("E10. Weighted-Manhattan vs Mahalanobis retrieval\n");
    println!(
        "{:<18} {:>10} {:>12} {:>12} {:>9}",
        "shape", "agree", "manh. ops", "mahal. ops", "ratio"
    );
    for &(label, t, i, a, k) in rqfa_bench::SHAPES {
        let (case_base, requests) = workload(t, i, a, k, 12);
        let manhattan = FloatEngine::new();
        let mahalanobis = MahalanobisEngine::new();
        let mut agree = 0usize;
        let (mut ops_manh, mut ops_mahal) = (0u64, 0u64);
        for request in &requests {
            let m = manhattan.retrieve(&case_base, request)?;
            let h = mahalanobis.retrieve(&case_base, request)?;
            if m.best.unwrap().impl_id == h.best.unwrap().impl_id {
                agree += 1;
            }
            ops_manh += m.ops.arithmetic();
            ops_mahal += h.ops.arithmetic();
        }
        println!(
            "{label:<18} {:>7}/{:>2} {:>12} {:>12} {:>8.1}×",
            agree,
            requests.len(),
            ops_manh / 12,
            ops_mahal / 12,
            ops_mahal as f64 / ops_manh as f64
        );
        // "tiny  (2×3×4)" → "tiny": the first word is the metric key.
        let key = label.split_whitespace().next().unwrap_or(label);
        #[allow(clippy::cast_precision_loss)]
        {
            report.push(
                format!("{key}/agreement"),
                "ratio",
                agree as f64 / requests.len() as f64,
            );
            report.push(
                format!("{key}/ops_ratio"),
                "ratio",
                ops_mahal as f64 / ops_manh as f64,
            );
        }
    }
    println!(
        "\nthe engines usually agree on the winner while the covariance\n\
         build + inversion + quadratic forms cost one to two orders of\n\
         magnitude more arithmetic — the paper's trade-off, quantified."
    );
    if let Some(path) = json_path {
        report
            .write_validated(&path)
            .expect("bench report must validate against rqfa-bench/v1");
        println!("\njson report: {} (schema valid)", path.display());
    }
    Ok(())
}
