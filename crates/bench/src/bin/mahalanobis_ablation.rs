//! Experiment E10 — the §2.2 design decision: "[the Mahalanobis] method is
//! very effective concerning the results but the computational efforts
//! would be too large so we decided to apply Manhattan distance metrics."
//! Measures both sides: ranking agreement and arithmetic cost.
//!
//! `cargo run -p rqfa-bench --bin mahalanobis_ablation`

use rqfa_bench::workload;
use rqfa_core::{FloatEngine, MahalanobisEngine};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("E10. Weighted-Manhattan vs Mahalanobis retrieval\n");
    println!(
        "{:<18} {:>10} {:>12} {:>12} {:>9}",
        "shape", "agree", "manh. ops", "mahal. ops", "ratio"
    );
    for &(label, t, i, a, k) in rqfa_bench::SHAPES {
        let (case_base, requests) = workload(t, i, a, k, 12);
        let manhattan = FloatEngine::new();
        let mahalanobis = MahalanobisEngine::new();
        let mut agree = 0usize;
        let (mut ops_manh, mut ops_mahal) = (0u64, 0u64);
        for request in &requests {
            let m = manhattan.retrieve(&case_base, request)?;
            let h = mahalanobis.retrieve(&case_base, request)?;
            if m.best.unwrap().impl_id == h.best.unwrap().impl_id {
                agree += 1;
            }
            ops_manh += m.ops.arithmetic();
            ops_mahal += h.ops.arithmetic();
        }
        println!(
            "{label:<18} {:>7}/{:>2} {:>12} {:>12} {:>8.1}×",
            agree,
            requests.len(),
            ops_manh / 12,
            ops_mahal / 12,
            ops_mahal as f64 / ops_manh as f64
        );
    }
    println!(
        "\nthe engines usually agree on the winner while the covariance\n\
         build + inversion + quadratic forms cost one to two orders of\n\
         magnitude more arithmetic — the paper's trade-off, quantified."
    );
    Ok(())
}
