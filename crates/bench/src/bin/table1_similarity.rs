//! Experiment E1 — regenerates **Table 1** (retrieval similarity example).
//!
//! `cargo run -p rqfa-bench --bin table1_similarity`

use rqfa_core::{paper, FixedEngine, FloatEngine};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let case_base = paper::table1_case_base();
    let request = paper::table1_request()?;
    let bounds = case_base.bounds();
    let fir = case_base.function_type(paper::FIR_EQUALIZER).expect("fixture");

    println!("Table 1. Retrieval – similarity example");
    println!("request: {request}\n");

    let (float_scores, _) = FloatEngine::new().score_all(&case_base, &request)?;
    let (fixed_scores, _) = FixedEngine::new().score_all(&case_base, &request)?;

    for (variant, (f, q)) in fir.variants().iter().zip(float_scores.iter().zip(&fixed_scores)) {
        println!("Impl. ID = {} : {}", variant.id().raw(), variant.target());
        println!(
            "  {:>2} {:>8} {:>8} {:>18} {:>8} {:>8}",
            "i", "AReq_i", "ACB_i", "d(AReq_i,ACB_i)", "dmax", "si"
        );
        for c in request.constraints() {
            let entry = bounds.require(c.attr)?;
            match variant.attr(c.attr) {
                Some(cb_value) => {
                    let d = c.value.abs_diff(cb_value);
                    let si = rqfa_core::similarity::local_f64(c.value, cb_value, entry.max_distance);
                    println!(
                        "  {:>2} {:>8} {:>8} {:>18} {:>8} {:>8.2}",
                        c.attr.raw(),
                        c.value,
                        cb_value,
                        format!("{}-{}={}", c.value.max(cb_value), c.value.min(cb_value), d),
                        format!("{}", entry.max_distance),
                        si
                    );
                }
                None => println!(
                    "  {:>2} {:>8} {:>8} {:>18} {:>8} {:>8.2}",
                    c.attr.raw(),
                    c.value,
                    "-",
                    "missing",
                    entry.max_distance,
                    0.0
                ),
            }
        }
        println!(
            "  Sglobal = {:.2}  (w_i = 1/3 each; fixed-point: {:.4})\n",
            f.similarity,
            q.similarity.to_f64()
        );
    }

    let best = FloatEngine::new().retrieve(&case_base, &request)?.best.unwrap();
    println!("best: Impl. ID = {} ({})", best.impl_id.raw(), best.target);
    println!("\npaper vs measured:");
    println!("{:>8} {:>8} {:>9}", "impl", "paper", "measured");
    for (impl_raw, expected) in paper::TABLE1_EXPECTED {
        let got = float_scores
            .iter()
            .find(|s| s.impl_id.raw() == impl_raw)
            .unwrap()
            .similarity;
        println!("{impl_raw:>8} {expected:>8.2} {got:>9.4}");
    }
    Ok(())
}
