//! Experiment E6 — the fig. 6 FSM's cycle behaviour across case-base
//! shapes: linear scaling with list lengths (the §4.1 sorted-list claim)
//! and the per-phase cycle breakdown.
//!
//! `cargo run -p rqfa-bench --bin fig6_cycles_sweep`

use rqfa_bench::workload;
use rqfa_hwsim::{RetrievalUnit, UnitConfig};
use rqfa_memlist::{encode_case_base, encode_request};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("E6. Retrieval-FSM cycles vs case-base shape\n");
    println!(
        "{:>6} {:>6} {:>6} {:>10} {:>12} {:>10}",
        "types", "impls", "attrs", "cb words", "cycles/req", "cyc/impl"
    );
    for &(t, i, a) in &[
        (4u16, 2u16, 4u16),
        (4, 4, 4),
        (4, 8, 4),
        (4, 16, 4),
        (4, 8, 2),
        (4, 8, 8),
        (16, 8, 4),
        (64, 8, 4),
    ] {
        let k = a.max(4);
        let (case_base, requests) = workload(t, i, a, k, 8);
        let cb_img = encode_case_base(&case_base)?;
        let mut unit = RetrievalUnit::new(&cb_img, UnitConfig::default())?;
        let mut total = 0u64;
        for request in &requests {
            total += unit.retrieve(&encode_request(request)?)?.cycles;
        }
        let per_request = total / requests.len() as u64;
        println!(
            "{t:>6} {i:>6} {a:>6} {:>10} {per_request:>12} {:>10}",
            cb_img.image().len(),
            per_request / u64::from(i)
        );
    }

    println!("\nper-phase breakdown (paper shape, one request):");
    let (case_base, requests) = workload(15, 10, 10, 10, 1);
    let cb_img = encode_case_base(&case_base)?;
    let mut unit = RetrievalUnit::new(&cb_img, UnitConfig::default())?;
    let result = unit.retrieve(&encode_request(&requests[0])?)?;
    println!("{}", result.breakdown);
    println!(
        "search fraction: {:.1} %  (the target of the §5 compaction outlook)",
        result.breakdown.search_fraction() * 100.0
    );
    println!(
        "datapath usage: {} abs-diff, {}+{} multiplies, {} accumulates, {} compares",
        result.datapath.abs_diff_ops,
        result.datapath.mult0_ops,
        result.datapath.mult1_ops,
        result.datapath.acc_ops,
        result.datapath.cmp_ops
    );
    Ok(())
}
